//! Debug-profile smoke: a few seeds per scenario (CI sweeps hundreds in
//! release through the binary), plus the determinism pin for a
//! direct-connection scenario, whose whole fault plan — not just the
//! injection schedule — must replay bit-identically from the seed.

use vm_vopr::{run_seed, Scenario};

fn sweep(scenario: Scenario) {
    for seed in 0..3u64 {
        if let Err(e) = run_seed(scenario, seed) {
            panic!("{e}");
        }
    }
}

#[test]
fn baseline_smoke() {
    sweep(Scenario::Baseline);
}

#[test]
fn wire_chaos_smoke() {
    sweep(Scenario::WireChaos);
}

#[test]
fn torn_tail_smoke() {
    sweep(Scenario::TornTail);
}

#[test]
fn crash_loop_smoke() {
    sweep(Scenario::CrashLoop);
}

#[test]
fn gray_smoke() {
    sweep(Scenario::Gray);
}

#[test]
fn churn_smoke() {
    sweep(Scenario::Churn);
}

#[test]
fn replica_smoke() {
    sweep(Scenario::Replica);
}

#[test]
fn failover_smoke() {
    sweep(Scenario::Failover);
}

#[test]
fn lagging_follower_smoke() {
    sweep(Scenario::LaggingFollower);
}

/// Direct-connection scenarios have no wire nondeterminism at all: the
/// same seed must produce the same report, counter for counter.
#[test]
fn crash_loop_reports_are_deterministic() {
    let a = run_seed(Scenario::CrashLoop, 7).expect("seed 7 passes");
    let b = run_seed(Scenario::CrashLoop, 7).expect("seed 7 passes again");
    assert_eq!(a, b, "identical seed, identical run");
    assert!(a.crashes >= 2, "crash-loop injects several crashes");
}
