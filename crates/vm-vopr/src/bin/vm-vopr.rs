//! Sweep driver: run scenarios across seed ranges and report.
//!
//! ```text
//! vm-vopr [--scenario NAME|all] [--seed N | --seeds COUNT [--start N]] [--verbose]
//! ```
//!
//! Any failing run prints its seed and a copy-pasteable reproduction
//! command, and the process exits nonzero.

use vm_vopr::{run_seed, Scenario};

fn usage() -> ! {
    eprintln!(
        "usage: vm-vopr [--scenario NAME|all] [--seed N | --seeds COUNT [--start N]] [--verbose]\n\
         scenarios: {}",
        Scenario::all()
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn parse_u64(args: &mut std::slice::Iter<'_, String>, flag: &str) -> u64 {
    match args.next().map(|v| v.parse::<u64>()) {
        Some(Ok(v)) => v,
        _ => {
            eprintln!("{flag} needs an unsigned integer");
            usage();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenarios: Vec<Scenario> = Scenario::all().to_vec();
    let mut single_seed: Option<u64> = None;
    let mut count: u64 = 20;
    let mut start: u64 = 0;
    let mut verbose = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scenario" => match it.next().map(String::as_str) {
                Some("all") => scenarios = Scenario::all().to_vec(),
                Some(name) => match Scenario::from_name(name) {
                    Some(s) => scenarios = vec![s],
                    None => {
                        eprintln!("unknown scenario: {name}");
                        usage();
                    }
                },
                None => usage(),
            },
            "--seed" => single_seed = Some(parse_u64(&mut it, "--seed")),
            "--seeds" => count = parse_u64(&mut it, "--seeds"),
            "--start" => start = parse_u64(&mut it, "--start"),
            "--verbose" => verbose = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let seeds: Vec<u64> = match single_seed {
        Some(s) => vec![s],
        None => (start..start + count).collect(),
    };

    let started = std::time::Instant::now();
    let mut runs = 0usize;
    let mut failures = 0usize;
    for &scenario in &scenarios {
        let mut ops = 0usize;
        let mut retries = 0usize;
        let mut crashes = 0usize;
        let mut torn = 0usize;
        for &seed in &seeds {
            runs += 1;
            match run_seed(scenario, seed) {
                Ok(report) => {
                    ops += report.ops;
                    retries += report.retries;
                    crashes += report.crashes;
                    torn += report.torn_segments;
                    if verbose {
                        println!("ok   {report:?}");
                    }
                }
                Err(e) => {
                    failures += 1;
                    eprintln!("FAILED {e}");
                }
            }
        }
        println!(
            "{:<11} {:>4} seeds  {:>6} ops  {:>4} retries  {:>3} crashes  {:>3} torn tails",
            scenario.name(),
            seeds.len(),
            ops,
            retries,
            crashes,
            torn
        );
    }
    println!(
        "{runs} runs in {:.1}s, {failures} failures",
        started.elapsed().as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
