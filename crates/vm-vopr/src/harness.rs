//! The vopr driver: one seeded run of client + service + durable server
//! under a scenario's fault mix, checked against an in-process oracle.
//!
//! # Determinism
//!
//! Everything the driver *decides* — world shape, op schedule, crash
//! points, torn-tail offsets, gray naps — is drawn from [`rand`]
//! generators derived from the run seed, so a given `(scenario, seed)`
//! always injects the same op-level fault plan. Wire-level byte timing
//! (what the kernel interleaves) is not replayable, which is why the
//! equivalence argument is *timing-independent*: the driver is one
//! synchronous client that retries each op until it settles (accepted
//! now, or already present) before issuing the next, so per-minute
//! accepted order equals issue order no matter how the wire behaves,
//! and the oracle — an in-process [`ViewMapServer`] fed exactly the
//! accepted operations — must match bit for bit.

use crate::proxy::ChaosProxy;
use crate::scenario::Scenario;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};
use viewmap_core::server::ViewMapServer;
use viewmap_core::types::{GeoPos, MinuteId, VpId};
use viewmap_core::upload::AnonymousSubmission;
use viewmap_core::viewmap::{Site, ViewmapConfig};
use viewmap_core::vp::StoredVp;
use vm_bench::worlds::{linked_minute, viewmap_checksum};
use vm_crypto::RsaKeyPair;
use vm_obs::Registry;
use vm_repl::{Follower, FollowerConfig, Primary, ReplicationConfig};
use vm_service::proto::ErrorCode;
use vm_service::{ClientConfig, ClientError, ServiceConfig, VmClient, VmService};
use vm_store::{fault, PersistentServer, StoreConfig};

/// RSA modulus width for harness servers: the smallest the crypto layer
/// accepts, because vopr measures fault tolerance, not key strength.
const KEY_BITS: usize = 64;

/// Modulus width for the replicated scenarios, whose failover check
/// runs a real blind-signature reward round across the promotion.
const REPL_KEY_BITS: usize = 512;

/// How long a convergence poll waits before declaring the follower
/// wedged. Generous: convergence is normally milliseconds, but a
/// chaotic replication link can force several backoff-spaced resyncs.
const CONVERGE_TIMEOUT: Duration = Duration::from_secs(60);

/// Cap on attempts for one op to settle before the run is declared
/// wedged (generous: the fault rates leave each attempt likely to
/// succeed).
const MAX_ATTEMPTS: usize = 50;

macro_rules! ensure {
    ($cond:expr, $($arg:tt)*) => {
        if !$cond {
            return Err(format!($($arg)*));
        }
    };
}

thread_local! {
    /// The most recently opened server's telemetry registry. A registry
    /// outlives its server (it is `Arc`'d), so a failing run can dump
    /// the final metrics snapshot and journal tail beside the repro
    /// line even after the server under test has been torn down.
    static LAST_OBS: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
}

/// Remember `obs` as the registry a failure report should dump.
fn track_obs(obs: &Arc<Registry>) {
    LAST_OBS.with(|cell| *cell.borrow_mut() = Some(Arc::clone(obs)));
}

/// How many journal events a failure report carries.
const FAILURE_JOURNAL_TAIL: usize = 16;

/// The telemetry appendix for a failed run: the tracked registry's
/// full text snapshot plus the last few journal events. Empty when no
/// server ever opened (the failure predates any telemetry).
fn failure_telemetry() -> String {
    LAST_OBS.with(|cell| {
        let borrow = cell.borrow();
        let Some(obs) = borrow.as_ref() else {
            return String::new();
        };
        let mut out = String::from("\n--- metrics snapshot at failure ---\n");
        out.push_str(&obs.snapshot().render_text());
        out.push_str("--- journal tail ---\n");
        let tail = obs.journal().tail(FAILURE_JOURNAL_TAIL);
        if tail.is_empty() {
            out.push_str("(no events)\n");
        }
        for event in tail {
            out.push_str(&format!("{event}\n"));
        }
        out
    })
}

/// What one seeded run did — counters for reporting, not assertions
/// (all assertions live inside [`run_seed`] and fail the run).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// The seed that parameterized it.
    pub seed: u64,
    /// Crash/recover generations driven (1 = no injected crash).
    pub generations: usize,
    /// Wire ops settled (submits + investigations).
    pub ops: usize,
    /// Failed attempts that forced a reconnect-and-retry.
    pub retries: usize,
    /// Injected crashes (always `generations - 1`).
    pub crashes: usize,
    /// Torn segments recovery reported across all reopens.
    pub torn_segments: usize,
    /// Bytes recovery truncated off torn tails across all reopens.
    pub truncated_bytes: u64,
    /// VPs in the final recovered server (== the oracle's).
    pub final_vps: usize,
}

/// Expectations carried from an injury to the next generation's reopen.
#[derive(Clone, Copy, Debug, Default)]
struct InjuryExpect {
    torn_segments: usize,
    truncated_bytes: u64,
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(scenario: Scenario, seed: u64) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "vm_vopr_{}_{}_{}",
            scenario.name(),
            seed,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The investigation site every check uses: covers the whole linked
/// world (vehicles sit at `x < ~2.5 km`, `y = 10·minute`).
fn site() -> Site {
    Site {
        center: GeoPos::new(400.0, 15.0),
        radius_m: 100_000.0,
    }
}

enum Settled {
    /// The service accepted the op on this settle.
    Accepted,
    /// The service reports the op already present (a re-drive, or a
    /// retry whose earlier attempt was accepted but its reply lost).
    Present,
}

fn settle_submit(
    client: &mut VmClient,
    vp: &StoredVp,
    retries: &mut usize,
) -> Result<Settled, String> {
    for _ in 0..MAX_ATTEMPTS {
        match client.submit(vp) {
            Ok(()) => return Ok(Settled::Accepted),
            Err(ClientError::Remote(ErrorCode::Duplicate, _)) => return Ok(Settled::Present),
            Err(ClientError::Remote(code, detail)) => {
                return Err(format!("unexpected rejection {code}: {detail}"))
            }
            Err(_) => {
                *retries += 1;
                let _ = client.reconnect_with_backoff(5, Duration::from_millis(2));
            }
        }
    }
    Err(format!("submit of {:?} never settled", vp.id))
}

fn settle_investigate(
    client: &mut VmClient,
    minute: MinuteId,
    retries: &mut usize,
) -> Result<Vec<VpId>, String> {
    for _ in 0..MAX_ATTEMPTS {
        match client.investigate(minute, site()) {
            Ok(ids) => return Ok(ids),
            Err(ClientError::Remote(code, detail)) => {
                return Err(format!("investigation rejected {code}: {detail}"))
            }
            Err(_) => {
                *retries += 1;
                let _ = client.reconnect_with_backoff(5, Duration::from_millis(2));
            }
        }
    }
    Err(format!("investigation of {minute:?} never settled"))
}

/// Build a fresh in-process oracle holding exactly `anchor +
/// accepted[m]` per minute, in accepted order, with trusted flags
/// preserved (replay ingest).
fn build_oracle(
    world: &[Vec<StoredVp>],
    accepted: &[Vec<usize>],
    cfg: ViewmapConfig,
) -> Result<ViewMapServer, String> {
    let mut orng = StdRng::seed_from_u64(0xACE5);
    let oracle = ViewMapServer::new(&mut orng, KEY_BITS, cfg);
    for (m, minute_world) in world.iter().enumerate() {
        let mut batch = vec![minute_world[0].clone()];
        batch.extend(accepted[m].iter().map(|&i| minute_world[i].clone()));
        let results = oracle.submit_replay_batch(batch);
        ensure!(
            results.iter().all(|r| r.is_ok()),
            "oracle replay rejected a VP in minute {m}: {results:?}"
        );
    }
    Ok(oracle)
}

/// Assert `srv` and `oracle` are observably the same system: minutes,
/// digest, bucket orders, viewmap topology, TrustRank outcomes, index
/// routing, and (after the investigations this check runs itself) the
/// solicitation board.
fn check_equivalence(
    srv: &ViewMapServer,
    oracle: &ViewMapServer,
    minutes: usize,
    label: &str,
) -> Result<(), String> {
    let want_minutes: Vec<MinuteId> = (0..minutes as u64).map(MinuteId).collect();
    ensure!(
        srv.stored_minutes() == want_minutes,
        "{label}: server minutes {:?}",
        srv.stored_minutes()
    );
    ensure!(
        oracle.stored_minutes() == want_minutes,
        "{label}: oracle minutes {:?}",
        oracle.stored_minutes()
    );
    ensure!(
        srv.state_digest() == oracle.state_digest(),
        "{label}: state digest diverged"
    );
    ensure!(
        srv.total_vps() == oracle.total_vps(),
        "{label}: total {} != oracle {}",
        srv.total_vps(),
        oracle.total_vps()
    );
    for &minute in &want_minutes {
        let s_ids: Vec<VpId> = srv.minute_vps(minute).iter().map(|vp| vp.id).collect();
        let o_ids: Vec<VpId> = oracle.minute_vps(minute).iter().map(|vp| vp.id).collect();
        ensure!(
            s_ids == o_ids,
            "{label}: bucket order diverged at {minute:?}"
        );
        ensure!(
            viewmap_checksum(&srv.build_viewmap(minute, site()))
                == viewmap_checksum(&oracle.build_viewmap(minute, site())),
            "{label}: viewmap checksum diverged at {minute:?}"
        );
        ensure!(
            srv.investigate(minute, site()) == oracle.investigate(minute, site()),
            "{label}: investigation diverged at {minute:?}"
        );
        for id in s_ids {
            ensure!(
                srv.lookup_vp(id).map(|vp| vp.id) == Some(id),
                "{label}: server index lost {id:?}"
            );
            ensure!(
                oracle.lookup_vp(id).map(|vp| vp.id) == Some(id),
                "{label}: oracle index lost {id:?}"
            );
        }
    }
    ensure!(
        srv.solicitation_board() == oracle.solicitation_board(),
        "{label}: solicitation boards diverged"
    );
    // Telemetry must agree with the state it describes: stored minus
    // evicted VPs equals what is resident — on both sides, and both
    // sides equal. Registries are recreated at every reopen and replay
    // re-counts through the same ingest path, so this invariant holds
    // across crash/recovery too.
    let mut counted = [0i64; 2];
    for (slot, (who, side)) in [("server", srv), ("oracle", oracle)].iter().enumerate() {
        let snap = side.obs().snapshot();
        let stored = snap.counter("vm_core_vps_stored_total").unwrap_or(0) as i64;
        let evicted = snap.counter("vm_core_vps_evicted_total").unwrap_or(0) as i64;
        counted[slot] = stored - evicted;
        ensure!(
            stored - evicted == side.total_vps() as i64,
            "{label}: {who} counters say {stored} stored - {evicted} evicted, \
             but {} VPs are resident",
            side.total_vps()
        );
    }
    ensure!(
        counted[0] == counted[1],
        "{label}: counter-derived VP totals diverged: server {} vs oracle {}",
        counted[0],
        counted[1]
    );
    Ok(())
}

/// Crash-injure the WAL: pick a seeded minute with appended ops, drop
/// 1–2 tail frames, and (for mid-frame scenarios) leave a seeded
/// partial prefix of the first dropped frame. Bookkeeping is truncated
/// to the survivors so the next reopen can be checked *exactly*.
fn injure(
    dir: &Path,
    scenario: Scenario,
    accepted: &mut [Vec<usize>],
    present: &mut [HashSet<usize>],
    rng: &mut StdRng,
) -> Result<InjuryExpect, String> {
    let candidates: Vec<usize> = (0..accepted.len())
        .filter(|&m| !accepted[m].is_empty())
        .collect();
    let Some(&m) = candidates.get(rng.gen_range(0..candidates.len().max(1))) else {
        return Ok(InjuryExpect::default()); // nothing appended yet: pure crash
    };
    let path = vm_store::segment::segment_path(dir, MinuteId(m as u64));
    let spans = fault::segment_frames(&path).map_err(|e| format!("walking {path:?}: {e}"))?;
    // Independent cross-check: appended frames must be anchor + exactly
    // the ops the driver saw accepted, before we injure anything.
    ensure!(
        spans.len() == 1 + accepted[m].len(),
        "minute {m}: segment holds {} frames, driver accepted {}",
        spans.len(),
        accepted[m].len()
    );
    let k = rng.gen_range(1..=accepted[m].len().min(2));
    let cut = spans[spans.len() - k].offset;
    let partial: u64 = if scenario.tears_mid_frame() {
        rng.gen_range(1..vm_store::FRAME_HEADER_BYTES as u64)
    } else {
        0
    };
    fault::tear_at(&path, cut + partial).map_err(|e| format!("tearing {path:?}: {e}"))?;
    accepted[m].truncate(accepted[m].len() - k);
    present[m] = accepted[m].iter().copied().collect();
    Ok(InjuryExpect {
        torn_segments: usize::from(partial > 0),
        truncated_bytes: partial,
    })
}

/// Run one `(scenario, seed)` simulation end to end. `Err` carries a
/// human-readable reason; callers prepend the scenario and seed so any
/// failure is reproducible from the message alone.
pub fn run_seed(scenario: Scenario, seed: u64) -> Result<RunReport, String> {
    let inner = if scenario.replicated() {
        run_replicated(scenario, seed)
    } else {
        run_inner(scenario, seed)
    };
    inner.map_err(|e| {
        format!(
            "[scenario={} seed={seed}] {e} — reproduce: \
             cargo run -p vm-vopr -- --scenario {} --seed {seed}{}",
            scenario.name(),
            scenario.name(),
            failure_telemetry()
        )
    })
}

fn run_inner(scenario: Scenario, seed: u64) -> Result<RunReport, String> {
    let tmp = TempDir::new(scenario, seed);
    let vmcfg = ViewmapConfig::default();
    let store_cfg = StoreConfig::default();

    // ── The seeded plan: world, schedule, generation count. ──────────
    let mut plan_rng = StdRng::seed_from_u64(seed);
    let minutes = plan_rng.gen_range(2..=3usize);
    let world: Vec<Vec<StoredVp>> = (0..minutes)
        .map(|m| linked_minute(plan_rng.gen_range(5..=9), m as u64, seed))
        .collect();
    // Round-robin interleave so crash points land across minutes.
    let mut schedule: Vec<(usize, usize)> = Vec::new();
    let widest = world.iter().map(Vec::len).max().unwrap_or(0);
    for i in 1..widest {
        for (m, minute_world) in world.iter().enumerate() {
            if i < minute_world.len() {
                schedule.push((m, i));
            }
        }
    }
    let generations = scenario.generations(&mut plan_rng);
    let mut nap_rng = StdRng::seed_from_u64(seed ^ 0x6e61_7073); // gray naps

    let mut accepted: Vec<Vec<usize>> = vec![Vec::new(); minutes];
    let mut present: Vec<HashSet<usize>> = vec![HashSet::new(); minutes];
    let mut pending = InjuryExpect::default();
    let mut report = RunReport {
        scenario,
        seed,
        generations,
        ops: 0,
        retries: 0,
        crashes: 0,
        torn_segments: 0,
        truncated_bytes: 0,
        final_vps: 0,
    };

    for gen in 0..generations {
        let last = gen + 1 == generations;
        let mut srv_rng = StdRng::seed_from_u64(seed ^ 0x5eed ^ ((gen as u64) << 32));
        let (srv, recovery) = ViewMapServer::open(&mut srv_rng, KEY_BITS, vmcfg, &tmp.0, store_cfg)
            .map_err(|e| format!("open generation {gen}: {e}"))?;
        track_obs(srv.obs());

        // ── Recovery must report exactly the injury. ─────────────────
        let want_records: usize = if gen == 0 {
            0
        } else {
            accepted.iter().map(|a| 1 + a.len()).sum()
        };
        ensure!(
            recovery.records == want_records,
            "gen {gen}: recovered {} records, expected {want_records}",
            recovery.records
        );
        ensure!(
            recovery.torn_segments == pending.torn_segments
                && recovery.truncated_bytes == pending.truncated_bytes,
            "gen {gen}: torn {}/{}B, injected {}/{}B",
            recovery.torn_segments,
            recovery.truncated_bytes,
            pending.torn_segments,
            pending.truncated_bytes
        );
        ensure!(
            recovery.rejected == 0 && recovery.quarantined == 0,
            "gen {gen}: recovery rejected {} / quarantined {}",
            recovery.rejected,
            recovery.quarantined
        );
        // The signing key persists in a keyfile beside the segments, so
        // no restart — however violent — should ever mint a fresh key.
        ensure!(
            !recovery.fresh_signing_key,
            "gen {gen}: fresh_signing_key raised despite persisted keyfile"
        );
        report.torn_segments += recovery.torn_segments;
        report.truncated_bytes += recovery.truncated_bytes;
        pending = InjuryExpect::default();

        // ── Anchors (authority surface, in-process). The first boot
        //    accepts them; every later generation must already hold
        //    them (tail injuries never reach frame 0). ────────────────
        for (m, minute_world) in world.iter().enumerate() {
            let r = srv
                .submit_trusted(minute_world[0].clone())
                .map_err(ErrorCode::from);
            if gen == 0 {
                ensure!(r.is_ok(), "gen 0: anchor {m} rejected: {r:?}");
            } else {
                ensure!(
                    r == Err(ErrorCode::Duplicate),
                    "gen {gen}: anchor {m} did not survive: {r:?}"
                );
            }
        }

        // ── Post-crash: the recovered state must equal an oracle fed
        //    the surviving accepted ops. ──────────────────────────────
        if gen > 0 {
            for (m, minute_world) in world.iter().enumerate() {
                let ids: Vec<VpId> = srv
                    .minute_vps(MinuteId(m as u64))
                    .iter()
                    .map(|vp| vp.id)
                    .collect();
                let want: Vec<VpId> = std::iter::once(minute_world[0].id)
                    .chain(accepted[m].iter().map(|&i| minute_world[i].id))
                    .collect();
                ensure!(
                    ids == want,
                    "gen {gen}: minute {m} survivors are not the accepted prefix"
                );
            }
            let oracle = build_oracle(&world, &accepted, vmcfg)?;
            check_equivalence(&srv, &oracle, minutes, &format!("post-crash gen {gen}"))?;
            if matches!(scenario, Scenario::Churn) {
                // Recovery must never trust maintained state stale: a
                // reopened server starts with no maintained graphs
                // (they are in-memory splices of a dead process), and
                // the first maintained investigation of each minute
                // must rebuild one that equals the oracle's cold build.
                for m in 0..minutes {
                    let minute = MinuteId(m as u64);
                    ensure!(
                        !srv.has_maintained(minute),
                        "gen {gen}: recovered server holds a maintained graph for {minute:?}"
                    );
                    ensure!(
                        viewmap_checksum(&srv.build_viewmap_maintained(minute, site()))
                            == viewmap_checksum(&oracle.build_viewmap(minute, site())),
                        "gen {gen}: post-crash maintained viewmap diverged at {minute:?}"
                    );
                }
            }
        }

        // ── Serve and drive the (re-driven) op schedule. ─────────────
        let srv = Arc::new(srv);
        let handle = VmService::spawn(
            Arc::clone(&srv),
            "127.0.0.1:0",
            ServiceConfig {
                workers: 2,
                idle_timeout: matches!(scenario, Scenario::Gray).then(|| Duration::from_millis(30)),
                ..ServiceConfig::default()
            },
        )
        .map_err(|e| format!("spawn service gen {gen}: {e}"))?;
        let proxy = match scenario.wire_faults() {
            Some(faults) => Some(
                ChaosProxy::spawn(handle.addr(), seed ^ ((gen as u64) << 48), faults)
                    .map_err(|e| format!("spawn proxy gen {gen}: {e}"))?,
            ),
            None => None,
        };
        let addr = proxy.as_ref().map_or(handle.addr(), |p| p.addr());
        let mut client = VmClient::connect_with(
            addr,
            ClientConfig {
                read_timeout: Some(Duration::from_secs(5)),
                write_timeout: Some(Duration::from_secs(5)),
                // Pin the jitter stream: the whole run replays by seed.
                backoff_seed: Some(seed ^ 0xbac0_0ff5 ^ ((gen as u64) << 16)),
            },
        )
        .map_err(|e| format!("connect gen {gen}: {e}"))?;

        let ops_this_gen = if last {
            schedule.len()
        } else {
            plan_rng.gen_range(0..=schedule.len())
        };
        if matches!(scenario, Scenario::Baseline) {
            // The coalescing fast path: the whole schedule pipelined.
            let vps: Vec<StoredVp> = schedule.iter().map(|&(m, i)| world[m][i].clone()).collect();
            let outcomes = client
                .submit_pipelined(&vps)
                .map_err(|e| format!("pipelined submit: {e}"))?;
            for (&(m, i), out) in schedule.iter().zip(&outcomes) {
                ensure!(out.is_ok(), "baseline rejected ({m},{i}): {out:?}");
                accepted[m].push(i);
                present[m].insert(i);
            }
            report.ops += vps.len();
        } else {
            let faultless = scenario.wire_faults().is_none();
            for &(m, i) in &schedule[..ops_this_gen] {
                if matches!(scenario, Scenario::Gray) && nap_rng.gen_bool(0.15) {
                    // Outlast the server's idle deadline: the session is
                    // reaped and the next op must recover by reconnect.
                    std::thread::sleep(Duration::from_millis(50));
                }
                let was_present = present[m].contains(&i);
                let settled = settle_submit(&mut client, &world[m][i], &mut report.retries)?;
                if faultless {
                    // No wire faults → outcomes are exact: survivors
                    // dedup, lost ops re-accept.
                    ensure!(
                        matches!(settled, Settled::Accepted) == !was_present,
                        "op ({m},{i}): settled {} but {} present",
                        if matches!(settled, Settled::Accepted) {
                            "Accepted"
                        } else {
                            "Present"
                        },
                        if was_present { "was" } else { "was not" },
                    );
                }
                match settled {
                    Settled::Accepted => {
                        ensure!(!was_present, "service re-accepted a stored VP ({m},{i})");
                        accepted[m].push(i);
                        present[m].insert(i);
                    }
                    Settled::Present => {
                        // Already present — or accepted by an earlier
                        // attempt of THIS op whose reply was lost.
                        if !was_present {
                            accepted[m].push(i);
                            present[m].insert(i);
                        }
                    }
                }
                report.ops += 1;
                if matches!(scenario, Scenario::Churn) && report.ops.is_multiple_of(5) {
                    // Investigation racing ingest: the maintained graph
                    // (created on the first probe, spliced by every
                    // submit since) must equal a cold build of the same
                    // bucket at any point of the history.
                    let minute = MinuteId(m as u64);
                    ensure!(
                        viewmap_checksum(&srv.build_viewmap_maintained(minute, site()))
                            == viewmap_checksum(&srv.build_viewmap(minute, site())),
                        "mid-ingest maintained viewmap diverged at {minute:?}"
                    );
                }
            }
        }

        if !last {
            // ── Crash: tear everything down with no sync, then injure
            //    the WAL tail at seeded offsets. ───────────────────────
            drop(client);
            drop(proxy);
            drop(handle); // joins workers, releasing their Arc clones
            let srv = Arc::try_unwrap(srv)
                .map_err(|_| "service still holds server references".to_string())?;
            drop(srv); // crash: no sync_wal; Drop releases the dir lock
            pending = injure(&tmp.0, scenario, &mut accepted, &mut present, &mut plan_rng)?;
            report.crashes += 1;
            continue;
        }

        if matches!(scenario, Scenario::Churn) {
            // ── Retention sweep racing the maintained graphs: evict
            //    minute 0 (memory + WAL segment + maintained graph in
            //    one atomic sweep), then re-drive its whole population
            //    through the wire and require the rebuilt maintained
            //    graph to equal a cold build again. ───────────────────
            let evicted = srv.evict_minutes_before(MinuteId(1));
            ensure!(
                evicted == 1 + accepted[0].len(),
                "sweep evicted {evicted} VPs, expected {}",
                1 + accepted[0].len()
            );
            ensure!(
                !srv.has_maintained(MinuteId(0)),
                "maintained graph outlived its evicted minute"
            );
            accepted[0].clear();
            present[0].clear();
            let r = srv.submit_trusted(world[0][0].clone());
            ensure!(r.is_ok(), "re-anchor after sweep rejected: {r:?}");
            for &(m, i) in schedule.iter().filter(|&&(m, _)| m == 0) {
                let was_present = present[m].contains(&i);
                let settled = settle_submit(&mut client, &world[m][i], &mut report.retries)?;
                match settled {
                    Settled::Accepted => {
                        ensure!(!was_present, "service re-accepted a stored VP ({m},{i})");
                        accepted[m].push(i);
                        present[m].insert(i);
                    }
                    Settled::Present => {
                        if !was_present {
                            accepted[m].push(i);
                            present[m].insert(i);
                        }
                    }
                }
                report.ops += 1;
            }
            ensure!(
                viewmap_checksum(&srv.build_viewmap_maintained(MinuteId(0), site()))
                    == viewmap_checksum(&srv.build_viewmap(MinuteId(0), site())),
                "maintained viewmap diverged after evict-and-resubmit"
            );
        }

        // ── Final generation: wire investigations vs the oracle, then
        //    graceful shutdown, reopen, and full equivalence. ──────────
        let oracle = build_oracle(&world, &accepted, vmcfg)?;
        for m in 0..minutes {
            let minute = MinuteId(m as u64);
            let ids = settle_investigate(&mut client, minute, &mut report.retries)?;
            ensure!(
                ids == oracle.investigate(minute, site()),
                "wire investigation diverged at minute {m}"
            );
            report.ops += 1;
        }
        drop(client);
        drop(proxy);
        drop(handle);
        let srv = Arc::try_unwrap(srv)
            .map_err(|_| "service still holds server references".to_string())?;
        check_equivalence(&srv, &oracle, minutes, "final live")?;
        srv.sync_wal().map_err(|e| format!("final sync: {e}"))?;
        drop(srv);

        let mut final_rng = StdRng::seed_from_u64(seed ^ 0xf17a1);
        let (back, rep) = ViewMapServer::open(&mut final_rng, KEY_BITS, vmcfg, &tmp.0, store_cfg)
            .map_err(|e| format!("final reopen: {e}"))?;
        track_obs(back.obs());
        let want_records: usize = accepted.iter().map(|a| 1 + a.len()).sum();
        ensure!(
            rep.records == want_records && rep.torn_segments == 0 && rep.truncated_bytes == 0,
            "graceful reopen: {} records ({} torn, {}B truncated), expected {want_records} clean",
            rep.records,
            rep.torn_segments,
            rep.truncated_bytes
        );
        check_equivalence(&back, &oracle, minutes, "final recovered")?;
        // The full world must have landed by the end of the run.
        let want_total: usize = world.iter().map(Vec::len).sum();
        ensure!(
            back.total_vps() == want_total,
            "final server holds {} VPs, world has {want_total}",
            back.total_vps()
        );
        report.final_vps = back.total_vps();
    }

    Ok(report)
}

/// Poll `f` every couple of milliseconds until it holds or
/// [`CONVERGE_TIMEOUT`] expires.
fn wait_until(what: &str, mut f: impl FnMut() -> bool) -> Result<(), String> {
    let deadline = Instant::now() + CONVERGE_TIMEOUT;
    while Instant::now() < deadline {
        if f() {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    Err(format!("timed out waiting for {what}"))
}

/// Cheap convergence probe: totals and the order-sensitive state
/// digest. The full [`check_equivalence`] runs once convergence holds.
fn converged(primary: &ViewMapServer, follower: &ViewMapServer) -> bool {
    primary.total_vps() == follower.total_vps() && primary.state_digest() == follower.state_digest()
}

/// Drive `ops` against a live server in-process, recording every
/// acceptance. The replicated scenarios put their chaos on the
/// replication link, not the submit path, so in-process acceptance is
/// exact — any rejection fails the run.
fn drive_in_process(
    srv: &ViewMapServer,
    world: &[Vec<StoredVp>],
    ops: &[(usize, usize)],
    accepted: &mut [Vec<usize>],
    report: &mut RunReport,
) -> Result<(), String> {
    for &(m, i) in ops {
        srv.submit(AnonymousSubmission {
            session_id: 0,
            vp: world[m][i].clone(),
        })
        .map_err(|e| format!("primary rejected op ({m},{i}): {e:?}"))?;
        accepted[m].push(i);
        report.ops += 1;
    }
    Ok(())
}

/// One seeded run of a replicated pair: a [`Primary`] shipping its WAL
/// to a [`Follower`], with the scenario choosing what goes wrong on the
/// replication link (chaos, a held partition, or the primary itself
/// dying and the follower being promoted). The oracle discipline is
/// `run_inner`'s: the follower must end observably identical to an
/// in-process server fed exactly the accepted operations.
fn run_replicated(scenario: Scenario, seed: u64) -> Result<RunReport, String> {
    use std::sync::atomic::Ordering;

    let tmp = TempDir::new(scenario, seed);
    let pdir = tmp.0.join("primary");
    let fdir = tmp.0.join("follower");
    let vmcfg = ViewmapConfig::default();
    let store_cfg = StoreConfig::default();

    // ── The seeded plan: same world generator as the single-cell runs.
    let mut plan_rng = StdRng::seed_from_u64(seed);
    let minutes = plan_rng.gen_range(2..=3usize);
    let world: Vec<Vec<StoredVp>> = (0..minutes)
        .map(|m| linked_minute(plan_rng.gen_range(5..=9), m as u64, seed))
        .collect();
    let mut schedule: Vec<(usize, usize)> = Vec::new();
    let widest = world.iter().map(Vec::len).max().unwrap_or(0);
    for i in 1..widest {
        for (m, minute_world) in world.iter().enumerate() {
            if i < minute_world.len() {
                schedule.push((m, i));
            }
        }
    }
    // One operator key for the whole group: promotion must inherit the
    // signing identity, or pre-failover cash dies with the primary.
    let mut key_rng = StdRng::seed_from_u64(seed ^ 0x6b65_7921);
    let key = RsaKeyPair::generate(&mut key_rng, REPL_KEY_BITS);

    let failover = matches!(scenario, Scenario::Failover);
    let mut accepted: Vec<Vec<usize>> = vec![Vec::new(); minutes];
    let mut report = RunReport {
        scenario,
        seed,
        generations: if failover { 2 } else { 1 },
        ops: 0,
        retries: 0,
        crashes: usize::from(failover),
        torn_segments: 0,
        truncated_bytes: 0,
        final_vps: 0,
    };

    let (primary, prep) = Primary::open(
        &pdir,
        key.clone(),
        vmcfg,
        store_cfg,
        ReplicationConfig {
            epoch: 1,
            // Failover needs acked to mean "on the follower": that is
            // the zero-acked-write-loss contract the crash tests.
            sync_ack: failover,
            ack_timeout: Duration::from_secs(10),
        },
        "127.0.0.1:0",
    )
    .map_err(|e| format!("open primary: {e}"))?;
    track_obs(primary.server().obs());
    ensure!(
        prep.records == 0,
        "primary store not fresh: {} records",
        prep.records
    );

    // Anchors land before the follower exists, so the very first thing
    // the stream proves is fresh-join catch-up from segment files.
    for (m, minute_world) in world.iter().enumerate() {
        let r = primary.server().submit_trusted(minute_world[0].clone());
        ensure!(r.is_ok(), "anchor {m} rejected: {r:?}");
    }

    let proxy = match scenario.wire_faults() {
        Some(faults) => Some(
            ChaosProxy::spawn(primary.repl_addr(), seed ^ 0x7265_706c, faults)
                .map_err(|e| format!("spawn repl proxy: {e}"))?,
        ),
        None => None,
    };
    let dial = proxy.as_ref().map_or(primary.repl_addr(), |p| p.addr());
    let (follower, frep) = Follower::open(
        &fdir,
        key.clone(),
        vmcfg,
        store_cfg,
        dial,
        FollowerConfig {
            epoch: 1,
            backoff_seed: seed ^ 0x00f0_1105,
            ..FollowerConfig::default()
        },
    )
    .map_err(|e| format!("open follower: {e}"))?;
    track_obs(follower.server().obs());
    ensure!(
        frep.records == 0,
        "follower store not fresh: {} records",
        frep.records
    );

    let client_cfg = ClientConfig {
        read_timeout: Some(Duration::from_secs(5)),
        write_timeout: Some(Duration::from_secs(5)),
        backoff_seed: Some(seed ^ 0xbac0_0ff5),
    };

    match scenario {
        // ── Chaotic link: converge anyway, then serve fenced reads. ──
        Scenario::Replica => {
            drive_in_process(
                primary.server(),
                &world,
                &schedule,
                &mut accepted,
                &mut report,
            )?;
            wait_until("follower convergence under chaos", || {
                converged(primary.server(), follower.server())
            })?;
            let oracle = build_oracle(&world, &accepted, vmcfg)?;
            check_equivalence(follower.server(), &oracle, minutes, "converged follower")?;

            // The follower's front-end: reads serve from the replica,
            // mutations bounce with NotPrimary until a promotion that
            // never comes in this scenario.
            let handle = VmService::spawn_with_role(
                Arc::clone(follower.server()),
                "127.0.0.1:0",
                ServiceConfig {
                    workers: 2,
                    ..ServiceConfig::default()
                },
                Some(Arc::clone(follower.role())),
            )
            .map_err(|e| format!("spawn follower service: {e}"))?;
            let mut client = VmClient::connect_with(handle.addr(), client_cfg)
                .map_err(|e| format!("connect follower service: {e}"))?;
            match client.submit(&world[0][1]) {
                Err(ClientError::Remote(ErrorCode::NotPrimary, _)) => {}
                other => return Err(format!("follower accepted a mutation: {other:?}")),
            }
            report.ops += 1;
            for m in 0..minutes {
                let minute = MinuteId(m as u64);
                let ids = settle_investigate(&mut client, minute, &mut report.retries)?;
                ensure!(
                    ids == oracle.investigate(minute, site()),
                    "follower wire investigation diverged at minute {m}"
                );
                report.ops += 1;
            }
            drop(client);
            drop(handle);

            finish_replica(
                follower,
                primary,
                proxy,
                &fdir,
                &oracle,
                &accepted,
                minutes,
                vmcfg,
                store_cfg,
                &mut report,
            )
        }

        // ── Held partition: stale prefix, then full catch-up, then a
        //    replicated retention sweep over the healed link. ─────────
        Scenario::LaggingFollower => {
            let t1 = schedule.len() / 3;
            let t2 = 2 * schedule.len() / 3;
            drive_in_process(
                primary.server(),
                &world,
                &schedule[..t1],
                &mut accepted,
                &mut report,
            )?;
            wait_until("pre-partition convergence", || {
                converged(primary.server(), follower.server())
            })?;

            let valve = proxy
                .as_ref()
                .expect("lagging-follower routes replication through the valve");
            let stale_total = follower.server().total_vps();
            let stale_digest = follower.server().state_digest();
            let connects_before = follower.stats().connects.load(Ordering::Relaxed);
            // Close the valve *before* severing: the follower only
            // redials once its session dies, so every redial meets a
            // refusing listener.
            valve.set_refusing(true);
            valve.sever_all();
            wait_until("hub to notice the severed session", || {
                primary.hub().follower_count() == 0
            })?;

            drive_in_process(
                primary.server(),
                &world,
                &schedule[t1..t2],
                &mut accepted,
                &mut report,
            )?;
            // A few backoff cycles against the closed valve.
            std::thread::sleep(Duration::from_millis(60));
            ensure!(
                follower.server().total_vps() == stale_total
                    && follower.server().state_digest() == stale_digest,
                "partitioned follower moved past its stale prefix"
            );
            ensure!(
                follower.stats().connects.load(Ordering::Relaxed) == connects_before,
                "follower completed a handshake through a closed valve"
            );

            valve.set_refusing(false);
            drive_in_process(
                primary.server(),
                &world,
                &schedule[t2..],
                &mut accepted,
                &mut report,
            )?;
            wait_until("post-heal catch-up", || {
                converged(primary.server(), follower.server())
            })?;
            ensure!(
                follower.stats().resyncs.load(Ordering::Relaxed) >= 1,
                "partition healed without a single resync"
            );
            ensure!(
                follower.stats().wire_injuries.load(Ordering::Relaxed) == 0,
                "transparent link produced wire injuries"
            );
            let oracle = build_oracle(&world, &accepted, vmcfg)?;
            check_equivalence(follower.server(), &oracle, minutes, "healed follower")?;

            // Retention sweep over the live link: the eviction must
            // mirror, and re-driving the minute in its original order
            // must converge back to the same oracle.
            let evicted = primary.server().evict_minutes_before(MinuteId(1));
            ensure!(
                evicted == 1 + accepted[0].len(),
                "sweep evicted {evicted} VPs, expected {}",
                1 + accepted[0].len()
            );
            wait_until("eviction mirror", || {
                !follower.server().stored_minutes().contains(&MinuteId(0))
            })?;
            accepted[0].clear();
            let r = primary.server().submit_trusted(world[0][0].clone());
            ensure!(r.is_ok(), "re-anchor after sweep rejected: {r:?}");
            let redrive: Vec<(usize, usize)> =
                schedule.iter().copied().filter(|&(m, _)| m == 0).collect();
            drive_in_process(
                primary.server(),
                &world,
                &redrive,
                &mut accepted,
                &mut report,
            )?;
            wait_until("post-sweep convergence", || {
                converged(primary.server(), follower.server())
            })?;
            check_equivalence(follower.server(), &oracle, minutes, "post-sweep follower")?;

            finish_replica(
                follower,
                primary,
                proxy,
                &fdir,
                &oracle,
                &accepted,
                minutes,
                vmcfg,
                store_cfg,
                &mut report,
            )
        }

        // ── Crash-and-promote with synchronous acks. ─────────────────
        Scenario::Failover => {
            wait_until("follower to join", || primary.hub().follower_count() == 1)?;
            let half = schedule.len() / 2;
            drive_in_process(
                primary.server(),
                &world,
                &schedule[..half],
                &mut accepted,
                &mut report,
            )?;

            // A reward round on the doomed primary: blind-signed cash
            // that must survive the failover.
            let mut secret = [0u8; 8];
            plan_rng.fill(&mut secret);
            let vp_id = VpId::from_secret(&secret);
            primary.server().post_reward(vp_id, 2);
            let mut wallet = viewmap_core::reward::Wallet::new();
            let mut cash_rng = StdRng::seed_from_u64(seed ^ 0x0ca5_4000);
            let (pending, blinded) =
                wallet.prepare(&mut cash_rng, primary.server().public_key(), 2);
            let signed = primary
                .server()
                .issue_blind_signatures(vp_id, &secret, &blinded)
                .map_err(|e| format!("blind signing failed: {e:?}"))?;
            ensure!(
                wallet.accept_signed(primary.server().public_key(), pending, &signed) == 2,
                "wallet rejected the primary's blind signatures"
            );

            // Every shipped op — catch-up chunks included — must be
            // acked before the crash: what the primary considered
            // committed is exactly what promotion must preserve.
            let shipped = primary.hub().shipped_ops();
            wait_until("acks to drain", || primary.hub().watermark() >= shipped)?;
            ensure!(
                primary.hub().follower_count() == 1,
                "follower detached before the failover"
            );
            drop(primary); // abrupt: no sync, no handover
            drop(proxy);

            let stats = Arc::clone(follower.stats());
            let role = Arc::clone(follower.role());
            let handle = VmService::spawn_with_role(
                Arc::clone(follower.server()),
                "127.0.0.1:0",
                ServiceConfig {
                    workers: 2,
                    ..ServiceConfig::default()
                },
                Some(role),
            )
            .map_err(|e| format!("spawn follower service: {e}"))?;
            let mut client = VmClient::connect_with(handle.addr(), client_cfg)
                .map_err(|e| format!("connect follower service: {e}"))?;
            let (m0, i0) = schedule[half];
            match client.submit(&world[m0][i0]) {
                Err(ClientError::Remote(ErrorCode::NotPrimary, _)) => {}
                other => {
                    return Err(format!(
                        "pre-promotion follower accepted a mutation: {other:?}"
                    ))
                }
            }
            report.ops += 1;

            let (srv2, epoch) = follower.promote().map_err(|e| format!("promotion: {e}"))?;
            ensure!(epoch == 2, "promotion produced epoch {epoch}, expected 2");

            // Zero acked-write loss: the promoted buckets hold the
            // anchor plus every acked op, in accepted order.
            for (m, minute_world) in world.iter().enumerate() {
                let ids: Vec<VpId> = srv2
                    .minute_vps(MinuteId(m as u64))
                    .iter()
                    .map(|vp| vp.id)
                    .collect();
                let want: Vec<VpId> = std::iter::once(minute_world[0].id)
                    .chain(accepted[m].iter().map(|&i| minute_world[i].id))
                    .collect();
                ensure!(
                    ids == want,
                    "acked-write loss: promoted minute {m} diverges from the acked prefix"
                );
            }

            // The same front-end now accepts: the RoleCell flipped live
            // under it. Drive the rest of the schedule in epoch 2.
            for &(m, i) in &schedule[half..] {
                let settled = settle_submit(&mut client, &world[m][i], &mut report.retries)?;
                ensure!(
                    matches!(settled, Settled::Accepted),
                    "promoted primary deduped a new op ({m},{i})"
                );
                accepted[m].push(i);
                report.ops += 1;
            }
            let oracle = build_oracle(&world, &accepted, vmcfg)?;
            for m in 0..minutes {
                let minute = MinuteId(m as u64);
                let ids = settle_investigate(&mut client, minute, &mut report.retries)?;
                ensure!(
                    ids == oracle.investigate(minute, site()),
                    "promoted wire investigation diverged at minute {m}"
                );
                report.ops += 1;
            }
            drop(client);
            drop(handle);
            check_equivalence(&srv2, &oracle, minutes, "promoted live")?;

            // The dead primary's cash redeems exactly once on the new
            // one — the shared signing identity held across promotion.
            ensure!(
                srv2.redeem(&wallet.cash[0]).is_ok(),
                "promoted primary rejected pre-failover cash"
            );
            ensure!(
                matches!(
                    srv2.redeem(&wallet.cash[0]),
                    Err(viewmap_core::server::RedeemError::DoubleSpend)
                ),
                "promoted primary re-redeemed spent cash"
            );
            ensure!(
                srv2.redeem(&wallet.cash[1]).is_ok(),
                "promoted primary rejected the second cash unit"
            );

            report.retries += stats.resyncs.load(Ordering::Relaxed) as usize;
            srv2.sync_wal().map_err(|e| format!("promoted sync: {e}"))?;
            drop(srv2); // last reference: releases the dir lock

            let mut final_rng = StdRng::seed_from_u64(seed ^ 0x000f_17a1);
            let (back, rep) =
                ViewMapServer::open(&mut final_rng, KEY_BITS, vmcfg, &fdir, store_cfg)
                    .map_err(|e| format!("promoted reopen: {e}"))?;
            track_obs(back.obs());
            let want_records: usize = accepted.iter().map(|a| 1 + a.len()).sum();
            ensure!(
                rep.records == want_records && rep.torn_segments == 0 && rep.truncated_bytes == 0,
                "promoted reopen: {} records ({} torn, {}B truncated), expected {want_records} clean",
                rep.records,
                rep.torn_segments,
                rep.truncated_bytes
            );
            ensure!(
                !rep.fresh_signing_key,
                "promoted reopen minted a fresh key over the group keyfile"
            );
            check_equivalence(&back, &oracle, minutes, "promoted recovered")?;
            report.final_vps = back.total_vps();
            Ok(report)
        }

        _ => unreachable!("run_replicated only handles replicated scenarios"),
    }
}

/// Shared tail for the scenarios that end with the follower still a
/// follower: count its resyncs, sync and close both cells, then reopen
/// the *replica's* store cold and hold it to oracle equivalence — the
/// shipped log must recover like a local one.
#[allow(clippy::too_many_arguments)]
fn finish_replica(
    follower: Follower,
    primary: Primary,
    proxy: Option<ChaosProxy>,
    fdir: &Path,
    oracle: &ViewMapServer,
    accepted: &[Vec<usize>],
    minutes: usize,
    vmcfg: ViewmapConfig,
    store_cfg: StoreConfig,
    report: &mut RunReport,
) -> Result<RunReport, String> {
    use std::sync::atomic::Ordering;

    report.retries += follower.stats().resyncs.load(Ordering::Relaxed) as usize;
    follower
        .server()
        .sync_wal()
        .map_err(|e| format!("follower sync: {e}"))?;
    drop(follower); // joins the applier, releases the replica dir lock
    drop(primary);
    drop(proxy);

    let mut final_rng = StdRng::seed_from_u64(report.seed ^ 0x000f_17a1);
    let (back, rep) = ViewMapServer::open(&mut final_rng, KEY_BITS, vmcfg, fdir, store_cfg)
        .map_err(|e| format!("follower reopen: {e}"))?;
    track_obs(back.obs());
    let want_records: usize = accepted.iter().map(|a| 1 + a.len()).sum();
    ensure!(
        rep.records == want_records && rep.torn_segments == 0 && rep.truncated_bytes == 0,
        "follower reopen: {} records ({} torn, {}B truncated), expected {want_records} clean",
        rep.records,
        rep.torn_segments,
        rep.truncated_bytes
    );
    ensure!(
        !rep.fresh_signing_key,
        "follower reopen minted a fresh key over the group keyfile"
    );
    check_equivalence(&back, oracle, minutes, "follower recovered")?;
    report.final_vps = back.total_vps();
    Ok(report.clone())
}
