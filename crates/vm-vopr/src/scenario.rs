//! The scenario catalog: named fault mixes the driver binary and the CI
//! smoke sweep iterate over.

use crate::proxy::WireFaults;

/// A named fault mix. Each scenario fixes *which* fault classes are
/// armed; *where* they strike is drawn from the run seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// No faults: pipelined ingest, graceful shutdown, recovery — the
    /// harness's own plumbing must hold before anything is injected.
    Baseline,
    /// Wire chaos through the proxy: delays, small-chunk trickle,
    /// per-chunk corruption (killed sessions), connection cuts. The
    /// client retries through reconnects; the server's dedup absorbs
    /// the resulting at-least-once duplicates.
    WireChaos,
    /// One crash with a mid-frame torn WAL tail (plus whole dropped
    /// frames): recovery must truncate exactly the torn bytes and
    /// report them, and the re-driven ops must restore equivalence.
    TornTail,
    /// Several crash/recover generations with frame-boundary fsync-loss
    /// windows: clean truncation, no torn segments, survivors dedup as
    /// duplicates when ops are re-driven.
    CrashLoop,
    /// Gray failure: stalls and one-byte trickle on the wire, an
    /// idle-timeout-armed server reaping silent sessions, a
    /// read-deadline-armed client recovering via reconnect.
    Gray,
    /// Churn: continuous ingest racing maintained-viewmap
    /// investigations and a retention sweep under mild wire chaos,
    /// across crash/recover generations. The oracle asserts the
    /// incrementally maintained viewmap equals a cold build at probe
    /// points mid-ingest, right after every recovery (the recovered
    /// server must rebuild maintained state from scratch, never trust
    /// it stale), and after an evicted minute is fully resubmitted.
    Churn,
    /// Replication under wire chaos: a primary ships its WAL to one
    /// follower through a chaotic proxy (delays, trickle, corruption,
    /// cuts on the *replication* link). The follower must converge to
    /// oracle equivalence anyway — every lost byte recovered by
    /// catch-up — and its front-end must fence mutations with
    /// `NotPrimary` while serving reads.
    Replica,
    /// Failover torture: synchronous-ack replication, a reward round,
    /// then the primary dies abruptly and the follower is promoted.
    /// Zero acked-write loss (every op the primary acked is in the
    /// promoted buckets, in order), byte-level oracle equivalence,
    /// pre-failover cash redeems exactly once on the new primary, and
    /// the rest of the schedule lands over the wire in epoch 2.
    Failover,
    /// A follower partitioned away mid-stream (connections severed
    /// *and* redials refused) while the primary keeps accepting: the
    /// replica must hold at its stale prefix — never invent state —
    /// then catch all the way up to oracle equivalence once the
    /// partition heals, and mirror a retention sweep over the healed
    /// link.
    LaggingFollower,
}

impl Scenario {
    /// Every scenario, in catalog order.
    pub fn all() -> [Scenario; 9] {
        [
            Scenario::Baseline,
            Scenario::WireChaos,
            Scenario::TornTail,
            Scenario::CrashLoop,
            Scenario::Gray,
            Scenario::Churn,
            Scenario::Replica,
            Scenario::Failover,
            Scenario::LaggingFollower,
        ]
    }

    /// The catalog name (what `--scenario` accepts).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Baseline => "baseline",
            Scenario::WireChaos => "wire-chaos",
            Scenario::TornTail => "torn-tail",
            Scenario::CrashLoop => "crash-loop",
            Scenario::Gray => "gray",
            Scenario::Churn => "churn",
            Scenario::Replica => "replica",
            Scenario::Failover => "failover",
            Scenario::LaggingFollower => "lagging-follower",
        }
    }

    /// Parse a catalog name.
    pub fn from_name(name: &str) -> Option<Scenario> {
        Scenario::all().into_iter().find(|s| s.name() == name)
    }

    /// The wire fault mix, if this scenario routes traffic through a
    /// [`crate::proxy::ChaosProxy`] (`None` = direct connection). For
    /// the single-cell scenarios the proxy sits on the client↔service
    /// link; for the replicated ones it sits on the primary↔follower
    /// *replication* link.
    pub(crate) fn wire_faults(self) -> Option<WireFaults> {
        match self {
            Scenario::Baseline
            | Scenario::TornTail
            | Scenario::CrashLoop
            // Failover promotes on a clean link: the torture is the
            // crash itself, and sync acks must mean what they say.
            | Scenario::Failover => None,
            Scenario::WireChaos => Some(WireFaults {
                delay_us: (0, 300),
                max_chunk: 256,
                corrupt_prob: 0.002,
                cut_prob: 0.004,
                ..WireFaults::default()
            }),
            Scenario::Gray => Some(WireFaults {
                max_chunk: 1,
                stall_prob: 0.0003,
                stall_ms: (40, 80),
                ..WireFaults::default()
            }),
            // Milder than WireChaos: the scenario's point is the
            // maintained-graph lifecycle under churn, so faults spice
            // the ingest without drowning the run in retries.
            Scenario::Churn => Some(WireFaults {
                delay_us: (0, 200),
                max_chunk: 512,
                corrupt_prob: 0.001,
                cut_prob: 0.003,
                ..WireFaults::default()
            }),
            // The replication stream is high-volume (whole segment
            // frames), so per-chunk rates stay low: corruption kills
            // the session at the envelope checksum and every cut
            // forces a catch-up resync — the paths under test.
            Scenario::Replica => Some(WireFaults {
                delay_us: (0, 200),
                max_chunk: 512,
                corrupt_prob: 0.001,
                cut_prob: 0.002,
                ..WireFaults::default()
            }),
            // A transparent valve: no byte faults, just a listener the
            // driver can sever and slam shut (`set_refusing`) to hold
            // the follower partitioned across its redials.
            Scenario::LaggingFollower => Some(WireFaults::default()),
        }
    }

    /// Crash/recover generations a run drives (1 = no injected crash).
    /// Replicated scenarios don't use the crash-loop flow — their
    /// lifecycle (partition, crash-and-promote) lives in the
    /// replication driver.
    pub(crate) fn generations(self, seed_rng: &mut impl rand::Rng) -> usize {
        match self {
            Scenario::Baseline | Scenario::WireChaos | Scenario::Gray => 1,
            Scenario::TornTail => 2,
            Scenario::CrashLoop => seed_rng.gen_range(3..=5),
            Scenario::Churn => seed_rng.gen_range(2..=3),
            Scenario::Replica | Scenario::Failover | Scenario::LaggingFollower => 1,
        }
    }

    /// Whether this scenario drives a replicated pair (primary +
    /// follower) instead of a single cell.
    pub(crate) fn replicated(self) -> bool {
        matches!(
            self,
            Scenario::Replica | Scenario::Failover | Scenario::LaggingFollower
        )
    }

    /// Whether crashes injure the WAL tail mid-frame (vs clean
    /// frame-boundary truncation).
    pub(crate) fn tears_mid_frame(self) -> bool {
        matches!(self, Scenario::TornTail)
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
