//! The scenario catalog: named fault mixes the driver binary and the CI
//! smoke sweep iterate over.

use crate::proxy::WireFaults;

/// A named fault mix. Each scenario fixes *which* fault classes are
/// armed; *where* they strike is drawn from the run seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// No faults: pipelined ingest, graceful shutdown, recovery — the
    /// harness's own plumbing must hold before anything is injected.
    Baseline,
    /// Wire chaos through the proxy: delays, small-chunk trickle,
    /// per-chunk corruption (killed sessions), connection cuts. The
    /// client retries through reconnects; the server's dedup absorbs
    /// the resulting at-least-once duplicates.
    WireChaos,
    /// One crash with a mid-frame torn WAL tail (plus whole dropped
    /// frames): recovery must truncate exactly the torn bytes and
    /// report them, and the re-driven ops must restore equivalence.
    TornTail,
    /// Several crash/recover generations with frame-boundary fsync-loss
    /// windows: clean truncation, no torn segments, survivors dedup as
    /// duplicates when ops are re-driven.
    CrashLoop,
    /// Gray failure: stalls and one-byte trickle on the wire, an
    /// idle-timeout-armed server reaping silent sessions, a
    /// read-deadline-armed client recovering via reconnect.
    Gray,
    /// Churn: continuous ingest racing maintained-viewmap
    /// investigations and a retention sweep under mild wire chaos,
    /// across crash/recover generations. The oracle asserts the
    /// incrementally maintained viewmap equals a cold build at probe
    /// points mid-ingest, right after every recovery (the recovered
    /// server must rebuild maintained state from scratch, never trust
    /// it stale), and after an evicted minute is fully resubmitted.
    Churn,
}

impl Scenario {
    /// Every scenario, in catalog order.
    pub fn all() -> [Scenario; 6] {
        [
            Scenario::Baseline,
            Scenario::WireChaos,
            Scenario::TornTail,
            Scenario::CrashLoop,
            Scenario::Gray,
            Scenario::Churn,
        ]
    }

    /// The catalog name (what `--scenario` accepts).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Baseline => "baseline",
            Scenario::WireChaos => "wire-chaos",
            Scenario::TornTail => "torn-tail",
            Scenario::CrashLoop => "crash-loop",
            Scenario::Gray => "gray",
            Scenario::Churn => "churn",
        }
    }

    /// Parse a catalog name.
    pub fn from_name(name: &str) -> Option<Scenario> {
        Scenario::all().into_iter().find(|s| s.name() == name)
    }

    /// The wire fault mix, if this scenario routes traffic through a
    /// [`crate::proxy::ChaosProxy`] (`None` = direct connection).
    pub(crate) fn wire_faults(self) -> Option<WireFaults> {
        match self {
            Scenario::Baseline | Scenario::TornTail | Scenario::CrashLoop => None,
            Scenario::WireChaos => Some(WireFaults {
                delay_us: (0, 300),
                max_chunk: 256,
                corrupt_prob: 0.002,
                cut_prob: 0.004,
                ..WireFaults::default()
            }),
            Scenario::Gray => Some(WireFaults {
                max_chunk: 1,
                stall_prob: 0.0003,
                stall_ms: (40, 80),
                ..WireFaults::default()
            }),
            // Milder than WireChaos: the scenario's point is the
            // maintained-graph lifecycle under churn, so faults spice
            // the ingest without drowning the run in retries.
            Scenario::Churn => Some(WireFaults {
                delay_us: (0, 200),
                max_chunk: 512,
                corrupt_prob: 0.001,
                cut_prob: 0.003,
                ..WireFaults::default()
            }),
        }
    }

    /// Crash/recover generations a run drives (1 = no injected crash).
    pub(crate) fn generations(self, seed_rng: &mut impl rand::Rng) -> usize {
        match self {
            Scenario::Baseline | Scenario::WireChaos | Scenario::Gray => 1,
            Scenario::TornTail => 2,
            Scenario::CrashLoop => seed_rng.gen_range(3..=5),
            Scenario::Churn => seed_rng.gen_range(2..=3),
        }
    }

    /// Whether crashes injure the WAL tail mid-frame (vs clean
    /// frame-boundary truncation).
    pub(crate) fn tears_mid_frame(self) -> bool {
        matches!(self, Scenario::TornTail)
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
