//! [`ChaosProxy`] — a seeded TCP byte mangler between the vopr client
//! and the real service.
//!
//! The service speaks a checksummed, length-framed protocol over TCP,
//! so the wire faults that are *physically expressible* are byte-stream
//! faults: chunks delivered late, delivered one byte at a time,
//! stalled, corrupted, or the connection cut mid-stream. (Datagram
//! faults — reorder, duplicate — do not exist below TCP from the
//! application's point of view; duplicates instead arise at the *op*
//! level when the driver retries after an ambiguous failure, which the
//! harness exercises through the server's idempotent dedup.)
//!
//! Every fault decision is drawn from a [`rand::rngs::StdRng`] derived
//! from the run seed, the connection index, and the direction, so a
//! given seed always *injects* the same schedule. Exact byte-level
//! interleaving still depends on kernel timing — which is why the
//! driver's oracle equivalence is designed to be timing-independent
//! (see the crate docs) — but the fault mix a seed produces is stable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Per-chunk fault probabilities and magnitudes for one proxy.
///
/// The default injects nothing — a transparent relay. All probabilities
/// are per forwarded chunk, so the effective per-session rates scale
/// with traffic volume; keep them small (the vopr scenarios use cut
/// probabilities around 1%) or most sessions die before finishing a
/// single op.
#[derive(Clone, Copy, Debug)]
pub struct WireFaults {
    /// Added latency per chunk, drawn uniformly from this range (µs).
    pub delay_us: (u64, u64),
    /// Maximum bytes forwarded per chunk. `1` trickles a byte at a
    /// time — the strongest partial-read torture the stream allows.
    pub max_chunk: usize,
    /// Probability a chunk is preceded by a long stall (gray failure).
    pub stall_prob: f64,
    /// Stall duration range (ms) when one fires.
    pub stall_ms: (u64, u64),
    /// Probability one byte of a chunk is bit-flipped. The frame
    /// checksum turns this into a killed session server-side.
    pub corrupt_prob: f64,
    /// Probability the connection is cut (both directions) instead of
    /// forwarding a chunk.
    pub cut_prob: f64,
}

impl Default for WireFaults {
    fn default() -> Self {
        WireFaults {
            delay_us: (0, 0),
            max_chunk: 4096,
            stall_prob: 0.0,
            stall_ms: (0, 0),
            corrupt_prob: 0.0,
            cut_prob: 0.0,
        }
    }
}

impl WireFaults {
    /// A long thin pipe: jittered latency, small fragments, brief
    /// stalls — degraded but loss-free, so every request eventually
    /// completes without retries. Models a rural cellular uplink.
    pub fn rural_link() -> Self {
        WireFaults {
            delay_us: (50, 400),
            max_chunk: 256,
            stall_prob: 0.02,
            stall_ms: (1, 5),
            corrupt_prob: 0.0,
            cut_prob: 0.0,
        }
    }
}

/// A loopback TCP proxy that forwards every accepted connection to one
/// upstream address through a pair of fault-injecting relay threads.
///
/// Dropping the proxy severs every proxied connection and joins all of
/// its threads.
pub struct ChaosProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    refusing: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Start a proxy on an ephemeral loopback port relaying to
    /// `upstream`. Fault schedules derive from `seed` (stir the run
    /// seed before passing it if several proxies share one run).
    pub fn spawn(
        upstream: SocketAddr,
        seed: u64,
        faults: WireFaults,
    ) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let refusing = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let forwarders: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let refusing = Arc::clone(&refusing);
            let conns = Arc::clone(&conns);
            let forwarders = Arc::clone(&forwarders);
            std::thread::spawn(move || {
                let next = AtomicUsize::new(0);
                for incoming in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(client) = incoming else { break };
                    if refusing.load(Ordering::SeqCst) {
                        // Partition valve closed: the port answers but
                        // every connection dies before reaching the
                        // upstream — the dialer sees an immediate EOF
                        // and must keep backing off and redialing.
                        drop(client);
                        continue;
                    }
                    let Ok(server) = TcpStream::connect(upstream) else {
                        // Upstream gone (e.g. a crashed generation):
                        // drop the client, whose next read sees EOF.
                        continue;
                    };
                    client.set_nodelay(true).ok();
                    server.set_nodelay(true).ok();
                    let idx = next.fetch_add(1, Ordering::SeqCst) as u64;
                    {
                        let mut reg = conns.lock().unwrap();
                        if let (Ok(c), Ok(s)) = (client.try_clone(), server.try_clone()) {
                            reg.push(c);
                            reg.push(s);
                        }
                    }
                    let (c2, s2) = match (client.try_clone(), server.try_clone()) {
                        (Ok(c), Ok(s)) => (c, s),
                        _ => continue,
                    };
                    let mut spawned = forwarders.lock().unwrap();
                    spawned.push(std::thread::spawn({
                        let rng = StdRng::seed_from_u64(seed ^ (idx << 1) ^ 0x5157_4152_4421);
                        move || relay(client, s2, rng, faults)
                    }));
                    spawned.push(std::thread::spawn({
                        let rng = StdRng::seed_from_u64(seed ^ (idx << 1) ^ 0x5245_504c_5921);
                        move || relay(server, c2, rng, faults)
                    }));
                }
                // Reap relays on the way out so Drop joins everything.
                for t in forwarders.lock().unwrap().drain(..) {
                    let _ = t.join();
                }
            })
        };

        Ok(ChaosProxy {
            addr,
            shutdown,
            refusing,
            conns,
            threads: vec![accept],
        })
    }

    /// The address clients should connect to instead of the upstream.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Open or close the partition valve: while refusing, newly
    /// accepted connections are dropped on the floor instead of relayed
    /// (the port stays bound, so dialers get EOF, not
    /// connection-refused). Combine with [`Self::sever_all`] to
    /// partition a peer *and keep it partitioned* across its redials —
    /// the lagging-follower fault.
    pub fn set_refusing(&self, refusing: bool) {
        self.refusing.store(refusing, Ordering::SeqCst);
    }

    /// Sever every proxied connection (without stopping the listener) —
    /// the "network partition blinked" fault, at a moment the driver
    /// chooses.
    pub fn sever_all(&self) {
        for conn in self.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.sever_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Pump bytes `src → dst`, applying the fault schedule per chunk.
fn relay(mut src: TcpStream, mut dst: TcpStream, mut rng: StdRng, f: WireFaults) {
    let mut buf = vec![0u8; f.max_chunk.max(1)];
    loop {
        let n = match src.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if f.cut_prob > 0.0 && rng.gen_bool(f.cut_prob) {
            let _ = src.shutdown(Shutdown::Both);
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        if f.stall_prob > 0.0 && rng.gen_bool(f.stall_prob) {
            std::thread::sleep(Duration::from_millis(
                rng.gen_range(f.stall_ms.0..=f.stall_ms.1),
            ));
        }
        if f.delay_us.1 > 0 {
            std::thread::sleep(Duration::from_micros(
                rng.gen_range(f.delay_us.0..=f.delay_us.1),
            ));
        }
        if f.corrupt_prob > 0.0 && rng.gen_bool(f.corrupt_prob) {
            let i = rng.gen_range(0..n);
            buf[i] ^= 1u8 << rng.gen_range(0..8u8);
        }
        if dst.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    // Propagate EOF so the peer's blocked read completes.
    let _ = dst.shutdown(Shutdown::Write);
}
