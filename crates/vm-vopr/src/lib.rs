//! `vm-vopr` — deterministic full-system fault simulation for the
//! ViewMap stack (the Viewstamped-Operation-Replicator-style torture
//! harness the storage literature calls a "vopr").
//!
//! One run wires the real pieces together — [`vm_service::VmClient`]
//! over TCP, [`vm_service::VmService`] workers, a durable
//! [`viewmap_core::server::ViewMapServer`] recovered from a `vm-store`
//! append log — and tortures them with faults drawn entirely from one
//! `u64` seed:
//!
//! * **wire faults** ([`proxy::ChaosProxy`]): seeded delay, one-byte
//!   trickle, long stalls (gray failure), per-chunk corruption (which
//!   the frame checksum converts into killed sessions), connection
//!   cuts. Op-level duplicates arise from the client retrying after
//!   ambiguous failures, exercising the server's idempotent dedup.
//! * **storage faults** ([`vm_store::fault`]): process "crash" =
//!   drop-without-sync at seeded op indices, fsync-loss windows (whole
//!   tail frames dropped at frame boundaries), torn writes (a seeded
//!   partial frame prefix left on the WAL tail).
//! * **timing faults**: server-side idle-session reaping raced against
//!   seeded client naps, recovered via
//!   [`vm_service::VmClient::reconnect_with_backoff`].
//! * **replication faults** (the `replica`, `failover`, and
//!   `lagging-follower` scenarios): a `vm-repl` primary→follower pair
//!   with the chaos proxy on the *replication* link — corrupted and
//!   cut shipping streams recovered by catch-up, a partition valve
//!   that refuses redials until the driver heals it, and an abrupt
//!   primary crash followed by [`vm_repl::Follower::promote`], checked
//!   for zero acked-write loss and a reward round whose cash survives
//!   the promotion.
//!
//! After every injected crash the store is reopened through real
//! recovery and the surviving system is asserted **state-equivalent**
//! to an in-process oracle fed exactly the accepted operations: same
//! minutes, same bucket orders, same state digest, same viewmap edge
//! checksums, same TrustRank verification outcomes, same index routing,
//! same solicitation board, and a `RecoveryReport` that matches the
//! injury byte for byte. Any failure message embeds the seed; rerunning
//! `vm-vopr --scenario <s> --seed <n>` replays the identical fault
//! plan.
//!
//! The catalog lives in [`scenario::Scenario`]; the sweep driver is the
//! `vm-vopr` binary (`cargo run -p vm-vopr -- --help`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod proxy;
pub mod scenario;

pub use harness::{run_seed, RunReport};
pub use proxy::{ChaosProxy, WireFaults};
pub use scenario::Scenario;
