//! Grayscale frames and the synthetic road-scene generator.

use rand::Rng;

/// An 8-bit grayscale frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major pixel data, `width * height` bytes.
    pub data: Vec<u8>,
}

impl Frame {
    /// A black frame.
    pub fn new(width: usize, height: usize) -> Self {
        Frame {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Pixel accessor (row-major).
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.data[y * self.width + x]
    }

    /// Pixel mutator.
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        self.data[y * self.width + x] = v;
    }

    /// Mean intensity of a rectangular region (clamped to bounds).
    pub fn region_mean(&self, x0: usize, y0: usize, w: usize, h: usize) -> f64 {
        let x1 = (x0 + w).min(self.width);
        let y1 = (y0 + h).min(self.height);
        let mut sum = 0u64;
        let mut cnt = 0u64;
        for y in y0..y1 {
            for x in x0..x1 {
                sum += self.get(x, y) as u64;
                cnt += 1;
            }
        }
        if cnt == 0 {
            0.0
        } else {
            sum as f64 / cnt as f64
        }
    }

    /// Intensity variance of a rectangular region.
    pub fn region_variance(&self, x0: usize, y0: usize, w: usize, h: usize) -> f64 {
        let mean = self.region_mean(x0, y0, w, h);
        let x1 = (x0 + w).min(self.width);
        let y1 = (y0 + h).min(self.height);
        let mut acc = 0.0;
        let mut cnt = 0u64;
        for y in y0..y1 {
            for x in x0..x1 {
                let d = self.get(x, y) as f64 - mean;
                acc += d * d;
                cnt += 1;
            }
        }
        if cnt == 0 {
            0.0
        } else {
            acc / cnt as f64
        }
    }
}

/// Ground truth for one embedded plate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlateSpec {
    /// Left edge, pixels.
    pub x: usize,
    /// Top edge, pixels.
    pub y: usize,
    /// Width, pixels.
    pub w: usize,
    /// Height, pixels.
    pub h: usize,
}

/// A synthetic dashcam scene: frame + plate ground truth.
#[derive(Clone, Debug)]
pub struct SyntheticScene {
    /// The rendered frame.
    pub frame: Frame,
    /// Where the plates are.
    pub plates: Vec<PlateSpec>,
}

impl SyntheticScene {
    /// Render a scene with `n_plates` plates at plausible sizes.
    ///
    /// The background is a vertical sky-to-road gradient with mild noise
    /// and a few large dark "vehicle body" rectangles; plates are bright
    /// rectangles with dark vertical character strokes at the Korean
    /// 4.7:1 aspect ratio.
    pub fn generate<R: Rng + ?Sized>(
        rng: &mut R,
        width: usize,
        height: usize,
        n_plates: usize,
    ) -> SyntheticScene {
        let mut frame = Frame::new(width, height);
        // Background gradient + noise (kept dim so plates stand out the
        // way retroreflective plates do at night / with exposure control).
        for y in 0..height {
            let base = 40 + (60 * y / height.max(1)) as i32;
            for x in 0..width {
                let noise: i32 = rng.gen_range(-12..=12);
                frame.set(x, y, (base + noise).clamp(0, 140) as u8);
            }
        }
        // Vehicle bodies: dark rounded-ish rectangles.
        for _ in 0..3 {
            let w = rng.gen_range(width / 6..width / 3);
            let h = rng.gen_range(height / 6..height / 3);
            let x0 = rng.gen_range(0..width.saturating_sub(w).max(1));
            let y0 = rng.gen_range(height / 3..height.saturating_sub(h).max(height / 3 + 1));
            for y in y0..(y0 + h).min(height) {
                for x in x0..(x0 + w).min(width) {
                    let v = frame.get(x, y) / 2;
                    frame.set(x, y, v.max(15));
                }
            }
        }
        // Plates.
        let mut plates = Vec::with_capacity(n_plates);
        for _ in 0..n_plates {
            let h = rng.gen_range(14..30usize);
            let w = (h as f64 * 4.7).round() as usize;
            if w + 2 >= width || h + 2 >= height {
                continue;
            }
            // Keep plates apart from each other to avoid merged components.
            let mut x0 = 0;
            let mut y0 = 0;
            let mut ok = false;
            for _ in 0..40 {
                x0 = rng.gen_range(1..width - w - 1);
                y0 = rng.gen_range(height / 3..height - h - 1);
                ok = plates.iter().all(|p: &PlateSpec| {
                    let sep_x = x0 + w + 8 < p.x || p.x + p.w + 8 < x0;
                    let sep_y = y0 + h + 8 < p.y || p.y + p.h + 8 < y0;
                    sep_x || sep_y
                });
                if ok {
                    break;
                }
            }
            if !ok {
                continue;
            }
            // Bright plate body.
            for y in y0..y0 + h {
                for x in x0..x0 + w {
                    frame.set(x, y, rng.gen_range(225..=255));
                }
            }
            // Dark character strokes.
            let strokes = 7;
            for s in 0..strokes {
                let cx = x0 + 2 + (w - 4) * (2 * s + 1) / (2 * strokes);
                for y in y0 + h / 5..y0 + h - h / 5 {
                    for dx in 0..(w / 24).max(1) {
                        let x = (cx + dx).min(x0 + w - 1);
                        frame.set(x, y, rng.gen_range(10..=50));
                    }
                }
            }
            plates.push(PlateSpec { x: x0, y: y0, w, h });
        }
        SyntheticScene { frame, plates }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn frame_accessors() {
        let mut f = Frame::new(10, 5);
        f.set(3, 2, 200);
        assert_eq!(f.get(3, 2), 200);
        assert_eq!(f.data.len(), 50);
    }

    #[test]
    fn region_stats() {
        let mut f = Frame::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                f.set(x, y, 100);
            }
        }
        assert_eq!(f.region_mean(0, 0, 4, 4), 100.0);
        assert_eq!(f.region_variance(0, 0, 4, 4), 0.0);
        f.set(0, 0, 0);
        assert!(f.region_variance(0, 0, 4, 4) > 0.0);
    }

    #[test]
    fn scene_embeds_requested_plates() {
        let mut rng = StdRng::seed_from_u64(1);
        let scene = SyntheticScene::generate(&mut rng, 640, 480, 3);
        assert!(!scene.plates.is_empty());
        for p in &scene.plates {
            // Plates are bright relative to the background.
            let plate_mean = scene.frame.region_mean(p.x, p.y, p.w, p.h);
            assert!(plate_mean > 120.0, "plate too dark: {plate_mean}");
            // Aspect ratio is Korean-plate-like.
            let ar = p.w as f64 / p.h as f64;
            assert!((4.0..5.4).contains(&ar), "aspect {ar}");
        }
    }

    #[test]
    fn scene_without_plates_is_dim() {
        let mut rng = StdRng::seed_from_u64(2);
        let scene = SyntheticScene::generate(&mut rng, 320, 240, 0);
        assert!(scene.plates.is_empty());
        let mean = scene.frame.region_mean(0, 0, 320, 240);
        assert!(mean < 120.0, "background mean {mean}");
    }
}
