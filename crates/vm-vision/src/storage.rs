//! On-board segment storage (paper §2, Background).
//!
//! Dashcams "continuously record in segments for a unit-time (1-min
//! default) and store them via on-board SD memory cards. Once the memory
//! is full, the oldest segment will be deleted and recorded over."
//! ViewMap adds one wrinkle: a solicited video must survive until it has
//! been uploaded, so segments can be *protected* against eviction.
//! Parking mode records only when a motion detector triggers.

use crate::frame::Frame;
use std::collections::VecDeque;

/// One recorded 1-minute segment: 60 one-second chunks of video bytes.
#[derive(Clone, Debug)]
pub struct Segment {
    /// Minute index of the recording.
    pub minute: u64,
    /// The 60 per-second chunks (what the cascaded digest chain hashed).
    pub chunks: Vec<Vec<u8>>,
    /// Evidence hold: protected segments are never evicted.
    pub protected: bool,
}

impl Segment {
    /// Total byte size of the segment.
    pub fn size_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }
}

/// A ring buffer of segments bounded by a byte capacity (the SD card).
#[derive(Debug, Default)]
pub struct SegmentStore {
    capacity_bytes: usize,
    used_bytes: usize,
    segments: VecDeque<Segment>,
}

impl SegmentStore {
    /// A store with the given capacity in bytes.
    pub fn new(capacity_bytes: usize) -> Self {
        SegmentStore {
            capacity_bytes,
            used_bytes: 0,
            segments: VecDeque::new(),
        }
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of stored segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True iff no segments are stored.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Insert a segment, evicting the oldest *unprotected* segments until
    /// it fits. Returns the evicted minutes. If the segment cannot fit
    /// even after evicting everything unprotected, it is rejected
    /// (`Err` with the segment handed back).
    pub fn insert(&mut self, segment: Segment) -> Result<Vec<u64>, Segment> {
        let need = segment.size_bytes();
        if need > self.capacity_bytes {
            return Err(segment);
        }
        let mut evicted = Vec::new();
        while self.used_bytes + need > self.capacity_bytes {
            // Oldest unprotected segment.
            let Some(pos) = self.segments.iter().position(|s| !s.protected) else {
                // Everything left is protected evidence.
                for m in evicted {
                    // Eviction already happened; it cannot be undone —
                    // but we only evict when we will succeed, see below.
                    let _ = m;
                }
                return Err(segment);
            };
            let removed = self.segments.remove(pos).expect("valid index");
            self.used_bytes -= removed.size_bytes();
            evicted.push(removed.minute);
        }
        self.used_bytes += need;
        self.segments.push_back(segment);
        Ok(evicted)
    }

    /// Look up a segment by minute.
    pub fn get(&self, minute: u64) -> Option<&Segment> {
        self.segments.iter().find(|s| s.minute == minute)
    }

    /// Protect a segment against eviction (evidence hold after a
    /// solicitation match). Returns false if the minute is gone already.
    pub fn protect(&mut self, minute: u64) -> bool {
        match self.segments.iter_mut().find(|s| s.minute == minute) {
            Some(s) => {
                s.protected = true;
                true
            }
            None => false,
        }
    }

    /// Release an evidence hold (after successful upload).
    pub fn unprotect(&mut self, minute: u64) -> bool {
        match self.segments.iter_mut().find(|s| s.minute == minute) {
            Some(s) => {
                s.protected = false;
                true
            }
            None => false,
        }
    }

    /// Oldest stored minute, if any.
    pub fn oldest_minute(&self) -> Option<u64> {
        self.segments.iter().map(|s| s.minute).min()
    }
}

/// Parking-mode motion detector (paper §2: "videos can be recorded when
/// the motion detector is triggered, even if a vehicle is turned off").
#[derive(Clone, Copy, Debug)]
pub struct MotionDetector {
    /// Mean-absolute-difference threshold (0..255 intensity units).
    pub threshold: f64,
}

impl Default for MotionDetector {
    fn default() -> Self {
        MotionDetector { threshold: 8.0 }
    }
}

impl MotionDetector {
    /// Mean absolute per-pixel difference between two frames.
    pub fn motion_score(a: &Frame, b: &Frame) -> f64 {
        assert_eq!(a.data.len(), b.data.len(), "frame size mismatch");
        if a.data.is_empty() {
            return 0.0;
        }
        let sum: u64 = a
            .data
            .iter()
            .zip(&b.data)
            .map(|(&x, &y)| x.abs_diff(y) as u64)
            .sum();
        sum as f64 / a.data.len() as f64
    }

    /// Should parking-mode recording trigger for this frame pair?
    pub fn triggered(&self, prev: &Frame, cur: &Frame) -> bool {
        Self::motion_score(prev, cur) >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(minute: u64, bytes_per_chunk: usize) -> Segment {
        Segment {
            minute,
            chunks: (0..60).map(|i| vec![i as u8; bytes_per_chunk]).collect(),
            protected: false,
        }
    }

    #[test]
    fn inserts_until_full_then_evicts_oldest() {
        // Capacity for exactly 3 segments of 60*100 bytes.
        let mut store = SegmentStore::new(3 * 6000);
        for m in 0..3 {
            assert_eq!(store.insert(seg(m, 100)).unwrap(), Vec::<u64>::new());
        }
        assert_eq!(store.len(), 3);
        // Fourth segment evicts minute 0.
        assert_eq!(store.insert(seg(3, 100)).unwrap(), vec![0]);
        assert!(store.get(0).is_none());
        assert!(store.get(3).is_some());
        assert_eq!(store.oldest_minute(), Some(1));
    }

    #[test]
    fn protected_segments_survive_eviction() {
        let mut store = SegmentStore::new(3 * 6000);
        for m in 0..3 {
            store.insert(seg(m, 100)).unwrap();
        }
        assert!(store.protect(0));
        // Minute 0 is evidence; minute 1 gets evicted instead.
        assert_eq!(store.insert(seg(3, 100)).unwrap(), vec![1]);
        assert!(store.get(0).is_some());
        assert!(store.get(1).is_none());
    }

    #[test]
    fn refuses_when_everything_is_protected() {
        let mut store = SegmentStore::new(2 * 6000);
        store.insert(seg(0, 100)).unwrap();
        store.insert(seg(1, 100)).unwrap();
        store.protect(0);
        store.protect(1);
        let rejected = store.insert(seg(2, 100));
        assert!(rejected.is_err());
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn oversized_segment_rejected_outright() {
        let mut store = SegmentStore::new(1000);
        assert!(store.insert(seg(0, 100)).is_err()); // 6000 > 1000
        assert!(store.is_empty());
    }

    #[test]
    fn unprotect_restores_evictability() {
        let mut store = SegmentStore::new(2 * 6000);
        store.insert(seg(0, 100)).unwrap();
        store.insert(seg(1, 100)).unwrap();
        store.protect(0);
        store.unprotect(0);
        assert_eq!(store.insert(seg(2, 100)).unwrap(), vec![0]);
    }

    #[test]
    fn motion_detector_triggers_on_change() {
        let mut a = Frame::new(32, 32);
        let mut b = Frame::new(32, 32);
        for i in 0..32 * 32 {
            a.data[i] = 100;
            b.data[i] = 100;
        }
        let det = MotionDetector::default();
        assert!(!det.triggered(&a, &b));
        // A "pedestrian" walks through a quarter of the frame.
        for i in 0..(32 * 32) / 4 {
            b.data[i] = 180;
        }
        assert!(det.triggered(&a, &b));
        assert!(MotionDetector::motion_score(&a, &b) > 8.0);
    }

    #[test]
    fn bookkeeping_is_exact() {
        let mut store = SegmentStore::new(100_000);
        store.insert(seg(0, 100)).unwrap();
        store.insert(seg(1, 200)).unwrap();
        assert_eq!(store.used_bytes(), 60 * 100 + 60 * 200);
    }
}
