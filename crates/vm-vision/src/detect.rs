//! Plate localization: threshold → connected components → geometric
//! filters (area, aspect ratio), the standard front half of automatic
//! license plate recognition, with parameters tuned for Korean plates
//! (footnote 7 of the paper).

use crate::frame::Frame;

/// A detected region (bounding box).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// Left edge.
    pub x: usize,
    /// Top edge.
    pub y: usize,
    /// Width.
    pub w: usize,
    /// Height.
    pub h: usize,
}

impl Region {
    /// Intersection-over-union with another region.
    pub fn iou(&self, other: &Region) -> f64 {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = (self.x + self.w).min(other.x + other.w);
        let y1 = (self.y + self.h).min(other.y + other.h);
        if x1 <= x0 || y1 <= y0 {
            return 0.0;
        }
        let inter = ((x1 - x0) * (y1 - y0)) as f64;
        let union = (self.w * self.h + other.w * other.h) as f64 - inter;
        inter / union
    }

    /// Grow by `margin` pixels on each side, clamped to frame bounds.
    pub fn expanded(&self, margin: usize, width: usize, height: usize) -> Region {
        let x = self.x.saturating_sub(margin);
        let y = self.y.saturating_sub(margin);
        Region {
            x,
            y,
            w: (self.x + self.w + margin).min(width) - x,
            h: (self.y + self.h + margin).min(height) - y,
        }
    }
}

/// Localization parameters.
#[derive(Clone, Copy, Debug)]
pub struct DetectParams {
    /// Brightness threshold for plate candidate pixels.
    pub threshold: u8,
    /// Minimum candidate area in pixels.
    pub min_area: usize,
    /// Maximum candidate area in pixels.
    pub max_area: usize,
    /// Accepted aspect-ratio band (Korean plates are 520:110 ≈ 4.7).
    pub aspect: (f64, f64),
    /// Minimum fraction of the bounding box covered by bright pixels.
    pub min_fill: f64,
}

impl Default for DetectParams {
    fn default() -> Self {
        DetectParams {
            threshold: 180,
            min_area: 120,
            max_area: 20_000,
            aspect: (2.8, 7.0),
            min_fill: 0.45,
        }
    }
}

/// Find plate-like regions in a frame.
pub fn detect_plates(frame: &Frame, params: &DetectParams) -> Vec<Region> {
    let (w, h) = (frame.width, frame.height);
    // Threshold mask.
    let mask: Vec<bool> = frame.data.iter().map(|&p| p >= params.threshold).collect();
    // Connected components via BFS flood fill (4-connectivity).
    let mut label = vec![u32::MAX; w * h];
    let mut regions = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    let mut next_label = 0u32;
    for start in 0..w * h {
        if !mask[start] || label[start] != u32::MAX {
            continue;
        }
        let this = next_label;
        next_label += 1;
        label[start] = this;
        queue.push_back(start);
        let (mut min_x, mut min_y, mut max_x, mut max_y) = (w, h, 0usize, 0usize);
        let mut count = 0usize;
        while let Some(idx) = queue.pop_front() {
            let (x, y) = (idx % w, idx / w);
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
            count += 1;
            let mut visit = |nidx: usize| {
                if mask[nidx] && label[nidx] == u32::MAX {
                    label[nidx] = this;
                    queue.push_back(nidx);
                }
            };
            if x > 0 {
                visit(idx - 1);
            }
            if x + 1 < w {
                visit(idx + 1);
            }
            if y > 0 {
                visit(idx - w);
            }
            if y + 1 < h {
                visit(idx + w);
            }
        }
        let bw = max_x - min_x + 1;
        let bh = max_y - min_y + 1;
        let area = bw * bh;
        if area < params.min_area || area > params.max_area {
            continue;
        }
        let aspect = bw as f64 / bh as f64;
        if aspect < params.aspect.0 || aspect > params.aspect.1 {
            continue;
        }
        if (count as f64) < params.min_fill * area as f64 {
            continue;
        }
        regions.push(Region {
            x: min_x,
            y: min_y,
            w: bw,
            h: bh,
        });
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::SyntheticScene;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn detects_embedded_plates() {
        let rng = StdRng::seed_from_u64(1);
        let mut found_total = 0usize;
        let mut plates_total = 0usize;
        for seed in 0..10u64 {
            let mut r = StdRng::seed_from_u64(seed);
            let scene = SyntheticScene::generate(&mut r, 640, 480, 2);
            let regions = detect_plates(&scene.frame, &DetectParams::default());
            for p in &scene.plates {
                plates_total += 1;
                let gt = Region {
                    x: p.x,
                    y: p.y,
                    w: p.w,
                    h: p.h,
                };
                if regions.iter().any(|r| r.iou(&gt) > 0.5) {
                    found_total += 1;
                }
            }
        }
        let _ = rng;
        let recall = found_total as f64 / plates_total as f64;
        assert!(
            recall > 0.9,
            "recall {recall} ({found_total}/{plates_total})"
        );
    }

    #[test]
    fn empty_scene_has_few_false_positives() {
        let mut fp = 0usize;
        for seed in 100..110u64 {
            let mut r = StdRng::seed_from_u64(seed);
            let scene = SyntheticScene::generate(&mut r, 640, 480, 0);
            fp += detect_plates(&scene.frame, &DetectParams::default()).len();
        }
        assert!(fp <= 2, "false positives {fp}");
    }

    #[test]
    fn wrong_aspect_regions_rejected() {
        // A bright square (aspect 1.0) must not be classified as a plate.
        let mut frame = crate::frame::Frame::new(200, 200);
        for y in 50..100 {
            for x in 50..100 {
                frame.set(x, y, 255);
            }
        }
        assert!(detect_plates(&frame, &DetectParams::default()).is_empty());
    }

    #[test]
    fn tiny_specks_rejected() {
        let mut frame = crate::frame::Frame::new(100, 100);
        for x in 10..20 {
            frame.set(x, 10, 255);
            frame.set(x, 11, 255);
        }
        assert!(detect_plates(&frame, &DetectParams::default()).is_empty());
    }

    #[test]
    fn iou_and_expand() {
        let a = Region {
            x: 0,
            y: 0,
            w: 10,
            h: 10,
        };
        let b = Region {
            x: 5,
            y: 0,
            w: 10,
            h: 10,
        };
        assert!((a.iou(&b) - 50.0 / 150.0).abs() < 1e-12);
        assert_eq!(
            a.iou(&Region {
                x: 50,
                y: 50,
                w: 5,
                h: 5
            }),
            0.0
        );
        let e = a.expanded(3, 100, 100);
        assert_eq!((e.x, e.y, e.w, e.h), (0, 0, 13, 13));
    }
}
