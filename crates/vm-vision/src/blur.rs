//! Region blurring: a separable box blur strong enough to destroy
//! character strokes (the anonymization step of Fig. 3).

use crate::detect::Region;
use crate::frame::Frame;

/// Box-blur a region of the frame in place with the given radius.
///
/// Two separable passes (horizontal then vertical) of a `2r+1` box kernel,
/// repeated twice — approximating a Gaussian wide enough that plate
/// characters are unrecoverable.
pub fn box_blur_region(frame: &mut Frame, region: &Region, radius: usize) {
    let region = region.expanded(0, frame.width, frame.height);
    if region.w == 0 || region.h == 0 || radius == 0 {
        return;
    }
    for _pass in 0..2 {
        horizontal_pass(frame, &region, radius);
        vertical_pass(frame, &region, radius);
    }
}

fn horizontal_pass(frame: &mut Frame, r: &Region, radius: usize) {
    let mut row = vec![0u8; r.w];
    for y in r.y..r.y + r.h {
        for (i, x) in (r.x..r.x + r.w).enumerate() {
            row[i] = frame.get(x, y);
        }
        for i in 0..r.w {
            let lo = i.saturating_sub(radius);
            let hi = (i + radius).min(r.w - 1);
            let sum: u32 = row[lo..=hi].iter().map(|&v| v as u32).sum();
            frame.set(r.x + i, y, (sum / (hi - lo + 1) as u32) as u8);
        }
    }
}

fn vertical_pass(frame: &mut Frame, r: &Region, radius: usize) {
    let mut col = vec![0u8; r.h];
    for x in r.x..r.x + r.w {
        for (i, y) in (r.y..r.y + r.h).enumerate() {
            col[i] = frame.get(x, y);
        }
        for i in 0..r.h {
            let lo = i.saturating_sub(radius);
            let hi = (i + radius).min(r.h - 1);
            let sum: u32 = col[lo..=hi].iter().map(|&v| v as u32).sum();
            frame.set(x, r.y + i, (sum / (hi - lo + 1) as u32) as u8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::SyntheticScene;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn blur_destroys_plate_stripes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut scene = SyntheticScene::generate(&mut rng, 640, 480, 1);
        let p = scene.plates[0];
        let before = scene.frame.region_variance(p.x, p.y, p.w, p.h);
        box_blur_region(
            &mut scene.frame,
            &Region {
                x: p.x,
                y: p.y,
                w: p.w,
                h: p.h,
            },
            (p.h / 3).max(2),
        );
        let after = scene.frame.region_variance(p.x, p.y, p.w, p.h);
        assert!(
            after < before * 0.25,
            "variance should collapse: {before} -> {after}"
        );
    }

    #[test]
    fn blur_leaves_rest_of_frame_untouched() {
        let mut rng = StdRng::seed_from_u64(2);
        let scene = SyntheticScene::generate(&mut rng, 320, 240, 1);
        let mut blurred = scene.frame.clone();
        let p = scene.plates[0];
        let region = Region {
            x: p.x,
            y: p.y,
            w: p.w,
            h: p.h,
        };
        box_blur_region(&mut blurred, &region, 4);
        for y in 0..240 {
            for x in 0..320 {
                let inside = x >= p.x && x < p.x + p.w && y >= p.y && y < p.y + p.h;
                if !inside {
                    assert_eq!(
                        scene.frame.get(x, y),
                        blurred.get(x, y),
                        "pixel ({x},{y}) outside the region changed"
                    );
                }
            }
        }
    }

    #[test]
    fn blur_preserves_mean_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut scene = SyntheticScene::generate(&mut rng, 320, 240, 1);
        let p = scene.plates[0];
        let before = scene.frame.region_mean(p.x, p.y, p.w, p.h);
        box_blur_region(
            &mut scene.frame,
            &Region {
                x: p.x,
                y: p.y,
                w: p.w,
                h: p.h,
            },
            3,
        );
        let after = scene.frame.region_mean(p.x, p.y, p.w, p.h);
        assert!((before - after).abs() < 14.0, "{before} vs {after}");
    }

    #[test]
    fn zero_radius_is_noop() {
        let mut rng = StdRng::seed_from_u64(4);
        let scene = SyntheticScene::generate(&mut rng, 100, 100, 0);
        let mut copy = scene.frame.clone();
        box_blur_region(
            &mut copy,
            &Region {
                x: 10,
                y: 10,
                w: 50,
                h: 20,
            },
            0,
        );
        assert_eq!(copy, scene.frame);
    }

    #[test]
    fn region_at_frame_edge_is_safe() {
        let mut frame = Frame::new(64, 64);
        for i in 0..64 * 64 {
            frame.data[i] = (i % 251) as u8;
        }
        box_blur_region(
            &mut frame,
            &Region {
                x: 60,
                y: 60,
                w: 10,
                h: 10,
            },
            3,
        );
        box_blur_region(
            &mut frame,
            &Region {
                x: 0,
                y: 0,
                w: 5,
                h: 5,
            },
            3,
        );
        // No panic and data intact length-wise.
        assert_eq!(frame.data.len(), 64 * 64);
    }
}
