//! The realtime blurring pipeline with per-stage timing (Table 1).

use crate::blur::box_blur_region;
use crate::detect::{detect_plates, DetectParams};
use crate::frame::Frame;
use std::time::Instant;

/// Per-frame stage timings, milliseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Camera-buffer read time (I/O).
    pub io_in_ms: f64,
    /// Localization + blur time.
    pub blur_ms: f64,
    /// Video-file write time (I/O).
    pub io_out_ms: f64,
}

impl StageTimings {
    /// Total per-frame latency.
    pub fn total_ms(&self) -> f64 {
        self.io_in_ms + self.blur_ms + self.io_out_ms
    }

    /// Sustained frame rate implied by the per-frame latency.
    pub fn fps(&self) -> f64 {
        if self.total_ms() <= 0.0 {
            0.0
        } else {
            1000.0 / self.total_ms()
        }
    }

    /// Combined I/O time (the paper reports blur and I/O separately).
    pub fn io_ms(&self) -> f64 {
        self.io_in_ms + self.io_out_ms
    }
}

/// A reference platform from the paper's Table 1, for side-by-side
/// reporting (we cannot re-run their hardware; we report our measured
/// host numbers next to the paper's).
#[derive(Clone, Copy, Debug)]
pub struct PlatformProfile {
    /// Platform name.
    pub name: &'static str,
    /// Paper-reported blur time, ms.
    pub paper_blur_ms: f64,
    /// Paper-reported I/O time, ms.
    pub paper_io_ms: f64,
    /// Paper-reported sustained frame rate, fps.
    pub paper_fps: f64,
}

/// The paper's Table 1 rows.
pub const PAPER_TABLE1: [PlatformProfile; 3] = [
    PlatformProfile {
        name: "Rasp. Pi 3 (1.2 GHz)",
        paper_blur_ms: 50.19,
        paper_io_ms: 49.32,
        paper_fps: 10.0,
    },
    PlatformProfile {
        name: "iMac 2008 (2.4 GHz)",
        paper_blur_ms: 10.72,
        paper_io_ms: 41.78,
        paper_fps: 18.0,
    },
    PlatformProfile {
        name: "iMac 2014 (4.0 GHz)",
        paper_blur_ms: 10.18,
        paper_io_ms: 20.44,
        paper_fps: 30.0,
    },
];

/// The realtime blurring pipeline.
#[derive(Clone, Debug, Default)]
pub struct BlurPipeline {
    params: DetectParams,
    /// Frames processed so far.
    pub frames: usize,
    /// Plates blurred so far.
    pub plates_blurred: usize,
}

impl BlurPipeline {
    /// Pipeline with default Korean-plate parameters.
    pub fn new() -> Self {
        BlurPipeline {
            params: DetectParams::default(),
            frames: 0,
            plates_blurred: 0,
        }
    }

    /// Process one frame: read from the camera buffer, localize + blur,
    /// write to the file buffer. Returns the anonymized frame and the
    /// stage timings.
    pub fn process(
        &mut self,
        camera_buffer: &[u8],
        width: usize,
        height: usize,
    ) -> (Frame, StageTimings) {
        assert_eq!(camera_buffer.len(), width * height, "frame size mismatch");
        // (i) I/O in: take the realtime frame from the camera module.
        let t0 = Instant::now();
        let mut frame = Frame {
            width,
            height,
            data: camera_buffer.to_vec(),
        };
        let io_in_ms = t0.elapsed().as_secs_f64() * 1000.0;

        // (ii) Localize plate regions and blur those areas.
        let t1 = Instant::now();
        let regions = detect_plates(&frame, &self.params);
        for r in &regions {
            let radius = (r.h / 3).max(2);
            let grown = r.expanded(2, width, height);
            box_blur_region(&mut frame, &grown, radius);
        }
        let blur_ms = t1.elapsed().as_secs_f64() * 1000.0;

        // (iii) I/O out: write the plate-blurred frame to the video file.
        let t2 = Instant::now();
        let mut out = vec![0u8; frame.data.len()];
        out.copy_from_slice(&frame.data);
        std::hint::black_box(&out);
        let io_out_ms = t2.elapsed().as_secs_f64() * 1000.0;

        self.frames += 1;
        self.plates_blurred += regions.len();
        (
            frame,
            StageTimings {
                io_in_ms,
                blur_ms,
                io_out_ms,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::SyntheticScene;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pipeline_blurs_detected_plates() {
        let mut rng = StdRng::seed_from_u64(1);
        let scene = SyntheticScene::generate(&mut rng, 640, 480, 2);
        let mut pipe = BlurPipeline::new();
        let (out, timings) = pipe.process(&scene.frame.data, 640, 480);
        assert_eq!(pipe.frames, 1);
        assert!(pipe.plates_blurred >= 1);
        assert!(timings.total_ms() > 0.0);
        // The plate areas lost their stripe variance.
        for p in &scene.plates {
            let before = scene.frame.region_variance(p.x, p.y, p.w, p.h);
            let after = out.region_variance(p.x, p.y, p.w, p.h);
            assert!(
                after < before,
                "plate at ({},{}) not blurred: {before} -> {after}",
                p.x,
                p.y
            );
        }
    }

    #[test]
    fn fps_math() {
        let t = StageTimings {
            io_in_ms: 20.0,
            blur_ms: 50.0,
            io_out_ms: 30.0,
        };
        assert_eq!(t.total_ms(), 100.0);
        assert_eq!(t.fps(), 10.0);
        assert_eq!(t.io_ms(), 50.0);
    }

    #[test]
    fn paper_table_is_consistent() {
        // The paper's own numbers: fps ≈ 1000 / (blur + io), loosely (they
        // round to whole fps).
        for p in PAPER_TABLE1 {
            let implied = 1000.0 / (p.paper_blur_ms + p.paper_io_ms);
            assert!(
                (implied - p.paper_fps).abs() / p.paper_fps < 0.12,
                "{}: implied {implied} vs reported {}",
                p.name,
                p.paper_fps
            );
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn bad_buffer_size_rejected() {
        let mut pipe = BlurPipeline::new();
        let _ = pipe.process(&[0u8; 100], 640, 480);
    }

    #[test]
    fn sustained_processing_is_realtime_on_host() {
        // 640×480 frames should process far faster than the 10 fps the
        // paper achieves on a Raspberry Pi 3.
        let mut rng = StdRng::seed_from_u64(2);
        let scene = SyntheticScene::generate(&mut rng, 640, 480, 2);
        let mut pipe = BlurPipeline::new();
        let mut total = 0.0;
        for _ in 0..5 {
            let (_, t) = pipe.process(&scene.frame.data, 640, 480);
            total += t.total_ms();
        }
        let avg = total / 5.0;
        assert!(avg < 1000.0, "avg per-frame {avg} ms is absurd");
    }
}
