//! Realtime license-plate blurring — the OpenCV-on-Raspberry-Pi
//! substitute (Section 6.2.1, Table 1, Fig. 3).
//!
//! ViewMap-enabled dashcams blur license plates *while recording*: post
//! processing would open the door to posterior fabrication, and realtime
//! visual anonymization addresses the bystander-privacy concerns that make
//! dashcams contentious. The pipeline has the same three stages the paper
//! times: (i) grab the frame from the camera buffer (I/O), (ii) localize
//! plate-like regions and blur them (Blur), (iii) write the anonymized
//! frame to the video file (I/O).
//!
//! Frames are synthetic: gradient-noise backgrounds with embedded
//! high-contrast striped rectangles at the Korean plate aspect ratio
//! (520:110 ≈ 4.7:1 — the paper tunes localization parameters for South
//! Korean plates).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blur;
pub mod detect;
pub mod frame;
pub mod pipeline;
pub mod storage;

pub use blur::box_blur_region;
pub use detect::{detect_plates, DetectParams, Region};
pub use frame::{Frame, PlateSpec, SyntheticScene};
pub use pipeline::{BlurPipeline, PlatformProfile, StageTimings};
pub use storage::{MotionDetector, Segment, SegmentStore};
