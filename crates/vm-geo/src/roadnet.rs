//! Synthetic road networks.
//!
//! The paper's large-scale evaluation (Section 8) extracts an 8×8 km² street
//! map of Seoul via OpenStreetMap and feeds it to SUMO. We generate a
//! comparable street network instead: an irregular Manhattan-style grid with
//! jittered intersections, randomly removed links (dead ends, superblocks),
//! and a handful of diagonal avenues. The result has the statistics the
//! evaluation depends on — block sizes around 100–200 m, 4-way
//! intersections, and full connectivity (largest connected component).

use crate::geometry::Point;
use rand::Rng;

/// Identifier of a road-network node (intersection).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of a directed road edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeId(pub u32);

/// A directed road segment.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// Tail node.
    pub from: NodeId,
    /// Head node.
    pub to: NodeId,
    /// Length in meters.
    pub length: f64,
}

/// Parameters for the synthetic city generator.
#[derive(Clone, Copy, Debug)]
pub struct CityParams {
    /// Width of the covered area in meters.
    pub width_m: f64,
    /// Height of the covered area in meters.
    pub height_m: f64,
    /// Nominal block edge length in meters.
    pub block_m: f64,
    /// Fractional position jitter applied to intersections (0..0.5).
    pub jitter: f64,
    /// Probability that a grid link is kept (0..=1). Lower values create
    /// dead ends and superblocks, like a real street map.
    pub keep_link_prob: f64,
    /// Number of diagonal avenues cut across the grid.
    pub diagonals: usize,
}

impl CityParams {
    /// The 4×4 km² area of the paper's Section 6 experiments.
    pub fn small_area() -> Self {
        CityParams {
            width_m: 4_000.0,
            height_m: 4_000.0,
            block_m: 200.0,
            jitter: 0.18,
            keep_link_prob: 0.93,
            diagonals: 2,
        }
    }

    /// A rural grid: long country blocks, many missing links, no
    /// diagonals — the sparse-linkage counterpoint to `seoul_like`.
    pub fn rural() -> Self {
        CityParams {
            width_m: 6_000.0,
            height_m: 6_000.0,
            block_m: 500.0,
            jitter: 0.30,
            keep_link_prob: 0.82,
            diagonals: 0,
        }
    }

    /// The 8×8 km² Seoul-like area of the paper's Section 8 experiments.
    pub fn seoul_like() -> Self {
        CityParams {
            width_m: 8_000.0,
            height_m: 8_000.0,
            block_m: 160.0,
            jitter: 0.22,
            keep_link_prob: 0.91,
            diagonals: 5,
        }
    }
}

/// A road network: nodes at intersections, directed edges both ways along
/// each street segment.
#[derive(Clone, Debug)]
pub struct RoadNetwork {
    nodes: Vec<Point>,
    edges: Vec<Edge>,
    adj: Vec<Vec<EdgeId>>,
    bounds: (Point, Point),
}

impl RoadNetwork {
    /// Build a network from explicit nodes and *undirected* links; each link
    /// becomes two directed edges.
    pub fn from_links(nodes: Vec<Point>, links: &[(u32, u32)]) -> Self {
        let mut edges = Vec::with_capacity(links.len() * 2);
        let mut adj = vec![Vec::new(); nodes.len()];
        for &(a, b) in links {
            assert!((a as usize) < nodes.len() && (b as usize) < nodes.len());
            assert_ne!(a, b, "self-loop road link");
            let len = nodes[a as usize].distance(&nodes[b as usize]);
            adj[a as usize].push(EdgeId(edges.len() as u32));
            edges.push(Edge {
                from: NodeId(a),
                to: NodeId(b),
                length: len,
            });
            adj[b as usize].push(EdgeId(edges.len() as u32));
            edges.push(Edge {
                from: NodeId(b),
                to: NodeId(a),
                length: len,
            });
        }
        let bounds = bounds_of(&nodes);
        RoadNetwork {
            nodes,
            edges,
            adj,
            bounds,
        }
    }

    /// Generate a synthetic city street network.
    pub fn synthetic_city<R: Rng + ?Sized>(params: &CityParams, rng: &mut R) -> Self {
        let nx = (params.width_m / params.block_m).round() as usize + 1;
        let ny = (params.height_m / params.block_m).round() as usize + 1;
        assert!(nx >= 2 && ny >= 2, "area too small for block size");
        let idx = |ix: usize, iy: usize| (iy * nx + ix) as u32;

        let mut nodes = Vec::with_capacity(nx * ny);
        for iy in 0..ny {
            for ix in 0..nx {
                let jx = rng.gen_range(-params.jitter..=params.jitter) * params.block_m;
                let jy = rng.gen_range(-params.jitter..=params.jitter) * params.block_m;
                nodes.push(Point::new(
                    (ix as f64 * params.block_m + jx).clamp(0.0, params.width_m),
                    (iy as f64 * params.block_m + jy).clamp(0.0, params.height_m),
                ));
            }
        }

        let mut links = Vec::new();
        for iy in 0..ny {
            for ix in 0..nx {
                if ix + 1 < nx && rng.gen_bool(params.keep_link_prob) {
                    links.push((idx(ix, iy), idx(ix + 1, iy)));
                }
                if iy + 1 < ny && rng.gen_bool(params.keep_link_prob) {
                    links.push((idx(ix, iy), idx(ix, iy + 1)));
                }
            }
        }
        // Diagonal avenues: connect (ix,iy)-(ix+1,iy+1) along a random band.
        for _ in 0..params.diagonals {
            let start = rng.gen_range(0..nx.max(2) - 1);
            let up = rng.gen_bool(0.5);
            let mut ix = start;
            let mut iy = if up { 0 } else { ny - 1 };
            loop {
                let next_iy = if up { iy + 1 } else { iy.wrapping_sub(1) };
                if ix + 1 >= nx || next_iy >= ny {
                    break;
                }
                links.push((idx(ix, iy), idx(ix + 1, next_iy)));
                ix += 1;
                iy = next_iy;
            }
        }

        let net = Self::from_links(nodes, &links);
        net.largest_component()
    }

    /// Restrict the network to its largest connected component (renumbers
    /// nodes). Guarantees every remaining pair of nodes is mutually
    /// reachable, which the router and trip generator rely on.
    pub fn largest_component(&self) -> RoadNetwork {
        let n = self.nodes.len();
        let mut comp = vec![usize::MAX; n];
        let mut count = 0usize;
        let mut sizes = Vec::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![start];
            comp[start] = count;
            let mut size = 0usize;
            while let Some(u) = stack.pop() {
                size += 1;
                for &eid in &self.adj[u] {
                    let v = self.edges[eid.0 as usize].to.0 as usize;
                    if comp[v] == usize::MAX {
                        comp[v] = count;
                        stack.push(v);
                    }
                }
            }
            sizes.push(size);
            count += 1;
        }
        let best = sizes
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| **s)
            .map(|(i, _)| i)
            .expect("at least one component");
        let mut remap = vec![u32::MAX; n];
        let mut new_nodes = Vec::new();
        for (i, &c) in comp.iter().enumerate() {
            if c == best {
                remap[i] = new_nodes.len() as u32;
                new_nodes.push(self.nodes[i]);
            }
        }
        let mut links = Vec::new();
        for e in &self.edges {
            let (a, b) = (e.from.0 as usize, e.to.0 as usize);
            if comp[a] == best && comp[b] == best && e.from.0 < e.to.0 {
                links.push((remap[a], remap[b]));
            }
        }
        RoadNetwork::from_links(new_nodes, &links)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Position of a node.
    pub fn pos(&self, n: NodeId) -> Point {
        self.nodes[n.0 as usize]
    }

    /// Outgoing edges of a node.
    pub fn outgoing(&self, n: NodeId) -> &[EdgeId] {
        &self.adj[n.0 as usize]
    }

    /// Edge payload.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.0 as usize]
    }

    /// Iterate over all directed edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Bounding box of the network `(min, max)`.
    pub fn bounds(&self) -> (Point, Point) {
        self.bounds
    }

    /// A uniformly random node.
    pub fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        NodeId(rng.gen_range(0..self.nodes.len() as u32))
    }

    /// The node nearest to an arbitrary point (linear scan; used only at
    /// setup time).
    pub fn nearest_node(&self, p: &Point) -> NodeId {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, q) in self.nodes.iter().enumerate() {
            let d = p.distance_sq(q);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        NodeId(best as u32)
    }
}

fn bounds_of(nodes: &[Point]) -> (Point, Point) {
    let mut min = Point::new(f64::INFINITY, f64::INFINITY);
    let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in nodes {
        min.x = min.x.min(p.x);
        min.y = min.y.min(p.y);
        max.x = max.x.max(p.x);
        max.y = max.y.max(p.y);
    }
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> RoadNetwork {
        // 0 -- 1 -- 2
        //      |
        //      3
        RoadNetwork::from_links(
            vec![
                Point::new(0.0, 0.0),
                Point::new(100.0, 0.0),
                Point::new(200.0, 0.0),
                Point::new(100.0, 100.0),
            ],
            &[(0, 1), (1, 2), (1, 3)],
        )
    }

    #[test]
    fn from_links_builds_bidirectional_edges() {
        let net = tiny();
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.edge_count(), 6);
        assert_eq!(net.outgoing(NodeId(1)).len(), 3);
        let e = net.edge(net.outgoing(NodeId(0))[0]);
        assert_eq!(e.from, NodeId(0));
        assert_eq!(e.length, 100.0);
    }

    #[test]
    fn largest_component_drops_islands() {
        let net = RoadNetwork::from_links(
            vec![
                Point::new(0.0, 0.0),
                Point::new(100.0, 0.0),
                Point::new(5000.0, 5000.0),
                Point::new(5100.0, 5000.0),
                Point::new(5200.0, 5000.0),
            ],
            &[(0, 1), (2, 3), (3, 4)],
        );
        let lc = net.largest_component();
        assert_eq!(lc.node_count(), 3);
        assert_eq!(lc.edge_count(), 4);
    }

    #[test]
    fn synthetic_city_is_connected_and_sized() {
        let mut rng = StdRng::seed_from_u64(11);
        let net = RoadNetwork::synthetic_city(&CityParams::small_area(), &mut rng);
        // 4 km / 200 m blocks → 21×21 grid, minus removed islands.
        assert!(net.node_count() > 350, "nodes: {}", net.node_count());
        // Connectivity: BFS from node 0 reaches everything.
        let mut seen = vec![false; net.node_count()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut reached = 1;
        while let Some(u) = stack.pop() {
            for &eid in net.outgoing(NodeId(u as u32)) {
                let v = net.edge(eid).to.0 as usize;
                if !seen[v] {
                    seen[v] = true;
                    reached += 1;
                    stack.push(v);
                }
            }
        }
        assert_eq!(reached, net.node_count());
        // Bounds stay within the requested area.
        let (min, max) = net.bounds();
        assert!(min.x >= 0.0 && min.y >= 0.0);
        assert!(max.x <= 4000.0 && max.y <= 4000.0);
    }

    #[test]
    fn seoul_like_scale() {
        let mut rng = StdRng::seed_from_u64(12);
        let net = RoadNetwork::synthetic_city(&CityParams::seoul_like(), &mut rng);
        assert!(net.node_count() > 2000, "nodes: {}", net.node_count());
        assert!(net.edge_count() > 6000, "edges: {}", net.edge_count());
    }

    #[test]
    fn nearest_node_picks_closest() {
        let net = tiny();
        assert_eq!(net.nearest_node(&Point::new(90.0, 90.0)), NodeId(3));
        assert_eq!(net.nearest_node(&Point::new(-10.0, 0.0)), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let _ = RoadNetwork::from_links(vec![Point::new(0.0, 0.0)], &[(0, 0)]);
    }
}
