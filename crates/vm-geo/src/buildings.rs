//! Building footprints and line-of-sight queries.
//!
//! The paper's field study (Section 7) finds that *line-of-sight condition*
//! — obstruction by buildings, overpasses, tunnels — dominates VP linkage,
//! not distance or RSSI. The DSRC channel model therefore needs building
//! geometry: we fill the blocks of the road network with axis-aligned
//! footprints at an environment-dependent density and answer
//! "does the segment A→B cross a building?" via a spatial grid over
//! footprints.

use crate::geometry::{Point, Rect, Segment};
use rand::Rng;
use std::collections::HashMap;

/// Parameters controlling building generation for an environment.
#[derive(Clone, Copy, Debug)]
pub struct BuildingParams {
    /// Fraction of candidate block cells that receive a building (0..=1).
    pub density: f64,
    /// Building footprint edge length range, meters.
    pub size_range: (f64, f64),
    /// Minimum clearance between a building and the street grid lines,
    /// meters (keeps roads themselves unobstructed).
    pub street_clearance: f64,
}

impl BuildingParams {
    /// Open road / open terrain: no obstructions.
    pub fn open_road() -> Self {
        BuildingParams {
            density: 0.0,
            size_range: (0.0, 0.0),
            street_clearance: 10.0,
        }
    }

    /// Highway: sparse obstructions (sound walls, sporadic structures).
    pub fn highway() -> Self {
        BuildingParams {
            density: 0.08,
            size_range: (20.0, 60.0),
            street_clearance: 14.0,
        }
    }

    /// Residential area: moderate, low-rise coverage.
    pub fn residential() -> Self {
        BuildingParams {
            density: 0.55,
            size_range: (25.0, 70.0),
            street_clearance: 8.0,
        }
    }

    /// Downtown: dense, large-footprint buildings.
    pub fn downtown() -> Self {
        BuildingParams {
            density: 0.85,
            size_range: (40.0, 110.0),
            street_clearance: 6.0,
        }
    }
}

/// An indexed set of building footprints supporting fast segment queries.
#[derive(Clone, Debug)]
pub struct BuildingIndex {
    buildings: Vec<Rect>,
    cell: f64,
    cells: HashMap<(i64, i64), Vec<u32>>,
}

impl BuildingIndex {
    /// Index an explicit set of footprints.
    pub fn from_rects(buildings: Vec<Rect>) -> Self {
        let cell = 200.0;
        let mut cells: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
        for (i, r) in buildings.iter().enumerate() {
            let (x0, y0) = (
                (r.min.x / cell).floor() as i64,
                (r.min.y / cell).floor() as i64,
            );
            let (x1, y1) = (
                (r.max.x / cell).floor() as i64,
                (r.max.y / cell).floor() as i64,
            );
            for cx in x0..=x1 {
                for cy in y0..=y1 {
                    cells.entry((cx, cy)).or_default().push(i as u32);
                }
            }
        }
        BuildingIndex {
            buildings,
            cell,
            cells,
        }
    }

    /// Generate footprints over an area on a `block_m` lattice, one
    /// candidate per block interior.
    pub fn generate<R: Rng + ?Sized>(
        area: Rect,
        block_m: f64,
        params: &BuildingParams,
        rng: &mut R,
    ) -> Self {
        let mut rects = Vec::new();
        if params.density > 0.0 {
            let nx = (area.width() / block_m).floor() as usize;
            let ny = (area.height() / block_m).floor() as usize;
            for iy in 0..ny {
                for ix in 0..nx {
                    if !rng.gen_bool(params.density.clamp(0.0, 1.0)) {
                        continue;
                    }
                    let cx = area.min.x + (ix as f64 + 0.5) * block_m;
                    let cy = area.min.y + (iy as f64 + 0.5) * block_m;
                    let max_half = (block_m / 2.0 - params.street_clearance).max(1.0);
                    let w = rng
                        .gen_range(params.size_range.0..=params.size_range.1)
                        .min(max_half * 2.0)
                        / 2.0;
                    let h = rng
                        .gen_range(params.size_range.0..=params.size_range.1)
                        .min(max_half * 2.0)
                        / 2.0;
                    let jx = rng.gen_range(-0.2..=0.2) * block_m;
                    let jy = rng.gen_range(-0.2..=0.2) * block_m;
                    let c = Point::new(
                        (cx + jx).clamp(area.min.x + w, area.max.x - w),
                        (cy + jy).clamp(area.min.y + h, area.max.y - h),
                    );
                    rects.push(Rect::centered(c, w, h));
                }
            }
        }
        Self::from_rects(rects)
    }

    /// Number of indexed footprints.
    pub fn len(&self) -> usize {
        self.buildings.len()
    }

    /// True iff no buildings are indexed.
    pub fn is_empty(&self) -> bool {
        self.buildings.is_empty()
    }

    /// The footprints.
    pub fn rects(&self) -> &[Rect] {
        &self.buildings
    }

    /// True iff the straight segment from `a` to `b` is unobstructed.
    pub fn line_of_sight(&self, a: &Point, b: &Point) -> bool {
        if self.buildings.is_empty() {
            return true;
        }
        let seg = Segment::new(*a, *b);
        // Walk grid cells along the segment's bounding box (segments here
        // are ≤ 400 m so the box walk is small).
        let (x0, y0) = (
            (a.x.min(b.x) / self.cell).floor() as i64,
            (a.y.min(b.y) / self.cell).floor() as i64,
        );
        let (x1, y1) = (
            (a.x.max(b.x) / self.cell).floor() as i64,
            (a.y.max(b.y) / self.cell).floor() as i64,
        );
        let mut checked: Vec<u32> = Vec::new();
        for cx in x0..=x1 {
            for cy in y0..=y1 {
                if let Some(ids) = self.cells.get(&(cx, cy)) {
                    for &id in ids {
                        if checked.contains(&id) {
                            continue;
                        }
                        checked.push(id);
                        if self.buildings[id as usize].intersects_segment(&seg) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_index_is_always_los() {
        let idx = BuildingIndex::from_rects(vec![]);
        assert!(idx.line_of_sight(&Point::new(0.0, 0.0), &Point::new(1000.0, 1000.0)));
        assert!(idx.is_empty());
    }

    #[test]
    fn building_blocks_sight() {
        let idx = BuildingIndex::from_rects(vec![Rect::new(
            Point::new(40.0, -10.0),
            Point::new(60.0, 10.0),
        )]);
        assert!(!idx.line_of_sight(&Point::new(0.0, 0.0), &Point::new(100.0, 0.0)));
        // Going around (above) the building is clear.
        assert!(idx.line_of_sight(&Point::new(0.0, 20.0), &Point::new(100.0, 20.0)));
    }

    #[test]
    fn large_building_spanning_cells() {
        let idx = BuildingIndex::from_rects(vec![Rect::new(
            Point::new(100.0, 100.0),
            Point::new(900.0, 150.0),
        )]);
        assert!(!idx.line_of_sight(&Point::new(500.0, 0.0), &Point::new(500.0, 300.0)));
        assert!(idx.line_of_sight(&Point::new(0.0, 0.0), &Point::new(50.0, 300.0)));
    }

    #[test]
    fn generation_densities_ordered() {
        let mut rng = StdRng::seed_from_u64(4);
        let area = Rect::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0));
        let open = BuildingIndex::generate(area, 200.0, &BuildingParams::open_road(), &mut rng);
        let res = BuildingIndex::generate(area, 200.0, &BuildingParams::residential(), &mut rng);
        let down = BuildingIndex::generate(area, 200.0, &BuildingParams::downtown(), &mut rng);
        assert_eq!(open.len(), 0);
        assert!(!res.is_empty());
        assert!(down.len() > res.len());
    }

    #[test]
    fn generated_buildings_stay_inside_area() {
        let mut rng = StdRng::seed_from_u64(5);
        let area = Rect::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let idx = BuildingIndex::generate(area, 100.0, &BuildingParams::downtown(), &mut rng);
        for r in idx.rects() {
            assert!(r.min.x >= -1e-9 && r.min.y >= -1e-9);
            assert!(r.max.x <= 1000.0 + 1e-9 && r.max.y <= 1000.0 + 1e-9);
        }
    }

    #[test]
    fn los_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(6);
        let area = Rect::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let idx = BuildingIndex::generate(area, 100.0, &BuildingParams::residential(), &mut rng);
        use rand::Rng;
        for _ in 0..50 {
            let a = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            let b = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            assert_eq!(idx.line_of_sight(&a, &b), idx.line_of_sight(&b, &a));
        }
    }
}
