//! Driving-route planning — the stand-in for the Google Directions API.
//!
//! Guard-VP generation (paper Section 5.1.2) needs "a driving route between
//! two points on a road map" that is instantly computable and plausible. We
//! run A* over the same road network the simulated vehicles drive on, which
//! makes guard trajectories follow exactly the kind of paths real vehicles
//! produce.

use crate::geometry::Point;
use crate::roadnet::{NodeId, RoadNetwork};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A computed driving route.
#[derive(Clone, Debug)]
pub struct Route {
    /// Node sequence from origin to destination.
    pub nodes: Vec<NodeId>,
    /// Polyline of the route (node positions).
    pub points: Vec<Point>,
    /// Total length in meters.
    pub length: f64,
}

impl Route {
    /// Position at arc length `s` meters from the start (clamped to the
    /// route's ends).
    pub fn position_at(&self, s: f64) -> Point {
        if self.points.len() == 1 || s <= 0.0 {
            return self.points[0];
        }
        let mut remaining = s;
        for w in self.points.windows(2) {
            let seg_len = w[0].distance(&w[1]);
            if remaining <= seg_len {
                let t = if seg_len > 0.0 {
                    remaining / seg_len
                } else {
                    0.0
                };
                return w[0].lerp(&w[1], t);
            }
            remaining -= seg_len;
        }
        *self.points.last().expect("non-empty route")
    }

    /// Sample the route at the given arc lengths (they need not be
    /// monotonic, but usually are). Used to place guard-VP view digests
    /// "variably spaced along the given routes" (Section 5.1.2).
    pub fn sample(&self, arc_lengths: &[f64]) -> Vec<Point> {
        arc_lengths.iter().map(|&s| self.position_at(s)).collect()
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    f: f64,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on f.
        other
            .f
            .partial_cmp(&self.f)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A* shortest-path router over a [`RoadNetwork`].
pub struct Router<'a> {
    net: &'a RoadNetwork,
}

impl<'a> Router<'a> {
    /// Create a router borrowing the network.
    pub fn new(net: &'a RoadNetwork) -> Self {
        Router { net }
    }

    /// Shortest driving route between two nodes; `None` if unreachable.
    pub fn route(&self, from: NodeId, to: NodeId) -> Option<Route> {
        let n = self.net.node_count();
        let goal = self.net.pos(to);
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[from.0 as usize] = 0.0;
        heap.push(HeapEntry {
            f: self.net.pos(from).distance(&goal),
            node: from.0,
        });
        while let Some(HeapEntry { node, .. }) = heap.pop() {
            if node == to.0 {
                break;
            }
            let u = node as usize;
            let du = dist[u];
            for &eid in self.net.outgoing(NodeId(node)) {
                let e = self.net.edge(eid);
                let v = e.to.0 as usize;
                let nd = du + e.length;
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = Some(NodeId(node));
                    heap.push(HeapEntry {
                        f: nd + self.net.pos(e.to).distance(&goal),
                        node: e.to.0,
                    });
                }
            }
        }
        if dist[to.0 as usize].is_infinite() {
            return None;
        }
        let mut nodes = vec![to];
        let mut cur = to;
        while let Some(p) = prev[cur.0 as usize] {
            nodes.push(p);
            cur = p;
        }
        if cur != from {
            // `to == from` leaves prev empty; anything else means no path.
            if to != from {
                return None;
            }
        }
        nodes.reverse();
        let points: Vec<Point> = nodes.iter().map(|&n| self.net.pos(n)).collect();
        Some(Route {
            nodes,
            points,
            length: dist[to.0 as usize],
        })
    }

    /// Shortest route between the nodes nearest to two arbitrary points —
    /// the Directions-API-shaped entry point used by guard-VP creation.
    pub fn route_points(&self, from: &Point, to: &Point) -> Option<Route> {
        self.route(self.net.nearest_node(from), self.net.nearest_node(to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roadnet::CityParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid3() -> RoadNetwork {
        // 3×3 grid, spacing 100 m, nodes numbered row-major.
        let mut nodes = Vec::new();
        for iy in 0..3 {
            for ix in 0..3 {
                nodes.push(Point::new(ix as f64 * 100.0, iy as f64 * 100.0));
            }
        }
        let mut links = Vec::new();
        for iy in 0..3u32 {
            for ix in 0..3u32 {
                let id = iy * 3 + ix;
                if ix < 2 {
                    links.push((id, id + 1));
                }
                if iy < 2 {
                    links.push((id, id + 3));
                }
            }
        }
        RoadNetwork::from_links(nodes, &links)
    }

    #[test]
    fn shortest_path_on_grid() {
        let net = grid3();
        let router = Router::new(&net);
        let r = router.route(NodeId(0), NodeId(8)).unwrap();
        assert_eq!(r.length, 400.0);
        assert_eq!(r.nodes.first(), Some(&NodeId(0)));
        assert_eq!(r.nodes.last(), Some(&NodeId(8)));
        assert_eq!(r.nodes.len(), 5);
    }

    #[test]
    fn route_to_self_is_zero_length() {
        let net = grid3();
        let r = Router::new(&net).route(NodeId(4), NodeId(4)).unwrap();
        assert_eq!(r.length, 0.0);
        assert_eq!(r.nodes, vec![NodeId(4)]);
        assert_eq!(r.position_at(10.0), net.pos(NodeId(4)));
    }

    #[test]
    fn unreachable_returns_none() {
        let net = RoadNetwork::from_links(
            vec![
                Point::new(0.0, 0.0),
                Point::new(100.0, 0.0),
                Point::new(1000.0, 0.0),
                Point::new(1100.0, 0.0),
            ],
            &[(0, 1), (2, 3)],
        );
        assert!(Router::new(&net).route(NodeId(0), NodeId(3)).is_none());
    }

    #[test]
    fn position_at_walks_the_polyline() {
        let net = grid3();
        let r = Router::new(&net).route(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(r.position_at(0.0), Point::new(0.0, 0.0));
        assert_eq!(r.position_at(50.0), Point::new(50.0, 0.0));
        assert_eq!(r.position_at(150.0), Point::new(150.0, 0.0));
        assert_eq!(r.position_at(1e9), Point::new(200.0, 0.0)); // clamped
    }

    #[test]
    fn sample_matches_position_at() {
        let net = grid3();
        let r = Router::new(&net).route(NodeId(0), NodeId(8)).unwrap();
        let samples = r.sample(&[0.0, 123.0, 400.0]);
        assert_eq!(samples[0], r.position_at(0.0));
        assert_eq!(samples[1], r.position_at(123.0));
        assert_eq!(samples[2], r.position_at(400.0));
    }

    #[test]
    fn astar_equals_route_length_on_random_city_pairs() {
        let mut rng = StdRng::seed_from_u64(21);
        let net = RoadNetwork::synthetic_city(&CityParams::small_area(), &mut rng);
        let router = Router::new(&net);
        for _ in 0..20 {
            let a = net.random_node(&mut rng);
            let b = net.random_node(&mut rng);
            let r = router.route(a, b).expect("connected network");
            // Route length equals the sum of its polyline segments.
            let poly_len: f64 = r.points.windows(2).map(|w| w[0].distance(&w[1])).sum();
            assert!((poly_len - r.length).abs() < 1e-6);
            // And is at least the straight-line distance.
            assert!(r.length + 1e-9 >= net.pos(a).distance(&net.pos(b)));
        }
    }

    #[test]
    fn route_points_snaps_to_nearest_nodes() {
        let net = grid3();
        let router = Router::new(&net);
        let r = router
            .route_points(&Point::new(-5.0, 3.0), &Point::new(205.0, 198.0))
            .unwrap();
        assert_eq!(r.nodes.first(), Some(&NodeId(0)));
        assert_eq!(r.nodes.last(), Some(&NodeId(8)));
    }

    #[test]
    fn random_arc_samples_lie_on_route_bounds() {
        let net = grid3();
        let r = Router::new(&net).route(NodeId(0), NodeId(8)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let s: f64 = rng.gen_range(0.0..r.length);
            let p = r.position_at(s);
            assert!(p.x >= 0.0 && p.x <= 200.0 && p.y >= 0.0 && p.y <= 200.0);
        }
    }
}
