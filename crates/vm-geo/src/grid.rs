//! A uniform spatial hash grid for radius queries.
//!
//! The protocol simulation asks "which vehicles are within DSRC range of
//! vehicle A?" for every vehicle every simulated second; a rebuild-per-tick
//! uniform grid keeps that O(n · k) instead of O(n²).

use crate::geometry::Point;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A fast non-cryptographic hasher (FxHash-style multiply-xor), used for
/// the grid's cell map and exported for other hot hash tables in the
/// workspace (candidate-pair sets, per-tick neighbor maps). Hash-flooding
/// resistance is irrelevant for these internal keys; SipHash overhead is
/// not.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps and sets.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A spatial hash grid mapping cell coordinates to item ids.
#[derive(Clone, Debug)]
pub struct GridIndex {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<(usize, Point)>, FxBuildHasher>,
    len: usize,
}

impl GridIndex {
    /// Create an empty index with the given cell size (meters).
    ///
    /// For radius-`r` queries, a cell size near `r` is a good default.
    pub fn new(cell: f64) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        GridIndex {
            cell,
            cells: HashMap::default(),
            len: 0,
        }
    }

    /// Build an index from `(id, position)` pairs.
    pub fn build(cell: f64, items: impl IntoIterator<Item = (usize, Point)>) -> Self {
        let mut g = Self::new(cell);
        for (id, p) in items {
            g.insert(id, p);
        }
        g
    }

    fn key(&self, p: &Point) -> (i64, i64) {
        (
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
        )
    }

    /// Insert an item.
    pub fn insert(&mut self, id: usize, p: Point) {
        self.cells.entry(self.key(&p)).or_default().push((id, p));
        self.len += 1;
    }

    /// Number of items in the index.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove all items, keeping allocated buckets for reuse.
    pub fn clear(&mut self) {
        for v in self.cells.values_mut() {
            v.clear();
        }
        self.len = 0;
    }

    /// All item ids strictly within `radius` of `p` (excluding exact self
    /// matches only if the caller filters them; the index itself returns
    /// every stored item in range, including one at distance 0).
    pub fn query_radius(&self, p: &Point, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_radius_into(p, radius, &mut out);
        out
    }

    /// As [`query_radius`](Self::query_radius), appending into a
    /// caller-owned buffer so tight query loops (one query per item per
    /// tick) reuse one allocation. The buffer is cleared first.
    pub fn query_radius_into(&self, p: &Point, radius: f64, out: &mut Vec<usize>) {
        out.clear();
        self.for_each_in_radius(p, radius, |id, _| out.push(id));
    }

    /// Visit `(id, position)` for each item within `radius` of `p`.
    pub fn for_each_in_radius(&self, p: &Point, radius: f64, mut f: impl FnMut(usize, Point)) {
        let r_cells = (radius / self.cell).ceil() as i64;
        let (cx, cy) = self.key(p);
        let r2 = radius * radius;
        for dx in -r_cells..=r_cells {
            for dy in -r_cells..=r_cells {
                if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) {
                    for (id, q) in bucket {
                        if p.distance_sq(q) <= r2 {
                            f(*id, *q);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_items_in_radius() {
        let items = vec![
            (0, Point::new(0.0, 0.0)),
            (1, Point::new(50.0, 0.0)),
            (2, Point::new(150.0, 0.0)),
            (3, Point::new(0.0, 99.0)),
            (4, Point::new(0.0, 101.0)),
        ];
        let g = GridIndex::build(100.0, items);
        let mut hits = g.query_radius(&Point::new(0.0, 0.0), 100.0);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1, 3]);
    }

    #[test]
    fn radius_larger_than_cell() {
        let items: Vec<(usize, Point)> = (0..100)
            .map(|i| (i, Point::new(i as f64 * 10.0, 0.0)))
            .collect();
        let g = GridIndex::build(25.0, items);
        let hits = g.query_radius(&Point::new(0.0, 0.0), 400.0);
        assert_eq!(hits.len(), 41); // 0..=400 m at 10 m spacing
    }

    #[test]
    fn negative_coordinates() {
        let g = GridIndex::build(
            10.0,
            vec![(7, Point::new(-5.0, -5.0)), (8, Point::new(-25.0, -25.0))],
        );
        let hits = g.query_radius(&Point::new(-6.0, -6.0), 5.0);
        assert_eq!(hits, vec![7]);
    }

    #[test]
    fn clear_retains_capacity_and_empties() {
        let mut g = GridIndex::build(10.0, vec![(0, Point::new(0.0, 0.0))]);
        assert_eq!(g.len(), 1);
        g.clear();
        assert!(g.is_empty());
        assert!(g.query_radius(&Point::new(0.0, 0.0), 100.0).is_empty());
        g.insert(3, Point::new(1.0, 1.0));
        assert_eq!(g.query_radius(&Point::new(0.0, 0.0), 5.0), vec![3]);
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn zero_cell_size_panics() {
        let _ = GridIndex::new(0.0);
    }

    #[test]
    fn query_into_reuses_buffer() {
        let g = GridIndex::build(
            10.0,
            vec![(0, Point::new(0.0, 0.0)), (1, Point::new(3.0, 0.0))],
        );
        let mut buf = vec![99, 98, 97];
        g.query_radius_into(&Point::new(0.0, 0.0), 5.0, &mut buf);
        buf.sort_unstable();
        assert_eq!(buf, vec![0, 1]);
        g.query_radius_into(&Point::new(100.0, 100.0), 5.0, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn boundary_inclusive() {
        let g = GridIndex::build(10.0, vec![(0, Point::new(10.0, 0.0))]);
        assert_eq!(g.query_radius(&Point::new(0.0, 0.0), 10.0), vec![0]);
    }
}
