//! Geometric substrate for ViewMap: planar geometry, a spatial hash index,
//! a synthetic road network (the stand-in for the OpenStreetMap extract of
//! Seoul used in the paper's Section 8), a driving-route planner (the
//! stand-in for the Google Directions API used for guard-VP trajectories,
//! Section 5.1.2), and building footprints used by the DSRC line-of-sight
//! model (Section 7).
//!
//! All coordinates are meters in a local planar frame; the simulations use
//! 4×4 km² (Section 6) and 8×8 km² (Section 8) areas, so a flat projection
//! is exact enough.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buildings;
pub mod geometry;
pub mod grid;
pub mod roadnet;
pub mod route;

pub use buildings::{BuildingIndex, BuildingParams};
pub use geometry::{segments_intersect, Point, Rect, Segment};
pub use grid::{FxBuildHasher, FxHasher, GridIndex};
pub use roadnet::{CityParams, EdgeId, NodeId, RoadNetwork};
pub use route::{Route, Router};
