//! Planar points, segments, rectangles, and intersection predicates.

/// A point (or vector) in the local planar frame, meters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point {
    /// East coordinate in meters.
    pub x: f64,
    /// North coordinate in meters.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        (*self - *other).norm()
    }

    /// Squared Euclidean distance (cheaper; for comparisons).
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let d = *self - *other;
        d.x * d.x + d.y * d.y
    }

    /// Vector length.
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Linear interpolation: `self + t * (other - self)`.
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// 2D cross product (z-component) of `self × other`.
    pub fn cross(&self, other: &Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Dot product.
    pub fn dot(&self, other: &Point) -> f64 {
        self.x * other.x + self.y * other.y
    }
}

impl std::ops::Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl std::ops::Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl std::ops::Mul<f64> for Point {
    type Output = Point;
    fn mul(self, s: f64) -> Point {
        Point::new(self.x * s, self.y * s)
    }
}

/// A line segment between two points.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Construct a segment.
    pub fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    pub fn length(&self) -> f64 {
        self.a.distance(&self.b)
    }

    /// Point at parameter `t` in `[0, 1]`.
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(&self.b, t)
    }
}

/// Orientation of the triple (a, b, c): >0 counter-clockwise, <0 clockwise,
/// 0 collinear (with a small epsilon).
fn orient(a: &Point, b: &Point, c: &Point) -> i8 {
    let v = (*b - *a).cross(&(*c - *a));
    if v > 1e-9 {
        1
    } else if v < -1e-9 {
        -1
    } else {
        0
    }
}

fn on_segment(a: &Point, b: &Point, p: &Point) -> bool {
    p.x >= a.x.min(b.x) - 1e-9
        && p.x <= a.x.max(b.x) + 1e-9
        && p.y >= a.y.min(b.y) - 1e-9
        && p.y <= a.y.max(b.y) + 1e-9
}

/// True iff segments `s1` and `s2` intersect (including touching).
pub fn segments_intersect(s1: &Segment, s2: &Segment) -> bool {
    let o1 = orient(&s1.a, &s1.b, &s2.a);
    let o2 = orient(&s1.a, &s1.b, &s2.b);
    let o3 = orient(&s2.a, &s2.b, &s1.a);
    let o4 = orient(&s2.a, &s2.b, &s1.b);
    if o1 != o2 && o3 != o4 {
        return true;
    }
    (o1 == 0 && on_segment(&s1.a, &s1.b, &s2.a))
        || (o2 == 0 && on_segment(&s1.a, &s1.b, &s2.b))
        || (o3 == 0 && on_segment(&s2.a, &s2.b, &s1.a))
        || (o4 == 0 && on_segment(&s2.a, &s2.b, &s1.b))
}

/// An axis-aligned rectangle (building footprint, coverage area, ...).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    /// Minimum corner.
    pub min: Point,
    /// Maximum corner.
    pub max: Point,
}

impl Rect {
    /// Construct from corners (normalizes order).
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Construct a rect centered at `c` with the given half-extents.
    pub fn centered(c: Point, half_w: f64, half_h: f64) -> Self {
        Rect::new(
            Point::new(c.x - half_w, c.y - half_h),
            Point::new(c.x + half_w, c.y + half_h),
        )
    }

    /// Center of the rect.
    pub fn center(&self) -> Point {
        self.min.lerp(&self.max, 0.5)
    }

    /// Width (x extent).
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (y extent).
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// True iff `p` lies inside or on the boundary.
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True iff the segment crosses or touches the rect.
    pub fn intersects_segment(&self, s: &Segment) -> bool {
        if self.contains(&s.a) || self.contains(&s.b) {
            return true;
        }
        let corners = [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ];
        for i in 0..4 {
            let edge = Segment::new(corners[i], corners[(i + 1) % 4]);
            if segments_intersect(s, &edge) {
                return true;
            }
        }
        false
    }

    /// True iff two rects overlap (including touching).
    pub fn intersects_rect(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// Grow the rect by `margin` on every side.
    pub fn expanded(&self, margin: f64) -> Rect {
        Rect {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!((b - a).norm(), 5.0);
        assert_eq!(a.lerp(&b, 0.5), Point::new(2.5, 4.0));
        assert_eq!((a * 2.0).x, 2.0);
    }

    #[test]
    fn crossing_segments_intersect() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let s2 = Segment::new(Point::new(0.0, 10.0), Point::new(10.0, 0.0));
        assert!(segments_intersect(&s1, &s2));
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let s2 = Segment::new(Point::new(0.0, 1.0), Point::new(10.0, 1.0));
        assert!(!segments_intersect(&s1, &s2));
    }

    #[test]
    fn touching_endpoint_counts_as_intersection() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let s2 = Segment::new(Point::new(10.0, 0.0), Point::new(10.0, 10.0));
        assert!(segments_intersect(&s1, &s2));
    }

    #[test]
    fn collinear_overlapping_segments_intersect() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let s2 = Segment::new(Point::new(5.0, 0.0), Point::new(15.0, 0.0));
        assert!(segments_intersect(&s1, &s2));
        let s3 = Segment::new(Point::new(11.0, 0.0), Point::new(15.0, 0.0));
        assert!(!segments_intersect(&s1, &s3));
    }

    #[test]
    fn rect_contains_and_segment() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        assert!(r.contains(&Point::new(5.0, 5.0)));
        assert!(!r.contains(&Point::new(-1.0, 5.0)));
        // Segment passing through.
        let s = Segment::new(Point::new(-5.0, 5.0), Point::new(15.0, 5.0));
        assert!(r.intersects_segment(&s));
        // Segment fully outside.
        let s2 = Segment::new(Point::new(-5.0, -5.0), Point::new(-1.0, 20.0));
        assert!(!r.intersects_segment(&s2));
        // Segment fully inside.
        let s3 = Segment::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0));
        assert!(r.intersects_segment(&s3));
    }

    #[test]
    fn rect_rect_intersection() {
        let a = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let b = Rect::new(Point::new(5.0, 5.0), Point::new(15.0, 15.0));
        let c = Rect::new(Point::new(11.0, 11.0), Point::new(12.0, 12.0));
        assert!(a.intersects_rect(&b));
        assert!(!a.intersects_rect(&c));
        assert!(a.expanded(1.5).intersects_rect(&c));
    }

    #[test]
    fn rect_normalizes_corners() {
        let r = Rect::new(Point::new(10.0, 10.0), Point::new(0.0, 0.0));
        assert_eq!(r.min, Point::new(0.0, 0.0));
        assert_eq!(r.width(), 10.0);
        assert_eq!(r.center(), Point::new(5.0, 5.0));
    }
}
