//! The write-ahead-log seam between [`crate::server::ViewMapServer`] and
//! a durable storage backend.
//!
//! The server itself stays storage-agnostic: it owns the in-memory
//! sharded VP database and, when a [`VpWal`] is attached
//! ([`crate::server::ViewMapServer::attach_wal`]), mirrors every
//! *accepted* submission into the log and every retention sweep into
//! [`VpWal::evict_minutes_before`]. The concrete append-log engine
//! (minute-bucketed segment files, group commit, torn-tail recovery)
//! lives in the `vm-store` crate, which depends on this one — the trait
//! keeps the dependency arrow pointing outward.
//!
//! # Ordering contract
//!
//! The server calls [`VpWal::append`] **while still holding the minute
//! shard's write lock** for the VPs being committed. Appends for one
//! minute therefore reach the log in exactly the order the VPs were
//! appended to that minute's in-memory bucket, which is what makes
//! replay reproduce bucket order (and thus the `VpId → (minute, pos)`
//! index) byte for byte. Backends must not reorder records within a
//! call or between calls.
//!
//! # Failure contract
//!
//! A backend that cannot write is a fatal condition for a durable
//! server: the in-memory state would silently diverge from what a
//! restart recovers. The server therefore panics on an `Err` from the
//! log rather than dropping durability on the floor. Backends should
//! reserve `Err` for genuine I/O failure (disk full, permission lost),
//! not validation — all content-level screening already happened before
//! the server committed the VP.

use crate::types::MinuteId;
use crate::vp::StoredVp;

/// A durable append-log the server mirrors accepted VPs into.
///
/// Implementations must be thread-safe: the server invokes `append`
/// concurrently from every ingest path (single submits and batches on
/// different minutes run in parallel).
pub trait VpWal: Send + Sync {
    /// Durably append a group of accepted VPs (one group-commit unit:
    /// implementations should issue one buffered write — and at most one
    /// fsync, per their durability policy — per call, not per VP). All
    /// VPs in one call belong to the same minute.
    fn append(&self, vps: &[&StoredVp]) -> std::io::Result<()>;

    /// Drop every logged minute strictly before `cutoff` (bounded
    /// retention). Returns the number of minute buckets removed.
    fn evict_minutes_before(&self, cutoff: MinuteId) -> std::io::Result<usize>;

    /// Flush any buffered state to the OS (and to stable media if the
    /// backend's policy requires it). Called on graceful shutdown paths;
    /// a correct backend is already consistent without it.
    fn sync(&self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Sharing a log between the server and another observer (a metrics
/// scraper, a test assertion) is just an `Arc` — every method takes
/// `&self`, so the wrapper is pure delegation.
impl<W: VpWal + ?Sized> VpWal for std::sync::Arc<W> {
    fn append(&self, vps: &[&StoredVp]) -> std::io::Result<()> {
        (**self).append(vps)
    }

    fn evict_minutes_before(&self, cutoff: MinuteId) -> std::io::Result<usize> {
        (**self).evict_minutes_before(cutoff)
    }

    fn sync(&self) -> std::io::Result<()> {
        (**self).sync()
    }
}
