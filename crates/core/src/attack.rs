//! Fake-VP attacks and the synthetic viewmap testbed (Section 6.3.1).
//!
//! The paper evaluates verification on synthetic geometric graphs: 1000
//! legitimate VPs, colluding "human" attackers whose *legitimate* VPs sit
//! at a controlled hop distance from the trusted VP, and floods of fake
//! VPs (100–500% of the legitimate population) that the attackers wire
//! into chains toward the (secret) investigation site. Because viewlinks
//! require a two-way Bloom exchange, fakes can attach only to
//! attacker-controlled VPs — never to honest ones — so they form a
//! separate layer whose trust inflow is bounded (Lemmas 1–2, Corollary 1).

use crate::trustrank::{self, Verification};
use crate::types::GeoPos;
use rand::Rng;

/// Parameters for the synthetic geometric viewmap.
#[derive(Clone, Copy, Debug)]
pub struct GeometricParams {
    /// Number of legitimate member VPs (paper: 1000).
    pub n_legit: usize,
    /// Side length of the square area, meters.
    pub area_m: f64,
    /// Viewlink radius (geometric-graph connection radius), meters.
    pub link_radius_m: f64,
    /// Investigation-site radius, meters.
    pub site_radius_m: f64,
    /// Distance from the trusted VP to the site center, meters
    /// (trusted VPs "do not need to be near the incident": ~3 km).
    pub site_distance_m: f64,
}

impl Default for GeometricParams {
    fn default() -> Self {
        GeometricParams {
            n_legit: 1000,
            area_m: 4000.0,
            // Viewlinks span up to the DSRC range (400 m); the hop depth
            // of the site (~3 km / ~350 m ≈ 9 hops) is what the honest
            // trust propagation must cover.
            link_radius_m: 350.0,
            site_radius_m: 200.0,
            site_distance_m: 3000.0,
        }
    }
}

/// Attack configuration (Figs. 12, 13, 22d, 22e).
#[derive(Clone, Copy, Debug)]
pub struct AttackConfig {
    /// Number of colluding attackers holding legitimate member VPs.
    pub n_attackers: usize,
    /// Hop-distance bucket (inclusive) of attacker VPs from the trusted VP
    /// (Fig. 12 x-axis: 1–5, 6–10, ..., 21–25).
    pub attacker_hops: (usize, usize),
    /// Fake VPs as a fraction of the legitimate population (1.0 = 100%).
    pub fake_ratio: f64,
    /// Extra legitimate-but-dummy VPs per attacker (Fig. 13 / 22e
    /// concentration attacks; 0 for the basic attack).
    pub dummies_per_attacker: usize,
}

/// A synthetic viewmap with ground-truth labels.
#[derive(Clone, Debug)]
pub struct SyntheticViewmap {
    /// Adjacency lists (symmetric).
    pub adj: Vec<Vec<usize>>,
    /// Claimed positions.
    pub pos: Vec<GeoPos>,
    /// Ground truth: was this VP created by proper VP generation?
    pub legit: Vec<bool>,
    /// Index of the trusted VP.
    pub trusted: usize,
    /// Investigation-site center.
    pub site_center: GeoPos,
    /// Site radius.
    pub site_radius_m: f64,
}

impl SyntheticViewmap {
    /// Generate the honest geometric graph (no attack yet).
    pub fn generate<R: Rng + ?Sized>(params: &GeometricParams, rng: &mut R) -> Self {
        let n = params.n_legit;
        let pos: Vec<GeoPos> = (0..n)
            .map(|_| {
                GeoPos::new(
                    rng.gen_range(0.0..params.area_m),
                    rng.gen_range(0.0..params.area_m),
                )
            })
            .collect();
        let adj = geometric_edges(&pos, params.link_radius_m);
        // Trusted VP: a random node; site center: at site_distance away
        // (the trusted VP need not be near the incident). The requested
        // distance is capped at what fits inside the area from the
        // trusted VP's position, so a feasible direction always exists.
        let trusted = rng.gen_range(0..n);
        let tp = pos[trusted];
        let corners = [
            GeoPos::new(0.0, 0.0),
            GeoPos::new(params.area_m, 0.0),
            GeoPos::new(0.0, params.area_m),
            GeoPos::new(params.area_m, params.area_m),
        ];
        let (far_corner, far_dist) = corners
            .iter()
            .map(|c| (*c, tp.distance(c)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("four corners");
        let eff_d = params.site_distance_m.min(far_dist * 0.92);
        let mut site_center = None;
        for _ in 0..256 {
            let theta: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let c = GeoPos::new(tp.x + eff_d * theta.cos(), tp.y + eff_d * theta.sin());
            if c.x >= 0.0 && c.x <= params.area_m && c.y >= 0.0 && c.y <= params.area_m {
                site_center = Some(c);
                break;
            }
        }
        let site_center = site_center.unwrap_or_else(|| {
            // Fall back to the direction of the farthest corner.
            let d = tp.distance(&far_corner).max(1.0);
            GeoPos::new(
                tp.x + (far_corner.x - tp.x) / d * eff_d,
                tp.y + (far_corner.y - tp.y) / d * eff_d,
            )
        });
        SyntheticViewmap {
            adj,
            pos,
            legit: vec![true; n],
            trusted,
            site_center,
            site_radius_m: params.site_radius_m,
        }
    }

    /// Node indices whose claimed position is inside the site.
    pub fn site_members(&self) -> Vec<usize> {
        self.pos
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(&self.site_center) <= self.site_radius_m)
            .map(|(i, _)| i)
            .collect()
    }

    /// BFS hop distances from the trusted VP.
    pub fn hops_from_trusted(&self) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.adj.len()];
        let mut q = std::collections::VecDeque::new();
        dist[self.trusted] = 0;
        q.push_back(self.trusted);
        while let Some(u) = q.pop_front() {
            for &v in &self.adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    fn add_edge(&mut self, a: usize, b: usize) {
        if a != b && !self.adj[a].contains(&b) {
            self.adj[a].push(b);
            self.adj[b].push(a);
        }
    }

    /// Mount the attack: pick attacker nodes in the requested hop bucket,
    /// optionally co-locate legitimate dummy VPs with them, and inject
    /// fake VPs wired as chains toward the site plus a clique around it.
    ///
    /// Returns the indices of the attackers' legitimate VPs.
    pub fn inject_attack<R: Rng + ?Sized>(
        &mut self,
        cfg: &AttackConfig,
        rng: &mut R,
    ) -> Vec<usize> {
        let n_legit = self.legit.len();
        let hops = self.hops_from_trusted();
        // Attackers cannot predict the future investigation site, so their
        // legitimate VPs are (almost surely) not inside it: exclude the
        // site's vicinity from candidate positions.
        let link_r_excl = estimate_link_radius(self);
        let not_in_site =
            |i: usize| self.pos[i].distance(&self.site_center) > self.site_radius_m + link_r_excl;
        // Candidate attacker nodes in the hop bucket (fall back to the
        // nearest non-empty bucket so every experiment cell is populated).
        let mut candidates: Vec<usize> = (0..n_legit)
            .filter(|&i| {
                hops[i] != usize::MAX
                    && hops[i] >= cfg.attacker_hops.0
                    && hops[i] <= cfg.attacker_hops.1
                    && not_in_site(i)
            })
            .collect();
        if candidates.is_empty() {
            let mut best: Vec<(usize, usize)> = (0..n_legit)
                .filter(|&i| hops[i] != usize::MAX && not_in_site(i))
                .map(|i| {
                    let d = if hops[i] < cfg.attacker_hops.0 {
                        cfg.attacker_hops.0 - hops[i]
                    } else {
                        hops[i].saturating_sub(cfg.attacker_hops.1)
                    };
                    (d, i)
                })
                .collect();
            best.sort_unstable();
            candidates = best
                .into_iter()
                .take(cfg.n_attackers * 4)
                .map(|(_, i)| i)
                .collect();
        }
        // Sample attackers without replacement.
        let mut attackers = Vec::new();
        while attackers.len() < cfg.n_attackers && !candidates.is_empty() {
            let k = rng.gen_range(0..candidates.len());
            attackers.push(candidates.swap_remove(k));
        }

        // Concentration attack: legitimate dummy VPs co-located with the
        // attacker (they link to whatever is physically nearby, like any
        // real VP).
        let link_r = estimate_link_radius(self);
        let mut controlled: Vec<usize> = attackers.clone();
        for &a in &attackers {
            for _ in 0..cfg.dummies_per_attacker {
                let p = GeoPos::new(
                    self.pos[a].x + rng.gen_range(-40.0..40.0),
                    self.pos[a].y + rng.gen_range(-40.0..40.0),
                );
                let idx = self.push_node(p, true);
                // Legit dummies link two-way with all physically nearby VPs.
                for j in 0..idx {
                    if self.pos[j].distance(&p) <= link_r {
                        self.add_edge(idx, j);
                    }
                }
                controlled.push(idx);
            }
        }

        // Fake VPs. Attackers cannot predict the future investigation
        // site (the paper's core restriction), so they blanket a wide
        // area: each attacker emits rays of fake VPs in random directions,
        // hoping some land inside whatever site gets investigated later.
        // Colluding fakes whose claimed positions are mutually in range
        // also interlink (their blooms are fabricated cooperatively, but
        // the server's proximity precondition still applies).
        let n_fake = (cfg.fake_ratio * n_legit as f64).round() as usize;
        let mut budget = n_fake;
        let spacing = link_r * 0.8;
        let mut all_fakes: Vec<usize> = Vec::new();
        let mut ai = 0usize;
        while budget > 0 && !attackers.is_empty() {
            let a = attackers[ai % attackers.len()];
            ai += 1;
            // One ray: a persistent heading with mild wobble; length
            // bounded by the per-ray share of the budget.
            let ray_len = (n_fake / (attackers.len() * 2).max(1))
                .clamp(3, 60)
                .min(budget);
            let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let mut prev = a;
            let mut p = self.pos[a];
            for _ in 0..ray_len {
                heading += rng.gen_range(-0.3..0.3);
                p = GeoPos::new(p.x + spacing * heading.cos(), p.y + spacing * heading.sin());
                let idx = self.push_node(p, false);
                self.add_edge(prev, idx);
                // Cross-links to other colluding fakes in claimed range.
                let mut linked = 0;
                for &j in all_fakes.iter().rev().take(60) {
                    if self.pos[j].distance(&p) <= link_r {
                        self.add_edge(idx, j);
                        linked += 1;
                        if linked >= 4 {
                            break;
                        }
                    }
                }
                all_fakes.push(idx);
                prev = idx;
                budget -= 1;
                if budget == 0 {
                    break;
                }
            }
        }
        let _ = controlled;
        attackers
    }

    fn push_node(&mut self, p: GeoPos, legit: bool) -> usize {
        self.pos.push(p);
        self.legit.push(legit);
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Run Algorithm 1 and report the outcome against ground truth.
    pub fn run_verification(&self) -> Outcome {
        let site = self.site_members();
        let v: Verification =
            trustrank::verify_site(&self.adj, &[self.trusted], &site, trustrank::DAMPING);
        let top_is_legit = v.top.map(|t| self.legit[t]).unwrap_or(false);
        let marked_fake = v.legitimate.iter().filter(|&&i| !self.legit[i]).count();
        Outcome {
            top_is_legit,
            marked: v.legitimate.len(),
            marked_fake,
            success: top_is_legit && marked_fake == 0 && v.top.is_some(),
        }
    }
}

/// Verification outcome against ground truth.
#[derive(Clone, Copy, Debug)]
pub struct Outcome {
    /// Did verification succeed (legit top, no fake marked)?
    pub success: bool,
    /// Was the highest-scored site VP legitimate?
    pub top_is_legit: bool,
    /// Total marked VPs.
    pub marked: usize,
    /// Marked VPs that are actually fake.
    pub marked_fake: usize,
}

/// Build symmetric geometric-graph adjacency.
fn geometric_edges(pos: &[GeoPos], radius: f64) -> Vec<Vec<usize>> {
    let grid = vm_geo::GridIndex::build(
        radius.max(1.0),
        pos.iter()
            .enumerate()
            .map(|(i, p)| (i, vm_geo::Point::new(p.x, p.y))),
    );
    let mut adj = vec![Vec::new(); pos.len()];
    let mut hits = Vec::new();
    for (i, p) in pos.iter().enumerate() {
        grid.query_radius_into(&vm_geo::Point::new(p.x, p.y), radius, &mut hits);
        for &j in &hits {
            if j > i {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    adj
}

fn estimate_link_radius(map: &SyntheticViewmap) -> f64 {
    // Recover the generation radius from the longest existing edge.
    let mut r: f64 = 0.0;
    for (i, nbrs) in map.adj.iter().enumerate() {
        for &j in nbrs {
            r = r.max(map.pos[i].distance(&map.pos[j]));
        }
    }
    if r == 0.0 {
        200.0
    } else {
        r
    }
}

/// Lemma 2 upper bound on the total trust score of fake VPs:
/// `Σ_{v∈F_A} P_v ≤ δ/(1−δ) · Σ_{v∈A} (|O_v ∩ F_A| / |O_v|) · P_v`.
pub fn lemma2_bound(
    adj: &[Vec<usize>],
    scores: &[f64],
    attackers: &[usize],
    is_fake: &[bool],
) -> f64 {
    let delta = trustrank::DAMPING;
    let mut sum = 0.0;
    for &a in attackers {
        if adj[a].is_empty() {
            continue;
        }
        let fake_nbrs = adj[a].iter().filter(|&&v| is_fake[v]).count();
        sum += (fake_nbrs as f64 / adj[a].len() as f64) * scores[a];
    }
    delta / (1.0 - delta) * sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_params() -> GeometricParams {
        // Dense enough that the geometric graph is connected (mean degree
        // ≈ 9): real viewmaps ride on road traffic, which is connected.
        GeometricParams {
            n_legit: 300,
            area_m: 2000.0,
            link_radius_m: 200.0,
            site_radius_m: 200.0,
            site_distance_m: 1400.0,
        }
    }

    #[test]
    fn honest_viewmap_verifies_cleanly() {
        let rng = StdRng::seed_from_u64(1);
        for seed in 0..5 {
            let mut r2 = StdRng::seed_from_u64(100 + seed);
            let map = SyntheticViewmap::generate(&small_params(), &mut r2);
            if map.site_members().is_empty() {
                continue;
            }
            let o = map.run_verification();
            assert!(o.success, "honest run failed: {o:?}");
            assert_eq!(o.marked_fake, 0);
        }
        let _ = rng;
    }

    #[test]
    fn distant_attackers_fail() {
        // Attackers far from the trusted VP (the common case) lose.
        let mut ok = 0;
        let runs = 10;
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(200 + seed);
            let mut map = SyntheticViewmap::generate(&small_params(), &mut rng);
            if map.site_members().is_empty() {
                ok += 1;
                continue;
            }
            map.inject_attack(
                &AttackConfig {
                    n_attackers: 20,
                    attacker_hops: (8, 12),
                    fake_ratio: 3.0,
                    dummies_per_attacker: 0,
                },
                &mut rng,
            );
            if map.run_verification().success {
                ok += 1;
            }
        }
        assert!(ok >= runs - 1, "accuracy too low: {ok}/{runs}");
    }

    #[test]
    fn fakes_never_link_to_honest_vps() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut map = SyntheticViewmap::generate(&small_params(), &mut rng);
        let n_honest = map.legit.len();
        let attackers = map.inject_attack(
            &AttackConfig {
                n_attackers: 10,
                attacker_hops: (1, 5),
                fake_ratio: 2.0,
                dummies_per_attacker: 0,
            },
            &mut rng,
        );
        let attacker_set: std::collections::HashSet<usize> = attackers.into_iter().collect();
        for (i, nbrs) in map.adj.iter().enumerate() {
            if map.legit[i] {
                continue; // i is fake
            }
            for &j in nbrs {
                let honest_victim = map.legit[j] && j < n_honest && !attacker_set.contains(&j);
                assert!(!honest_victim, "fake {i} linked to honest non-attacker {j}");
            }
        }
    }

    #[test]
    fn more_fakes_dilute_fake_scores() {
        // Corollary 1: the per-fake score shrinks as the flood grows.
        let mut rng = StdRng::seed_from_u64(4);
        let avg_fake_score = |ratio: f64, rng: &mut StdRng| {
            let mut map = SyntheticViewmap::generate(&small_params(), rng);
            map.inject_attack(
                &AttackConfig {
                    n_attackers: 10,
                    attacker_hops: (1, 5),
                    fake_ratio: ratio,
                    dummies_per_attacker: 0,
                },
                rng,
            );
            let scores =
                trustrank::trust_scores(&map.adj, &[map.trusted], trustrank::DAMPING, 1e-10);
            let fakes: Vec<f64> = scores
                .iter()
                .zip(&map.legit)
                .filter(|(_, &l)| !l)
                .map(|(s, _)| *s)
                .collect();
            fakes.iter().sum::<f64>() / fakes.len() as f64
        };
        let few = avg_fake_score(1.0, &mut rng);
        let many = avg_fake_score(5.0, &mut rng);
        assert!(
            many < few,
            "5x fakes should have lower average score: {many} vs {few}"
        );
    }

    #[test]
    fn lemma2_bound_holds() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut map = SyntheticViewmap::generate(&small_params(), &mut rng);
        let attackers = map.inject_attack(
            &AttackConfig {
                n_attackers: 15,
                attacker_hops: (1, 8),
                fake_ratio: 2.0,
                dummies_per_attacker: 0,
            },
            &mut rng,
        );
        let scores = trustrank::trust_scores(&map.adj, &[map.trusted], trustrank::DAMPING, 1e-10);
        let is_fake: Vec<bool> = map.legit.iter().map(|&l| !l).collect();
        let fake_total: f64 = scores
            .iter()
            .zip(&is_fake)
            .filter(|(_, &f)| f)
            .map(|(s, _)| *s)
            .sum();
        let bound = lemma2_bound(&map.adj, &scores, &attackers, &is_fake);
        assert!(
            fake_total <= bound + 1e-9,
            "Lemma 2 violated: {fake_total} > {bound}"
        );
    }

    #[test]
    #[ignore = "diagnostic"]
    fn debug_attack_diagnostics() {
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(200 + seed);
            let mut map = SyntheticViewmap::generate(&small_params(), &mut rng);
            let site_before = map.site_members();
            map.inject_attack(
                &AttackConfig {
                    n_attackers: 20,
                    attacker_hops: (8, 12),
                    fake_ratio: 3.0,
                    dummies_per_attacker: 0,
                },
                &mut rng,
            );
            let scores =
                trustrank::trust_scores(&map.adj, &[map.trusted], trustrank::DAMPING, 1e-10);
            let site = map.site_members();
            let mut rows: Vec<(f64, bool)> =
                site.iter().map(|&i| (scores[i], map.legit[i])).collect();
            rows.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            let honest_in_site = site.iter().filter(|&&i| map.legit[i]).count();
            println!(
                "seed {seed}: site {} (honest pre-attack {}, honest now {}), top5 {:?}",
                site.len(),
                site_before.len(),
                honest_in_site,
                &rows[..rows.len().min(5)]
            );
            let hops = map.hops_from_trusted();
            let site_hops: Vec<usize> = site
                .iter()
                .filter(|&&i| map.legit[i])
                .map(|&i| hops[i])
                .collect();
            println!("  honest site hops: {site_hops:?}");
        }
    }

    #[test]
    fn hop_distances_computed_by_bfs() {
        let mut rng = StdRng::seed_from_u64(6);
        let map = SyntheticViewmap::generate(&small_params(), &mut rng);
        let hops = map.hops_from_trusted();
        assert_eq!(hops[map.trusted], 0);
        for (i, nbrs) in map.adj.iter().enumerate() {
            if hops[i] == usize::MAX {
                continue;
            }
            for &j in nbrs {
                assert!(hops[j] <= hops[i] + 1);
            }
        }
    }
}
