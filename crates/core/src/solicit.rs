//! Video solicitation and validation (Section 5.2.3).
//!
//! Verified VPs are requested *by identifier*: the system posts `R_u`
//! marked "request for video" — never the location or time under
//! investigation. Owners watch the board, and if they hold a matching
//! video they upload it anonymously together with its VP. The server then
//! re-derives the full cascaded hash chain from the uploaded video bytes
//! and compares it against the VDs it already holds; only then does the
//! video go to human review.

use crate::types::VpId;
use crate::vd::{verify_chain, ChainError};
use crate::vp::StoredVp;

/// An anonymous video upload in response to a solicitation.
#[derive(Clone, Debug)]
pub struct VideoUpload {
    /// Which solicited VP this video claims to match.
    pub vp_id: VpId,
    /// The 60 one-second video chunks.
    pub chunks: Vec<Vec<u8>>,
}

/// Why an uploaded video was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UploadError {
    /// The VP id was never solicited.
    NotSolicited,
    /// No VP with this id exists in the database.
    UnknownVp,
    /// The cascaded-hash validation failed.
    Chain(ChainError),
}

impl std::fmt::Display for UploadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UploadError::NotSolicited => write!(f, "video was not solicited"),
            UploadError::UnknownVp => write!(f, "unknown VP identifier"),
            UploadError::Chain(e) => write!(f, "chain validation failed: {e}"),
        }
    }
}

impl std::error::Error for UploadError {}

/// Validate an uploaded video against the system-owned VP.
pub fn validate_upload(stored: &StoredVp, upload: &VideoUpload) -> Result<(), UploadError> {
    if stored.id != upload.vp_id {
        return Err(UploadError::UnknownVp);
    }
    verify_chain(stored.id, &stored.vds, &upload.chunks).map_err(UploadError::Chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::GeoPos;
    use crate::vp::{VpBuilder, VpKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn record_video(seed: u64) -> (StoredVp, Vec<Vec<u8>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = VpBuilder::new(&mut rng, 0, GeoPos::new(0.0, 0.0), VpKind::Actual);
        let chunks: Vec<Vec<u8>> = (0..60u64)
            .map(|i| {
                (0..128)
                    .map(|j| ((seed * 131 + i * 7 + j) % 251) as u8)
                    .collect()
            })
            .collect();
        for (i, c) in chunks.iter().enumerate() {
            b.record_second(c, GeoPos::new(i as f64 * 5.0, 0.0));
        }
        (b.finalize().profile.into_stored(), chunks)
    }

    #[test]
    fn honest_upload_validates() {
        let (vp, chunks) = record_video(1);
        let upload = VideoUpload {
            vp_id: vp.id,
            chunks,
        };
        assert_eq!(validate_upload(&vp, &upload), Ok(()));
    }

    #[test]
    fn edited_video_rejected() {
        let (vp, mut chunks) = record_video(2);
        chunks[10][5] ^= 0x01; // posterior edit of one byte
        let upload = VideoUpload {
            vp_id: vp.id,
            chunks,
        };
        assert!(matches!(
            validate_upload(&vp, &upload),
            Err(UploadError::Chain(ChainError::HashMismatch(11)))
        ));
    }

    #[test]
    fn substituted_video_rejected() {
        let (vp, _) = record_video(3);
        let (_, other_chunks) = record_video(4);
        let upload = VideoUpload {
            vp_id: vp.id,
            chunks: other_chunks,
        };
        assert!(matches!(
            validate_upload(&vp, &upload),
            Err(UploadError::Chain(_))
        ));
    }

    #[test]
    fn wrong_id_rejected() {
        let (vp, chunks) = record_video(5);
        let (other, _) = record_video(6);
        let upload = VideoUpload {
            vp_id: other.id,
            chunks,
        };
        assert_eq!(validate_upload(&vp, &upload), Err(UploadError::UnknownVp));
    }

    #[test]
    fn truncated_video_rejected() {
        let (vp, mut chunks) = record_video(7);
        chunks.pop();
        let upload = VideoUpload {
            vp_id: vp.id,
            chunks,
        };
        assert!(matches!(
            validate_upload(&vp, &upload),
            Err(UploadError::Chain(ChainError::LengthMismatch))
        ));
    }
}
