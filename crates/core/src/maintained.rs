//! Incremental viewmap maintenance: keep a minute's full viewlink edge
//! set alive across investigations instead of rebuilding it from scratch
//! per investigation.
//!
//! # Why this is possible bit-identically
//!
//! The viewlink edge predicate is purely **pairwise**: two members link
//! iff (a) their time-aligned claimed positions come within radio range
//! at some shared second (the exact `f64` scan in the viewmap engine's
//! `shares_in_range_second`) and (b) the two-way
//! Bloom membership test passes. Nothing about the rest of the
//! population enters the predicate — the cold engine's Morton grid,
//! `r_cap`/`r_max` geometry, and SoA prefilter tables only generate and
//! prune conservative candidate *supersets*, and every candidate is
//! settled by the same exact predicate. Two consequences the maintainer
//! is built on:
//!
//! 1. **The full-minute edge set is population-independent.** Adding a
//!    member never changes whether two existing members link, so ingest
//!    only has to compute new×old and new×new pairs and splice them in.
//! 2. **Any admitted subset's viewmap is the induced subgraph.** A cold
//!    [`Viewmap::build`] first admits members (site coverage), then
//!    links them; since linking is pairwise, the cold result equals the
//!    maintained full-minute graph restricted to the admitted members.
//!    Cold adjacency lists come out fully ascending (pairs are emitted
//!    and assembled in ascending packed `(i, j)` order), the maintained
//!    lists are kept ascending by construction, and the admission remap
//!    is monotone — so extraction is bit-for-bit identical to a cold
//!    build of the same population, not merely set-equal. The
//!    churn-equivalence suite in `vm-bench` pins exactly this.
//!
//! # Lifecycle
//!
//! A [`MaintainedViewmap`] is created lazily by the server on the first
//! maintained investigation of a minute (one cold-build-priced pass),
//! lives in the minute's `DbShard` behind the existing stripe lock, is
//! spliced by [`MaintainedViewmap::ingest`] under the same critical
//! section that appends to the minute bucket (so it can never observe a
//! half-committed batch), and is dropped whole when the minute is
//! evicted or the process restarts — recovery replays the WAL into a
//! fresh server whose maintained map is empty, so stale maintained
//! state cannot survive a crash by construction. The `vm-vopr` `churn`
//! scenario asserts that maintained-vs-cold equality holds after every
//! recovery.
//!
//! # Grid freezing
//!
//! The maintainer owns a candidate grid like the cold engine's, but
//! frozen at creation: `r_cap` (outlier cap) and the cell size are
//! computed once from the creation population, while `r_max` is a
//! running maximum over inserted gridded members (queries use the
//! current value, so reach always covers every gridded member). A later
//! member whose radius exceeds the frozen cap goes to the off-grid
//! (`wild`) list and pairs linearly — exactly the cold engine's outlier
//! route. Freezing changes only *pruning efficiency*, never the edge
//! set: correctness rests on the settled pairwise predicate alone.

use crate::types::{MinuteId, SECONDS_PER_VP};
use crate::viewmap::{self, BuildProfile, BuildScratch, MemberGeom, Site, Viewmap, ViewmapConfig};
use crate::vp::StoredVp;
use std::collections::HashMap;
use std::sync::Arc;
use vm_geo::FxBuildHasher;

/// A minute's incrementally maintained full-population viewlink graph.
///
/// Members mirror the server's minute bucket 1:1 (same `Arc`s, same
/// append order); the adjacency lists cover the *whole* stored minute.
/// [`extract`](Self::extract) restricts that graph to a site's admitted
/// members, reproducing a cold [`Viewmap::build`] bit for bit.
pub struct MaintainedViewmap {
    minute: MinuteId,
    /// The radio range the edges were computed under; a config change
    /// invalidates the whole structure (the server recreates it).
    dsrc_radius_m: f64,
    /// Bucket mirror: `members[i]` is bucket position `i`.
    members: Vec<Arc<StoredVp>>,
    /// Per-member scan geometry, aligned with `members`.
    geom: Vec<MemberGeom>,
    /// Append-only compact-window coordinate arena; member `i`'s window
    /// is `arena[arena_off[i]..][..2 * geom[i].len]`.
    arena: Vec<f64>,
    arena_off: Vec<u32>,
    /// Ascending full-minute adjacency lists (indices into `members`).
    adj: Vec<Vec<u32>>,
    edges: usize,
    /// Frozen grid geometry (see module docs) + running `r_max`.
    r_cap: f64,
    cell: f64,
    r_max: f64,
    /// Cell Z-code → gridded member indices (each member in exactly one
    /// cell, so candidate collection never yields duplicates).
    cells: HashMap<u64, Vec<u32>, FxBuildHasher>,
    /// Off-grid members: active but fixed-point-overflowing or above
    /// `r_cap`; paired linearly against every active member.
    wild: Vec<u32>,
    /// Scratch for per-member candidate collection during ingest.
    cand: Vec<u32>,
}

impl MaintainedViewmap {
    /// Build the maintained graph for a minute's current bucket. Costs
    /// one cold `build_viewlinks` pass (the engine computes the initial
    /// edge set) plus one geometry re-scan for the grid state; every
    /// later delta splices in at [`ingest`](Self::ingest) cost instead.
    pub fn create(
        members: Vec<Arc<StoredVp>>,
        minute: MinuteId,
        cfg: &ViewmapConfig,
        threads: usize,
        scratch: &mut BuildScratch,
    ) -> MaintainedViewmap {
        let n = members.len();
        let threads = if threads == 0 {
            crate::par::auto_threads(n, viewmap::PARALLEL_MEMBER_THRESHOLD)
        } else {
            threads.clamp(1, crate::par::MAX_THREADS)
        };
        let mut profile = BuildProfile::default();
        let adj: Vec<Vec<u32>> =
            viewmap::build_viewlinks(&members, minute, cfg, threads, &mut profile, scratch, true)
                .into_iter()
                .map(|nbrs| nbrs.into_iter().map(|j| j as u32).collect())
                .collect();
        let edges = adj.iter().map(|n| n.len()).sum::<usize>() / 2;

        // Re-scan for the maintainer's own geometry rows and coordinate
        // arena (the engine's rank-ordered arena is laid out for the SoA
        // pair loop, not for per-member appends).
        let start = minute.start_second();
        let mut arena = Vec::new();
        let mut arena_off = Vec::with_capacity(n);
        let mut geom = Vec::with_capacity(n);
        for vp in &members {
            arena_off.push(arena.len() as u32);
            geom.push(MemberGeom::scan(vp, start, &mut arena));
        }

        let radius = cfg.dsrc_radius_m;
        let mut active_radii: Vec<f64> = geom.iter().filter(|g| g.active()).map(|g| g.r).collect();
        let r_cap = viewmap::radius_cap(&mut active_radii, radius);
        let r_max = geom
            .iter()
            .filter(|g| g.active() && g.fp_exact && g.r <= r_cap)
            .map(|g| g.r)
            .fold(0.0f64, f64::max);
        let cell = viewmap::cell_size(radius, r_max);

        let mut mv = MaintainedViewmap {
            minute,
            dsrc_radius_m: radius,
            members,
            geom,
            arena,
            arena_off,
            adj,
            edges,
            r_cap,
            cell,
            r_max,
            cells: HashMap::default(),
            wild: Vec::new(),
            cand: Vec::new(),
        };
        for i in 0..n {
            mv.index_member(i);
        }
        mv
    }

    /// Route member `i` (already scanned) into the grid or wild list.
    fn index_member(&mut self, i: usize) {
        let g = &self.geom[i];
        if !g.active() {
            return;
        }
        if g.fp_exact && g.r <= self.r_cap {
            let code = self.cell_code(g);
            self.cells.entry(code).or_default().push(i as u32);
            self.r_max = self.r_max.max(g.r);
        } else {
            self.wild.push(i as u32);
        }
    }

    /// Z-code of the (frozen-size) grid cell holding `g`'s circle
    /// center — the same wrapped-`i64` coding the cold engine uses.
    fn cell_code(&self, g: &MemberGeom) -> u64 {
        let cx = (g.cx / self.cell).floor() as i64 as u32;
        let cy = (g.cy / self.cell).floor() as i64 as u32;
        viewmap::morton_code(cx, cy)
    }

    /// Splice newly committed bucket entries into the maintained graph.
    ///
    /// `new` must be exactly the bucket's freshly appended tail
    /// (`bucket[old_len..]`, same `Arc`s, same order) — the server calls
    /// this under the minute shard's write lock right after the append,
    /// so the mirror can never drift from the bucket. Each new member
    /// pairs against the existing grid (new×old) and against the new
    /// members already spliced before it (new×new), keeping every
    /// adjacency list ascending.
    pub fn ingest(&mut self, new: &[Arc<StoredVp>]) {
        let start = self.minute.start_second();
        let radius = self.dsrc_radius_m;
        let radius_c = radius.ceil() as i64;
        let r2 = radius * radius;
        for vp in new {
            let j = self.members.len();
            // Same scale envelope as the cold engine's SoA tables.
            assert!(
                (j as u64 + 1) * 4 * SECONDS_PER_VP <= u32::MAX as u64,
                "maintained viewmap of {} members exceeds u32 indexing",
                j + 1
            );
            self.arena_off.push(self.arena.len() as u32);
            let g = MemberGeom::scan(vp, start, &mut self.arena);
            self.members.push(Arc::clone(vp));

            let mut partners: Vec<u32> = Vec::new();
            if g.active() {
                // Candidate collection: the frozen grid for gridded
                // members (plus every wild member), a full linear pass
                // for wild ones — mirroring the cold engine's routes.
                let mut cand = std::mem::take(&mut self.cand);
                cand.clear();
                if g.fp_exact && g.r <= self.r_cap {
                    let rc = ((radius + g.r + self.r_max) / self.cell).ceil() as i64;
                    let cx0 = (g.cx / self.cell).floor() as i64 as u32;
                    let cy0 = (g.cy / self.cell).floor() as i64 as u32;
                    for dy in -rc..=rc {
                        let cy = cy0.wrapping_add(dy as u32);
                        for dx in -rc..=rc {
                            let cx = cx0.wrapping_add(dx as u32);
                            if let Some(list) = self.cells.get(&viewmap::morton_code(cx, cy)) {
                                cand.extend_from_slice(list);
                            }
                        }
                    }
                    cand.extend_from_slice(&self.wild);
                } else {
                    cand.extend((0..j as u32).filter(|&i| self.geom[i as usize].active()));
                }

                let wj = &self.arena[self.arena_off[j] as usize..][..2 * g.len as usize];
                let vp_keys = vp.link_keys();
                for &iu in &cand {
                    let i = iu as usize;
                    let gi = &self.geom[i];
                    // Pair center prefilter (the cold engine's per-pair
                    // check), then the shared exact predicate.
                    if gi.fp_exact && g.fp_exact {
                        let (dx, dy) = ((gi.cxf - g.cxf) as i64, (gi.cyf - g.cyf) as i64);
                        let lim = radius_c + gi.rf as i64 + g.rf as i64 + 2;
                        if dx * dx + dy * dy > lim * lim {
                            continue;
                        }
                    }
                    let wi = &self.arena[self.arena_off[i] as usize..][..2 * gi.len as usize];
                    if !viewmap::settle_pair(gi, wi, &g, wj, radius_c, r2) {
                        continue;
                    }
                    // The paper's two-way Bloom test — the same
                    // `BloomFilter` probe sequence the cold engine's
                    // flat-arena pass evaluates.
                    let other = &self.members[i];
                    if other.links_to_keys(vp_keys) && vp.links_to_keys(other.link_keys()) {
                        partners.push(iu);
                    }
                }
                cand.clear();
                self.cand = cand;

                partners.sort_unstable();
                for &iu in &partners {
                    // `j` exceeds every index already present, so the
                    // existing ascending order is preserved.
                    self.adj[iu as usize].push(j as u32);
                }
                self.edges += partners.len();
            }
            self.adj.push(partners);
            self.geom.push(g);
            self.index_member(j);
        }
    }

    /// Extract the viewmap a cold [`Viewmap::build`] of the current
    /// bucket would produce for `site`: replicate the admission pass
    /// (trusted anchoring, coverage radius, input-order admit) over the
    /// bucket mirror, then restrict the maintained graph to the admitted
    /// members via a monotone index remap. Bit-identical to the cold
    /// build — members, adjacency lists (contents *and* order), and
    /// trusted indices.
    pub fn extract(&self, site: Site, cfg: &ViewmapConfig) -> Viewmap {
        let minute = self.minute;
        let n = self.members.len();
        let in_minute: Vec<u32> = (0..n as u32)
            .filter(|&i| {
                let vp = &self.members[i as usize];
                vp.minute() == minute && !vp.vds.is_empty()
            })
            .collect();

        // Trusted VP(s) closest to the site — same stable sort, same
        // squared-distance comparator as `build_impl`.
        let mut trusted_refs: Vec<u32> = in_minute
            .iter()
            .copied()
            .filter(|&i| self.members[i as usize].trusted)
            .collect();
        trusted_refs.sort_by(|&a, &b| {
            let da = viewmap::nearest_approach_sq(&self.members[a as usize], &site.center);
            let db = viewmap::nearest_approach_sq(&self.members[b as usize], &site.center);
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        });
        let coverage_radius = trusted_refs
            .first()
            .map(|&i| viewmap::nearest_approach_sq(&self.members[i as usize], &site.center).sqrt())
            .unwrap_or(0.0)
            .max(site.radius_m)
            + cfg.coverage_margin_m;

        let mut vps: Vec<Arc<StoredVp>> = Vec::with_capacity(in_minute.len());
        let mut new_of: Vec<u32> = vec![u32::MAX; n];
        for &i in &in_minute {
            let vp = &self.members[i as usize];
            let admit = vp.trusted
                || vp
                    .vds
                    .iter()
                    .any(|vd| vd.loc.distance(&site.center) <= coverage_radius);
            if admit {
                new_of[i as usize] = vps.len() as u32;
                vps.push(Arc::clone(vp));
            }
        }

        // Induced subgraph under the monotone remap: filtering an
        // ascending list and remapping through an order-preserving map
        // keeps it ascending, which is exactly the cold assembly order.
        // Full admission (a site covering the minute — the common
        // investigation shape) makes the remap the identity, so the
        // rows are straight exact-size widening copies.
        let mut adj: Vec<Vec<usize>> = Vec::with_capacity(vps.len());
        if vps.len() == n {
            adj.extend(
                self.adj
                    .iter()
                    .map(|row| row.iter().map(|&jj| jj as usize).collect::<Vec<_>>()),
            );
        } else {
            for i in 0..n {
                if new_of[i] == u32::MAX {
                    continue;
                }
                let mut row = Vec::with_capacity(self.adj[i].len());
                for &jj in &self.adj[i] {
                    let nj = new_of[jj as usize];
                    if nj != u32::MAX {
                        row.push(nj as usize);
                    }
                }
                adj.push(row);
            }
        }
        let trusted = vps
            .iter()
            .enumerate()
            .filter(|(_, vp)| vp.trusted)
            .map(|(i, _)| i)
            .collect();
        Viewmap {
            vps,
            adj,
            trusted,
            minute,
        }
    }

    /// The minute this graph covers.
    pub fn minute(&self) -> MinuteId {
        self.minute
    }

    /// The radio range the edges were computed under.
    pub fn dsrc_radius_m(&self) -> f64 {
        self.dsrc_radius_m
    }

    /// Members mirrored from the bucket.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True iff no members are mirrored.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Undirected viewlink count over the full minute.
    pub fn edge_count(&self) -> usize {
        self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::GeoPos;
    use crate::vp::{VpBuilder, VpKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A cluster of mutually witnessing vehicles around `(x0, 0)`, the
    /// first one trusted when `trusted_first`.
    fn cluster(n: usize, x0: f64, seed: u64, trusted_first: bool) -> Vec<Arc<StoredVp>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut builders: Vec<VpBuilder> = (0..n)
            .map(|i| {
                let kind = if i == 0 && trusted_first {
                    VpKind::Trusted
                } else {
                    VpKind::Actual
                };
                VpBuilder::new(&mut rng, 0, GeoPos::new(x0 + i as f64 * 120.0, 0.0), kind)
            })
            .collect();
        for s in 0..SECONDS_PER_VP {
            let now = s + 1;
            let locs: Vec<GeoPos> = (0..n)
                .map(|i| GeoPos::new(x0 + i as f64 * 120.0 + s as f64, 0.0))
                .collect();
            let vds: Vec<_> = builders
                .iter_mut()
                .enumerate()
                .map(|(i, b)| b.record_second(&(s * 131).to_le_bytes(), locs[i]))
                .collect();
            for i in 0..n {
                for j in 0..n {
                    if i != j && locs[i].distance(&locs[j]) <= 380.0 {
                        builders[i].accept_neighbor_vd(vds[j], now, locs[i]);
                    }
                }
            }
        }
        builders
            .into_iter()
            .map(|b| Arc::new(b.finalize().profile.into_stored()))
            .collect()
    }

    fn assert_identical(a: &Viewmap, b: &Viewmap) {
        assert_eq!(a.vps.len(), b.vps.len(), "member count");
        for (x, y) in a.vps.iter().zip(&b.vps) {
            assert_eq!(x.id, y.id, "member order");
        }
        assert_eq!(a.adj, b.adj, "adjacency lists (contents and order)");
        assert_eq!(a.trusted, b.trusted, "trusted indices");
        assert_eq!(a.minute, b.minute);
    }

    fn site(x: f64, r: f64) -> Site {
        Site {
            center: GeoPos::new(x, 0.0),
            radius_m: r,
        }
    }

    #[test]
    fn incremental_ingest_matches_cold_build() {
        let cfg = ViewmapConfig::default();
        let all = cluster(12, 0.0, 7, true);
        let s = site(600.0, 250.0);
        for split in [0usize, 1, 5, 11, 12] {
            let mut mv = MaintainedViewmap::create(
                all[..split].to_vec(),
                MinuteId(0),
                &cfg,
                0,
                &mut BuildScratch::new(),
            );
            mv.ingest(&all[split..]);
            let cold = Viewmap::build(&all, s, MinuteId(0), &cfg);
            assert_identical(&mv.extract(s, &cfg), &cold);
            assert_eq!(
                mv.edge_count(),
                Viewmap::build(&all, site(600.0, 1.0e7), MinuteId(0), &cfg).edge_count(),
                "full-minute edge count (split {split})"
            );
        }
    }

    #[test]
    fn one_by_one_ingest_matches_cold_build() {
        let cfg = ViewmapConfig::default();
        let all = cluster(9, 0.0, 11, true);
        let mut mv =
            MaintainedViewmap::create(Vec::new(), MinuteId(0), &cfg, 0, &mut BuildScratch::new());
        for vp in &all {
            mv.ingest(std::slice::from_ref(vp));
        }
        let s = site(400.0, 300.0);
        assert_identical(
            &mv.extract(s, &cfg),
            &Viewmap::build(&all, s, MinuteId(0), &cfg),
        );
    }

    #[test]
    fn empty_and_single_member_degenerates() {
        let cfg = ViewmapConfig::default();
        let s = site(0.0, 200.0);
        let empty =
            MaintainedViewmap::create(Vec::new(), MinuteId(0), &cfg, 0, &mut BuildScratch::new());
        assert!(empty.is_empty());
        assert_identical(
            &empty.extract(s, &cfg),
            &Viewmap::build(&[], s, MinuteId(0), &cfg),
        );

        let one = cluster(1, 0.0, 3, true);
        let mv =
            MaintainedViewmap::create(one.clone(), MinuteId(0), &cfg, 0, &mut BuildScratch::new());
        assert_eq!(mv.len(), 1);
        assert_eq!(mv.edge_count(), 0);
        assert_identical(
            &mv.extract(s, &cfg),
            &Viewmap::build(&one, s, MinuteId(0), &cfg),
        );
    }

    #[test]
    fn two_separated_clusters_ingested_across_the_gap() {
        // Second cluster lands far from the first: the frozen grid must
        // route its members correctly (new cells, unchanged r_cap) and
        // produce no cross-cluster edges.
        let cfg = ViewmapConfig::default();
        let a = cluster(6, 0.0, 21, true);
        let b = cluster(6, 50_000.0, 22, false);
        let mut all = a.clone();
        all.extend(b.iter().cloned());
        let mut mv = MaintainedViewmap::create(a, MinuteId(0), &cfg, 0, &mut BuildScratch::new());
        mv.ingest(&b);
        // Coverage wide enough to admit both clusters.
        let s = site(25_000.0, 40_000.0);
        assert_identical(
            &mv.extract(s, &cfg),
            &Viewmap::build(&all, s, MinuteId(0), &cfg),
        );
    }
}
