//! Closed-form analyses from Section 6 of the paper.

use crate::bloom;
use crate::vd::VD_WIRE_BYTES;

/// The paper's guard-VP coverage rule (Section 6.2.2):
/// `P_t = [1 − {1 − (1−α)^m}^m]^t` — the probability that some vehicle
/// remains uncovered by others' guard VPs through `t` minutes, for
/// guard rate `α` and `m` mutually neighboring vehicles. The design target
/// is `P_t < 0.01`; α = 0.1 achieves it within a 5-minute drive.
pub fn uncovered_prob(alpha: f64, m: usize, t_minutes: u32) -> f64 {
    assert!((0.0..=1.0).contains(&alpha));
    let m_f = m as f64;
    let covered_one = 1.0 - (1.0 - alpha).powf(m_f); // one vehicle covered
    let all_covered = covered_one.powf(m_f);
    (1.0 - all_covered).powi(t_minutes as i32)
}

/// VP creation volume per vehicle-minute: one actual VP plus ⌈α·m⌉ guard
/// VPs (Fig. 9).
pub fn vp_volume_per_minute(alpha: f64, m: usize) -> usize {
    if m == 0 {
        1
    } else {
        1 + (alpha * m as f64).ceil() as usize
    }
}

/// Storage overhead of one VP in bytes: 60 VDs + Bloom filter + secret
/// (Section 6.1: 4584 bytes).
pub fn vp_storage_bytes() -> usize {
    60 * VD_WIRE_BYTES + bloom::DEFAULT_M_BITS / 8 + 8
}

/// Storage overhead relative to a video of `video_bytes` (Section 6.1:
/// < 0.01% of a 50 MB 1-min video).
pub fn storage_overhead_ratio(video_bytes: u64) -> f64 {
    vp_storage_bytes() as f64 / video_bytes as f64
}

/// Re-export of the Bloom false-linkage closed form (Fig. 14).
pub use crate::bloom::{false_linkage_rate, optimal_k};

/// Lemma 1: the total trust score beyond `l` links from the seed set is at
/// most `δ^l`.
pub fn lemma1_bound(damping: f64, l: u32) -> f64 {
    damping.powi(l as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_point_one_meets_design_target() {
        // The paper: α = 0.1 keeps P_t below 0.01 within 5 minutes of
        // driving (for a sufficiently interactive neighborhood).
        let p5 = uncovered_prob(0.1, 50, 5);
        assert!(p5 < 0.01, "P_5 = {p5}");
    }

    #[test]
    fn uncovered_prob_decreases_with_time_and_alpha() {
        assert!(uncovered_prob(0.1, 30, 10) < uncovered_prob(0.1, 30, 5));
        assert!(uncovered_prob(0.5, 30, 5) < uncovered_prob(0.1, 30, 5));
    }

    #[test]
    fn uncovered_prob_boundaries() {
        // α = 0: nobody is ever covered → P_t = 1 for any t ≥ 1.
        assert_eq!(uncovered_prob(0.0, 10, 3), 1.0);
        // α = 1: everyone covered every minute → P_t = 0.
        assert_eq!(uncovered_prob(1.0, 10, 3), 0.0);
    }

    #[test]
    fn vp_volume_matches_fig9_shape() {
        // Fig. 9: VPs per minute grows linearly in m, steeper for larger α.
        assert_eq!(vp_volume_per_minute(0.1, 0), 1);
        assert_eq!(vp_volume_per_minute(0.1, 20), 3);
        assert_eq!(vp_volume_per_minute(0.1, 200), 21);
        assert_eq!(vp_volume_per_minute(0.5, 200), 101);
        assert_eq!(vp_volume_per_minute(0.9, 200), 181);
        for m in 1..100 {
            assert!(vp_volume_per_minute(0.9, m) >= vp_volume_per_minute(0.1, m));
        }
    }

    #[test]
    fn storage_is_exactly_4584_bytes() {
        assert_eq!(vp_storage_bytes(), 4584);
    }

    #[test]
    fn storage_overhead_below_one_hundredth_percent() {
        let ratio = storage_overhead_ratio(50 * 1024 * 1024);
        assert!(ratio < 1e-4, "ratio {ratio}");
    }

    #[test]
    fn lemma1_decays_geometrically() {
        assert!((lemma1_bound(0.8, 1) - 0.8).abs() < 1e-12);
        assert!((lemma1_bound(0.8, 10) - 0.8f64.powi(10)).abs() < 1e-12);
    }
}
