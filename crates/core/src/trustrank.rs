//! TrustRank-based VP verification (Section 5.2.2, Algorithm 1).
//!
//! Trust flows from authority ("trusted") VPs over the viewmap's undirected
//! viewlinks: `P = δ·M·P + (1−δ)·d`, with the transition matrix `M`
//! dividing each VP's score equally among its adjacent edges, damping
//! δ = 0.8, and the seed distribution `d` concentrated on trusted VPs.
//! Because two-way linkage prevents attackers from attaching fake VPs to
//! honest ones, fakes form their own layer that receives trust only through
//! the attackers' few legitimate VPs — so within the investigation site the
//! highest-scored VP is (almost always) legitimate, and everything
//! reachable from it *through the site* is marked legitimate with it.

/// Damping factor δ (the paper sets 0.8 empirically).
pub const DAMPING: f64 = 0.8;

/// Compute trust scores over an undirected graph.
///
/// * `adj` — adjacency lists (must be symmetric).
/// * `seeds` — indices of trusted VPs (the trust distribution `d` is
///   uniform over them).
///
/// Returns the converged score vector. Scores of nodes unreachable from
/// any seed converge to 0 (their only inflow is the `(1−δ)·d` term, which
/// is zero off-seed).
pub fn trust_scores(adj: &[Vec<usize>], seeds: &[usize], damping: f64, eps: f64) -> Vec<f64> {
    trust_scores_iter(adj, seeds, damping, eps, 1000).0
}

/// As [`trust_scores`], also returning the iteration count (for benches).
pub fn trust_scores_iter(
    adj: &[Vec<usize>],
    seeds: &[usize],
    damping: f64,
    eps: f64,
    max_iter: usize,
) -> (Vec<f64>, usize) {
    let n = adj.len();
    assert!(!seeds.is_empty(), "need at least one trusted VP");
    assert!((0.0..1.0).contains(&damping), "damping in [0,1)");
    let mut d = vec![0.0; n];
    for &s in seeds {
        assert!(s < n, "seed index out of range");
        d[s] = 1.0 / seeds.len() as f64;
    }
    let mut p = d.clone();
    let mut next = vec![0.0; n];
    for it in 0..max_iter {
        for v in next.iter_mut() {
            *v = 0.0;
        }
        for (v, nbrs) in adj.iter().enumerate() {
            if nbrs.is_empty() {
                continue;
            }
            let share = p[v] / nbrs.len() as f64;
            for &u in nbrs {
                next[u] += share;
            }
        }
        let mut delta = 0.0;
        for v in 0..n {
            let nv = damping * next[v] + (1.0 - damping) * d[v];
            delta += (nv - p[v]).abs();
            p[v] = nv;
        }
        if delta < eps {
            return (p, it + 1);
        }
    }
    (p, max_iter)
}

/// Result of Algorithm 1 on an investigation site.
#[derive(Clone, Debug)]
pub struct Verification {
    /// Trust scores for every viewmap member.
    pub scores: Vec<f64>,
    /// The highest-scored VP inside the site (`None` if the site is empty).
    pub top: Option<usize>,
    /// Indices marked LEGITIMATE (top + everything reachable from it
    /// strictly via site members).
    pub legitimate: Vec<usize>,
}

/// Algorithm 1: verify the VPs whose claimed locations fall inside the
/// investigation site `site` (indices into `adj`).
pub fn verify_site(
    adj: &[Vec<usize>],
    seeds: &[usize],
    site: &[usize],
    damping: f64,
) -> Verification {
    let scores = trust_scores(adj, seeds, damping, 1e-10);
    let top = site
        .iter()
        .copied()
        .max_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    let mut legitimate = Vec::new();
    if let Some(u) = top {
        // BFS from u using only edges between site members.
        let in_site: std::collections::HashSet<usize> = site.iter().copied().collect();
        let mut seen = std::collections::HashSet::new();
        let mut queue = std::collections::VecDeque::new();
        seen.insert(u);
        queue.push_back(u);
        while let Some(v) = queue.pop_front() {
            legitimate.push(v);
            for &w in &adj[v] {
                if in_site.contains(&w) && seen.insert(w) {
                    queue.push_back(w);
                }
            }
        }
        legitimate.sort_unstable();
    }
    Verification {
        scores,
        top,
        legitimate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2-3-4.
    fn path(n: usize) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); n];
        for i in 0..n - 1 {
            adj[i].push(i + 1);
            adj[i + 1].push(i);
        }
        adj
    }

    #[test]
    fn scores_decay_with_distance_from_seed() {
        // Note: on a path the seed (degree 1) and its neighbor can swap
        // ranks — the neighbor collects from both sides — so monotone
        // decay is asserted from node 1 onward.
        let adj = path(6);
        let s = trust_scores(&adj, &[0], DAMPING, 1e-12);
        for i in 2..6 {
            assert!(
                s[i] < s[i - 1],
                "score must decay along the path: {:?}",
                s
            );
        }
        assert!(s[0] > s[2], "seed outranks everything beyond its neighbor");
    }

    #[test]
    fn unreachable_component_gets_zero() {
        // Two disconnected edges: 0-1 and 2-3, seed at 0.
        let adj = vec![vec![1], vec![0], vec![3], vec![2]];
        let s = trust_scores(&adj, &[0], DAMPING, 1e-12);
        assert!(s[0] > 0.0 && s[1] > 0.0);
        assert!(s[2] < 1e-9 && s[3] < 1e-9);
    }

    #[test]
    fn seed_mass_splits_across_multiple_seeds() {
        let adj = path(4);
        let s1 = trust_scores(&adj, &[0], DAMPING, 1e-12);
        let s2 = trust_scores(&adj, &[0, 3], DAMPING, 1e-12);
        // With two seeds the end node 3 gets direct seed inflow.
        assert!(s2[3] > s1[3]);
    }

    #[test]
    fn lemma1_distance_bound() {
        // Lemma 1: the total score of VPs at ≥ L links from the seed is at
        // most δ^L.
        let adj = path(10);
        let s = trust_scores(&adj, &[0], DAMPING, 1e-12);
        for l in 1..10 {
            let tail: f64 = (l..10).map(|i| s[i]).sum();
            assert!(
                tail <= DAMPING.powi(l as i32) + 1e-9,
                "L={l}: tail {tail} > δ^L {}",
                DAMPING.powi(l as i32)
            );
        }
    }

    #[test]
    fn verify_site_picks_top_and_reachable() {
        // 0(seed) - 1 - 2 - 3 and site = {2, 3, 5}; node 5 is a fake layer
        // connected only to another fake 4 that hangs off node 1... build:
        // 0-1, 1-2, 2-3, 1-4, 4-5 with site {2,3,5}.
        let mut adj = vec![Vec::new(); 6];
        for (a, b) in [(0, 1), (1, 2), (2, 3), (1, 4), (4, 5)] {
            adj[a].push(b);
            adj[b].push(a);
        }
        let v = verify_site(&adj, &[0], &[2, 3, 5], DAMPING);
        assert_eq!(v.top, Some(2));
        // 3 is reachable from 2 via site members; 5 is not.
        assert_eq!(v.legitimate, vec![2, 3]);
    }

    #[test]
    fn verify_empty_site() {
        let adj = path(3);
        let v = verify_site(&adj, &[0], &[], DAMPING);
        assert_eq!(v.top, None);
        assert!(v.legitimate.is_empty());
    }

    #[test]
    fn fake_cluster_scores_below_honest_site() {
        // Honest chain from seed into the site vs a big fake clique hanging
        // off one distant attacker node. The fake nodes outnumber honest
        // ones 5:1 yet the top site score stays honest (Corollary 1: more
        // fakes dilute each fake's share).
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); 2 + 4 + 20];
        let edge = |adj: &mut Vec<Vec<usize>>, a: usize, b: usize| {
            adj[a].push(b);
            adj[b].push(a);
        };
        // Honest path: 0 (seed) - 1 - 2 - 3 (site member honest).
        edge(&mut adj, 0, 1);
        edge(&mut adj, 1, 2);
        edge(&mut adj, 2, 3);
        // Attacker's legitimate VP 4 hangs further from the seed: 1-4? No:
        // make it distance 3 as well: 2-4, and 5..25 fakes all linked to 4
        // and to each other in a chain; fakes 5 and 6 are in the site.
        edge(&mut adj, 2, 4);
        for f in 5..25 {
            edge(&mut adj, 4, f);
        }
        let v = verify_site(&adj, &[0], &[3, 5, 6], DAMPING);
        assert_eq!(v.top, Some(3), "honest site member must outrank fakes");
        assert_eq!(v.legitimate, vec![3]);
    }

    #[test]
    #[should_panic(expected = "at least one trusted")]
    fn requires_seed() {
        let adj = path(3);
        let _ = trust_scores(&adj, &[], DAMPING, 1e-9);
    }

    #[test]
    fn converges_and_reports_iterations() {
        let adj = path(50);
        let (_, iters) = trust_scores_iter(&adj, &[0], DAMPING, 1e-9, 1000);
        assert!(iters < 1000, "should converge, took {iters}");
        assert!(iters > 3, "non-trivial iteration count: {iters}");
    }
}
