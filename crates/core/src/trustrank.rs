//! TrustRank-based VP verification (Section 5.2.2, Algorithm 1).
//!
//! Trust flows from authority ("trusted") VPs over the viewmap's undirected
//! viewlinks: `P = δ·M·P + (1−δ)·d`, with the transition matrix `M`
//! dividing each VP's score equally among its adjacent edges, damping
//! δ = 0.8, and the seed distribution `d` concentrated on trusted VPs.
//! Because two-way linkage prevents attackers from attaching fake VPs to
//! honest ones, fakes form their own layer that receives trust only through
//! the attackers' few legitimate VPs — so within the investigation site the
//! highest-scored VP is (almost always) legitimate, and everything
//! reachable from it *through the site* is marked legitimate with it.
//!
//! # Engine
//!
//! City-scale viewmaps iterate this fixed point over graphs with 10⁵+
//! nodes, so the power iteration runs on a [`CsrGraph`] — a compressed
//! sparse row layout (flat `offsets`/`edges` arrays plus precomputed
//! inverse out-degrees) built once per graph. Each iteration is a
//! *gather*: node `u` sums `p[v]/deg(v)` over its incident edges from one
//! contiguous edge slice, which streams sequentially through memory
//! instead of scattering writes across the score vector the way the
//! textbook formulation does. Iteration stops early once the L1 change
//! drops under `eps`. Above [`PARALLEL_EDGE_THRESHOLD`] directed edges the
//! edge pass fans out across threads (scoped std threads — the build
//! environment has no rayon), chunked by node range so each thread owns a
//! disjoint slice of the output vector; per-node summation order is
//! identical to the serial pass, so parallel scores are bit-for-bit equal.
//!
//! The pre-CSR adjacency-list implementation is retained as
//! [`trust_scores_reference`] — it is the oracle for the property tests
//! and the naive baseline the `vm-bench` investigation benchmark measures
//! speedups against.

/// Damping factor δ (the paper sets 0.8 empirically).
pub const DAMPING: f64 = 0.8;

/// Directed-edge count above which the gather pass runs multi-threaded.
///
/// Below this the per-iteration work is a few hundred microseconds and
/// thread spawn/join overhead dominates.
pub const PARALLEL_EDGE_THRESHOLD: usize = 100_000;

/// A graph in compressed-sparse-row form: node `v`'s neighbors are
/// `edges[offsets[v]..offsets[v+1]]`.
///
/// Node ids are `u32` — half the memory traffic of `usize` indices during
/// the gather pass, and 4 × 10⁹ nodes is comfortably beyond any viewmap.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    edges: Vec<u32>,
    /// `1/deg(v)`, or `0.0` for isolated nodes (they distribute nothing).
    inv_deg: Vec<f64>,
}

impl CsrGraph {
    /// Flatten adjacency lists into CSR. Edge order within each node is
    /// preserved, so results of algorithms that sum per-node are
    /// reproducible against the list form.
    pub fn from_adj(adj: &[Vec<usize>]) -> CsrGraph {
        let n = adj.len();
        assert!(n < u32::MAX as usize, "graph too large for u32 node ids");
        let mut offsets = Vec::with_capacity(n + 1);
        let total: usize = adj.iter().map(|nbrs| nbrs.len()).sum();
        assert!(
            total < u32::MAX as usize,
            "edge count overflows u32 offsets"
        );
        let mut edges = Vec::with_capacity(total);
        let mut inv_deg = Vec::with_capacity(n);
        offsets.push(0u32);
        for nbrs in adj {
            for &u in nbrs {
                debug_assert!(u < n, "edge target out of range");
                edges.push(u as u32);
            }
            offsets.push(edges.len() as u32);
            inv_deg.push(if nbrs.is_empty() {
                0.0
            } else {
                1.0 / nbrs.len() as f64
            });
        }
        CsrGraph {
            offsets,
            edges,
            inv_deg,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.inv_deg.len()
    }

    /// True iff the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.inv_deg.is_empty()
    }

    /// Number of directed edge entries (twice the undirected edge count
    /// for a symmetric graph).
    pub fn directed_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Neighbors of node `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.edges[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }
}

fn seed_distribution(n: usize, seeds: &[usize]) -> Vec<f64> {
    assert!(!seeds.is_empty(), "need at least one trusted VP");
    let mut d = vec![0.0; n];
    for &s in seeds {
        assert!(s < n, "seed index out of range");
        d[s] = 1.0 / seeds.len() as f64;
    }
    d
}

/// Compute trust scores over an undirected graph.
///
/// * `adj` — adjacency lists (must be symmetric).
/// * `seeds` — indices of trusted VPs (the trust distribution `d` is
///   uniform over them).
///
/// Returns the converged score vector. Scores of nodes unreachable from
/// any seed converge to 0 (their only inflow is the `(1−δ)·d` term, which
/// is zero off-seed).
pub fn trust_scores(adj: &[Vec<usize>], seeds: &[usize], damping: f64, eps: f64) -> Vec<f64> {
    trust_scores_iter(adj, seeds, damping, eps, 1000).0
}

/// As [`trust_scores`], also returning the iteration count (for benches).
///
/// Compatibility wrapper: flattens `adj` to CSR once and runs the gather
/// engine. Callers iterating many sites over one graph should build the
/// [`CsrGraph`] themselves and call [`trust_scores_csr`] directly.
pub fn trust_scores_iter(
    adj: &[Vec<usize>],
    seeds: &[usize],
    damping: f64,
    eps: f64,
    max_iter: usize,
) -> (Vec<f64>, usize) {
    trust_scores_csr(&CsrGraph::from_adj(adj), seeds, damping, eps, max_iter)
}

/// Gather-style power iteration on CSR; picks serial or parallel execution
/// by edge count.
pub fn trust_scores_csr(
    g: &CsrGraph,
    seeds: &[usize],
    damping: f64,
    eps: f64,
    max_iter: usize,
) -> (Vec<f64>, usize) {
    let threads = if g.directed_edge_count() >= PARALLEL_EDGE_THRESHOLD {
        std::thread::available_parallelism()
            .map(|p| p.get().min(16))
            .unwrap_or(1)
    } else {
        1
    };
    trust_scores_csr_threads(g, seeds, damping, eps, max_iter, threads)
}

/// As [`trust_scores_csr`] with an explicit thread count (exposed so tests
/// can force the parallel path on small graphs).
pub fn trust_scores_csr_threads(
    g: &CsrGraph,
    seeds: &[usize],
    damping: f64,
    eps: f64,
    max_iter: usize,
    threads: usize,
) -> (Vec<f64>, usize) {
    let n = g.len();
    assert!((0.0..1.0).contains(&damping), "damping in [0,1)");
    let d = seed_distribution(n, seeds);
    let mut p = d.clone();
    let mut next = vec![0.0; n];
    // w[v] = p[v] / deg(v): computed once per iteration so the edge pass
    // does a single indexed load per edge.
    let mut w = vec![0.0; n];
    let threads = threads.max(1).min(n.max(1));
    // Chunk cuts depend only on the graph and thread count: compute them
    // once, not per iteration.
    let cuts = if threads > 1 {
        chunk_cuts(g, threads)
    } else {
        Vec::new()
    };
    for it in 0..max_iter {
        for v in 0..n {
            w[v] = p[v] * g.inv_deg[v];
        }
        let delta = if threads == 1 {
            gather_range(g, &w, &d, &p, &mut next, 0, damping)
        } else {
            gather_parallel(g, &w, &d, &p, &mut next, damping, &cuts)
        };
        std::mem::swap(&mut p, &mut next);
        if delta < eps {
            return (p, it + 1);
        }
    }
    (p, max_iter)
}

/// Node-range cut points (`threads + 1` entries) balancing directed edges
/// across chunks.
fn chunk_cuts(g: &CsrGraph, threads: usize) -> Vec<usize> {
    let n = g.len();
    let total_edges = g.directed_edge_count().max(1);
    let per_chunk = total_edges.div_ceil(threads);
    let mut cuts = vec![0usize];
    for t in 1..threads {
        let target = (t * per_chunk).min(total_edges) as u32;
        let cut = g.offsets.partition_point(|&o| o < target).min(n);
        let cut = cut.max(*cuts.last().unwrap());
        cuts.push(cut);
    }
    cuts.push(n);
    cuts
}

/// One gather pass over `next[start..start+len]`; returns the L1 delta of
/// that range. `next` is the chunk's disjoint output slice; `p` is the full
/// previous score vector (for the delta).
fn gather_range(
    g: &CsrGraph,
    w: &[f64],
    d: &[f64],
    p: &[f64],
    next: &mut [f64],
    start: usize,
    damping: f64,
) -> f64 {
    let base = 1.0 - damping;
    let mut delta = 0.0;
    for (i, out) in next.iter_mut().enumerate() {
        let u = start + i;
        let lo = g.offsets[u] as usize;
        let hi = g.offsets[u + 1] as usize;
        let mut acc = 0.0;
        for &e in &g.edges[lo..hi] {
            acc += w[e as usize];
        }
        let nv = damping * acc + base * d[u];
        delta += (nv - p[u]).abs();
        *out = nv;
    }
    delta
}

/// Parallel edge pass: node ranges balanced by edge count, each thread
/// writing a disjoint chunk of `next` via [`crate::par::map_disjoint_mut`].
/// Per-node summation order matches the serial pass, so scores are
/// bit-for-bit identical; only the L1 delta is reassembled (in chunk
/// order, deterministically) from partials.
fn gather_parallel(
    g: &CsrGraph,
    w: &[f64],
    d: &[f64],
    p: &[f64],
    next: &mut [f64],
    damping: f64,
    cuts: &[usize],
) -> f64 {
    let deltas = crate::par::map_disjoint_mut(next, cuts, |t, chunk| {
        gather_range(g, w, d, p, chunk, cuts[t], damping)
    });
    deltas.into_iter().sum()
}

/// The pre-CSR scatter implementation over adjacency lists, retained
/// verbatim as the correctness oracle for property tests and the naive
/// baseline for the investigation benchmarks. Semantically identical to
/// [`trust_scores_iter`] up to floating-point summation order.
pub fn trust_scores_reference(
    adj: &[Vec<usize>],
    seeds: &[usize],
    damping: f64,
    eps: f64,
    max_iter: usize,
) -> (Vec<f64>, usize) {
    let n = adj.len();
    assert!((0.0..1.0).contains(&damping), "damping in [0,1)");
    let d = seed_distribution(n, seeds);
    let mut p = d.clone();
    let mut next = vec![0.0; n];
    for it in 0..max_iter {
        for v in next.iter_mut() {
            *v = 0.0;
        }
        for (v, nbrs) in adj.iter().enumerate() {
            if nbrs.is_empty() {
                continue;
            }
            let share = p[v] / nbrs.len() as f64;
            for &u in nbrs {
                next[u] += share;
            }
        }
        let mut delta = 0.0;
        for v in 0..n {
            let nv = damping * next[v] + (1.0 - damping) * d[v];
            delta += (nv - p[v]).abs();
            p[v] = nv;
        }
        if delta < eps {
            return (p, it + 1);
        }
    }
    (p, max_iter)
}

/// Result of Algorithm 1 on an investigation site.
#[derive(Clone, Debug)]
pub struct Verification {
    /// Trust scores for every viewmap member.
    pub scores: Vec<f64>,
    /// The highest-scored VP inside the site (`None` if the site is empty).
    pub top: Option<usize>,
    /// Indices marked LEGITIMATE (top + everything reachable from it
    /// strictly via site members).
    pub legitimate: Vec<usize>,
}

/// Algorithm 1: verify the VPs whose claimed locations fall inside the
/// investigation site `site` (indices into `adj`).
pub fn verify_site(
    adj: &[Vec<usize>],
    seeds: &[usize],
    site: &[usize],
    damping: f64,
) -> Verification {
    verify_site_csr(&CsrGraph::from_adj(adj), seeds, site, damping)
}

/// Algorithm 1 over a prebuilt [`CsrGraph`] (build the graph once, verify
/// many sites).
pub fn verify_site_csr(
    g: &CsrGraph,
    seeds: &[usize],
    site: &[usize],
    damping: f64,
) -> Verification {
    verify_site_csr_iter(g, seeds, site, damping).0
}

/// As [`verify_site_csr`], also returning the TrustRank iteration count
/// the power method took to converge — the telemetry plane records it
/// per investigation (a drifting iteration count is the early signal of
/// a graph whose spectral gap is closing, long before latency moves).
pub fn verify_site_csr_iter(
    g: &CsrGraph,
    seeds: &[usize],
    site: &[usize],
    damping: f64,
) -> (Verification, usize) {
    let (scores, iterations) = trust_scores_csr(g, seeds, damping, 1e-10, 1000);
    let top = site.iter().copied().max_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut legitimate = Vec::new();
    if let Some(u) = top {
        // BFS from u using only edges between site members.
        let in_site: std::collections::HashSet<usize> = site.iter().copied().collect();
        let mut seen = std::collections::HashSet::new();
        let mut queue = std::collections::VecDeque::new();
        seen.insert(u);
        queue.push_back(u);
        while let Some(v) = queue.pop_front() {
            legitimate.push(v);
            for &w in g.neighbors(v) {
                let w = w as usize;
                if in_site.contains(&w) && seen.insert(w) {
                    queue.push_back(w);
                }
            }
        }
        legitimate.sort_unstable();
    }
    (
        Verification {
            scores,
            top,
            legitimate,
        },
        iterations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Path graph 0-1-2-3-4.
    fn path(n: usize) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); n];
        for i in 0..n - 1 {
            adj[i].push(i + 1);
            adj[i + 1].push(i);
        }
        adj
    }

    #[test]
    fn scores_decay_with_distance_from_seed() {
        // Note: on a path the seed (degree 1) and its neighbor can swap
        // ranks — the neighbor collects from both sides — so monotone
        // decay is asserted from node 1 onward.
        let adj = path(6);
        let s = trust_scores(&adj, &[0], DAMPING, 1e-12);
        for i in 2..6 {
            assert!(s[i] < s[i - 1], "score must decay along the path: {:?}", s);
        }
        assert!(s[0] > s[2], "seed outranks everything beyond its neighbor");
    }

    #[test]
    fn unreachable_component_gets_zero() {
        // Two disconnected edges: 0-1 and 2-3, seed at 0.
        let adj = vec![vec![1], vec![0], vec![3], vec![2]];
        let s = trust_scores(&adj, &[0], DAMPING, 1e-12);
        assert!(s[0] > 0.0 && s[1] > 0.0);
        assert!(s[2] < 1e-9 && s[3] < 1e-9);
    }

    #[test]
    fn seed_mass_splits_across_multiple_seeds() {
        let adj = path(4);
        let s1 = trust_scores(&adj, &[0], DAMPING, 1e-12);
        let s2 = trust_scores(&adj, &[0, 3], DAMPING, 1e-12);
        // With two seeds the end node 3 gets direct seed inflow.
        assert!(s2[3] > s1[3]);
    }

    #[test]
    fn lemma1_distance_bound() {
        // Lemma 1: the total score of VPs at ≥ L links from the seed is at
        // most δ^L.
        let adj = path(10);
        let s = trust_scores(&adj, &[0], DAMPING, 1e-12);
        for l in 1..10 {
            let tail: f64 = (l..10).map(|i| s[i]).sum();
            assert!(
                tail <= DAMPING.powi(l as i32) + 1e-9,
                "L={l}: tail {tail} > δ^L {}",
                DAMPING.powi(l as i32)
            );
        }
    }

    #[test]
    fn verify_site_picks_top_and_reachable() {
        // 0(seed) - 1 - 2 - 3 and site = {2, 3, 5}; node 5 is a fake layer
        // connected only to another fake 4 that hangs off node 1... build:
        // 0-1, 1-2, 2-3, 1-4, 4-5 with site {2,3,5}.
        let mut adj = vec![Vec::new(); 6];
        for (a, b) in [(0, 1), (1, 2), (2, 3), (1, 4), (4, 5)] {
            adj[a].push(b);
            adj[b].push(a);
        }
        let v = verify_site(&adj, &[0], &[2, 3, 5], DAMPING);
        assert_eq!(v.top, Some(2));
        // 3 is reachable from 2 via site members; 5 is not.
        assert_eq!(v.legitimate, vec![2, 3]);
    }

    #[test]
    fn verify_empty_site() {
        let adj = path(3);
        let v = verify_site(&adj, &[0], &[], DAMPING);
        assert_eq!(v.top, None);
        assert!(v.legitimate.is_empty());
    }

    #[test]
    fn fake_cluster_scores_below_honest_site() {
        // Honest chain from seed into the site vs a big fake clique hanging
        // off one distant attacker node. The fake nodes outnumber honest
        // ones 5:1 yet the top site score stays honest (Corollary 1: more
        // fakes dilute each fake's share).
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); 2 + 4 + 20];
        let edge = |adj: &mut Vec<Vec<usize>>, a: usize, b: usize| {
            adj[a].push(b);
            adj[b].push(a);
        };
        // Honest path: 0 (seed) - 1 - 2 - 3 (site member honest).
        edge(&mut adj, 0, 1);
        edge(&mut adj, 1, 2);
        edge(&mut adj, 2, 3);
        // Attacker's legitimate VP 4 hangs further from the seed: 1-4? No:
        // make it distance 3 as well: 2-4, and 5..25 fakes all linked to 4
        // and to each other in a chain; fakes 5 and 6 are in the site.
        edge(&mut adj, 2, 4);
        for f in 5..25 {
            edge(&mut adj, 4, f);
        }
        let v = verify_site(&adj, &[0], &[3, 5, 6], DAMPING);
        assert_eq!(v.top, Some(3), "honest site member must outrank fakes");
        assert_eq!(v.legitimate, vec![3]);
    }

    #[test]
    #[should_panic(expected = "at least one trusted")]
    fn requires_seed() {
        let adj = path(3);
        let _ = trust_scores(&adj, &[], DAMPING, 1e-9);
    }

    #[test]
    fn converges_and_reports_iterations() {
        let adj = path(50);
        let (_, iters) = trust_scores_iter(&adj, &[0], DAMPING, 1e-9, 1000);
        assert!(iters < 1000, "should converge, took {iters}");
        assert!(iters > 3, "non-trivial iteration count: {iters}");
    }

    // ── CSR engine ───────────────────────────────────────────────────

    #[test]
    fn csr_layout_matches_adjacency() {
        let adj = vec![vec![1, 2], vec![0], vec![0], vec![]];
        let g = CsrGraph::from_adj(&adj);
        assert_eq!(g.len(), 4);
        assert_eq!(g.directed_edge_count(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
    }

    /// Random symmetric graph with expected degree `mean_deg`, possibly
    /// split into disconnected halves.
    fn random_graph(
        rng: &mut StdRng,
        n: usize,
        mean_deg: f64,
        disconnect: bool,
    ) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); n];
        let p = (mean_deg / n as f64).min(1.0);
        let cut = if disconnect { n / 2 } else { n };
        for a in 0..n {
            for b in (a + 1)..n {
                let crosses = a < cut && b >= cut;
                if !crosses && rng.gen_bool(p) {
                    adj[a].push(b);
                    adj[b].push(a);
                }
            }
        }
        adj
    }

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn csr_matches_reference_on_random_graphs() {
        // Property: the CSR gather engine agrees with the retained
        // scatter reference to 1e-12 across densities, seed sets, and
        // disconnected components.
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let n = rng.gen_range(2usize..120);
            let mean_deg = rng.gen_range(0.5f64..12.0);
            let disconnect = rng.gen_bool(0.3);
            let adj = random_graph(&mut rng, n, mean_deg, disconnect);
            let n_seeds = rng.gen_range(1usize..4.min(n + 1).max(2));
            let seeds: Vec<usize> = (0..n_seeds).map(|_| rng.gen_range(0..n)).collect();
            let damping = rng.gen_range(0.5f64..0.95);

            let (reference, it_ref) = trust_scores_reference(&adj, &seeds, damping, 1e-13, 1000);
            let (csr, it_csr) = trust_scores_iter(&adj, &seeds, damping, 1e-13, 1000);
            assert_eq!(reference.len(), csr.len());
            let diff = max_abs_diff(&reference, &csr);
            assert!(
                diff < 1e-12,
                "seed {seed}: CSR diverged from reference by {diff} \
                 (n={n}, iters {it_ref}/{it_csr})"
            );
        }
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(2000 + seed);
            let n = rng.gen_range(10usize..300);
            let adj = random_graph(&mut rng, n, 6.0, seed % 2 == 0);
            let g = CsrGraph::from_adj(&adj);
            let seeds = [0usize];
            let (serial, _) = trust_scores_csr_threads(&g, &seeds, DAMPING, 1e-13, 1000, 1);
            for threads in [2, 3, 4, 7] {
                let (par, _) = trust_scores_csr_threads(&g, &seeds, DAMPING, 1e-13, 1000, threads);
                // Per-node gather order is identical, so scores must agree
                // exactly; only the early-exit delta is reassembled from
                // partials, which can shift the stop iteration within eps.
                let diff = max_abs_diff(&serial, &par);
                assert!(
                    diff <= 1e-13,
                    "threads={threads}: parallel diverged by {diff}"
                );
            }
        }
    }

    #[test]
    fn parallel_handles_more_threads_than_nodes() {
        let adj = path(3);
        let g = CsrGraph::from_adj(&adj);
        let (s, _) = trust_scores_csr_threads(&g, &[0], DAMPING, 1e-12, 1000, 64);
        let expect = trust_scores(&adj, &[0], DAMPING, 1e-12);
        assert_eq!(s, expect);
    }

    #[test]
    fn csr_single_node_graphs() {
        let adj = vec![Vec::new()];
        let g = CsrGraph::from_adj(&adj);
        let (s, iters) = trust_scores_csr(&g, &[0], DAMPING, 1e-12, 1000);
        // Isolated seed: keeps only its base inflow (1-δ)·1.
        assert!((s[0] - (1.0 - DAMPING)).abs() < 1e-9, "score {}", s[0]);
        assert!(iters <= 3);
    }

    #[test]
    fn verify_site_csr_reuses_graph() {
        let adj = path(6);
        let g = CsrGraph::from_adj(&adj);
        let v1 = verify_site_csr(&g, &[0], &[4, 5], DAMPING);
        let v2 = verify_site(&adj, &[0], &[4, 5], DAMPING);
        assert_eq!(v1.top, v2.top);
        assert_eq!(v1.legitimate, v2.legitimate);
    }
}
