//! The location-tracking adversary (Section 6.2.2).
//!
//! The threat: the system itself (or anyone with the VP database) tries to
//! follow a vehicle across minutes by linking VPs that are adjacent in
//! space and time. Following Hoh & Gruteser's target-tracking formulation
//! \[23\], the tracker holds a belief distribution `p(i, t)` over the VPs of
//! minute `t`; at each minute boundary it predicts the target's position
//! (the end of each hypothesis VP — driving is continuous) and re-weights
//! candidate VPs of the next minute by a Gaussian model of deviation from
//! the prediction. `Σ_i p(i,t) = 1` at every step.
//!
//! Two metrics quantify privacy:
//! * location entropy `H_t = −Σ_i p(i,t)·log₂ p(i,t)` (Fig. 10 / 22a);
//! * tracking success ratio `S_t = p(u,t)` for the true target VP
//!   (Fig. 11 / 22b).
//!
//! Guard VPs defeat this tracker because each guard starts exactly at some
//! vehicle's minute-start position — indistinguishable from the vehicle's
//! real VP — and ends somewhere else entirely, so belief mass drains into
//! phantom trajectories.

use crate::types::GeoPos;

/// Tracker model parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrackerParams {
    /// Std-dev of the deviation model between predicted and observed
    /// minute-start positions, meters.
    pub sigma_m: f64,
    /// Hard gate: candidates farther than this from the prediction get
    /// zero weight.
    pub max_gap_m: f64,
}

impl Default for TrackerParams {
    fn default() -> Self {
        // GPS-grade prediction: consecutive VPs of the same vehicle are
        // spatially continuous, so the deviation model is tight. A loose
        // σ would hand the tracker artificial confusion even without
        // guard VPs; the paper's no-guard baseline stays above 0.9.
        TrackerParams {
            sigma_m: 10.0,
            max_gap_m: 120.0,
        }
    }
}

/// The VPs visible to the tracker in one minute: start and end locations
/// (the tracker sees whatever is in the anonymized VP database —
/// actual and guard VPs alike).
#[derive(Clone, Debug, Default)]
pub struct MinuteVps {
    /// Claimed start location of each VP.
    pub starts: Vec<GeoPos>,
    /// Claimed end location of each VP.
    pub ends: Vec<GeoPos>,
}

impl MinuteVps {
    /// Number of VPs this minute.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// True iff the minute has no VPs.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }
}

/// A multi-hypothesis tracker locked onto one target.
#[derive(Clone, Debug)]
pub struct Tracker {
    params: TrackerParams,
    /// Belief over the current minute's VPs (aligned with that minute's
    /// indices); sums to 1.
    beliefs: Vec<f64>,
    /// End positions of the current minute's VPs (for prediction).
    ends: Vec<GeoPos>,
}

impl Tracker {
    /// Start tracking with perfect knowledge: the adversary knows the
    /// target's VP in the first minute (`p(u,0) = 1`).
    pub fn lock_on(params: TrackerParams, minute: &MinuteVps, target_idx: usize) -> Self {
        assert!(target_idx < minute.len(), "target index out of range");
        let mut beliefs = vec![0.0; minute.len()];
        beliefs[target_idx] = 1.0;
        Tracker {
            params,
            beliefs,
            ends: minute.ends.clone(),
        }
    }

    /// Advance one minute: propagate beliefs onto the next minute's VPs.
    pub fn advance(&mut self, next: &MinuteVps) {
        let mut new_beliefs = vec![0.0; next.len()];
        let two_sigma_sq = 2.0 * self.params.sigma_m * self.params.sigma_m;
        for (j, &pj) in self.beliefs.iter().enumerate() {
            if pj <= 0.0 {
                continue;
            }
            let predicted = self.ends[j];
            // Transition weights to each candidate VP of the next minute.
            let mut weights = Vec::new();
            let mut z = 0.0;
            for (i, start) in next.starts.iter().enumerate() {
                let d = predicted.distance(start);
                if d <= self.params.max_gap_m {
                    let w = (-d * d / two_sigma_sq).exp();
                    weights.push((i, w));
                    z += w;
                }
            }
            if z > 0.0 {
                for (i, w) in weights {
                    new_beliefs[i] += pj * w / z;
                }
            }
            // If a hypothesis has no continuation its mass is lost (the
            // trail went cold); we renormalize below so Σp = 1.
        }
        let total: f64 = new_beliefs.iter().sum();
        if total > 0.0 {
            for b in &mut new_beliefs {
                *b /= total;
            }
        } else if !new_beliefs.is_empty() {
            // Complete loss: fall back to uniform uncertainty.
            let u = 1.0 / new_beliefs.len() as f64;
            new_beliefs.fill(u);
        }
        self.beliefs = new_beliefs;
        self.ends = next.ends.clone();
    }

    /// Current belief vector (sums to 1 when non-empty).
    pub fn beliefs(&self) -> &[f64] {
        &self.beliefs
    }

    /// Location entropy `H_t` in bits.
    pub fn entropy_bits(&self) -> f64 {
        -self
            .beliefs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.log2())
            .sum::<f64>()
    }

    /// Tracking success ratio `S_t = p(u, t)` for the target's true VP
    /// index in the current minute.
    pub fn success(&self, true_idx: usize) -> f64 {
        self.beliefs.get(true_idx).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type PairSpec = ((f64, f64), (f64, f64));

    fn minute(pairs: &[PairSpec]) -> MinuteVps {
        MinuteVps {
            starts: pairs.iter().map(|(s, _)| GeoPos::new(s.0, s.1)).collect(),
            ends: pairs.iter().map(|(_, e)| GeoPos::new(e.0, e.1)).collect(),
        }
    }

    #[test]
    fn single_continuation_keeps_certainty() {
        // One vehicle, no guards: the tracker never loses it.
        let m0 = minute(&[((0.0, 0.0), (100.0, 0.0))]);
        let mut tr = Tracker::lock_on(TrackerParams::default(), &m0, 0);
        for k in 1..10 {
            let next = minute(&[((100.0 * k as f64, 0.0), (100.0 * (k + 1) as f64, 0.0))]);
            tr.advance(&next);
            assert!((tr.success(0) - 1.0).abs() < 1e-12);
            assert!(tr.entropy_bits() < 1e-9);
        }
    }

    #[test]
    fn equidistant_guard_splits_belief_in_half() {
        let m0 = minute(&[((0.0, 0.0), (100.0, 0.0))]);
        let mut tr = Tracker::lock_on(TrackerParams::default(), &m0, 0);
        // Next minute: the real continuation and one guard, both starting
        // exactly at the predicted point.
        let next = minute(&[
            ((100.0, 0.0), (200.0, 0.0)),   // real
            ((100.0, 0.0), (150.0, 400.0)), // guard (diverges)
        ]);
        tr.advance(&next);
        assert!((tr.success(0) - 0.5).abs() < 1e-12);
        assert!((tr.entropy_bits() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn belief_mass_decays_exponentially_with_guards() {
        // One guard per minute starting at the true position, with every
        // phantom branch staying alive (each guard's end has its own
        // plausible continuation, as in a real VP database): S_t = 2^-t.
        let m0 = minute(&[((0.0, 0.0), (100.0, 0.0))]);
        let mut tr = Tracker::lock_on(TrackerParams::default(), &m0, 0);
        let mut x = 100.0;
        for t in 1..=6 {
            let mut vps: Vec<((f64, f64), (f64, f64))> = vec![
                ((x, 0.0), (x + 100.0, 0.0)), // real continuation
                ((x, 0.0), (x, 500.0 + x)),   // fresh guard diverging
            ];
            // Continuations for every previously diverged branch, far from
            // the real lane so they never recapture it.
            // t-1 lanes carry previously lost branches.
            for lane in 0..(t - 1) as usize {
                let y = 500.0 + 100.0 * lane as f64 + (x - 100.0);
                vps.push(((x - 100.0, y), (x, y + 100.0)));
            }
            let next = minute(&vps);
            tr.advance(&next);
            assert!(
                (tr.success(0) - 0.5f64.powi(t)).abs() < 1e-6,
                "t={t}: {}",
                tr.success(0)
            );
            x += 100.0;
        }
    }

    #[test]
    fn distant_vps_are_not_candidates() {
        let m0 = minute(&[((0.0, 0.0), (100.0, 0.0))]);
        let mut tr = Tracker::lock_on(TrackerParams::default(), &m0, 0);
        let next = minute(&[
            ((100.0, 0.0), (200.0, 0.0)),
            ((3000.0, 3000.0), (3100.0, 3000.0)), // unrelated vehicle
        ]);
        tr.advance(&next);
        assert!((tr.success(0) - 1.0).abs() < 1e-12);
        assert_eq!(tr.beliefs()[1], 0.0);
    }

    #[test]
    fn closer_candidate_gets_more_weight() {
        let m0 = minute(&[((0.0, 0.0), (100.0, 0.0))]);
        let mut tr = Tracker::lock_on(TrackerParams::default(), &m0, 0);
        let next = minute(&[
            ((105.0, 0.0), (200.0, 0.0)),   // 5 m deviation
            ((100.0, 60.0), (200.0, 60.0)), // 60 m deviation
        ]);
        tr.advance(&next);
        assert!(tr.beliefs()[0] > tr.beliefs()[1]);
        let sum: f64 = tr.beliefs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cold_trail_falls_back_to_uniform() {
        let m0 = minute(&[((0.0, 0.0), (100.0, 0.0))]);
        let mut tr = Tracker::lock_on(TrackerParams::default(), &m0, 0);
        let next = minute(&[
            ((5000.0, 0.0), (5100.0, 0.0)),
            ((6000.0, 0.0), (6100.0, 0.0)),
        ]);
        tr.advance(&next);
        assert!((tr.success(0) - 0.5).abs() < 1e-12);
        assert!((tr.entropy_bits() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn beliefs_always_normalized() {
        let m0 = minute(&[((0.0, 0.0), (50.0, 0.0))]);
        let mut tr = Tracker::lock_on(TrackerParams::default(), &m0, 0);
        for k in 1..8 {
            let base = 50.0 * k as f64;
            let next = minute(&[
                ((base, 0.0), (base + 50.0, 0.0)),
                ((base + 10.0, 10.0), (base + 60.0, 10.0)),
                ((base - 20.0, -5.0), (base + 30.0, -5.0)),
            ]);
            tr.advance(&next);
            let sum: f64 = tr.beliefs().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "minute {k}: sum {sum}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lock_on_validates_target() {
        let m0 = minute(&[((0.0, 0.0), (1.0, 0.0))]);
        let _ = Tracker::lock_on(TrackerParams::default(), &m0, 5);
    }
}
