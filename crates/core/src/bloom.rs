//! The neighbor-fingerprint Bloom filter `N_u` (Section 5.1.1, 6.3.2).
//!
//! Each VP carries a 2048-bit (256-byte) Bloom filter summarizing the view
//! digests received from neighbors — at most two (first and last) per
//! neighbor. Viewmap construction validates a candidate edge by querying
//! each VP's element VDs against the *other* VP's filter; the two-way check
//! squares the false-positive rate (Fig. 14).

use vm_crypto::Digest16;

/// Default filter size in bits (the paper selects m = 2048, §6.3.2).
pub const DEFAULT_M_BITS: usize = 2048;

/// Default number of hash functions.
///
/// Realistic per-minute neighbor counts in traffic are tens of vehicles
/// (≤ [`crate::types::MAX_NEIGHBORS`]); k = 8 keeps the per-query false
/// positive rate ≈ 10⁻⁴ at 50 neighbors (100 inserted VDs).
pub const DEFAULT_K: usize = 8;

/// The double-hashing halves of a key: `h1` and the odd-forced stride
/// `h2` (odd so the stride visits every slot of the power-of-two-free
/// modulus). **The single source of the probe derivation** — shared by
/// [`BloomFilter::insert`]/[`BloomFilter::contains`] and by viewmap
/// construction's flat-table probes, so the membership math cannot
/// diverge between the wire filter and the viewlink engine.
#[inline]
pub fn probe_halves(key: &Digest16) -> (u64, u64) {
    (key.low_u64(), key.high_u64() | 1)
}

/// Probe slot `i` of the double-hashing sequence `h1 + i·h2 mod m`.
#[inline]
pub fn probe_slot(h1: u64, h2: u64, m: u64, i: u64) -> u64 {
    h1.wrapping_add(i.wrapping_mul(h2)) % m
}

/// A fixed-size Bloom filter keyed by [`Digest16`] values.
#[derive(Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u8>,
    m_bits: usize,
    k: usize,
}

impl std::fmt::Debug for BloomFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BloomFilter(m={}, k={}, ones={})",
            self.m_bits,
            self.k,
            self.count_ones()
        )
    }
}

impl Default for BloomFilter {
    fn default() -> Self {
        Self::new(DEFAULT_M_BITS, DEFAULT_K)
    }
}

impl BloomFilter {
    /// Create an empty filter with `m_bits` bits and `k` hash functions.
    pub fn new(m_bits: usize, k: usize) -> Self {
        assert!(
            m_bits >= 8 && m_bits.is_multiple_of(8),
            "m must be a byte multiple"
        );
        assert!(k >= 1, "at least one hash function");
        BloomFilter {
            bits: vec![0u8; m_bits / 8],
            m_bits,
            k,
        }
    }

    /// Reconstruct a filter from its wire bytes.
    pub fn from_bytes(bytes: Vec<u8>, k: usize) -> Self {
        assert!(!bytes.is_empty());
        let m_bits = bytes.len() * 8;
        BloomFilter {
            bits: bytes,
            m_bits,
            k,
        }
    }

    /// Size in bits.
    pub fn m_bits(&self) -> usize {
        self.m_bits
    }

    /// Number of hash functions.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Wire bytes (m/8 bytes; 256 for the default).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Slot indices for a key: double hashing `h1 + i*h2 mod m` over the
    /// two 64-bit halves of the digest.
    fn slots(&self, key: &Digest16) -> impl Iterator<Item = usize> + '_ {
        let (h1, h2) = probe_halves(key);
        let m = self.m_bits as u64;
        (0..self.k as u64).map(move |i| probe_slot(h1, h2, m, i) as usize)
    }

    /// Insert a key (allocation-free: slot indices are recomputed inline
    /// rather than collected, since insertion is on the per-second VD
    /// receive path).
    pub fn insert(&mut self, key: &Digest16) {
        let (h1, h2) = probe_halves(key);
        let m = self.m_bits as u64;
        for i in 0..self.k as u64 {
            let s = probe_slot(h1, h2, m, i) as usize;
            self.bits[s / 8] |= 1 << (s % 8);
        }
    }

    /// Query a key: true means "possibly present".
    pub fn contains(&self, key: &Digest16) -> bool {
        self.slots(key)
            .all(|s| self.bits[s / 8] & (1 << (s % 8)) != 0)
    }

    /// Append the filter's bits as little-endian `u64` words (the last
    /// word zero-padded when `m` is not a multiple of 64). This is the
    /// layout the viewlink engine's flat probe arena uses: one contiguous
    /// word table per member, probed with [`probe_slot`] via
    /// `words[s / 64] & (1 << (s % 64))` — bit-for-bit the membership
    /// test [`contains`](Self::contains) runs on the byte array.
    pub fn append_words(&self, out: &mut Vec<u64>) {
        let mut chunks = self.bits.chunks_exact(8);
        for c in &mut chunks {
            out.push(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut b = [0u8; 8];
            b[..rem.len()].copy_from_slice(rem);
            out.push(u64::from_le_bytes(b));
        }
    }

    /// Number of set bits (diagnostics; also used to reject trivially
    /// poisoned all-ones filters, §6.3.2).
    ///
    /// Word-at-a-time popcount: the filter is scanned as `u64` words (one
    /// `popcnt` each on x86-64) instead of per byte — this runs on every
    /// submission via [`is_suspicious`](Self::is_suspicious) and per
    /// member during viewlink prefiltering.
    pub fn count_ones(&self) -> usize {
        let mut words = self.bits.chunks_exact(8);
        let mut ones: usize = 0;
        for w in &mut words {
            let word = u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
            ones += word.count_ones() as usize;
        }
        for b in words.remainder() {
            ones += b.count_ones() as usize;
        }
        ones
    }

    /// Fill ratio in [0, 1].
    pub fn fill_ratio(&self) -> f64 {
        self.count_ones() as f64 / self.m_bits as f64
    }

    /// A saturated filter claims neighborship with everyone — the paper
    /// notes attackers may fabricate all-ones bit-arrays. The server
    /// rejects filters whose fill ratio is implausible for the neighbor
    /// cap (§6.3.2).
    pub fn is_suspicious(&self, max_neighbors: usize) -> bool {
        // 2 VDs per neighbor, k bits each: expected fill ≤ 1-exp(-2nk/m).
        let expected = 1.0 - (-((2 * max_neighbors * self.k) as f64) / self.m_bits as f64).exp();
        self.fill_ratio() > (expected * 1.15).min(0.98)
    }
}

/// Closed-form two-way false-linkage rate (Fig. 14): a single filter with
/// `n` neighbor keys inserted using `k` hash functions has false-positive
/// rate `(1 - (1-1/m)^{nk})^k`; the two-way linkage check squares it.
pub fn false_linkage_rate(m_bits: usize, n_neighbors: usize, k: usize) -> f64 {
    let m = m_bits as f64;
    let single = (1.0 - (1.0 - 1.0 / m).powf((n_neighbors * k) as f64)).powi(k as i32);
    single * single
}

/// The optimal hash-function count `k = (m/n) ln 2` used by the paper's
/// Fig. 14 sweep.
pub fn optimal_k(m_bits: usize, n_neighbors: usize) -> usize {
    (((m_bits as f64 / n_neighbors.max(1) as f64) * std::f64::consts::LN_2).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Digest16 {
        Digest16::hash(&i.to_le_bytes())
    }

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::default();
        for i in 0..500 {
            f.insert(&key(i));
        }
        for i in 0..500 {
            assert!(f.contains(&key(i)), "false negative for {i}");
        }
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::default();
        for i in 0..100 {
            assert!(!f.contains(&key(i)));
        }
        assert_eq!(f.count_ones(), 0);
    }

    #[test]
    fn false_positive_rate_is_low_at_design_load() {
        // 50 neighbors × 2 VDs = 100 keys in a 2048-bit filter with k=8.
        let mut f = BloomFilter::default();
        for i in 0..100 {
            f.insert(&key(i));
        }
        let fps = (10_000..60_000).filter(|&i| f.contains(&key(i))).count();
        let rate = fps as f64 / 50_000.0;
        assert!(rate < 0.005, "per-query fp rate {rate}");
    }

    #[test]
    fn wire_roundtrip() {
        let mut f = BloomFilter::default();
        for i in 0..32 {
            f.insert(&key(i));
        }
        let bytes = f.as_bytes().to_vec();
        assert_eq!(bytes.len(), 256);
        let g = BloomFilter::from_bytes(bytes, DEFAULT_K);
        assert_eq!(f, g);
        for i in 0..32 {
            assert!(g.contains(&key(i)));
        }
    }

    #[test]
    fn word_view_agrees_with_contains() {
        // Probing the word view with probe_halves/probe_slot must be the
        // same membership function as `contains` on the byte array.
        let mut f = BloomFilter::default();
        for i in 0..64 {
            f.insert(&key(i));
        }
        let mut words = Vec::new();
        f.append_words(&mut words);
        assert_eq!(words.len(), f.m_bits() / 64);
        let m = f.m_bits() as u64;
        for i in 0..2000u64 {
            let (h1, h2) = probe_halves(&key(i));
            let via_words = (0..f.k() as u64).all(|j| {
                let s = probe_slot(h1, h2, m, j);
                words[(s / 64) as usize] & (1u64 << (s % 64)) != 0
            });
            assert_eq!(via_words, f.contains(&key(i)), "key {i}");
        }
    }

    #[test]
    fn saturated_filter_is_suspicious() {
        let mut f = BloomFilter::default();
        let mut i = 0u64;
        while f.fill_ratio() < 0.995 {
            f.insert(&key(i));
            i += 1;
        }
        assert!(f.is_suspicious(crate::types::MAX_NEIGHBORS));
    }

    #[test]
    fn normal_filter_is_not_suspicious() {
        let mut f = BloomFilter::default();
        for i in 0..100 {
            f.insert(&key(i)); // 50 neighbors' worth
        }
        assert!(!f.is_suspicious(crate::types::MAX_NEIGHBORS));
    }

    #[test]
    fn closed_form_matches_paper_design_point() {
        // §6.3.2: m = 2048 bits has ~0.1% false linkage at 300 neighbors
        // with the optimal k.
        let k = optimal_k(2048, 300);
        let p = false_linkage_rate(2048, 300, k);
        assert!(p > 0.0005 && p < 0.003, "paper design point: {p}");
    }

    #[test]
    fn closed_form_monotone_in_m() {
        let n = 200;
        let rates: Vec<f64> = [1024, 2048, 3072, 4096]
            .iter()
            .map(|&m| false_linkage_rate(m, n, optimal_k(m, n)))
            .collect();
        for w in rates.windows(2) {
            assert!(w[1] < w[0], "bigger filters must link falsely less");
        }
    }

    #[test]
    #[should_panic(expected = "byte multiple")]
    fn non_byte_size_rejected() {
        let _ = BloomFilter::new(1001, 4);
    }
}
