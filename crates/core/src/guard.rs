//! Guard VPs — cooperative path obfuscation (Section 5.1.2).
//!
//! At the end of each minute, a vehicle picks ⌈α·m⌉ of its m neighbors and
//! fabricates one guard VP per pick: a plausible trajectory from that
//! neighbor's *initial* location `L_x1` to the vehicle's own final
//! position, obtained from a driving-route service (here: [`vm_geo::Router`]
//! standing in for the Google Directions API). Guard VDs are variably
//! spaced along the route; hash fields are random (there is no video);
//! guard and actual VPs insert each other's VDs into their Bloom filters so
//! guards join the viewmap like any real neighbor. From the server's view
//! they are indistinguishable from actual VPs — which is exactly what makes
//! the tracker's per-minute linking ambiguous.

use crate::types::{GeoPos, VpId, SECONDS_PER_VP};
use crate::vd::ViewDigest;
use crate::vp::{FinalizedMinute, ViewProfile, VpKind};
use rand::Rng;
use vm_crypto::Digest16;
use vm_geo::{Point, Router};

/// Guard-VP creation parameters.
#[derive(Clone, Copy, Debug)]
pub struct GuardConfig {
    /// Fraction α of neighbors to cover with guard VPs (paper: α = 0.1).
    pub alpha: f64,
    /// Per-second spacing jitter: each second's travel distance is the
    /// mean spacing scaled by `1 ± jitter` ("variably spaced within the
    /// predefined margin").
    pub spacing_jitter: f64,
    /// Mean video bitrate used for plausible file-size fields, bytes/s
    /// (50 MB per minute, Section 6.1).
    pub bytes_per_second: u64,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            alpha: 0.1,
            spacing_jitter: 0.35,
            bytes_per_second: 50 * 1024 * 1024 / 60,
        }
    }
}

impl GuardConfig {
    /// Number of guard VPs for `m` neighbors: ⌈α·m⌉ (0 for no neighbors).
    pub fn guards_for(&self, m: usize) -> usize {
        if m == 0 {
            0
        } else {
            (self.alpha * m as f64).ceil() as usize
        }
    }
}

/// A source of driving routes between two points — the shape of the
/// Google Directions API the paper calls out (\[12\]).
pub trait Directions {
    /// A polyline from `from` to `to`, or `None` if unroutable.
    fn driving_route(&self, from: GeoPos, to: GeoPos) -> Option<Vec<Point>>;
}

impl Directions for Router<'_> {
    fn driving_route(&self, from: GeoPos, to: GeoPos) -> Option<Vec<Point>> {
        self.route_points(&from.into(), &to.into())
            .map(|r| r.points)
    }
}

/// Fallback provider: straight-line routes (used in unit tests and when no
/// road network is loaded).
#[derive(Clone, Copy, Debug, Default)]
pub struct StraightLine;

impl Directions for StraightLine {
    fn driving_route(&self, from: GeoPos, to: GeoPos) -> Option<Vec<Point>> {
        Some(vec![from.into(), to.into()])
    }
}

/// Create guard VPs for a finalized minute and cross-link them with the
/// actual VP's Bloom filter. Returns the guard profiles (which the vehicle
/// uploads and then deletes, Section 5.1.2).
pub fn create_guards<R: Rng + ?Sized, D: Directions>(
    rng: &mut R,
    minute: &mut FinalizedMinute,
    directions: &D,
    cfg: &GuardConfig,
) -> Vec<ViewProfile> {
    let m = minute.neighbors.len();
    let want = cfg.guards_for(m);
    if want == 0 {
        return Vec::new();
    }
    // Randomly pick ⌈α·m⌉ distinct neighbors.
    let mut idx: Vec<usize> = (0..m).collect();
    for i in 0..want.min(m) {
        let j = rng.gen_range(i..m);
        idx.swap(i, j);
    }
    let own_end = minute.profile.vds.last().expect("finalized VP has VDs").loc;
    let start_time = minute
        .profile
        .vds
        .first()
        .expect("finalized VP has VDs")
        .time
        .saturating_sub(1);

    let mut guards = Vec::with_capacity(want);
    for &ni in idx.iter().take(want.min(m)) {
        let neighbor_start = minute.neighbors[ni].initial_loc();
        let Some(polyline) = directions.driving_route(neighbor_start, own_end) else {
            continue;
        };
        let guard = fabricate_guard(rng, &polyline, neighbor_start, start_time, cfg);
        // Mutual neighborship: guard VDs into the actual VP's filter, the
        // actual VP's first/last VDs into the guard's filter.
        let mut guard = guard;
        let own_first = minute.profile.vds.first().expect("vds");
        let own_last = minute.profile.vds.last().expect("vds");
        guard.bloom.insert(&own_first.bloom_key());
        guard.bloom.insert(&own_last.bloom_key());
        let gfirst = guard.vds.first().expect("guard vds").bloom_key();
        let glast = guard.vds.last().expect("guard vds").bloom_key();
        minute.profile.bloom.insert(&gfirst);
        minute.profile.bloom.insert(&glast);
        guards.push(guard);
    }
    guards
}

/// Build one guard VP along a polyline.
fn fabricate_guard<R: Rng + ?Sized>(
    rng: &mut R,
    polyline: &[Point],
    initial_loc: GeoPos,
    start_time: u64,
    cfg: &GuardConfig,
) -> ViewProfile {
    let total_len: f64 = polyline.windows(2).map(|w| w[0].distance(&w[1])).sum();
    let n = SECONDS_PER_VP as usize;
    // Variably spaced arc-length samples that end exactly at the route end.
    let mut steps: Vec<f64> = (0..n)
        .map(|_| 1.0 + rng.gen_range(-cfg.spacing_jitter..=cfg.spacing_jitter))
        .collect();
    let sum: f64 = steps.iter().sum();
    for s in &mut steps {
        *s *= total_len / sum;
    }
    let mut vp_id_bytes = [0u8; 16];
    rng.fill(&mut vp_id_bytes);
    let vp_id = VpId(Digest16(vp_id_bytes));

    let mut vds = Vec::with_capacity(n);
    let mut arc = 0.0;
    let mut file_size = 0u64;
    for (i, step) in steps.iter().enumerate() {
        arc += step;
        let loc: GeoPos = position_on_polyline(polyline, arc).into();
        file_size += (cfg.bytes_per_second as f64 * rng.gen_range(0.9..1.1)) as u64;
        let mut hash_bytes = [0u8; 16];
        rng.fill(&mut hash_bytes);
        vds.push(ViewDigest {
            seq: (i + 1) as u16,
            flags: 0,
            time: start_time + i as u64 + 1,
            loc,
            file_size,
            initial_loc,
            vp_id,
            hash: Digest16(hash_bytes),
        });
    }
    ViewProfile {
        vds,
        bloom: crate::bloom::BloomFilter::default(),
        kind: VpKind::Guard,
    }
}

fn position_on_polyline(polyline: &[Point], arc: f64) -> Point {
    if polyline.len() == 1 {
        return polyline[0];
    }
    let mut remaining = arc.max(0.0);
    for w in polyline.windows(2) {
        let len = w[0].distance(&w[1]);
        if remaining <= len {
            let t = if len > 0.0 { remaining / len } else { 0.0 };
            return w[0].lerp(&w[1], t);
        }
        remaining -= len;
    }
    *polyline.last().expect("non-empty polyline")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vp::exchange_minute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn minute_with_neighbor(seed: u64) -> FinalizedMinute {
        let mut rng = StdRng::seed_from_u64(seed);
        let (fa, _) = exchange_minute(
            &mut rng,
            0,
            |s| GeoPos::new(100.0 + s as f64 * 12.0, 0.0),
            |s| GeoPos::new(s as f64 * 12.0, 60.0),
        );
        fa
    }

    #[test]
    fn guard_count_follows_ceil_alpha_m() {
        let cfg = GuardConfig::default();
        assert_eq!(cfg.guards_for(0), 0);
        assert_eq!(cfg.guards_for(1), 1);
        assert_eq!(cfg.guards_for(10), 1);
        assert_eq!(cfg.guards_for(11), 2);
        assert_eq!(cfg.guards_for(100), 10);
        let half = GuardConfig {
            alpha: 0.5,
            ..GuardConfig::default()
        };
        assert_eq!(half.guards_for(10), 5);
    }

    #[test]
    fn guard_trajectory_spans_neighbor_start_to_own_end() {
        let mut fin = minute_with_neighbor(1);
        let mut rng = StdRng::seed_from_u64(2);
        let neighbor_start = fin.neighbors[0].initial_loc();
        let own_end = fin.profile.vds.last().unwrap().loc;
        let guards = create_guards(&mut rng, &mut fin, &StraightLine, &GuardConfig::default());
        assert_eq!(guards.len(), 1);
        let g = &guards[0];
        assert_eq!(g.kind, VpKind::Guard);
        assert_eq!(g.vds.len(), 60);
        // Starts near the neighbor's initial location...
        assert!(g.vds[0].loc.distance(&neighbor_start) < 60.0);
        // ...and ends exactly at the creator's final position.
        assert!(g.vds[59].loc.distance(&own_end) < 1.0);
        // Initial-loc field carries L_x1 like a real VD stream would.
        assert_eq!(g.vds[0].initial_loc, neighbor_start);
    }

    #[test]
    fn guard_and_actual_are_mutually_linked() {
        let mut fin = minute_with_neighbor(3);
        let mut rng = StdRng::seed_from_u64(4);
        let guards = create_guards(&mut rng, &mut fin, &StraightLine, &GuardConfig::default());
        let actual = fin.profile.clone().into_stored();
        let guard = guards[0].clone().into_stored();
        assert!(actual.mutually_linked(&guard));
    }

    #[test]
    fn guard_wire_shape_indistinguishable_from_actual() {
        let mut fin = minute_with_neighbor(5);
        let mut rng = StdRng::seed_from_u64(6);
        let guards = create_guards(&mut rng, &mut fin, &StraightLine, &GuardConfig::default());
        let g = &guards[0];
        let a = &fin.profile;
        // Same VD count, same wire size, same seq/time progression, same
        // flags, plausible monotone file sizes.
        assert_eq!(g.vds.len(), a.vds.len());
        assert_eq!(g.wire_bytes(), a.wire_bytes());
        for (i, (gv, av)) in g.vds.iter().zip(&a.vds).enumerate() {
            assert_eq!(gv.seq, av.seq, "seq at {i}");
            assert_eq!(gv.time, av.time, "time at {i}");
            assert_eq!(gv.flags, av.flags);
            assert_eq!(gv.encode().len(), 72);
        }
        for w in g.vds.windows(2) {
            assert!(w[1].file_size > w[0].file_size, "file size must grow");
        }
        // Total fabricated size is plausible for a 1-min recording.
        let total = g.vds.last().unwrap().file_size;
        assert!((40 * 1024 * 1024..60 * 1024 * 1024).contains(&total));
    }

    #[test]
    fn guard_spacing_is_variable_not_uniform() {
        let mut fin = minute_with_neighbor(7);
        let mut rng = StdRng::seed_from_u64(8);
        let guards = create_guards(&mut rng, &mut fin, &StraightLine, &GuardConfig::default());
        let g = &guards[0];
        let spacings: Vec<f64> = g
            .vds
            .windows(2)
            .map(|w| w[0].loc.distance(&w[1].loc))
            .collect();
        let mean = spacings.iter().sum::<f64>() / spacings.len() as f64;
        let spread = spacings
            .iter()
            .map(|s| (s - mean).abs())
            .fold(0.0f64, f64::max);
        assert!(
            spread > mean * 0.05,
            "spacing should vary (max dev {spread:.3} vs mean {mean:.3})"
        );
    }

    #[test]
    fn no_neighbors_no_guards() {
        let mut rng = StdRng::seed_from_u64(9);
        let (mut fa, _) = exchange_minute(
            &mut rng,
            0,
            |s| GeoPos::new(s as f64, 0.0),
            |s| GeoPos::new(s as f64, 1000.0), // out of range: no neighbors
        );
        let guards = create_guards(&mut rng, &mut fa, &StraightLine, &GuardConfig::default());
        assert!(guards.is_empty());
    }

    #[test]
    fn guard_ids_are_fresh_random() {
        let mut fin = minute_with_neighbor(10);
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = GuardConfig {
            alpha: 1.0,
            ..GuardConfig::default()
        };
        let guards = create_guards(&mut rng, &mut fin, &StraightLine, &cfg);
        for g in &guards {
            assert_ne!(g.id(), fin.profile.id());
            assert_ne!(g.id(), fin.neighbors[0].vp_id);
        }
    }
}
