//! View profiles (VPs) — the 1-minute video summaries (Section 5.1.1).
//!
//! A VP compiles the 60 view digests of one video together with a Bloom
//! filter over the neighbor VDs retained that minute (at most two per
//! neighbor). VPs are what vehicles upload — videos themselves never leave
//! the vehicle unless solicited. The user-side storage cost is exactly the
//! paper's accounting: 60×72 B of VDs + 256 B of filter + 8 B secret
//! = 4584 B per minute of video (Section 6.1).

use crate::bloom::BloomFilter;
use crate::neighbor::{Accept, NeighborRecord, NeighborTable};
use crate::types::{GeoPos, MinuteId, VpId, SECONDS_PER_VP};
use crate::vd::{VdChain, ViewDigest, VD_WIRE_BYTES};
use rand::Rng;
use std::sync::OnceLock;

/// What kind of VP this is — known only on the vehicle (and, for trusted
/// VPs, to the authority that produced them). From the server's viewpoint
/// actual and guard VPs are indistinguishable (footnote 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VpKind {
    /// A real recording's VP.
    Actual,
    /// A path-obfuscation VP (no video behind it).
    Guard,
    /// A VP from an authority vehicle (trust seed).
    Trusted,
}

/// A complete view profile as assembled on the vehicle.
#[derive(Clone, Debug)]
pub struct ViewProfile {
    /// The 60 per-second view digests.
    pub vds: Vec<ViewDigest>,
    /// Bloom filter over retained neighbor VDs (`N_u`).
    pub bloom: BloomFilter,
    /// Vehicle-side kind tag (not on the wire).
    pub kind: VpKind,
}

impl ViewProfile {
    /// The VP identifier `R_u`.
    pub fn id(&self) -> VpId {
        self.vds
            .first()
            .map(|vd| vd.vp_id)
            .unwrap_or(VpId(vm_crypto::Digest16::ZERO))
    }

    /// User-side storage bytes for this VP (+8-byte secret for actual VPs):
    /// the paper's 4584-byte figure.
    pub fn user_storage_bytes(&self) -> usize {
        self.vds.len() * VD_WIRE_BYTES + self.bloom.as_bytes().len() + 8
    }

    /// Upload (wire) bytes: VDs + Bloom filter. The secret never leaves
    /// the vehicle.
    pub fn wire_bytes(&self) -> usize {
        self.vds.len() * VD_WIRE_BYTES + self.bloom.as_bytes().len()
    }

    /// Convert into the server-side stored form.
    pub fn into_stored(self) -> StoredVp {
        let id = self.id();
        let trusted = self.kind == VpKind::Trusted;
        StoredVp::new(id, self.vds, self.bloom, trusted)
    }
}

/// A VP as stored in the server's VP database. No owner identity, no
/// secret; `trusted` is set only for authority-submitted VPs.
#[derive(Clone, Debug)]
pub struct StoredVp {
    /// VP identifier `R_u`.
    pub id: VpId,
    /// The 60 view digests.
    pub vds: Vec<ViewDigest>,
    /// Neighbor fingerprint filter `N_u`.
    pub bloom: BloomFilter,
    /// Authority trust seed?
    pub trusted: bool,
    /// Lazily materialized element-VD Bloom keys (see
    /// [`link_keys`](Self::link_keys)): 60 SHA-256 digests that every
    /// viewmap build of this VP's minute would otherwise recompute.
    link_keys: OnceLock<Box<[vm_crypto::Digest16]>>,
}

impl StoredVp {
    /// Assemble a stored VP. (`link_keys` starts empty; it fills on first
    /// [`link_keys`](Self::link_keys) call.)
    pub fn new(id: VpId, vds: Vec<ViewDigest>, bloom: BloomFilter, trusted: bool) -> Self {
        StoredVp {
            id,
            vds,
            bloom,
            trusted,
            link_keys: OnceLock::new(),
        }
    }

    /// Absolute start second of the minute this VP covers.
    pub fn start_time(&self) -> u64 {
        self.vds
            .first()
            .map(|vd| vd.time.saturating_sub(1))
            .unwrap_or(0)
    }

    /// The minute this VP belongs to.
    pub fn minute(&self) -> MinuteId {
        MinuteId::of_second(self.start_time())
    }

    /// Claimed position at 1-based second `i` of the minute, if present.
    pub fn loc_at(&self, seq: u16) -> Option<GeoPos> {
        self.vds.iter().find(|vd| vd.seq == seq).map(|vd| vd.loc)
    }

    /// First claimed position.
    pub fn start_loc(&self) -> GeoPos {
        self.vds
            .first()
            .map(|vd| vd.loc)
            .unwrap_or(GeoPos::new(0.0, 0.0))
    }

    /// Last claimed position.
    pub fn end_loc(&self) -> GeoPos {
        self.vds
            .last()
            .map(|vd| vd.loc)
            .unwrap_or(GeoPos::new(0.0, 0.0))
    }

    /// Axis-aligned bounding box of the claimed trajectory:
    /// `(min_x, min_y, max_x, max_y)`. Used as an O(1) prefilter before
    /// the O(60) aligned-distance scans.
    pub fn bounding_box(&self) -> (f64, f64, f64, f64) {
        let mut bb = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        for vd in &self.vds {
            bb.0 = bb.0.min(vd.loc.x);
            bb.1 = bb.1.min(vd.loc.y);
            bb.2 = bb.2.max(vd.loc.x);
            bb.3 = bb.3.max(vd.loc.y);
        }
        bb
    }

    /// Do the recorded time ranges of the two VPs overlap at all? O(1);
    /// false means [`min_aligned_distance`](Self::min_aligned_distance)
    /// is `None`.
    pub fn time_ranges_overlap(&self, other: &StoredVp) -> bool {
        match (
            self.vds.first(),
            self.vds.last(),
            other.vds.first(),
            other.vds.last(),
        ) {
            (Some(sf), Some(sl), Some(of), Some(ol)) => sf.time <= ol.time && of.time <= sl.time,
            _ => false,
        }
    }

    /// Minimum time-aligned distance between two VPs' trajectories
    /// (`None` if they share no common seconds). Short-circuits on
    /// disjoint time ranges before touching the per-second data.
    pub fn min_aligned_distance(&self, other: &StoredVp) -> Option<f64> {
        if !self.time_ranges_overlap(other) {
            return None;
        }
        let mut best: Option<f64> = None;
        let mut j = 0usize;
        for vd in &self.vds {
            while j < other.vds.len() && other.vds[j].time < vd.time {
                j += 1;
            }
            if j < other.vds.len() && other.vds[j].time == vd.time {
                let d = vd.loc.distance(&other.vds[j].loc);
                best = Some(best.map_or(d, |b: f64| b.min(d)));
            }
        }
        best
    }

    /// Did the two trajectories come within `radius` of each other at any
    /// shared second? Equivalent to `min_aligned_distance(other) <= radius`
    /// but cheap in the common cases: disjoint time ranges and separated
    /// bounding boxes return immediately, and the aligned scan exits at
    /// the first second inside `radius` instead of finishing the minute.
    pub fn within_aligned_distance(&self, other: &StoredVp, radius: f64) -> bool {
        if !self.time_ranges_overlap(other) {
            return false;
        }
        let a = self.bounding_box();
        let b = other.bounding_box();
        let dx = (b.0 - a.2).max(a.0 - b.2).max(0.0);
        let dy = (b.1 - a.3).max(a.1 - b.3).max(0.0);
        if dx * dx + dy * dy > radius * radius {
            return false;
        }
        let mut j = 0usize;
        for vd in &self.vds {
            while j < other.vds.len() && other.vds[j].time < vd.time {
                j += 1;
            }
            if j < other.vds.len()
                && other.vds[j].time == vd.time
                && vd.loc.distance(&other.vds[j].loc) <= radius
            {
                return true;
            }
        }
        false
    }

    /// The Bloom keys of this VP's element VDs, computed once. Viewmap
    /// construction caches these per member so the pairwise two-way
    /// linkage checks stop re-hashing 60 VDs per candidate pair. The 60
    /// digests are independent messages, so they run through the
    /// multi-buffer engine ([`crate::vd::bloom_keys_many`]) rather than
    /// one serial hash chain at a time.
    pub fn bloom_keys(&self) -> Vec<vm_crypto::Digest16> {
        crate::vd::bloom_keys_many(&self.vds)
    }

    /// The element-VD Bloom keys, hashed on first call and cached for the
    /// VP's lifetime: investigations of the same minute (and the
    /// sequential/parallel build pair in the equivalence tests) share one
    /// hashing pass per VP. Safe to race — [`OnceLock`] keeps the first
    /// result. Callers that mutate `vds` after a build (test-only surgery)
    /// must construct a fresh `StoredVp` to avoid serving stale keys.
    pub fn link_keys(&self) -> &[vm_crypto::Digest16] {
        self.link_keys
            .get_or_init(|| self.bloom_keys().into_boxed_slice())
    }

    /// Is the element-VD key cache already materialized? Observability
    /// hook for the ingest/recovery paths that promise warm keys
    /// (`submit_batch_warm`, log replay): tests assert on it, and
    /// capacity planning can count warm VPs without hashing anything.
    pub fn is_key_warm(&self) -> bool {
        self.link_keys.get().is_some()
    }

    /// One-way linkage test against precomputed element keys (see
    /// [`bloom_keys`](Self::bloom_keys)).
    pub fn links_to_keys(&self, other_keys: &[vm_crypto::Digest16]) -> bool {
        other_keys.iter().any(|k| self.bloom.contains(k))
    }

    /// One-way linkage test: does any of `other`'s element VDs pass this
    /// VP's Bloom filter?
    pub fn links_to(&self, other: &StoredVp) -> bool {
        other
            .vds
            .iter()
            .any(|vd| self.bloom.contains(&vd.bloom_key()))
    }

    /// The paper's two-way viewlink validation (Section 5.2.1).
    pub fn mutually_linked(&self, other: &StoredVp) -> bool {
        self.links_to(other) && other.links_to(self)
    }
}

/// Everything a vehicle ends a minute with: the finalized VP, the secret
/// behind its identifier, and the neighbor records needed for guard-VP
/// creation.
#[derive(Clone, Debug)]
pub struct FinalizedMinute {
    /// The actual VP (bloom already covers real neighbors; guard VDs can
    /// still be added by [`crate::guard`]).
    pub profile: ViewProfile,
    /// Secret number `Q_u` (kept by the owner for solicitation/reward).
    pub secret: [u8; 8],
    /// Neighbor records observed this minute.
    pub neighbors: Vec<NeighborRecord>,
}

/// Vehicle-side builder: drives one minute of recording, broadcasting, and
/// neighbor bookkeeping, then finalizes the VP.
#[derive(Clone, Debug)]
pub struct VpBuilder {
    chain: VdChain,
    secret: [u8; 8],
    kind: VpKind,
    own_vds: Vec<ViewDigest>,
    table: NeighborTable,
}

impl VpBuilder {
    /// Start a minute at absolute second `start_time` and initial location
    /// `loc`, with a freshly drawn secret.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, start_time: u64, loc: GeoPos, kind: VpKind) -> Self {
        let mut secret = [0u8; 8];
        rng.fill(&mut secret);
        VpBuilder {
            chain: VdChain::new(secret, start_time, loc),
            secret,
            kind,
            own_vds: Vec::with_capacity(SECONDS_PER_VP as usize),
            table: NeighborTable::new(),
        }
    }

    /// This VP's identifier.
    pub fn vp_id(&self) -> VpId {
        self.chain.vp_id()
    }

    /// Record one second of video and produce the VD to broadcast.
    pub fn record_second(&mut self, chunk: &[u8], loc: GeoPos) -> ViewDigest {
        let vd = self.chain.extend(chunk, loc);
        self.own_vds.push(vd);
        vd
    }

    /// Offer a received neighbor VD (validated per Section 5.1.1).
    pub fn accept_neighbor_vd(&mut self, vd: ViewDigest, now: u64, my_loc: GeoPos) -> Accept {
        self.table.observe(vd, now, my_loc)
    }

    /// Current number of distinct neighbors.
    pub fn neighbor_count(&self) -> usize {
        self.table.len()
    }

    /// Seconds recorded so far.
    pub fn seconds(&self) -> u16 {
        self.chain.seconds()
    }

    /// Finalize the minute: build the Bloom filter over the retained
    /// neighbor VDs (first and last per neighbor) and compile the VP.
    ///
    /// Panics if fewer than 1 second was recorded.
    pub fn finalize(self) -> FinalizedMinute {
        assert!(!self.own_vds.is_empty(), "nothing recorded this minute");
        let mut bloom = BloomFilter::default();
        let neighbors: Vec<NeighborRecord> = self.table.records().cloned().collect();
        for rec in &neighbors {
            bloom.insert(&rec.first.bloom_key());
            if rec.last != rec.first {
                bloom.insert(&rec.last.bloom_key());
            }
        }
        FinalizedMinute {
            profile: ViewProfile {
                vds: self.own_vds,
                bloom,
                kind: self.kind,
            },
            secret: self.secret,
            neighbors,
        }
    }
}

/// Drive two builders through a minute of mutual VD exchange (test/demo
/// helper): every second both record and each receives the other's VD.
pub fn exchange_minute<R: Rng + ?Sized>(
    rng: &mut R,
    start_time: u64,
    path_a: impl Fn(u64) -> GeoPos,
    path_b: impl Fn(u64) -> GeoPos,
) -> (FinalizedMinute, FinalizedMinute) {
    let mut a = VpBuilder::new(rng, start_time, path_a(0), VpKind::Actual);
    let mut b = VpBuilder::new(rng, start_time, path_b(0), VpKind::Actual);
    for s in 0..SECONDS_PER_VP {
        let now = start_time + s + 1;
        let la = path_a(s);
        let lb = path_b(s);
        let vda = a.record_second(&s.to_le_bytes(), la);
        let vdb = b.record_second(&(s + 1000).to_le_bytes(), lb);
        a.accept_neighbor_vd(vdb, now, la);
        b.accept_neighbor_vd(vda, now, lb);
    }
    (a.finalize(), b.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_pair(seed: u64, gap_m: f64) -> (StoredVp, StoredVp) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (fa, fb) = exchange_minute(
            &mut rng,
            0,
            move |s| GeoPos::new(s as f64 * 10.0, 0.0),
            move |s| GeoPos::new(s as f64 * 10.0, gap_m),
        );
        (fa.profile.into_stored(), fb.profile.into_stored())
    }

    #[test]
    fn storage_matches_paper_4584_bytes() {
        let mut rng = StdRng::seed_from_u64(1);
        let (fa, _) = exchange_minute(
            &mut rng,
            0,
            |s| GeoPos::new(s as f64, 0.0),
            |s| GeoPos::new(s as f64, 50.0),
        );
        assert_eq!(fa.profile.user_storage_bytes(), 4584);
        assert_eq!(fa.profile.wire_bytes(), 4576);
    }

    #[test]
    fn storage_overhead_below_paper_bound() {
        // §6.1: < 0.01% of a 50 MB 1-min video.
        let overhead = 4584.0 / (50.0 * 1024.0 * 1024.0);
        assert!(overhead < 0.0001);
    }

    #[test]
    fn mutual_exchange_produces_two_way_link() {
        let (a, b) = run_pair(2, 50.0);
        assert!(a.mutually_linked(&b));
        assert!(b.mutually_linked(&a));
    }

    #[test]
    fn strangers_do_not_link() {
        let (a, _) = run_pair(3, 50.0);
        let (_, c) = run_pair(4, 50.0);
        assert!(!a.mutually_linked(&c));
    }

    #[test]
    fn one_way_knowledge_is_not_enough() {
        // C overhears A's VDs and inserts them into its own bloom, but A
        // never heard C: no two-way link.
        let mut rng = StdRng::seed_from_u64(5);
        let (fa, _) = exchange_minute(
            &mut rng,
            0,
            |s| GeoPos::new(s as f64, 0.0),
            |s| GeoPos::new(s as f64, 10.0),
        );
        let a = fa.profile.clone().into_stored();
        let mut eavesdropper = VpBuilder::new(&mut rng, 0, GeoPos::new(0.0, 5.0), VpKind::Actual);
        for s in 0..SECONDS_PER_VP {
            eavesdropper.record_second(b"spy", GeoPos::new(s as f64, 5.0));
        }
        // Manually poison the eavesdropper's bloom with A's VDs.
        let mut fin = eavesdropper.finalize();
        for vd in &fa.profile.vds {
            fin.profile.bloom.insert(&vd.bloom_key());
        }
        let c = fin.profile.into_stored();
        assert!(c.links_to(&a), "eavesdropper claims to have heard A");
        assert!(!a.links_to(&c), "A never heard the eavesdropper");
        assert!(!a.mutually_linked(&c), "two-way check defeats the claim");
    }

    #[test]
    fn min_aligned_distance_reflects_geometry() {
        let (a, b) = run_pair(6, 120.0);
        let d = a.min_aligned_distance(&b).expect("same minute");
        assert!((d - 120.0).abs() < 1e-6);
    }

    #[test]
    fn min_aligned_distance_none_for_different_minutes() {
        let mut rng = StdRng::seed_from_u64(7);
        let (fa, _) = exchange_minute(
            &mut rng,
            0,
            |s| GeoPos::new(s as f64, 0.0),
            |s| GeoPos::new(s as f64, 10.0),
        );
        let (fb, _) = exchange_minute(
            &mut rng,
            60,
            |s| GeoPos::new(s as f64, 0.0),
            |s| GeoPos::new(s as f64, 10.0),
        );
        let a = fa.profile.into_stored();
        let b = fb.profile.into_stored();
        assert_eq!(a.min_aligned_distance(&b), None);
        assert_eq!(a.minute(), MinuteId(0));
        assert_eq!(b.minute(), MinuteId(1));
    }

    #[test]
    fn finalize_counts_neighbors() {
        let mut rng = StdRng::seed_from_u64(8);
        let (fa, fb) = exchange_minute(
            &mut rng,
            0,
            |s| GeoPos::new(s as f64, 0.0),
            |s| GeoPos::new(s as f64, 10.0),
        );
        assert_eq!(fa.neighbors.len(), 1);
        assert_eq!(fb.neighbors.len(), 1);
        assert_eq!(fa.neighbors[0].vp_id, fb.profile.id());
        // Contact interval spans (almost) the whole minute.
        assert!(fa.neighbors[0].contact_seconds() >= 55);
    }

    #[test]
    fn vp_id_consistent_with_secret() {
        let mut rng = StdRng::seed_from_u64(9);
        let (fa, _) = exchange_minute(
            &mut rng,
            0,
            |s| GeoPos::new(s as f64, 0.0),
            |s| GeoPos::new(s as f64, 10.0),
        );
        assert_eq!(VpId::from_secret(&fa.secret), fa.profile.id());
    }

    #[test]
    fn out_of_range_vehicles_never_become_neighbors() {
        let mut rng = StdRng::seed_from_u64(10);
        let (fa, fb) = exchange_minute(
            &mut rng,
            0,
            |s| GeoPos::new(s as f64, 0.0),
            |s| GeoPos::new(s as f64, 500.0), // beyond DSRC range
        );
        assert!(fa.neighbors.is_empty());
        assert!(fb.neighbors.is_empty());
        let a = fa.profile.into_stored();
        let b = fb.profile.into_stored();
        assert!(!a.mutually_linked(&b));
    }

    #[test]
    #[should_panic(expected = "nothing recorded")]
    fn finalize_requires_recording() {
        let mut rng = StdRng::seed_from_u64(11);
        let b = VpBuilder::new(&mut rng, 0, GeoPos::new(0.0, 0.0), VpKind::Actual);
        let _ = b.finalize();
    }
}
