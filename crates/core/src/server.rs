//! The ViewMap service (Section 4): VP database, viewmap construction,
//! solicitation board, reward board, and the double-spending ledger.
//!
//! The server never learns who uploaded a VP (see [`crate::upload`]); it
//! operates purely on anonymized VPs, requests videos by VP identifier,
//! validates uploads against the stored cascaded hashes, and pays with
//! blind-signature cash it cannot trace.
//!
//! # Storage layout
//!
//! The VP database is built for sustained city-scale ingest (millions of
//! VPs per minute across many uploader sessions) with concurrent
//! investigations reading from it:
//!
//! * **Sharded minute store** — the minute-keyed map is split across
//!   [`DB_SHARDS`] independent `RwLock` stripes (keyed by a mixed hash of
//!   the minute), so submissions for different minutes never contend on
//!   one global lock, and an investigation building a viewmap only blocks
//!   ingest for the single minute it reads.
//! * **VP-id index** — a second set of stripes maps `VpId → (MinuteId,
//!   position)`. It doubles as the duplicate-submission set, and turns
//!   video-upload lookup into two hash probes (id stripe, then minute
//!   shard) instead of the full-database scan the first implementation
//!   did. Positions are stable because minute vectors are append-only.
//! * **Zero-copy hand-off** — VPs are stored as `Arc<StoredVp>`, and
//!   [`Viewmap`] members share those `Arc`s: building a viewmap never
//!   clones a VP's 60 VDs or its Bloom filter.
//!
//! Lock order is always id stripes (ascending) → minute shard; both
//! acquisitions are short (no validation or hashing happens under a
//! lock). Single submission takes one id stripe then the shard; batch
//! submission ([`ViewMapServer::submit_batch`]) takes every stripe its
//! minute group needs in ascending order, then the shard — one
//! acquisition per (minute, batch) instead of per VP, which is where the
//! batch path's throughput comes from. The `submit_batch_warm` variant
//! additionally pre-hashes each VP's viewlink keys before committing, so
//! investigations of freshly ingested minutes start with a warm key
//! cache.
//!
//! # Durability seam
//!
//! The store is RAM-first; durability is optional and attaches through
//! the [`crate::wal::VpWal`] trait ([`ViewMapServer::attach_wal`]).
//! When a log is attached, every *accepted* VP is mirrored into it
//! before the minute shard's write lock is released — one group-commit
//! append per (minute, batch), so per-minute log order always equals
//! bucket order and a replay reconstructs the id index byte for byte.
//! [`ViewMapServer::submit_replay_batch`] is the recovery entry: it
//! drives decoded log records through the normal batch machinery
//! (screening, in-batch dedup, parallel link-key warm) while preserving
//! each record's own `trusted` flag, and is called before any log is
//! attached so recovery never re-appends. Bounded retention
//! ([`ViewMapServer::evict_minutes_before`]) drops expired minutes from
//! the shards, the id index, and the log together. The concrete
//! append-log engine lives in the `vm-store` crate.

use crate::reward::Cash;
use crate::solicit::{validate_upload, UploadError, VideoUpload};
use crate::types::{MinuteId, VpId, MAX_NEIGHBORS};
use crate::upload::AnonymousSubmission;
use crate::viewmap::{Site, Viewmap, ViewmapConfig};
use crate::vp::StoredVp;
use crate::wal::VpWal;
use parking_lot::RwLock;
use rand::Rng;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use vm_crypto::{BlindedMessage, RsaKeyPair, RsaPublicKey, Signature};
use vm_obs::{Counter, Histogram, Registry};

/// Number of lock stripes in the VP database (and in the id index).
/// Power of two so stripe selection is a mask.
pub const DB_SHARDS: usize = 16;

// The server is shared by reference across scoped ingest threads and by
// `Arc` under the vm-service network front-end; every field must stay
// `Send + Sync` (which is why `VpWal` carries those supertraits). This
// compile-time audit turns an accidental `!Sync` field — a `Cell`, an
// `Rc`, a raw pointer — into a build error here instead of a cryptic
// one in a downstream crate.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ViewMapServer>();
};

/// Batch sizes at or above this precompute link keys on worker threads;
/// smaller batches hash inline (spawn/join would dominate).
const BATCH_KEY_PARALLEL_THRESHOLD: usize = 4096;

/// Why a VP submission was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// A VP with this identifier already exists.
    Duplicate,
    /// The VP does not carry exactly 60 VDs with strictly increasing
    /// timestamps (a genuine cascade records one VD per second; repeated
    /// or reordered seconds are only producible by tampering).
    MalformedVds,
    /// The Bloom filter is implausibly saturated (poisoning defense).
    SuspiciousBloom,
}

/// Lock-free admission screen shared by the single and batch paths.
fn screen(vp: &StoredVp) -> Result<(), SubmitError> {
    if vp.vds.len() != crate::types::SECONDS_PER_VP as usize
        || !vp.vds.windows(2).all(|w| w[0].time < w[1].time)
    {
        return Err(SubmitError::MalformedVds);
    }
    if vp.bloom.is_suspicious(MAX_NEIGHBORS) {
        return Err(SubmitError::SuspiciousBloom);
    }
    Ok(())
}

/// Why a reward request was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RewardError {
    /// The VP id is not on the reward board.
    NotOnBoard,
    /// The presented secret does not hash to the VP id.
    BadOwnershipProof,
}

/// Why redeeming cash failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RedeemError {
    /// The signature does not verify under the system key.
    BadSignature,
    /// The cash message was already spent.
    DoubleSpend,
}

/// Where a VP lives: its minute bucket and append position within it.
#[derive(Clone, Copy, Debug)]
struct VpSlot {
    minute: MinuteId,
    pos: u32,
}

#[derive(Default)]
struct DbShard {
    by_minute: HashMap<MinuteId, Vec<Arc<StoredVp>>>,
    /// Incrementally maintained viewlink graphs, one per minute that has
    /// been investigated through the maintained path
    /// ([`ViewMapServer::build_viewmap_maintained`]). Created lazily on
    /// first maintained investigation, spliced under this shard's write
    /// lock in the same critical section that appends to the bucket, and
    /// dropped whole on eviction — so a maintained graph always mirrors
    /// its bucket exactly and can never outlive it. Minutes only ever
    /// ingested (never investigated) pay nothing.
    maintained: HashMap<MinuteId, crate::maintained::MaintainedViewmap>,
}

fn minute_stripe(minute: MinuteId) -> usize {
    // Fibonacci mixing: consecutive minutes land on different stripes.
    (minute.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & (DB_SHARDS - 1)
}

fn id_stripe(id: &VpId) -> usize {
    id.0.as_bytes()[0] as usize & (DB_SHARDS - 1)
}

/// Stripe count for the double-spending ledger. Redemption is a pure
/// set-insert keyed by a hash, so stripes shard perfectly: concurrent
/// redeem sessions only contend when their cash lands on the same
/// stripe, instead of serializing on one global set.
const LEDGER_STRIPES: usize = 16;

fn ledger_stripe(key: &[u8; 32]) -> usize {
    // The key is sha256 output: any byte is uniform.
    key[0] as usize & (LEDGER_STRIPES - 1)
}

/// The engine's instrument set, registered once per server into its
/// [`Registry`] (naming scheme: `vm_core_*`, latencies in whole
/// microseconds — see ARCHITECTURE.md §9). Handles are `Arc`s into the
/// registry, so recording is lock-free and a disabled registry turns
/// every call into a relaxed load.
struct CoreMetrics {
    /// `vm_core_vps_stored_total` — VPs committed to the database
    /// (submit, trusted, batch, and recovery replay alike).
    vps_stored: Arc<Counter>,
    /// `vm_core_vps_rejected_total` — screened-out or duplicate VPs.
    vps_rejected: Arc<Counter>,
    /// `vm_core_vps_evicted_total` / `vm_core_eviction_sweeps_total`.
    vps_evicted: Arc<Counter>,
    eviction_sweeps: Arc<Counter>,
    /// `vm_core_batch_accepted_vps` — accepted VPs per batch-ingest call.
    batch_accepted: Arc<Histogram>,
    /// `vm_core_investigate_us` — full investigation pipeline latency
    /// (cold and maintained paths both record here).
    investigate_us: Arc<Histogram>,
    /// `vm_core_trustrank_iterations` — power-method iterations per
    /// investigation.
    trustrank_iterations: Arc<Histogram>,
    /// `vm_core_build_phase_us{phase=...}` — the four viewlink-engine
    /// phases of every cold build, in catalog order.
    build_tables_us: Arc<Histogram>,
    build_candidates_us: Arc<Histogram>,
    build_keys_us: Arc<Histogram>,
    build_linkage_us: Arc<Histogram>,
    /// `vm_core_maintained_create_us` / `vm_core_maintained_extract_us`
    /// / `vm_core_maintained_splice_us` — the maintained-graph
    /// lifecycle: one-time creation, per-investigation extraction, and
    /// the ingest-side splice done under the shard lock.
    maintained_create_us: Arc<Histogram>,
    maintained_extract_us: Arc<Histogram>,
    maintained_splice_us: Arc<Histogram>,
    /// `vm_core_cash_redeemed_total` / `vm_core_cash_double_spend_total`
    /// / `vm_core_blind_signatures_total` — the reward path: units of
    /// cash accepted into the ledger, redeem attempts bounced as double
    /// spends, and blind signatures issued against the reward board.
    cash_redeemed: Arc<Counter>,
    cash_double_spend: Arc<Counter>,
    blind_signatures: Arc<Counter>,
}

impl CoreMetrics {
    fn register(obs: &Registry) -> CoreMetrics {
        let phase = |p: &str| obs.histogram_with("vm_core_build_phase_us", &[("phase", p)]);
        CoreMetrics {
            vps_stored: obs.counter("vm_core_vps_stored_total"),
            vps_rejected: obs.counter("vm_core_vps_rejected_total"),
            vps_evicted: obs.counter("vm_core_vps_evicted_total"),
            eviction_sweeps: obs.counter("vm_core_eviction_sweeps_total"),
            batch_accepted: obs.histogram("vm_core_batch_accepted_vps"),
            investigate_us: obs.histogram("vm_core_investigate_us"),
            trustrank_iterations: obs.histogram("vm_core_trustrank_iterations"),
            build_tables_us: phase("tables"),
            build_candidates_us: phase("candidates"),
            build_keys_us: phase("keys"),
            build_linkage_us: phase("linkage"),
            maintained_create_us: obs.histogram("vm_core_maintained_create_us"),
            maintained_extract_us: obs.histogram("vm_core_maintained_extract_us"),
            maintained_splice_us: obs.histogram("vm_core_maintained_splice_us"),
            cash_redeemed: obs.counter("vm_core_cash_redeemed_total"),
            cash_double_spend: obs.counter("vm_core_cash_double_spend_total"),
            blind_signatures: obs.counter("vm_core_blind_signatures_total"),
        }
    }

    fn record_build_profile(&self, p: &crate::viewmap::BuildProfile) {
        self.build_tables_us.record((p.tables_ms * 1e3) as u64);
        self.build_candidates_us
            .record((p.candidates_ms * 1e3) as u64);
        self.build_keys_us.record((p.keys_ms * 1e3) as u64);
        self.build_linkage_us.record((p.linkage_ms * 1e3) as u64);
    }
}

/// The ViewMap public-service system.
pub struct ViewMapServer {
    /// Minute-keyed VP store, striped by minute hash.
    db: Vec<RwLock<DbShard>>,
    /// `VpId → VpSlot` index, striped by id byte; also the dedup set.
    id_index: Vec<RwLock<HashMap<VpId, VpSlot>>>,
    solicited: RwLock<HashSet<VpId>>,
    /// VP id → award amount in cash units, set after human review.
    reward_board: RwLock<HashMap<VpId, usize>>,
    /// Double-spend ledger, striped by ledger-key byte so concurrent
    /// redeem sessions do not serialize on one global lock.
    ledger: Vec<RwLock<HashSet<[u8; 32]>>>,
    key: RsaKeyPair,
    cfg: ViewmapConfig,
    /// Optional durable append log; accepted VPs are mirrored into it
    /// under the committing minute's shard lock (see the module docs).
    wal: Option<Box<dyn VpWal>>,
    /// The cell's telemetry registry. Created with the server; the
    /// store, service, and replication layers register their own
    /// instrument sets into the same registry (via [`Self::obs`]) so
    /// one snapshot covers the whole stack.
    obs: Arc<Registry>,
    metrics: CoreMetrics,
}

impl ViewMapServer {
    /// Stand up a server with a fresh signing key of `key_bits`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, key_bits: usize, cfg: ViewmapConfig) -> Self {
        Self::with_key(RsaKeyPair::generate(rng, key_bits), cfg)
    }

    /// Stand up a server around an operator-supplied signing key.
    ///
    /// This is the constructor real deployments (and replication) want:
    /// a restarted node, or a follower promoted after its primary died,
    /// must keep honoring virtual cash minted under the old key, which
    /// only works if the key outlives any single process. The `vm-store`
    /// recovery path persists the key beside the log and feeds it back
    /// through here on reopen.
    pub fn with_key(key: RsaKeyPair, cfg: ViewmapConfig) -> Self {
        let obs = Arc::new(Registry::new());
        let metrics = CoreMetrics::register(&obs);
        ViewMapServer {
            db: (0..DB_SHARDS)
                .map(|_| RwLock::new(DbShard::default()))
                .collect(),
            id_index: (0..DB_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            solicited: RwLock::new(HashSet::new()),
            reward_board: RwLock::new(HashMap::new()),
            ledger: (0..LEDGER_STRIPES)
                .map(|_| RwLock::new(HashSet::new()))
                .collect(),
            key,
            cfg,
            wal: None,
            obs,
            metrics,
        }
    }

    /// The cell's telemetry registry: the engine's own instruments plus
    /// whatever the durability, service, and replication layers
    /// register. [`vm_obs::Registry::snapshot`] here is the in-process
    /// form of the `STATS` wire scrape.
    pub fn obs(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// The full signing key pair, for persistence (vm-store's keyfile)
    /// and for handing an identical key to a replica.
    pub fn signing_key(&self) -> &RsaKeyPair {
        &self.key
    }

    /// Attach a durable append log. From this point on every accepted VP
    /// is mirrored into it; the caller (normally the `vm-store` recovery
    /// path) must finish replaying any existing log contents **before**
    /// attaching, or replayed records would be appended twice.
    pub fn attach_wal(&mut self, wal: Box<dyn VpWal>) {
        self.wal = Some(wal);
    }

    /// Swap the attached log, returning the previous one (if any).
    ///
    /// Replication hook: a follower being promoted keeps appending to
    /// the same durable store, but the layer *around* that store changes
    /// — e.g. `vm-repl` wraps the plain `VpStore` log in a teeing
    /// `ReplicatedWal` that ships every committed frame to the new
    /// follower set. Same double-logging caveat as
    /// [`attach_wal`](Self::attach_wal): the replacement must already
    /// contain (or knowingly skip) everything replayed into this server.
    pub fn replace_wal(&mut self, wal: Box<dyn VpWal>) -> Option<Box<dyn VpWal>> {
        self.wal.replace(wal)
    }

    /// Is a durable log attached?
    pub fn has_wal(&self) -> bool {
        self.wal.is_some()
    }

    /// Flush the attached log (no-op without one). Graceful-shutdown
    /// helper; a correct log backend is already consistent without it.
    pub fn sync_wal(&self) -> std::io::Result<()> {
        match &self.wal {
            Some(wal) => wal.sync(),
            None => Ok(()),
        }
    }

    /// The system's public key (printed on the cash, so to speak).
    pub fn public_key(&self) -> &RsaPublicKey {
        self.key.public()
    }

    /// Accept one anonymized VP submission into the database.
    pub fn submit(&self, sub: AnonymousSubmission) -> Result<(), SubmitError> {
        self.store(sub.vp)
    }

    /// Accept a trusted VP through the authority channel.
    pub fn submit_trusted(&self, mut vp: StoredVp) -> Result<(), SubmitError> {
        vp.trusted = true;
        self.store(vp)
    }

    /// Accept a batch of anonymized submissions in one call.
    ///
    /// The resulting database state is indistinguishable from submitting
    /// the batch elements through [`submit`](Self::submit) one at a time
    /// in order — same minute buckets (and append order within them),
    /// same id index, same per-element accept/reject outcomes, returned
    /// aligned with the input. What changes is the cost model:
    ///
    /// * validation and Bloom screening run before any lock is taken;
    /// * each id stripe and each minute shard is locked **once per
    ///   (minute, batch)** instead of once per VP (stripes in ascending
    ///   order, then the shard — the same global order the single-submit
    ///   path follows, so batches, singles, and readers never deadlock).
    ///
    /// A `VpId` that appears twice *within* the batch is first-wins: the
    /// first occurrence (if otherwise valid) is stored, later ones get
    /// [`SubmitError::Duplicate`] — exactly what sequential submission
    /// would produce — and the minute bucket is probed only after the
    /// in-batch screen, so a double-listed VP can never double-insert.
    ///
    /// This path does **not** pre-hash viewlink keys — plain batch ingest
    /// stays a pure locking/screening amortization (most minutes are
    /// never investigated). Use
    /// [`submit_batch_warm`](Self::submit_batch_warm) for minutes that
    /// are about to be.
    pub fn submit_batch(
        &self,
        subs: impl IntoIterator<Item = AnonymousSubmission>,
    ) -> Vec<Result<(), SubmitError>> {
        self.store_batch(subs.into_iter().map(|s| s.vp).collect(), false)
    }

    /// As [`submit_batch`](Self::submit_batch), additionally precomputing
    /// each accepted VP's element-VD link keys (in parallel for large
    /// batches) while the VPs are still exclusively owned. Each VP's 60
    /// digests are hashed through `vm_crypto`'s multi-buffer engine
    /// (`sha256_many` — interleaved independent streams), the same path
    /// viewmap construction's key phase uses. Investigations of the
    /// ingested minutes then skip their Bloom-key hashing phase — the
    /// right trade when a minute is investigation-bound (an incident was
    /// just reported) and worth ~1 KB of cached digests per VP. The
    /// stored state is identical either way.
    pub fn submit_batch_warm(
        &self,
        subs: impl IntoIterator<Item = AnonymousSubmission>,
    ) -> Vec<Result<(), SubmitError>> {
        self.store_batch(subs.into_iter().map(|s| s.vp).collect(), true)
    }

    /// Batch counterpart of [`submit_trusted`](Self::submit_trusted):
    /// flags every VP as an authority trust seed, then ingests like
    /// [`submit_batch_warm`](Self::submit_batch_warm) (authority VPs
    /// anchor viewmaps, so they are always investigation-bound).
    pub fn submit_trusted_batch(&self, vps: Vec<StoredVp>) -> Vec<Result<(), SubmitError>> {
        self.store_batch(
            vps.into_iter()
                .map(|mut vp| {
                    vp.trusted = true;
                    vp
                })
                .collect(),
            true,
        )
    }

    /// Recovery entry for the persistence layer: ingest VPs decoded from
    /// a durable log through the normal batch machinery — screening,
    /// in-batch first-wins dedup, per-(minute, batch) stripe/shard
    /// locking, and the parallel link-key warm — while preserving each
    /// record's **own** `trusted` flag (unlike
    /// [`submit_trusted_batch`](Self::submit_trusted_batch), which
    /// force-sets it). Call this *before* [`attach_wal`](Self::attach_wal)
    /// so the replayed records are not appended to the log a second time.
    pub fn submit_replay_batch(&self, vps: Vec<StoredVp>) -> Vec<Result<(), SubmitError>> {
        self.store_batch(vps, true)
    }

    /// As [`submit_replay_batch`](Self::submit_replay_batch) but
    /// without the link-key warm: the apply path for a replication
    /// standby, which must log and index shipped records at ingest
    /// speed but serves no investigations until promoted. Link keys
    /// hash lazily on first use, so the first investigation after a
    /// promotion pays the key phase the warm would have prepaid — the
    /// stored state is identical either way.
    pub fn submit_replay_batch_cold(&self, vps: Vec<StoredVp>) -> Vec<Result<(), SubmitError>> {
        self.store_batch(vps, false)
    }

    /// Bounded-retention sweep: drop every stored minute strictly before
    /// `cutoff` from the in-memory shards, the id index, and the attached
    /// log (if any). Returns the number of VPs evicted.
    ///
    /// Evicted ids become submittable again — the dedup set is the id
    /// index, and retention is exactly the operation that forgets ids.
    /// Lock order is the global one (every id stripe ascending, then the
    /// shards one at a time), so concurrent submits and batches cannot
    /// deadlock against a sweep.
    ///
    /// The sweep holds every id stripe for its full duration — including
    /// the attached log's segment deletions — which is what makes
    /// memory and disk drop a minute atomically with respect to ingest
    /// (no submit can slip a pre-cutoff VP into memory after its log
    /// segment is gone). The cost is a server-wide ingest/lookup pause
    /// of one file unlink per expired minute (metadata-only, typically
    /// tens of µs each) at retention cadence; if sweeps ever batch
    /// enough minutes for that to matter, the next step is a
    /// seal-then-delete split (rename under the locks, unlink after).
    pub fn evict_minutes_before(&self, cutoff: MinuteId) -> usize {
        let mut id_guards: Vec<_> = self.id_index.iter().map(|s| s.write()).collect();
        let mut evicted = 0usize;
        for shard in &self.db {
            let mut sh = shard.write();
            let expired: Vec<MinuteId> = sh
                .by_minute
                .keys()
                .filter(|m| m.0 < cutoff.0)
                .copied()
                .collect();
            for m in expired {
                if let Some(bucket) = sh.by_minute.remove(&m) {
                    evicted += bucket.len();
                    for vp in &bucket {
                        id_guards[id_stripe(&vp.id)].remove(&vp.id);
                    }
                }
            }
            // Maintained viewlink graphs die with their minutes — whole
            // structures, never partial retirement, so a later
            // resubmission of the minute starts from a fresh cold build
            // instead of trusting any pre-eviction edge. Swept by its
            // own key set (not `expired`) to also clear graphs created
            // for minutes that never had a bucket.
            sh.maintained.retain(|m, _| m.0 >= cutoff.0);
        }
        // Sweep the log while still holding every id stripe: all ingest
        // paths take an id stripe before touching memory or the log, so
        // no submit can slip a pre-cutoff VP into memory between the
        // memory sweep above and the disk sweep here (which would leave
        // the live server holding a VP whose log record was deleted —
        // exactly the silent memory/disk divergence durability forbids).
        if let Some(wal) = &self.wal {
            wal.evict_minutes_before(cutoff)
                .expect("WAL eviction failed; disk retention would diverge from memory");
        }
        drop(id_guards);
        self.metrics.eviction_sweeps.inc();
        self.metrics.vps_evicted.add(evicted as u64);
        evicted
    }

    fn store_batch(&self, vps: Vec<StoredVp>, warm_keys: bool) -> Vec<Result<(), SubmitError>> {
        let total = vps.len();
        let mut results = vec![Ok(()); total];
        // Screen without locks: shape validation, Bloom poisoning, and
        // the in-batch first-wins duplicate filter.
        let mut seen: HashSet<VpId> = HashSet::with_capacity(total);
        let mut groups: HashMap<MinuteId, Vec<(usize, StoredVp)>> = HashMap::new();
        let mut accepted = 0usize;
        for (idx, vp) in vps.into_iter().enumerate() {
            if let Err(e) = screen(&vp) {
                results[idx] = Err(e);
                continue;
            }
            if !seen.insert(vp.id) {
                results[idx] = Err(SubmitError::Duplicate);
                continue;
            }
            // Read-lock prescreen against the id index: a replayed batch
            // (at-least-once delivery, or a resubmission attack) must be
            // rejected with a hash probe, not after hashing 60 link keys
            // per VP. Ids only ever disappear through a retention sweep
            // (`evict_minutes_before`), so a hit here is final up to a
            // racing eviction — and rejecting such a racer is the
            // linearization where it arrived just before the sweep. The
            // authoritative re-check still happens under the write lock
            // at commit for ids that race in between.
            if self.id_index[id_stripe(&vp.id)].read().contains_key(&vp.id) {
                results[idx] = Err(SubmitError::Duplicate);
                continue;
            }
            accepted += 1;
            groups.entry(vp.minute()).or_default().push((idx, vp));
        }

        // Optionally warm the link-key cache while the VPs are
        // exclusively ours — ingest-side amortization of the hashing that
        // viewmap construction would otherwise pay per investigation.
        if warm_keys {
            let mut flat: Vec<&StoredVp> = Vec::with_capacity(accepted);
            for group in groups.values() {
                flat.extend(group.iter().map(|(_, vp)| vp));
            }
            let cuts = crate::par::even_cuts(
                flat.len(),
                crate::par::auto_threads(flat.len(), BATCH_KEY_PARALLEL_THRESHOLD),
            );
            crate::par::map_ranges(&cuts, |_t, lo, hi| {
                for vp in &flat[lo..hi] {
                    vp.link_keys();
                }
            });
        }

        // Commit one minute group at a time: every id stripe the group
        // touches, write-locked in ascending order, then the minute
        // shard. Consistent with the single-submit lock order (one id
        // stripe, then the shard), so concurrent batches and singles
        // cannot deadlock; the index entry and the shard append still
        // commit under the same critical section.
        for (minute, group) in groups {
            let mut stripes: Vec<usize> = group.iter().map(|(_, vp)| id_stripe(&vp.id)).collect();
            stripes.sort_unstable();
            stripes.dedup();
            let mut guards: Vec<_> = Vec::with_capacity(stripes.len());
            let mut guard_of = [usize::MAX; DB_SHARDS];
            for &s in &stripes {
                guard_of[s] = guards.len();
                guards.push(self.id_index[s].write());
            }
            let mut shard = self.db[minute_stripe(minute)].write();
            let sh = &mut *shard;
            let bucket = sh.by_minute.entry(minute).or_default();
            let first_new = bucket.len();
            for (idx, vp) in group {
                let ids = &mut guards[guard_of[id_stripe(&vp.id)]];
                if ids.contains_key(&vp.id) {
                    results[idx] = Err(SubmitError::Duplicate);
                    continue;
                }
                let pos = bucket.len() as u32;
                let id = vp.id;
                bucket.push(Arc::new(vp));
                ids.insert(id, VpSlot { minute, pos });
            }
            // Group commit to the log while the shard lock is still held,
            // so per-minute log order equals bucket order: one append
            // call (one buffered write + at most one fsync in the
            // backend) for the whole (minute, batch) group.
            if let Some(wal) = &self.wal {
                if bucket.len() > first_new {
                    let appended: Vec<&StoredVp> =
                        bucket[first_new..].iter().map(|a| a.as_ref()).collect();
                    wal.append(&appended)
                        .expect("WAL append failed; durable state would diverge");
                }
            }
            // Splice the accepted tail into the minute's maintained
            // viewlink graph (if one exists) in the same critical
            // section, so the maintained mirror can never observe a
            // half-committed batch or miss an append.
            if bucket.len() > first_new {
                if let Some(mv) = sh.maintained.get_mut(&minute) {
                    self.metrics
                        .maintained_splice_us
                        .time(|| mv.ingest(&bucket[first_new..]));
                }
            }
        }
        let stored = results.iter().filter(|r| r.is_ok()).count() as u64;
        self.metrics.vps_stored.add(stored);
        self.metrics.vps_rejected.add(total as u64 - stored);
        self.metrics.batch_accepted.record(stored);
        results
    }

    fn store(&self, vp: StoredVp) -> Result<(), SubmitError> {
        let result = self.store_inner(vp);
        match result {
            Ok(()) => self.metrics.vps_stored.inc(),
            Err(_) => self.metrics.vps_rejected.inc(),
        }
        result
    }

    fn store_inner(&self, vp: StoredVp) -> Result<(), SubmitError> {
        screen(&vp)?;
        let id = vp.id;
        let minute = vp.minute();
        // Lock order: id stripe, then minute shard. The index entry and
        // the shard append commit together so readers through the index
        // never observe a dangling slot.
        let mut ids = self.id_index[id_stripe(&id)].write();
        if ids.contains_key(&id) {
            return Err(SubmitError::Duplicate);
        }
        let mut shard = self.db[minute_stripe(minute)].write();
        let sh = &mut *shard;
        let bucket = sh.by_minute.entry(minute).or_default();
        let pos = bucket.len() as u32;
        bucket.push(Arc::new(vp));
        ids.insert(id, VpSlot { minute, pos });
        // Mirror the accepted VP into the log before the shard lock is
        // released, so log order equals bucket order within the minute.
        if let Some(wal) = &self.wal {
            wal.append(&[bucket[pos as usize].as_ref()])
                .expect("WAL append failed; durable state would diverge");
        }
        // Keep the maintained viewlink graph (if any) mirroring the
        // bucket under the same critical section.
        if let Some(mv) = sh.maintained.get_mut(&minute) {
            self.metrics
                .maintained_splice_us
                .time(|| mv.ingest(&bucket[pos as usize..]));
        }
        Ok(())
    }

    /// Fetch a VP by identifier: one id-stripe probe for the slot, one
    /// minute-shard probe for the record. O(1) regardless of database
    /// size — this is the lookup `upload_video` rides on.
    pub fn lookup_vp(&self, id: VpId) -> Option<Arc<StoredVp>> {
        let slot = *self.id_index[id_stripe(&id)].read().get(&id)?;
        let shard = self.db[minute_stripe(slot.minute)].read();
        let vp = shard.by_minute.get(&slot.minute)?.get(slot.pos as usize)?;
        debug_assert_eq!(vp.id, id, "id index points at the wrong record");
        Some(Arc::clone(vp))
    }

    /// Number of VPs stored for a minute.
    pub fn vp_count(&self, minute: MinuteId) -> usize {
        self.db[minute_stripe(minute)]
            .read()
            .by_minute
            .get(&minute)
            .map_or(0, |v| v.len())
    }

    /// Total VPs stored.
    pub fn total_vps(&self) -> usize {
        self.db
            .iter()
            .map(|s| s.read().by_minute.values().map(|v| v.len()).sum::<usize>())
            .sum()
    }

    /// Every minute that currently holds at least one VP, ascending.
    /// The iteration backbone for whole-state comparisons (the fault
    /// harness walks this to compare a recovered server against its
    /// oracle minute by minute).
    pub fn stored_minutes(&self) -> Vec<MinuteId> {
        let mut minutes: Vec<MinuteId> = self
            .db
            .iter()
            .flat_map(|s| s.read().by_minute.keys().copied().collect::<Vec<_>>())
            .collect();
        minutes.sort_unstable();
        minutes
    }

    /// Order-sensitive digest over the whole stored state: every minute
    /// in ascending order, every bucket entry's position, id bytes, and
    /// trusted flag. Two servers with equal digests hold the same
    /// minutes, the same buckets in the same append order, and the same
    /// authority flags — the single-number form of the
    /// persisted-vs-live equivalence the recovery suites assert field
    /// by field, cheap enough to run after every simulated crash.
    pub fn state_digest(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(0x100_0000_01b3).rotate_left(23)
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for minute in self.stored_minutes() {
            h = mix(h, minute.0);
            for (pos, vp) in self.minute_vps(minute).iter().enumerate() {
                let b = vp.id.0.as_bytes();
                h = mix(h, pos as u64);
                h = mix(h, u64::from_le_bytes(b[..8].try_into().expect("8 bytes")));
                h = mix(h, u64::from_le_bytes(b[8..].try_into().expect("8 bytes")));
                h = mix(h, vp.trusted as u64);
            }
        }
        h
    }

    /// Build the viewmap for a minute around an incident site.
    ///
    /// Snapshots the minute's `Arc`s (pointer copies) and releases the
    /// shard lock before construction, so a long build never blocks
    /// ingest; viewmap members share the database allocations.
    pub fn build_viewmap(&self, minute: MinuteId, site: Site) -> Viewmap {
        let candidates = self.minute_vps(minute);
        // `build` is itself a thin wrapper over the profiled path, so
        // taking the profile here costs four timestamp reads, not an
        // alternate code path.
        let (vm, profile) = Viewmap::build_profiled(&candidates, site, minute, &self.cfg, 0);
        self.metrics.record_build_profile(&profile);
        vm
    }

    /// Full investigation pipeline for one minute: build the viewmap, run
    /// Algorithm 1, and post the verified VP ids on the solicitation
    /// board. Returns the posted ids.
    pub fn investigate(&self, minute: MinuteId, site: Site) -> Vec<VpId> {
        self.metrics.investigate_us.time(|| {
            let vm = self.build_viewmap(minute, site);
            let (_, ids, iterations) = vm.verify_counted(&site, &self.cfg);
            self.metrics.trustrank_iterations.record(iterations as u64);
            let mut board = self.solicited.write();
            for id in &ids {
                board.insert(*id);
            }
            ids
        })
    }

    /// As [`build_viewmap`](Self::build_viewmap), served from the
    /// minute's incrementally maintained viewlink graph
    /// ([`crate::maintained::MaintainedViewmap`]).
    ///
    /// The first call for a minute creates the maintained graph (one
    /// cold-build-priced pass, under the minute shard's write lock — it
    /// briefly blocks ingest for that one stripe). Every later call
    /// costs only the admission pass plus an index remap of the
    /// already-maintained edges, because batch/single ingest splices new
    /// members in as they commit and eviction drops the graph with its
    /// bucket. The result is **bit-identical** to
    /// [`build_viewmap`](Self::build_viewmap) of the same stored state —
    /// members, adjacency order, trusted indices — which the
    /// churn-equivalence suite in `vm-bench` pins across random
    /// submit/evict interleavings.
    ///
    /// Recovery safety: maintained graphs live only in memory and are
    /// never persisted, so a recovered server starts with none and
    /// rebuilds on first use — stale maintained state cannot survive a
    /// crash by construction.
    pub fn build_viewmap_maintained(&self, minute: MinuteId, site: Site) -> Viewmap {
        let mut shard = self.db[minute_stripe(minute)].write();
        let sh = &mut *shard;
        // A radio-range config change would invalidate the edge set;
        // recreate rather than trust it (cfg is fixed per server today,
        // so this is a guard, not a hot path).
        if sh
            .maintained
            .get(&minute)
            .is_some_and(|mv| mv.dsrc_radius_m() != self.cfg.dsrc_radius_m)
        {
            sh.maintained.remove(&minute);
        }
        if !sh.maintained.contains_key(&minute) {
            let members = sh.by_minute.get(&minute).cloned().unwrap_or_default();
            let mv = self.metrics.maintained_create_us.time(|| {
                crate::maintained::MaintainedViewmap::create(
                    members,
                    minute,
                    &self.cfg,
                    0,
                    &mut crate::viewmap::BuildScratch::new(),
                )
            });
            sh.maintained.insert(minute, mv);
        }
        let mv = sh.maintained.get(&minute).expect("just inserted");
        self.metrics
            .maintained_extract_us
            .time(|| mv.extract(site, &self.cfg))
    }

    /// As [`investigate`](Self::investigate), served from the maintained
    /// viewlink graph: identical verdicts and board postings at
    /// incremental cost once the minute's graph exists.
    pub fn investigate_maintained(&self, minute: MinuteId, site: Site) -> Vec<VpId> {
        self.metrics.investigate_us.time(|| {
            let vm = self.build_viewmap_maintained(minute, site);
            let (_, ids, iterations) = vm.verify_counted(&site, &self.cfg);
            self.metrics.trustrank_iterations.record(iterations as u64);
            let mut board = self.solicited.write();
            for id in &ids {
                board.insert(*id);
            }
            ids
        })
    }

    /// Is a maintained viewlink graph currently alive for `minute`?
    /// Observability hook for tests and the fault harness (which asserts
    /// that recovery never resurrects maintained state).
    pub fn has_maintained(&self, minute: MinuteId) -> bool {
        self.db[minute_stripe(minute)]
            .read()
            .maintained
            .contains_key(&minute)
    }

    /// Post a solicitation directly (investigator action: request the
    /// video behind a specific VP id, e.g. after manual review of a
    /// verification outcome).
    pub fn solicit(&self, id: VpId) {
        self.solicited.write().insert(id);
    }

    /// Snapshot of one minute's stored VPs (`Arc`-shared with the DB, so
    /// the snapshot is pointer copies; the shard lock is held only for
    /// the copy).
    pub fn minute_vps(&self, minute: MinuteId) -> Vec<Arc<StoredVp>> {
        self.db[minute_stripe(minute)]
            .read()
            .by_minute
            .get(&minute)
            .cloned()
            .unwrap_or_default()
    }

    /// The current solicitation board ("request for video" postings).
    pub fn solicitation_board(&self) -> Vec<VpId> {
        let mut v: Vec<VpId> = self.solicited.read().iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Anonymously upload a solicited video. On success the video is
    /// queued for human review; review acceptance posts the reward.
    pub fn upload_video(&self, upload: &VideoUpload) -> Result<(), UploadError> {
        if !self.solicited.read().contains(&upload.vp_id) {
            return Err(UploadError::NotSolicited);
        }
        let stored = self.lookup_vp(upload.vp_id).ok_or(UploadError::UnknownVp)?;
        validate_upload(&stored, upload)?;
        Ok(())
    }

    /// Human review outcome: award `units` of cash to the owner of `vp_id`
    /// ("request for reward" posting).
    pub fn post_reward(&self, vp_id: VpId, units: usize) {
        self.reward_board.write().insert(vp_id, units);
    }

    /// The reward board.
    pub fn reward_board(&self) -> Vec<(VpId, usize)> {
        let mut v: Vec<(VpId, usize)> = self
            .reward_board
            .read()
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect();
        v.sort_unstable_by_key(|(id, _)| *id);
        v
    }

    /// Step (i) of Appendix A: prove ownership of a rewarded VP with the
    /// secret `Q_u`; returns the award amount `n`.
    pub fn claim_reward(&self, vp_id: VpId, secret: &[u8; 8]) -> Result<usize, RewardError> {
        let board = self.reward_board.read();
        let units = *board.get(&vp_id).ok_or(RewardError::NotOnBoard)?;
        if VpId::from_secret(secret) != vp_id {
            return Err(RewardError::BadOwnershipProof);
        }
        Ok(units)
    }

    /// Step (iii): sign the blinded messages — the server learns nothing
    /// about the cash it is creating. Consumes the board entry so a
    /// reward is only issued once.
    ///
    /// Safe under concurrent sessions: the board entry is *claimed*
    /// (removed) atomically before any signature is produced, so two
    /// racing claimants for the same VP get exactly one set of
    /// signatures — the loser sees `NotOnBoard`. The expensive RSA
    /// signing happens outside every lock.
    pub fn issue_blind_signatures(
        &self,
        vp_id: VpId,
        secret: &[u8; 8],
        blinded: &[BlindedMessage],
    ) -> Result<Vec<Signature>, RewardError> {
        // Validate first (read lock only) so the error priority matches
        // claim_reward: NotOnBoard before BadOwnershipProof.
        self.claim_reward(vp_id, secret)?;
        // Atomically consume the entry; a race loser finds it gone.
        let units = match self.reward_board.write().remove(&vp_id) {
            Some(units) => units,
            None => return Err(RewardError::NotOnBoard),
        };
        let take = blinded.len().min(units);
        let sigs = crate::reward::sign_blinded_batch(&self.key, &blinded[..take]);
        self.metrics.blind_signatures.add(sigs.len() as u64);
        Ok(sigs)
    }

    /// Redeem one unit of cash: verify the signature, check and update the
    /// double-spending ledger. The ledger is striped by key byte, so
    /// concurrent redeem sessions only contend within a stripe.
    pub fn redeem(&self, cash: &Cash) -> Result<(), RedeemError> {
        if !cash.verify(self.key.public()) {
            return Err(RedeemError::BadSignature);
        }
        let key = cash.ledger_key();
        if !self.ledger[ledger_stripe(&key)].write().insert(key) {
            self.metrics.cash_double_spend.inc();
            return Err(RedeemError::DoubleSpend);
        }
        self.metrics.cash_redeemed.inc();
        Ok(())
    }

    /// Total units of cash accepted into the double-spending ledger.
    pub fn spent_cash(&self) -> usize {
        self.ledger.iter().map(|s| s.read().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::Wallet;
    use crate::types::{GeoPos, SECONDS_PER_VP};
    use crate::upload::AnonymousChannel;
    use crate::vp::{VpBuilder, VpKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn server(seed: u64) -> ViewMapServer {
        let mut rng = StdRng::seed_from_u64(seed);
        ViewMapServer::new(&mut rng, 512, ViewmapConfig::default())
    }

    fn record_at(seed: u64, y: f64, start_time: u64) -> (crate::vp::FinalizedMinute, Vec<Vec<u8>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = VpBuilder::new(&mut rng, start_time, GeoPos::new(0.0, y), VpKind::Actual);
        let chunks: Vec<Vec<u8>> = (0..SECONDS_PER_VP)
            .map(|i| (0..64).map(|j| ((seed + i * 3 + j) % 251) as u8).collect())
            .collect();
        for (i, c) in chunks.iter().enumerate() {
            b.record_second(c, GeoPos::new(i as f64 * 8.0, y));
        }
        (b.finalize(), chunks)
    }

    fn record(seed: u64, y: f64) -> (crate::vp::FinalizedMinute, Vec<Vec<u8>>) {
        record_at(seed, y, 0)
    }

    /// Fabricated minimal VP for volume tests: 60 VDs with synthetic
    /// digests (no real hashing), empty Bloom filter.
    fn synthetic_vp(tag: u64, minute: u64) -> StoredVp {
        use crate::vd::ViewDigest;
        let mut id_bytes = [0u8; 16];
        id_bytes[..8].copy_from_slice(&tag.to_le_bytes());
        id_bytes[8..].copy_from_slice(&minute.to_le_bytes());
        let id = VpId(vm_crypto::Digest16(id_bytes));
        let start = minute * SECONDS_PER_VP;
        let vds: Vec<ViewDigest> = (1..=SECONDS_PER_VP as u16)
            .map(|seq| ViewDigest {
                seq,
                flags: 0,
                time: start + seq as u64,
                loc: GeoPos::new(tag as f64, seq as f64),
                file_size: seq as u64 * 64,
                initial_loc: GeoPos::new(tag as f64, 0.0),
                vp_id: id,
                hash: vm_crypto::Digest16(id_bytes),
            })
            .collect();
        StoredVp::new(id, vds, crate::bloom::BloomFilter::default(), false)
    }

    #[test]
    fn submissions_are_stored_and_deduplicated() {
        let srv = server(1);
        let (fin, _) = record(2, 0.0);
        let mut ch = AnonymousChannel::new();
        ch.enqueue(fin.profile.clone());
        ch.enqueue(fin.profile.clone()); // duplicate id
        let mut rng = StdRng::seed_from_u64(3);
        let batch = ch.flush(&mut rng);
        let results: Vec<_> = batch.into_iter().map(|s| srv.submit(s)).collect();
        assert!(results.contains(&Ok(())));
        assert!(results.contains(&Err(SubmitError::Duplicate)));
        assert_eq!(srv.total_vps(), 1);
    }

    #[test]
    fn malformed_vp_rejected() {
        let srv = server(4);
        let (fin, _) = record(5, 0.0);
        let mut vp = fin.profile.into_stored();
        vp.vds.truncate(10);
        assert_eq!(srv.store(vp), Err(SubmitError::MalformedVds));
    }

    #[test]
    fn non_monotone_vd_times_rejected() {
        // A genuine cascade records one VD per second; duplicated or
        // reordered timestamps are tampering and must not reach the DB
        // (they would also make viewlink alignment ill-defined).
        let srv = server(40);
        let mut dup = synthetic_vp(1, 0);
        dup.vds[5].time = dup.vds[4].time;
        assert_eq!(srv.store(dup.clone()), Err(SubmitError::MalformedVds));
        let mut reordered = synthetic_vp(2, 0);
        reordered.vds.swap(10, 11);
        let results = srv.submit_batch(vec![submission(reordered), submission(dup)]);
        assert_eq!(
            results,
            vec![
                Err(SubmitError::MalformedVds),
                Err(SubmitError::MalformedVds)
            ]
        );
        assert_eq!(srv.total_vps(), 0);
    }

    #[test]
    fn poisoned_bloom_rejected() {
        let srv = server(6);
        let (fin, _) = record(7, 0.0);
        let mut vp = fin.profile.into_stored();
        vp.bloom = crate::bloom::BloomFilter::from_bytes(vec![0xff; 256], 8);
        assert_eq!(srv.store(vp), Err(SubmitError::SuspiciousBloom));
    }

    #[test]
    fn video_upload_requires_solicitation() {
        let srv = server(8);
        let (fin, chunks) = record(9, 0.0);
        let id = fin.profile.id();
        srv.store(fin.profile.into_stored()).unwrap();
        let upload = VideoUpload { vp_id: id, chunks };
        assert_eq!(srv.upload_video(&upload), Err(UploadError::NotSolicited));
    }

    #[test]
    fn end_to_end_reward_flow_with_double_spend_defense() {
        let srv = server(10);
        let mut rng = StdRng::seed_from_u64(11);
        let (fin, _chunks) = record(12, 0.0);
        let vp_id = fin.profile.id();
        let secret = fin.secret;
        srv.store(fin.profile.into_stored()).unwrap();

        // Human review done: award 3 units.
        srv.post_reward(vp_id, 3);
        assert_eq!(srv.reward_board().len(), 1);

        // Wrong secret fails ownership proof.
        assert_eq!(
            srv.claim_reward(vp_id, &[0u8; 8]),
            Err(RewardError::BadOwnershipProof)
        );

        // Owner claims with Q_u.
        let units = srv.claim_reward(vp_id, &secret).unwrap();
        assert_eq!(units, 3);
        let mut wallet = Wallet::new();
        let (pending, blinded) = wallet.prepare(&mut rng, srv.public_key(), units);
        let signed = srv
            .issue_blind_signatures(vp_id, &secret, &blinded)
            .unwrap();
        assert_eq!(wallet.accept_signed(srv.public_key(), pending, &signed), 3);

        // Board entry consumed: no double issuance.
        assert_eq!(
            srv.issue_blind_signatures(vp_id, &secret, &blinded),
            Err(RewardError::NotOnBoard)
        );

        // Spend each unit once; second spend is caught.
        for c in &wallet.cash {
            assert_eq!(srv.redeem(c), Ok(()));
        }
        assert_eq!(srv.redeem(&wallet.cash[0]), Err(RedeemError::DoubleSpend));
    }

    #[test]
    fn concurrent_reward_sessions_do_not_double_issue_or_double_spend() {
        use std::sync::{Arc, Barrier};

        let srv = Arc::new(server(50));
        let (fin, _chunks) = record(51, 0.0);
        let vp_id = fin.profile.id();
        let secret = fin.secret;
        srv.store(fin.profile.into_stored()).unwrap();
        srv.post_reward(vp_id, 2);

        // Race T sessions claiming the same board entry: exactly one
        // wins the signatures, the rest see NotOnBoard.
        const T: usize = 8;
        let barrier = Arc::new(Barrier::new(T));
        let handles: Vec<_> = (0..T)
            .map(|i| {
                let srv = Arc::clone(&srv);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(100 + i as u64);
                    let mut wallet = Wallet::new();
                    let (pending, blinded) = wallet.prepare(&mut rng, srv.public_key(), 2);
                    barrier.wait();
                    match srv.issue_blind_signatures(vp_id, &secret, &blinded) {
                        Ok(signed) => {
                            assert_eq!(wallet.accept_signed(srv.public_key(), pending, &signed), 2);
                            Some(wallet)
                        }
                        Err(RewardError::NotOnBoard) => None,
                        Err(e) => panic!("unexpected error in race: {e:?}"),
                    }
                })
            })
            .collect();
        let winners: Vec<Wallet> = handles
            .into_iter()
            .filter_map(|h| h.join().unwrap())
            .collect();
        assert_eq!(winners.len(), 1, "exactly one session may claim a reward");
        let wallet = Arc::new(winners.into_iter().next().unwrap());

        // Race T sessions redeeming the same unit: exactly one insert
        // wins; the rest are caught as double spends. The other unit
        // redeems concurrently without interference.
        let barrier = Arc::new(Barrier::new(T + 1));
        let spenders: Vec<_> = (0..T)
            .map(|_| {
                let srv = Arc::clone(&srv);
                let wallet = Arc::clone(&wallet);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    srv.redeem(&wallet.cash[0]).is_ok()
                })
            })
            .collect();
        let other = {
            let srv = Arc::clone(&srv);
            let wallet = Arc::clone(&wallet);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                srv.redeem(&wallet.cash[1])
            })
        };
        let oks = spenders
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|ok| *ok)
            .count();
        assert_eq!(oks, 1, "exactly one redeem of the same cash may succeed");
        assert_eq!(other.join().unwrap(), Ok(()));
        assert_eq!(srv.spent_cash(), 2);

        let snap = srv.obs().snapshot();
        assert_eq!(snap.counter("vm_core_cash_redeemed_total"), Some(2));
        assert_eq!(
            snap.counter("vm_core_cash_double_spend_total"),
            Some((T - 1) as u64)
        );
        assert_eq!(snap.counter("vm_core_blind_signatures_total"), Some(2));
    }

    #[test]
    fn forged_cash_rejected() {
        let srv = server(13);
        let forged = Cash {
            message: [1u8; 32],
            signature: vm_crypto::Signature(vm_crypto::BigUint::from_u64(12345)),
        };
        assert_eq!(srv.redeem(&forged), Err(RedeemError::BadSignature));
    }

    #[test]
    fn trusted_submission_is_flagged() {
        let srv = server(14);
        let (fin, _) = record(15, 0.0);
        srv.submit_trusted(fin.profile.into_stored()).unwrap();
        let vm = srv.build_viewmap(
            MinuteId(0),
            Site {
                center: GeoPos::new(0.0, 0.0),
                radius_m: 500.0,
            },
        );
        assert_eq!(vm.trusted.len(), 1);
    }

    // ── VpId → MinuteId index ────────────────────────────────────────

    #[test]
    fn upload_after_submit_across_many_minutes() {
        // VPs spread over 24 minutes; the id index must route each upload
        // to the right minute bucket.
        let srv = server(16);
        let mut uploads = Vec::new();
        for m in 0..24u64 {
            let (fin, chunks) = record_at(100 + m, m as f64, m * SECONDS_PER_VP);
            let id = fin.profile.id();
            assert_eq!(fin.profile.clone().into_stored().minute(), MinuteId(m));
            srv.store(fin.profile.into_stored()).unwrap();
            uploads.push(VideoUpload { vp_id: id, chunks });
        }
        assert_eq!(srv.total_vps(), 24);
        for m in 0..24u64 {
            assert_eq!(srv.vp_count(MinuteId(m)), 1, "minute {m}");
        }
        // Solicit all, then upload each in reverse order.
        {
            let mut board = srv.solicited.write();
            for u in &uploads {
                board.insert(u.vp_id);
            }
        }
        for u in uploads.iter().rev() {
            assert_eq!(srv.upload_video(u), Ok(()), "upload for {:?}", u.vp_id);
        }
    }

    #[test]
    fn duplicate_rejection_keeps_index_consistent() {
        let srv = server(17);
        let (fin, chunks) = record(18, 0.0);
        let id = fin.profile.id();
        let first = fin.profile.clone().into_stored();
        srv.store(first).unwrap();

        // A forged resubmission under the same id (different content) is
        // rejected and must not disturb the index entry.
        let mut forged = fin.profile.into_stored();
        forged.vds[0].loc.x += 999.0;
        assert_eq!(srv.store(forged), Err(SubmitError::Duplicate));
        assert_eq!(srv.total_vps(), 1);

        let stored = srv.lookup_vp(id).expect("still indexed");
        assert_eq!(stored.id, id);
        assert!(
            stored.vds[0].loc.x < 999.0,
            "index must still point at the original record"
        );
        // And the original upload still validates.
        srv.solicited.write().insert(id);
        assert_eq!(srv.upload_video(&VideoUpload { vp_id: id, chunks }), Ok(()));
    }

    #[test]
    fn lookup_stays_correct_with_ten_thousand_vps() {
        // Regression test for the O(n) full-database scan: with 10k+ VPs
        // across hundreds of minutes, id lookups must keep resolving to
        // exactly the right record (the pre-index implementation walked
        // every minute bucket per upload).
        let srv = server(19);
        let n: u64 = 10_500;
        for tag in 0..n {
            let minute = tag % 350;
            srv.store(synthetic_vp(tag, minute)).unwrap();
        }
        assert_eq!(srv.total_vps(), n as usize);
        assert_eq!(srv.vp_count(MinuteId(0)), 30);
        for tag in (0..n).step_by(997) {
            let minute = tag % 350;
            let id = synthetic_vp(tag, minute).id;
            let vp = srv.lookup_vp(id).expect("indexed");
            assert_eq!(vp.id, id);
            assert_eq!(vp.minute(), MinuteId(minute));
            assert_eq!(vp.vds[0].loc.x, tag as f64);
        }
        assert!(srv
            .lookup_vp(VpId(vm_crypto::Digest16([0xAB; 16])))
            .is_none());
    }

    // ── Batch ingest ─────────────────────────────────────────────────

    fn submission(vp: StoredVp) -> crate::upload::AnonymousSubmission {
        crate::upload::AnonymousSubmission { session_id: 0, vp }
    }

    /// Full observable state equality between two servers: totals,
    /// per-minute bucket contents in order, and id-index routing.
    fn assert_same_state(a: &ViewMapServer, b: &ViewMapServer, minutes: &[u64], ids: &[VpId]) {
        assert_eq!(a.total_vps(), b.total_vps());
        for &m in minutes {
            let va = a.minute_vps(MinuteId(m));
            let vb = b.minute_vps(MinuteId(m));
            assert_eq!(va.len(), vb.len(), "minute {m} bucket size");
            for (x, y) in va.iter().zip(&vb) {
                assert_eq!(x.id, y.id, "minute {m} bucket order");
            }
        }
        for id in ids {
            match (a.lookup_vp(*id), b.lookup_vp(*id)) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.id, y.id);
                    assert_eq!(x.minute(), y.minute());
                }
                (x, y) => panic!(
                    "lookup {id:?} diverges: {:?} vs {:?}",
                    x.is_some(),
                    y.is_some()
                ),
            }
        }
    }

    #[test]
    fn batch_state_indistinguishable_from_sequential_submits() {
        // A batch mixing minutes, a malformed VP, a poisoned Bloom, an
        // in-batch duplicate, and a duplicate of an already-stored VP
        // must produce byte-for-byte the same outcomes and state as N
        // sequential submits.
        let seq = server(30);
        let bat = server(30);
        // One VP pre-stored on both, so the batch hits a server-level dup.
        let pre = synthetic_vp(999, 2);
        seq.store(pre.clone()).unwrap();
        bat.store(pre.clone()).unwrap();

        let mut batch: Vec<StoredVp> = Vec::new();
        for tag in 0..40u64 {
            batch.push(synthetic_vp(tag, tag % 5));
        }
        let mut malformed = synthetic_vp(100, 1);
        malformed.vds.truncate(3);
        batch.push(malformed);
        let mut poisoned = synthetic_vp(101, 1);
        poisoned.bloom = crate::bloom::BloomFilter::from_bytes(vec![0xff; 256], 8);
        batch.push(poisoned);
        batch.push(synthetic_vp(7, 3)); // in-batch dup id (minute differs!)
        batch.push(pre.clone()); // dup of pre-stored
        batch.push(synthetic_vp(102, 4));

        let seq_results: Vec<_> = batch
            .iter()
            .map(|vp| seq.submit(submission(vp.clone())))
            .collect();
        let bat_results = bat.submit_batch(batch.iter().cloned().map(submission));
        assert_eq!(seq_results, bat_results);

        let minutes: Vec<u64> = (0..6).collect();
        let ids: Vec<VpId> = batch.iter().map(|vp| vp.id).collect();
        assert_same_state(&seq, &bat, &minutes, &ids);
    }

    #[test]
    fn in_batch_duplicate_cannot_double_insert() {
        // Same id twice in one batch, same minute: first wins, the bucket
        // gains exactly one entry, and the index stays consistent.
        let srv = server(31);
        let vp = synthetic_vp(1, 0);
        let results = srv.submit_batch(vec![
            submission(vp.clone()),
            submission(vp.clone()),
            submission(vp.clone()),
        ]);
        assert_eq!(
            results,
            vec![
                Ok(()),
                Err(SubmitError::Duplicate),
                Err(SubmitError::Duplicate)
            ]
        );
        assert_eq!(srv.vp_count(MinuteId(0)), 1);
        assert_eq!(srv.lookup_vp(vp.id).unwrap().id, vp.id);
    }

    #[test]
    fn trusted_batch_flags_every_vp() {
        let srv = server(32);
        let results = srv.submit_trusted_batch(vec![synthetic_vp(1, 0), synthetic_vp(2, 0)]);
        assert!(results.iter().all(|r| r.is_ok()));
        for vp in srv.minute_vps(MinuteId(0)) {
            assert!(vp.trusted);
        }
    }

    #[test]
    fn concurrent_batches_and_singles_commit_consistently() {
        // Scoped threads drive overlapping batches and single submits at
        // the same minutes (shared stripes, shared shards). Afterwards:
        // every accepted VP resolves through the index, bucket sizes add
        // up, and no id was stored twice.
        let srv = server(33);
        let n_threads = 4usize;
        let per_thread = 120u64;
        let accepted: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_threads)
                .map(|t| {
                    let srv = &srv;
                    scope.spawn(move || {
                        let mut ok = 0usize;
                        let base = t as u64 * per_thread;
                        if t % 2 == 0 {
                            // Batcher: two overlapping batches; the second
                            // re-sends the first's tail → duplicates.
                            let mk = |lo: u64, hi: u64| {
                                (lo..hi)
                                    .map(|tag| submission(synthetic_vp(base + tag, tag % 3)))
                                    .collect::<Vec<_>>()
                            };
                            for batch in [mk(0, 80), mk(60, per_thread)] {
                                ok += srv
                                    .submit_batch(batch)
                                    .into_iter()
                                    .filter(|r| r.is_ok())
                                    .count();
                            }
                        } else {
                            // Single submitter, every id sent twice.
                            for tag in 0..per_thread {
                                for _ in 0..2 {
                                    if srv
                                        .submit(submission(synthetic_vp(base + tag, tag % 3)))
                                        .is_ok()
                                    {
                                        ok += 1;
                                    }
                                }
                            }
                        }
                        ok
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let expect: usize = n_threads * per_thread as usize;
        assert_eq!(accepted.iter().sum::<usize>(), expect, "one accept per id");
        assert_eq!(srv.total_vps(), expect);
        // Every stored VP resolves and ids are unique across buckets.
        let mut seen = HashSet::new();
        for m in 0..3u64 {
            for vp in srv.minute_vps(MinuteId(m)) {
                assert!(seen.insert(vp.id), "id stored twice: {:?}", vp.id);
                let hit = srv.lookup_vp(vp.id).expect("indexed");
                assert!(Arc::ptr_eq(&hit, &vp));
            }
        }
        assert_eq!(seen.len(), expect);
    }

    // ── Retention & replay ───────────────────────────────────────────

    #[test]
    fn evict_minutes_before_drops_buckets_index_and_reopens_ids() {
        let srv = server(50);
        for m in 0..6u64 {
            for tag in 0..4u64 {
                srv.store(synthetic_vp(m * 10 + tag, m)).unwrap();
            }
        }
        assert_eq!(srv.total_vps(), 24);

        let evicted = srv.evict_minutes_before(MinuteId(4));
        assert_eq!(evicted, 16, "minutes 0..=3 drop, 4..=5 stay");
        assert_eq!(srv.total_vps(), 8);
        for m in 0..4u64 {
            assert_eq!(srv.vp_count(MinuteId(m)), 0, "minute {m} evicted");
            assert!(srv.lookup_vp(synthetic_vp(m * 10, m).id).is_none());
        }
        for m in 4..6u64 {
            assert_eq!(srv.vp_count(MinuteId(m)), 4, "minute {m} retained");
            let id = synthetic_vp(m * 10 + 3, m).id;
            assert_eq!(srv.lookup_vp(id).unwrap().id, id);
        }

        // Evicted ids are forgotten: the same id submits again (bounded
        // retention is exactly the operation that forgets ids)...
        srv.store(synthetic_vp(0, 0)).unwrap();
        // ...while retained ids still dedup.
        assert_eq!(srv.store(synthetic_vp(43, 4)), Err(SubmitError::Duplicate));
        // Idempotent: nothing left below the cutoff.
        assert_eq!(srv.evict_minutes_before(MinuteId(0)), 0);
    }

    #[test]
    fn replay_batch_preserves_trusted_flags_and_warms_keys() {
        // The recovery path must not force-trust (unlike
        // submit_trusted_batch) and must leave every replayed VP
        // key-warm, exactly like submit_batch_warm.
        let srv = server(51);
        let mut trusted = synthetic_vp(1, 0);
        trusted.trusted = true;
        let plain = synthetic_vp(2, 0);
        let results = srv.submit_replay_batch(vec![trusted.clone(), plain.clone()]);
        assert!(results.iter().all(|r| r.is_ok()));
        let a = srv.lookup_vp(trusted.id).unwrap();
        let b = srv.lookup_vp(plain.id).unwrap();
        assert!(a.trusted, "replay keeps the authority flag");
        assert!(!b.trusted, "replay must not mint new authority VPs");
        assert!(a.is_key_warm() && b.is_key_warm(), "replay warms link keys");
    }

    #[test]
    fn wal_mirrors_accepts_in_bucket_order_and_eviction() {
        // A recording fake WAL: the server must log exactly the accepted
        // VPs, per minute in bucket order, and forward retention sweeps.
        #[derive(Default)]
        struct RecordingWal {
            appended: parking_lot::Mutex<Vec<(MinuteId, VpId)>>,
            evictions: parking_lot::Mutex<Vec<MinuteId>>,
        }
        impl crate::wal::VpWal for RecordingWal {
            fn append(&self, vps: &[&StoredVp]) -> std::io::Result<()> {
                let mut log = self.appended.lock();
                for vp in vps {
                    log.push((vp.minute(), vp.id));
                }
                Ok(())
            }
            fn evict_minutes_before(&self, cutoff: MinuteId) -> std::io::Result<usize> {
                self.evictions.lock().push(cutoff);
                Ok(0)
            }
        }

        let wal = Arc::new(RecordingWal::default());
        let mut srv = server(52);
        srv.attach_wal(Box::new(Arc::clone(&wal)));
        assert!(srv.has_wal());

        // Batch with an in-batch dup and a malformed VP: only accepts log.
        let mut bad = synthetic_vp(9, 1);
        bad.vds.truncate(3);
        let batch = [
            synthetic_vp(1, 0),
            synthetic_vp(2, 1),
            synthetic_vp(1, 0), // dup
            bad,
            synthetic_vp(3, 0),
        ];
        let results = srv.submit_batch(batch.iter().cloned().map(submission));
        assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 3);
        srv.store(synthetic_vp(4, 0)).unwrap();
        assert_eq!(srv.store(synthetic_vp(4, 0)), Err(SubmitError::Duplicate));

        let log = wal.appended.lock().clone();
        assert_eq!(log.len(), 4, "exactly the accepted VPs are logged");
        // Per minute, log order equals bucket order.
        for m in 0..2u64 {
            let logged: Vec<VpId> = log
                .iter()
                .filter(|(minute, _)| *minute == MinuteId(m))
                .map(|(_, id)| *id)
                .collect();
            let bucket: Vec<VpId> = srv.minute_vps(MinuteId(m)).iter().map(|vp| vp.id).collect();
            assert_eq!(logged, bucket, "minute {m} log order");
        }

        srv.evict_minutes_before(MinuteId(1));
        assert_eq!(wal.evictions.lock().as_slice(), &[MinuteId(1)]);
        assert_eq!(srv.sync_wal().ok(), Some(()));
    }

    #[test]
    fn state_digest_pins_minutes_order_and_trusted_flags() {
        // Two servers fed the same VPs in the same order agree; changing
        // bucket order, dropping a minute, or flipping a trusted flag
        // must each move the digest.
        let a = server(60);
        let b = server(61);
        for m in 0..3u64 {
            for t in 0..4u64 {
                a.store(synthetic_vp(m * 10 + t, m)).unwrap();
                b.store(synthetic_vp(m * 10 + t, m)).unwrap();
            }
        }
        assert_eq!(
            a.stored_minutes(),
            vec![MinuteId(0), MinuteId(1), MinuteId(2)]
        );
        assert_eq!(
            a.state_digest(),
            b.state_digest(),
            "same history, same digest"
        );

        // Different append order within one minute.
        let c = server(62);
        for m in 0..3u64 {
            for t in (0..4u64).rev() {
                c.store(synthetic_vp(m * 10 + t, m)).unwrap();
            }
        }
        assert_ne!(
            a.state_digest(),
            c.state_digest(),
            "order is part of the state"
        );

        // A missing minute.
        let d = server(63);
        for m in 0..2u64 {
            for t in 0..4u64 {
                d.store(synthetic_vp(m * 10 + t, m)).unwrap();
            }
        }
        assert_ne!(
            a.state_digest(),
            d.state_digest(),
            "minute set is part of the state"
        );

        // Same ids, one trusted flag flipped.
        let e = server(64);
        for m in 0..3u64 {
            for t in 0..4u64 {
                let mut vp = synthetic_vp(m * 10 + t, m);
                if m == 1 && t == 2 {
                    vp.trusted = true;
                }
                e.store(vp).unwrap();
            }
        }
        assert_ne!(
            a.state_digest(),
            e.state_digest(),
            "trust is part of the state"
        );

        // Eviction moves the digest and the minute list together.
        let before = a.state_digest();
        a.evict_minutes_before(MinuteId(1));
        assert_eq!(a.stored_minutes(), vec![MinuteId(1), MinuteId(2)]);
        assert_ne!(a.state_digest(), before);
    }

    #[test]
    fn viewmap_members_share_database_arcs() {
        // The zero-copy acceptance criterion, measured at the server API:
        // viewmap members are the same allocations the DB holds.
        let srv = server(20);
        let (fin, _) = record(21, 0.0);
        let id = fin.profile.id();
        srv.store(fin.profile.into_stored()).unwrap();
        let vm = srv.build_viewmap(
            MinuteId(0),
            Site {
                center: GeoPos::new(0.0, 0.0),
                radius_m: 1000.0,
            },
        );
        assert_eq!(vm.len(), 1);
        let db_copy = srv.lookup_vp(id).unwrap();
        assert!(
            Arc::ptr_eq(&vm.vps[0], &db_copy),
            "viewmap member and DB record must be the same allocation"
        );
    }
}
