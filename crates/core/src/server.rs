//! The ViewMap service (Section 4): VP database, viewmap construction,
//! solicitation board, reward board, and the double-spending ledger.
//!
//! The server never learns who uploaded a VP (see [`crate::upload`]); it
//! operates purely on anonymized VPs, requests videos by VP identifier,
//! validates uploads against the stored cascaded hashes, and pays with
//! blind-signature cash it cannot trace.

use crate::reward::Cash;
use crate::solicit::{validate_upload, UploadError, VideoUpload};
use crate::types::{MinuteId, VpId, MAX_NEIGHBORS};
use crate::upload::AnonymousSubmission;
use crate::viewmap::{Site, Viewmap, ViewmapConfig};
use crate::vp::StoredVp;
use parking_lot::RwLock;
use rand::Rng;
use std::collections::{HashMap, HashSet};
use vm_crypto::{BlindedMessage, RsaKeyPair, RsaPublicKey, Signature};

/// Why a VP submission was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// A VP with this identifier already exists.
    Duplicate,
    /// The VP does not carry exactly 60 VDs.
    MalformedVds,
    /// The Bloom filter is implausibly saturated (poisoning defense).
    SuspiciousBloom,
}

/// Why a reward request was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RewardError {
    /// The VP id is not on the reward board.
    NotOnBoard,
    /// The presented secret does not hash to the VP id.
    BadOwnershipProof,
}

/// Why redeeming cash failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RedeemError {
    /// The signature does not verify under the system key.
    BadSignature,
    /// The cash message was already spent.
    DoubleSpend,
}

/// The ViewMap public-service system.
pub struct ViewMapServer {
    db: RwLock<HashMap<MinuteId, Vec<StoredVp>>>,
    known_ids: RwLock<HashSet<VpId>>,
    solicited: RwLock<HashSet<VpId>>,
    /// VP id → award amount in cash units, set after human review.
    reward_board: RwLock<HashMap<VpId, usize>>,
    ledger: RwLock<HashSet<[u8; 32]>>,
    key: RsaKeyPair,
    cfg: ViewmapConfig,
}

impl ViewMapServer {
    /// Stand up a server with a fresh signing key of `key_bits`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, key_bits: usize, cfg: ViewmapConfig) -> Self {
        ViewMapServer {
            db: RwLock::new(HashMap::new()),
            known_ids: RwLock::new(HashSet::new()),
            solicited: RwLock::new(HashSet::new()),
            reward_board: RwLock::new(HashMap::new()),
            ledger: RwLock::new(HashSet::new()),
            key: RsaKeyPair::generate(rng, key_bits),
            cfg,
        }
    }

    /// The system's public key (printed on the cash, so to speak).
    pub fn public_key(&self) -> &RsaPublicKey {
        self.key.public()
    }

    /// Accept one anonymized VP submission into the database.
    pub fn submit(&self, sub: AnonymousSubmission) -> Result<(), SubmitError> {
        self.store(sub.vp)
    }

    /// Accept a trusted VP through the authority channel.
    pub fn submit_trusted(&self, mut vp: StoredVp) -> Result<(), SubmitError> {
        vp.trusted = true;
        self.store(vp)
    }

    fn store(&self, vp: StoredVp) -> Result<(), SubmitError> {
        if vp.vds.len() != crate::types::SECONDS_PER_VP as usize {
            return Err(SubmitError::MalformedVds);
        }
        if vp.bloom.is_suspicious(MAX_NEIGHBORS) {
            return Err(SubmitError::SuspiciousBloom);
        }
        let mut ids = self.known_ids.write();
        if !ids.insert(vp.id) {
            return Err(SubmitError::Duplicate);
        }
        self.db.write().entry(vp.minute()).or_default().push(vp);
        Ok(())
    }

    /// Number of VPs stored for a minute.
    pub fn vp_count(&self, minute: MinuteId) -> usize {
        self.db.read().get(&minute).map_or(0, |v| v.len())
    }

    /// Total VPs stored.
    pub fn total_vps(&self) -> usize {
        self.db.read().values().map(|v| v.len()).sum()
    }

    /// Build the viewmap for a minute around an incident site.
    pub fn build_viewmap(&self, minute: MinuteId, site: Site) -> Viewmap {
        let db = self.db.read();
        let empty = Vec::new();
        let candidates = db.get(&minute).unwrap_or(&empty);
        Viewmap::build(candidates, site, minute, &self.cfg)
    }

    /// Full investigation pipeline for one minute: build the viewmap, run
    /// Algorithm 1, and post the verified VP ids on the solicitation
    /// board. Returns the posted ids.
    pub fn investigate(&self, minute: MinuteId, site: Site) -> Vec<VpId> {
        let vm = self.build_viewmap(minute, site);
        let (_, ids) = vm.verify(&site, &self.cfg);
        let mut board = self.solicited.write();
        for id in &ids {
            board.insert(*id);
        }
        ids
    }

    /// The current solicitation board ("request for video" postings).
    pub fn solicitation_board(&self) -> Vec<VpId> {
        let mut v: Vec<VpId> = self.solicited.read().iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Anonymously upload a solicited video. On success the video is
    /// queued for human review; review acceptance posts the reward.
    pub fn upload_video(&self, upload: &VideoUpload) -> Result<(), UploadError> {
        if !self.solicited.read().contains(&upload.vp_id) {
            return Err(UploadError::NotSolicited);
        }
        let db = self.db.read();
        let stored = db
            .values()
            .flatten()
            .find(|vp| vp.id == upload.vp_id)
            .ok_or(UploadError::UnknownVp)?;
        validate_upload(stored, upload)?;
        Ok(())
    }

    /// Human review outcome: award `units` of cash to the owner of `vp_id`
    /// ("request for reward" posting).
    pub fn post_reward(&self, vp_id: VpId, units: usize) {
        self.reward_board.write().insert(vp_id, units);
    }

    /// The reward board.
    pub fn reward_board(&self) -> Vec<(VpId, usize)> {
        let mut v: Vec<(VpId, usize)> = self
            .reward_board
            .read()
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect();
        v.sort_unstable_by_key(|(id, _)| *id);
        v
    }

    /// Step (i) of Appendix A: prove ownership of a rewarded VP with the
    /// secret `Q_u`; returns the award amount `n`.
    pub fn claim_reward(&self, vp_id: VpId, secret: &[u8; 8]) -> Result<usize, RewardError> {
        let board = self.reward_board.read();
        let units = *board.get(&vp_id).ok_or(RewardError::NotOnBoard)?;
        if VpId::from_secret(secret) != vp_id {
            return Err(RewardError::BadOwnershipProof);
        }
        Ok(units)
    }

    /// Step (iii): sign the blinded messages — the server learns nothing
    /// about the cash it is creating. Consumes the board entry so a
    /// reward is only issued once.
    pub fn issue_blind_signatures(
        &self,
        vp_id: VpId,
        secret: &[u8; 8],
        blinded: &[BlindedMessage],
    ) -> Result<Vec<Signature>, RewardError> {
        let units = self.claim_reward(vp_id, secret)?;
        let take = blinded.len().min(units);
        let sigs = crate::reward::sign_blinded_batch(&self.key, &blinded[..take]);
        self.reward_board.write().remove(&vp_id);
        Ok(sigs)
    }

    /// Redeem one unit of cash: verify the signature, check and update the
    /// double-spending ledger.
    pub fn redeem(&self, cash: &Cash) -> Result<(), RedeemError> {
        if !cash.verify(self.key.public()) {
            return Err(RedeemError::BadSignature);
        }
        if !self.ledger.write().insert(cash.ledger_key()) {
            return Err(RedeemError::DoubleSpend);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::Wallet;
    use crate::types::{GeoPos, SECONDS_PER_VP};
    use crate::upload::AnonymousChannel;
    use crate::vp::{VpBuilder, VpKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn server(seed: u64) -> ViewMapServer {
        let mut rng = StdRng::seed_from_u64(seed);
        ViewMapServer::new(&mut rng, 512, ViewmapConfig::default())
    }

    fn record(seed: u64, y: f64) -> (crate::vp::FinalizedMinute, Vec<Vec<u8>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = VpBuilder::new(&mut rng, 0, GeoPos::new(0.0, y), VpKind::Actual);
        let chunks: Vec<Vec<u8>> = (0..SECONDS_PER_VP)
            .map(|i| (0..64).map(|j| ((seed + i * 3 + j) % 251) as u8).collect())
            .collect();
        for (i, c) in chunks.iter().enumerate() {
            b.record_second(c, GeoPos::new(i as f64 * 8.0, y));
        }
        (b.finalize(), chunks)
    }

    #[test]
    fn submissions_are_stored_and_deduplicated() {
        let srv = server(1);
        let (fin, _) = record(2, 0.0);
        let mut ch = AnonymousChannel::new();
        ch.enqueue(fin.profile.clone());
        ch.enqueue(fin.profile.clone()); // duplicate id
        let mut rng = StdRng::seed_from_u64(3);
        let batch = ch.flush(&mut rng);
        let results: Vec<_> = batch.into_iter().map(|s| srv.submit(s)).collect();
        assert!(results.contains(&Ok(())));
        assert!(results.contains(&Err(SubmitError::Duplicate)));
        assert_eq!(srv.total_vps(), 1);
    }

    #[test]
    fn malformed_vp_rejected() {
        let srv = server(4);
        let (fin, _) = record(5, 0.0);
        let mut vp = fin.profile.into_stored();
        vp.vds.truncate(10);
        assert_eq!(srv.store(vp), Err(SubmitError::MalformedVds));
    }

    #[test]
    fn poisoned_bloom_rejected() {
        let srv = server(6);
        let (fin, _) = record(7, 0.0);
        let mut vp = fin.profile.into_stored();
        vp.bloom = crate::bloom::BloomFilter::from_bytes(vec![0xff; 256], 8);
        assert_eq!(srv.store(vp), Err(SubmitError::SuspiciousBloom));
    }

    #[test]
    fn video_upload_requires_solicitation() {
        let srv = server(8);
        let (fin, chunks) = record(9, 0.0);
        let id = fin.profile.id();
        srv.store(fin.profile.into_stored()).unwrap();
        let upload = VideoUpload {
            vp_id: id,
            chunks,
        };
        assert_eq!(srv.upload_video(&upload), Err(UploadError::NotSolicited));
    }

    #[test]
    fn end_to_end_reward_flow_with_double_spend_defense() {
        let srv = server(10);
        let mut rng = StdRng::seed_from_u64(11);
        let (fin, _chunks) = record(12, 0.0);
        let vp_id = fin.profile.id();
        let secret = fin.secret;
        srv.store(fin.profile.into_stored()).unwrap();

        // Human review done: award 3 units.
        srv.post_reward(vp_id, 3);
        assert_eq!(srv.reward_board().len(), 1);

        // Wrong secret fails ownership proof.
        assert_eq!(
            srv.claim_reward(vp_id, &[0u8; 8]),
            Err(RewardError::BadOwnershipProof)
        );

        // Owner claims with Q_u.
        let units = srv.claim_reward(vp_id, &secret).unwrap();
        assert_eq!(units, 3);
        let mut wallet = Wallet::new();
        let (pending, blinded) = wallet.prepare(&mut rng, srv.public_key(), units);
        let signed = srv.issue_blind_signatures(vp_id, &secret, &blinded).unwrap();
        assert_eq!(wallet.accept_signed(srv.public_key(), pending, &signed), 3);

        // Board entry consumed: no double issuance.
        assert_eq!(
            srv.issue_blind_signatures(vp_id, &secret, &blinded),
            Err(RewardError::NotOnBoard)
        );

        // Spend each unit once; second spend is caught.
        for c in &wallet.cash {
            assert_eq!(srv.redeem(c), Ok(()));
        }
        assert_eq!(srv.redeem(&wallet.cash[0]), Err(RedeemError::DoubleSpend));
    }

    #[test]
    fn forged_cash_rejected() {
        let srv = server(13);
        let forged = Cash {
            message: [1u8; 32],
            signature: vm_crypto::Signature(vm_crypto::BigUint::from_u64(12345)),
        };
        assert_eq!(srv.redeem(&forged), Err(RedeemError::BadSignature));
    }

    #[test]
    fn trusted_submission_is_flagged() {
        let srv = server(14);
        let (fin, _) = record(15, 0.0);
        srv.submit_trusted(fin.profile.into_stored()).unwrap();
        let vm = srv.build_viewmap(
            MinuteId(0),
            Site {
                center: GeoPos::new(0.0, 0.0),
                radius_m: 500.0,
            },
        );
        assert_eq!(vm.trusted.len(), 1);
    }
}
