//! Anonymous VP upload — the Tor substitute (Section 5.1.2).
//!
//! Vehicles upload actual and guard VPs "whenever connected", over an
//! anonymity network, *constantly changing sessions* so the server cannot
//! group VPs by session id. What the privacy evaluation needs from the
//! transport is exactly that property: the server sees a bag of VPs with
//! fresh, meaningless session ids and no stable uploader handle. This
//! module enforces it by construction: submissions are batched, each batch
//! is shuffled and re-stamped with a random session id per VP.

use crate::vp::{StoredVp, ViewProfile, VpKind};
use rand::Rng;

/// A VP as it arrives at the server: anonymized, session-stamped.
#[derive(Clone, Debug)]
pub struct AnonymousSubmission {
    /// Random per-submission session id (never reused deliberately).
    pub session_id: u64,
    /// The uploaded VP (server form).
    pub vp: StoredVp,
}

/// The anonymity channel between vehicles and the server.
#[derive(Clone, Debug, Default)]
pub struct AnonymousChannel {
    pending: Vec<StoredVp>,
}

impl AnonymousChannel {
    /// New, empty channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a VP for upload. Guard VPs are uploaded and then deleted on
    /// the vehicle; the channel is the last place the `kind` tag exists —
    /// it is erased here (converted to the wire/server form).
    pub fn enqueue(&mut self, vp: ViewProfile) {
        debug_assert!(
            vp.kind != VpKind::Trusted,
            "trusted VPs are submitted through the authority channel"
        );
        self.pending.push(vp.into_stored());
    }

    /// Number of queued VPs.
    pub fn queued(&self) -> usize {
        self.pending.len()
    }

    /// Flush the queue: shuffle submission order and stamp each VP with a
    /// fresh random session id.
    pub fn flush<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<AnonymousSubmission> {
        let mut batch = std::mem::take(&mut self.pending);
        // Fisher–Yates shuffle.
        for i in (1..batch.len()).rev() {
            let j = rng.gen_range(0..=i);
            batch.swap(i, j);
        }
        batch
            .into_iter()
            .map(|vp| AnonymousSubmission {
                session_id: rng.gen(),
                vp,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::GeoPos;
    use crate::vp::exchange_minute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn some_profiles(n: usize, seed: u64) -> Vec<ViewProfile> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let (fa, _) = exchange_minute(
                    &mut rng,
                    0,
                    move |s| GeoPos::new(i as f64 * 10.0 + s as f64, 0.0),
                    move |s| GeoPos::new(i as f64 * 10.0 + s as f64, 30.0),
                );
                fa.profile
            })
            .collect()
    }

    #[test]
    fn flush_empties_queue() {
        let mut ch = AnonymousChannel::new();
        for p in some_profiles(5, 1) {
            ch.enqueue(p);
        }
        assert_eq!(ch.queued(), 5);
        let mut rng = StdRng::seed_from_u64(2);
        let batch = ch.flush(&mut rng);
        assert_eq!(batch.len(), 5);
        assert_eq!(ch.queued(), 0);
    }

    #[test]
    fn session_ids_are_unique_across_batches() {
        let mut ch = AnonymousChannel::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = HashSet::new();
        for round in 0..10 {
            for p in some_profiles(8, 100 + round) {
                ch.enqueue(p);
            }
            for sub in ch.flush(&mut rng) {
                assert!(seen.insert(sub.session_id), "session id reuse");
            }
        }
        assert_eq!(seen.len(), 80);
    }

    #[test]
    fn batch_order_is_shuffled() {
        let profiles = some_profiles(20, 4);
        let original_ids: Vec<_> = profiles.iter().map(|p| p.id()).collect();
        let mut ch = AnonymousChannel::new();
        for p in profiles {
            ch.enqueue(p);
        }
        let mut rng = StdRng::seed_from_u64(5);
        let flushed_ids: Vec<_> = ch.flush(&mut rng).iter().map(|s| s.vp.id).collect();
        assert_ne!(original_ids, flushed_ids, "order must not be preserved");
        let a: HashSet<_> = original_ids.into_iter().collect();
        let b: HashSet<_> = flushed_ids.into_iter().collect();
        assert_eq!(a, b, "same set of VPs");
    }

    #[test]
    fn kind_tag_does_not_survive_the_channel() {
        // StoredVp has no guard/actual distinction — compile-time property;
        // here we check `trusted` is false for normal uploads.
        let mut ch = AnonymousChannel::new();
        for p in some_profiles(3, 6) {
            ch.enqueue(p);
        }
        let mut rng = StdRng::seed_from_u64(7);
        for sub in ch.flush(&mut rng) {
            assert!(!sub.vp.trusted);
        }
    }
}
