//! Untraceable rewarding with blind signatures (Section 5.3, Appendix A).
//!
//! After a solicited video passes review, the system posts its VP id
//! marked "request for reward". The owner proves ownership with the secret
//! `Q_u` (since `R_u = H(Q_u)`), learns the award amount `n`, sends `n`
//! blinded random messages, receives them signed, and unblinds them into
//! `n` units of self-verifiable virtual cash. The signer never sees the
//! cash messages, so cash can never be linked back to the video; the
//! double-spending ledger is keyed by the cash message itself.

use rand::Rng;
use vm_crypto::{BigUint, BlindingSecret, RsaKeyPair, RsaPublicKey, Signature};

/// One unit of virtual cash: an unblinded signature over a random message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cash {
    /// The random message `m_u^i` (32 bytes).
    pub message: [u8; 32],
    /// The system's unblinded signature over `H(message)`.
    pub signature: Signature,
}

impl Cash {
    /// Verify authenticity against the system's public key: anyone can do
    /// this (self-verifiable cash).
    pub fn verify(&self, pk: &RsaPublicKey) -> bool {
        pk.verify(&self.signature, &self.message)
    }

    /// The ledger key for double-spending checks.
    pub fn ledger_key(&self) -> [u8; 32] {
        vm_crypto::sha256(&self.message).0
    }
}

/// Client-side state for one pending unit: the message and its blinding
/// secret (known only to the user).
pub struct PendingCash {
    message: [u8; 32],
    hashed: BigUint,
    secret: BlindingSecret,
}

/// A wallet drives the user side of the rewarding protocol.
#[derive(Default)]
pub struct Wallet {
    /// Redeemable cash units.
    pub cash: Vec<Cash>,
}

impl Wallet {
    /// Empty wallet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Step (ii) of Appendix A: generate `n` random messages and blind
    /// them. Returns the pending state plus the blinded messages to send.
    pub fn prepare<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        pk: &RsaPublicKey,
        n: usize,
    ) -> (Vec<PendingCash>, Vec<vm_crypto::BlindedMessage>) {
        let mut pending = Vec::with_capacity(n);
        let mut blinded = Vec::with_capacity(n);
        for _ in 0..n {
            let mut message = [0u8; 32];
            rng.fill(&mut message);
            let hashed = pk.fdh(&message);
            let (b, secret) = pk.blind(&hashed, rng).expect("hash is in range");
            pending.push(PendingCash {
                message,
                hashed,
                secret,
            });
            blinded.push(b);
        }
        (pending, blinded)
    }

    /// Step (iv): unblind the signed messages into cash. Verifies each
    /// unit before accepting it; returns how many units were added.
    pub fn accept_signed(
        &mut self,
        pk: &RsaPublicKey,
        pending: Vec<PendingCash>,
        signed: &[Signature],
    ) -> usize {
        let mut added = 0;
        for (p, s) in pending.into_iter().zip(signed) {
            let sig = pk.unblind(s, &p.secret);
            if pk.verify_hashed(&sig, &p.hashed) {
                self.cash.push(Cash {
                    message: p.message,
                    signature: sig,
                });
                added += 1;
            }
        }
        added
    }

    /// Total spendable units.
    pub fn balance(&self) -> usize {
        self.cash.len()
    }
}

/// The signer side (system `S`): signs blinded messages without seeing
/// their contents. Thin wrapper used by the server.
pub fn sign_blinded_batch(
    key: &RsaKeyPair,
    blinded: &[vm_crypto::BlindedMessage],
) -> Vec<Signature> {
    blinded
        .iter()
        .filter_map(|b| key.sign_blinded(b).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(seed: u64) -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(seed);
        RsaKeyPair::generate(&mut rng, 512)
    }

    #[test]
    fn full_reward_round() {
        let key = keypair(1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut wallet = Wallet::new();
        let (pending, blinded) = wallet.prepare(&mut rng, key.public(), 5);
        let signed = sign_blinded_batch(&key, &blinded);
        assert_eq!(signed.len(), 5);
        let added = wallet.accept_signed(key.public(), pending, &signed);
        assert_eq!(added, 5);
        assert_eq!(wallet.balance(), 5);
        for c in &wallet.cash {
            assert!(c.verify(key.public()));
        }
    }

    #[test]
    fn cash_from_wrong_key_rejected() {
        let key = keypair(3);
        let other = keypair(4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut wallet = Wallet::new();
        let (pending, blinded) = wallet.prepare(&mut rng, key.public(), 2);
        // A forger signs with a different key.
        let signed = sign_blinded_batch(&other, &blinded);
        let added = wallet.accept_signed(key.public(), pending, &signed);
        assert_eq!(added, 0, "wallet must reject badly signed cash");
    }

    #[test]
    fn signer_never_sees_message_or_its_hash() {
        let key = keypair(6);
        let mut rng = StdRng::seed_from_u64(7);
        let wallet = Wallet::new();
        let (pending, blinded) = wallet.prepare(&mut rng, key.public(), 1);
        // The blinded value differs from the message's FDH — the signer
        // learns nothing that identifies the message.
        assert_ne!(blinded[0].0, pending[0].hashed);
    }

    #[test]
    fn distinct_cash_units_have_distinct_ledger_keys() {
        let key = keypair(8);
        let mut rng = StdRng::seed_from_u64(9);
        let mut wallet = Wallet::new();
        let (pending, blinded) = wallet.prepare(&mut rng, key.public(), 8);
        let signed = sign_blinded_batch(&key, &blinded);
        wallet.accept_signed(key.public(), pending, &signed);
        let keys: std::collections::HashSet<_> =
            wallet.cash.iter().map(|c| c.ledger_key()).collect();
        assert_eq!(keys.len(), 8);
    }

    #[test]
    fn tampered_cash_fails_verification() {
        let key = keypair(10);
        let mut rng = StdRng::seed_from_u64(11);
        let mut wallet = Wallet::new();
        let (pending, blinded) = wallet.prepare(&mut rng, key.public(), 1);
        let signed = sign_blinded_batch(&key, &blinded);
        wallet.accept_signed(key.public(), pending, &signed);
        let mut forged = wallet.cash[0].clone();
        forged.message[0] ^= 1;
        assert!(!forged.verify(key.public()));
    }
}
