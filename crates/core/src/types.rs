//! Shared protocol types and constants.

use vm_crypto::Digest16;
use vm_geo::Point;

/// DSRC radio range in meters ("up to 400 m", Section 5.1.2).
pub const DSRC_RADIUS_M: f64 = 400.0;

/// Seconds covered by one view profile (1-min default recording unit).
pub const SECONDS_PER_VP: u64 = 60;

/// The maximum number of neighbor VPs a vehicle accepts per minute
/// (footnote 10: mitigation against Bloom-poisoning attacks).
pub const MAX_NEIGHBORS: usize = 250;

/// VP identifier `R_u = H(Q_u)` — a 128-bit digest, never linkable to the
/// owner.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VpId(pub Digest16);

impl VpId {
    /// Derive the VP identifier from the owner's secret number `Q_u`.
    pub fn from_secret(secret: &[u8; 8]) -> Self {
        VpId(Digest16::hash(secret))
    }
}

impl std::fmt::Debug for VpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VpId({})", self.0)
    }
}

impl std::fmt::Display for VpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Minute index since simulation epoch: viewmaps are built per minute
/// (Section 5.2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MinuteId(pub u64);

impl MinuteId {
    /// The minute containing second `t`.
    pub fn of_second(t: u64) -> Self {
        MinuteId(t / SECONDS_PER_VP)
    }

    /// First second of this minute.
    pub fn start_second(&self) -> u64 {
        self.0 * SECONDS_PER_VP
    }
}

/// A geographic position. In-memory we use full-precision meters; the wire
/// format carries two `f32`s (8 bytes, matching the paper's VD layout).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeoPos {
    /// East, meters.
    pub x: f64,
    /// North, meters.
    pub y: f64,
}

impl GeoPos {
    /// Construct a position.
    pub fn new(x: f64, y: f64) -> Self {
        GeoPos { x, y }
    }

    /// Distance in meters.
    pub fn distance(&self, other: &GeoPos) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared distance in meters². For comparisons and minima this is
    /// the form to use — `sqrt` is monotone, so ordering is preserved and
    /// the caller converts once at the end instead of once per candidate
    /// (`distance` is exactly `distance_sq(..).sqrt()`, so
    /// `min(d).sqrt() == min(sqrt(d))` bit for bit).
    pub fn distance_sq(&self, other: &GeoPos) -> f64 {
        (self.x - other.x).powi(2) + (self.y - other.y).powi(2)
    }

    /// Encode as 8 wire bytes (two little-endian `f32`s).
    pub fn encode(&self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[..4].copy_from_slice(&(self.x as f32).to_le_bytes());
        out[4..].copy_from_slice(&(self.y as f32).to_le_bytes());
        out
    }

    /// Decode from 8 wire bytes.
    pub fn decode(bytes: &[u8; 8]) -> Self {
        let x = f32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as f64;
        let y = f32::from_le_bytes(bytes[4..].try_into().expect("4 bytes")) as f64;
        GeoPos { x, y }
    }
}

impl From<Point> for GeoPos {
    fn from(p: Point) -> Self {
        GeoPos { x: p.x, y: p.y }
    }
}

impl From<GeoPos> for Point {
    fn from(g: GeoPos) -> Self {
        Point::new(g.x, g.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vp_id_binds_to_secret() {
        let q = [1u8; 8];
        let r1 = VpId::from_secret(&q);
        let r2 = VpId::from_secret(&q);
        assert_eq!(r1, r2);
        assert_ne!(r1, VpId::from_secret(&[2u8; 8]));
    }

    #[test]
    fn minute_of_second() {
        assert_eq!(MinuteId::of_second(0), MinuteId(0));
        assert_eq!(MinuteId::of_second(59), MinuteId(0));
        assert_eq!(MinuteId::of_second(60), MinuteId(1));
        assert_eq!(MinuteId(3).start_second(), 180);
    }

    #[test]
    fn geopos_wire_roundtrip() {
        let g = GeoPos::new(1234.5, -99.25);
        let d = GeoPos::decode(&g.encode());
        assert!((d.x - g.x).abs() < 0.01);
        assert!((d.y - g.y).abs() < 0.01);
    }

    #[test]
    fn geopos_point_conversion() {
        let p = Point::new(3.0, 4.0);
        let g: GeoPos = p.into();
        assert_eq!(g.distance(&GeoPos::new(0.0, 0.0)), 5.0);
        let back: Point = g.into();
        assert_eq!(back, p);
    }
}
