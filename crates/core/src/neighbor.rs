//! Vehicle-side acceptance of neighbor view digests (Section 5.1.1).
//!
//! On receiving a broadcast VD, a vehicle validates that its claimed time
//! falls within the current 1-second interval and its claimed location is
//! within DSRC radio range, then keeps *at most two* VDs per neighbor — the
//! first and the last received with the same `R` value (their spacing also
//! encodes the contact interval). A cap on tracked neighbors defends
//! against Bloom-poisoning floods (footnote 10).

use crate::types::{GeoPos, VpId, DSRC_RADIUS_M, MAX_NEIGHBORS};
use crate::vd::ViewDigest;
use std::collections::HashMap;

/// Why a received VD was not accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Claimed time is outside the current 1-second interval.
    StaleTime,
    /// Claimed location is beyond DSRC radio range of the receiver.
    TooFar,
    /// The neighbor cap is reached and this `R` is not yet tracked.
    TableFull,
}

/// Outcome of offering a VD to the table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Accept {
    /// First VD from this neighbor.
    NewNeighbor,
    /// Updated the "last" VD of a known neighbor.
    Updated,
    /// Rejected.
    Rejected(RejectReason),
}

/// The first/last VDs retained for one neighbor.
#[derive(Clone, Debug)]
pub struct NeighborRecord {
    /// Neighbor's VP identifier.
    pub vp_id: VpId,
    /// First VD received from this neighbor this minute.
    pub first: ViewDigest,
    /// Last VD received (equals `first` if only one was received).
    pub last: ViewDigest,
}

impl NeighborRecord {
    /// Contact interval in seconds implied by the retained VDs.
    pub fn contact_seconds(&self) -> u64 {
        self.last.time.saturating_sub(self.first.time)
    }

    /// The neighbor's initial location `L_x1` (used for guard VPs).
    pub fn initial_loc(&self) -> GeoPos {
        self.first.initial_loc
    }
}

/// Per-minute neighbor VD table.
#[derive(Clone, Debug, Default)]
pub struct NeighborTable {
    records: HashMap<VpId, NeighborRecord>,
    order: Vec<VpId>,
}

impl NeighborTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offer a received VD with the receiver's current clock and position.
    pub fn observe(&mut self, vd: ViewDigest, now: u64, my_loc: GeoPos) -> Accept {
        // T_xj within the current 1-sec interval.
        if vd.time > now + 1 || now.saturating_sub(vd.time) > 1 {
            return Accept::Rejected(RejectReason::StaleTime);
        }
        // L_xj inside a radius of DSRC radios.
        if vd.loc.distance(&my_loc) > DSRC_RADIUS_M {
            return Accept::Rejected(RejectReason::TooFar);
        }
        if let Some(rec) = self.records.get_mut(&vd.vp_id) {
            rec.last = vd;
            return Accept::Updated;
        }
        if self.records.len() >= MAX_NEIGHBORS {
            return Accept::Rejected(RejectReason::TableFull);
        }
        self.order.push(vd.vp_id);
        self.records.insert(
            vd.vp_id,
            NeighborRecord {
                vp_id: vd.vp_id,
                first: vd,
                last: vd,
            },
        );
        Accept::NewNeighbor
    }

    /// Number of distinct neighbors tracked.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff no neighbors were observed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Neighbors in first-seen order.
    pub fn records(&self) -> impl Iterator<Item = &NeighborRecord> {
        self.order.iter().filter_map(|id| self.records.get(id))
    }

    /// Drain the table for the next minute.
    pub fn clear(&mut self) {
        self.records.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vd::VdChain;

    fn vd_from(secret: u8, time_offset: u64, loc: GeoPos) -> ViewDigest {
        let mut chain = VdChain::new([secret; 8], 0, loc);
        let mut vd = chain.extend(b"chunk", loc);
        vd.time = time_offset;
        vd
    }

    #[test]
    fn accepts_fresh_in_range_vd() {
        let mut t = NeighborTable::new();
        let vd = vd_from(1, 100, GeoPos::new(50.0, 0.0));
        assert_eq!(
            t.observe(vd, 100, GeoPos::new(0.0, 0.0)),
            Accept::NewNeighbor
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn rejects_stale_time() {
        let mut t = NeighborTable::new();
        let vd = vd_from(1, 90, GeoPos::new(0.0, 0.0));
        assert_eq!(
            t.observe(vd, 100, GeoPos::new(0.0, 0.0)),
            Accept::Rejected(RejectReason::StaleTime)
        );
        // Future-dated VDs are rejected too.
        let vd2 = vd_from(2, 105, GeoPos::new(0.0, 0.0));
        assert_eq!(
            t.observe(vd2, 100, GeoPos::new(0.0, 0.0)),
            Accept::Rejected(RejectReason::StaleTime)
        );
    }

    #[test]
    fn rejects_location_beyond_dsrc_range() {
        let mut t = NeighborTable::new();
        let vd = vd_from(1, 100, GeoPos::new(401.0, 0.0));
        assert_eq!(
            t.observe(vd, 100, GeoPos::new(0.0, 0.0)),
            Accept::Rejected(RejectReason::TooFar)
        );
    }

    #[test]
    fn keeps_first_and_last_per_neighbor() {
        let mut t = NeighborTable::new();
        let here = GeoPos::new(0.0, 0.0);
        let mut chain = VdChain::new([3u8; 8], 99, GeoPos::new(10.0, 0.0));
        let first = chain.extend(b"a", GeoPos::new(10.0, 0.0));
        let mid = chain.extend(b"b", GeoPos::new(20.0, 0.0));
        let last = chain.extend(b"c", GeoPos::new(30.0, 0.0));
        assert_eq!(t.observe(first, first.time, here), Accept::NewNeighbor);
        assert_eq!(t.observe(mid, mid.time, here), Accept::Updated);
        assert_eq!(t.observe(last, last.time, here), Accept::Updated);
        let rec = t.records().next().expect("one neighbor");
        assert_eq!(rec.first, first);
        assert_eq!(rec.last, last);
        assert_eq!(rec.contact_seconds(), 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn caps_neighbor_count() {
        let mut t = NeighborTable::new();
        let here = GeoPos::new(0.0, 0.0);
        for i in 0..MAX_NEIGHBORS + 10 {
            let vd = vd_from(
                (i % 251) as u8 ^ (i / 251) as u8,
                100,
                GeoPos::new(1.0, i as f64 % 300.0),
            );
            // Use distinct secrets: combine index into the chain secret.
            let mut secret = [0u8; 8];
            secret[..4].copy_from_slice(&(i as u32).to_le_bytes());
            let mut chain = VdChain::new(secret, 0, vd.loc);
            let mut vd = chain.extend(b"x", vd.loc);
            vd.time = 100;
            let r = t.observe(vd, 100, here);
            if i < MAX_NEIGHBORS {
                assert_eq!(r, Accept::NewNeighbor, "i={i}");
            } else {
                assert_eq!(r, Accept::Rejected(RejectReason::TableFull), "i={i}");
            }
        }
        assert_eq!(t.len(), MAX_NEIGHBORS);
    }

    #[test]
    fn known_neighbor_still_updates_when_full() {
        let mut t = NeighborTable::new();
        let here = GeoPos::new(0.0, 0.0);
        let mut keep_chain = VdChain::new([7u8; 8], 0, GeoPos::new(5.0, 5.0));
        let first = {
            let mut vd = keep_chain.extend(b"a", GeoPos::new(5.0, 5.0));
            vd.time = 100;
            vd
        };
        t.observe(first, 100, here);
        for i in 0..MAX_NEIGHBORS {
            let mut secret = [1u8; 8];
            secret[..4].copy_from_slice(&(i as u32).to_le_bytes());
            let mut chain = VdChain::new(secret, 0, GeoPos::new(2.0, 2.0));
            let mut vd = chain.extend(b"x", GeoPos::new(2.0, 2.0));
            vd.time = 100;
            t.observe(vd, 100, here);
        }
        let mut vd = keep_chain.extend(b"b", GeoPos::new(6.0, 5.0));
        vd.time = 101;
        assert_eq!(t.observe(vd, 101, here), Accept::Updated);
    }

    #[test]
    fn clear_resets() {
        let mut t = NeighborTable::new();
        let vd = vd_from(1, 100, GeoPos::new(0.0, 0.0));
        t.observe(vd, 100, GeoPos::new(0.0, 0.0));
        t.clear();
        assert!(t.is_empty());
    }
}
