//! Chunked scoped-thread fan-out shared by the parallel engines.
//!
//! The build environment has no rayon, and the two hot paths that want
//! parallelism — the TrustRank gather pass and viewmap construction —
//! need exactly one pattern: split an index range into contiguous chunks,
//! run one scoped `std` thread per chunk, and merge the per-chunk results
//! in chunk order. Merging in chunk order (never in completion order)
//! makes every caller deterministic by construction: the assembled output
//! is identical to what a single-threaded pass over the same chunks would
//! produce, bit for bit, for any thread count.
//!
//! Callers pick a thread count with [`auto_threads`] (1 below a per-call
//! work threshold, so small inputs never pay spawn/join overhead) and
//! keep an explicit-thread-count entry point so tests can force the
//! multi-threaded path on small inputs.

/// Hard cap on worker threads; beyond this the memory-bound passes in
/// this workspace stop scaling.
pub const MAX_THREADS: usize = 16;

/// Pick a worker count for `items` units of work: 1 below `threshold`
/// (thread spawn/join would dominate), otherwise the machine's available
/// parallelism, capped at [`MAX_THREADS`] and at the work count.
pub fn auto_threads(items: usize, threshold: usize) -> usize {
    if items < threshold {
        return 1;
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
        .min(items.max(1))
}

/// Cut `0..n` into `chunks` contiguous near-equal ranges: `chunks + 1`
/// ascending cut points, starting at 0 and ending at `n`. Some ranges are
/// empty when `chunks > n`.
pub fn even_cuts(n: usize, chunks: usize) -> Vec<usize> {
    let chunks = chunks.max(1);
    (0..=chunks).map(|t| t * n / chunks).collect()
}

/// Run `f(chunk_index, start, end)` over each cut range and return the
/// results **in chunk order**. A single chunk runs inline on the calling
/// thread; otherwise each chunk gets its own scoped thread.
pub fn map_ranges<R, F>(cuts: &[usize], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize, usize) -> R + Sync,
{
    let chunks = cuts.len().saturating_sub(1);
    if chunks <= 1 {
        return (0..chunks).map(|t| f(t, cuts[t], cuts[t + 1])).collect();
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(chunks);
    out.resize_with(chunks, || None);
    std::thread::scope(|scope| {
        for (t, slot) in out.iter_mut().enumerate() {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(t, cuts[t], cuts[t + 1]));
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("fan-out worker completed"))
        .collect()
}

/// Split `out` at `cuts` into disjoint chunks and run `f(chunk_index,
/// chunk)` on one scoped thread per chunk; per-chunk results come back in
/// chunk order. This is the write-side variant of [`map_ranges`] for
/// passes that fill a preallocated output vector (each thread owns a
/// disjoint slice, so no synchronization is needed on the data itself).
pub fn map_disjoint_mut<T, R, F>(out: &mut [T], cuts: &[usize], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    let chunks = cuts.len().saturating_sub(1);
    let mut slices: Vec<&mut [T]> = Vec::with_capacity(chunks);
    let mut rest = out;
    for t in 0..chunks {
        let (head, tail) = rest.split_at_mut(cuts[t + 1] - cuts[t]);
        slices.push(head);
        rest = tail;
    }
    if chunks <= 1 {
        return slices
            .into_iter()
            .enumerate()
            .map(|(t, chunk)| f(t, chunk))
            .collect();
    }
    let mut results: Vec<Option<R>> = Vec::with_capacity(chunks);
    results.resize_with(chunks, || None);
    std::thread::scope(|scope| {
        for ((t, chunk), slot) in slices.drain(..).enumerate().zip(results.iter_mut()) {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(t, chunk));
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("fan-out worker completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_cuts_cover_range_exactly() {
        for n in [0usize, 1, 7, 100, 101] {
            for chunks in [1usize, 2, 3, 8, 200] {
                let cuts = even_cuts(n, chunks);
                assert_eq!(cuts.len(), chunks + 1);
                assert_eq!(cuts[0], 0);
                assert_eq!(*cuts.last().unwrap(), n);
                assert!(cuts.windows(2).all(|w| w[0] <= w[1]), "monotone: {cuts:?}");
            }
        }
    }

    #[test]
    fn auto_threads_respects_threshold() {
        assert_eq!(auto_threads(10, 100), 1);
        assert!(auto_threads(100, 100) >= 1);
        assert!(auto_threads(1_000_000, 100) <= MAX_THREADS);
    }

    #[test]
    fn map_ranges_merges_in_chunk_order() {
        let n = 103usize;
        for chunks in [1usize, 2, 5, 16] {
            let cuts = even_cuts(n, chunks);
            let parts = map_ranges(&cuts, |_t, lo, hi| (lo..hi).collect::<Vec<usize>>());
            let flat: Vec<usize> = parts.into_iter().flatten().collect();
            assert_eq!(flat, (0..n).collect::<Vec<usize>>(), "chunks={chunks}");
        }
    }

    #[test]
    fn map_disjoint_mut_fills_every_slot_once() {
        let n = 57usize;
        for chunks in [1usize, 3, 7] {
            let cuts = even_cuts(n, chunks);
            let mut out = vec![0usize; n];
            let sums = map_disjoint_mut(&mut out, &cuts, |t, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = cuts[t] + i + 1;
                }
                chunk.iter().sum::<usize>()
            });
            assert_eq!(out, (1..=n).collect::<Vec<usize>>());
            assert_eq!(sums.iter().sum::<usize>(), n * (n + 1) / 2);
        }
    }
}
