//! View digests (VDs) — per-second cascaded video fingerprints (Fig. 4).
//!
//! Every second, a ViewMap dashcam broadcasts
//! `T_ui, L_ui, F_ui, L_u1, R_u, H(T_ui | L_ui | F_ui | H_{u,i-1} | u_i^{i-1})`
//! where `u_i^{i-1}` is the video chunk recorded since the previous second
//! and `H_{u,0} = R_u`. The cascade means each step hashes only the new
//! chunk — constant time regardless of total file size (Fig. 8) — while
//! still committing to the entire file so far.
//!
//! The wire format is 72 bytes, matching the paper's Section 6.1 message
//! accounting, and fits in a DSRC beacon.

use crate::types::{GeoPos, VpId};
use bytes::{Buf, BufMut};
use vm_crypto::{Digest16, Sha256};

/// Wire size of one VD message (Section 6.1).
pub const VD_WIRE_BYTES: usize = 72;

/// A single view digest.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ViewDigest {
    /// Second index within the 1-min video, 1..=60.
    pub seq: u16,
    /// Message flags (reserved; 0 for normal VDs).
    pub flags: u16,
    /// Absolute time of this digest, seconds (`T_ui`).
    pub time: u64,
    /// Claimed location at this second (`L_ui`).
    pub loc: GeoPos,
    /// Cumulative video byte size (`F_ui`).
    pub file_size: u64,
    /// Initial location of the current video (`L_u1`), used by neighbors
    /// for guard-VP generation.
    pub initial_loc: GeoPos,
    /// VP identifier (`R_u`).
    pub vp_id: VpId,
    /// Cascaded hash (`H_ui`).
    pub hash: Digest16,
}

impl ViewDigest {
    /// The Bloom-filter key of this VD (hash of its semantic fields).
    ///
    /// Neighbors insert received VDs into their VP's filter `N_u`; keying
    /// by the full content binds linkage to the exact exchanged digests.
    ///
    /// Encoded on the stack and hashed in a single absorb — two
    /// compression-function calls total for the 72-byte wire image, with
    /// none of the per-field streaming overhead an earlier version paid
    /// (nine buffered `update`s per VD). This runs once per received VD
    /// on vehicles and per element VD during viewmap construction.
    pub fn bloom_key(&self) -> Digest16 {
        Digest16::hash(&self.encode())
    }

    /// Encode to the 72-byte wire format.
    pub fn encode(&self) -> [u8; VD_WIRE_BYTES] {
        let mut out = [0u8; VD_WIRE_BYTES];
        let mut buf = &mut out[..];
        buf.put_u16_le(self.seq);
        buf.put_u16_le(self.flags);
        buf.put_u32_le(0); // reserved
        buf.put_u64_le(self.time);
        buf.put_slice(&self.loc.encode());
        buf.put_u64_le(self.file_size);
        buf.put_slice(&self.initial_loc.encode());
        buf.put_slice(self.vp_id.0.as_bytes());
        buf.put_slice(self.hash.as_bytes());
        debug_assert!(buf.is_empty());
        out
    }

    /// Decode from wire bytes; `None` if the slice is malformed.
    pub fn decode(bytes: &[u8]) -> Option<ViewDigest> {
        if bytes.len() != VD_WIRE_BYTES {
            return None;
        }
        let mut buf = bytes;
        let seq = buf.get_u16_le();
        let flags = buf.get_u16_le();
        let _reserved = buf.get_u32_le();
        let time = buf.get_u64_le();
        let mut loc8 = [0u8; 8];
        buf.copy_to_slice(&mut loc8);
        let loc = GeoPos::decode(&loc8);
        let file_size = buf.get_u64_le();
        let mut init8 = [0u8; 8];
        buf.copy_to_slice(&mut init8);
        let initial_loc = GeoPos::decode(&init8);
        let mut id16 = [0u8; 16];
        buf.copy_to_slice(&mut id16);
        let mut h16 = [0u8; 16];
        buf.copy_to_slice(&mut h16);
        if !(1..=crate::types::SECONDS_PER_VP as u16).contains(&seq) {
            return None;
        }
        Some(ViewDigest {
            seq,
            flags,
            time,
            loc,
            file_size,
            initial_loc,
            vp_id: VpId(Digest16(id16)),
            hash: Digest16(h16),
        })
    }
}

/// Size of one full-precision storage frame ([`ViewDigest::encode_store`]).
pub const VD_STORE_BYTES: usize = 84;

impl ViewDigest {
    /// Encode to the 84-byte **storage** frame: every field at full
    /// in-memory precision (`f64` coordinates, unlike the 72-byte DSRC
    /// wire format's `f32`s). This is the lossless baseline frame the
    /// `vm-store` record codec writes for a record's first sample —
    /// replaying a log must rebuild bit-identical trajectories, or a
    /// recovered server would construct different viewmap edges than the
    /// live one did.
    pub fn encode_store(&self) -> [u8; VD_STORE_BYTES] {
        let mut out = [0u8; VD_STORE_BYTES];
        let mut buf = &mut out[..];
        buf.put_u16_le(self.seq);
        buf.put_u16_le(self.flags);
        buf.put_u64_le(self.time);
        buf.put_u64_le(self.loc.x.to_bits());
        buf.put_u64_le(self.loc.y.to_bits());
        buf.put_u64_le(self.file_size);
        buf.put_u64_le(self.initial_loc.x.to_bits());
        buf.put_u64_le(self.initial_loc.y.to_bits());
        buf.put_slice(self.vp_id.0.as_bytes());
        buf.put_slice(self.hash.as_bytes());
        debug_assert!(buf.is_empty());
        out
    }

    /// Decode an 84-byte storage frame; `None` only on a length
    /// mismatch. Unlike [`decode`](Self::decode) this performs **no**
    /// semantic validation (`seq` range etc.): storage frames sit behind
    /// a record checksum and must round-trip whatever the server stored
    /// — the DB admission screen already ran before anything reached the
    /// log, and re-screening happens again on replay ingest.
    pub fn decode_store(bytes: &[u8]) -> Option<ViewDigest> {
        if bytes.len() != VD_STORE_BYTES {
            return None;
        }
        let mut buf = bytes;
        let seq = buf.get_u16_le();
        let flags = buf.get_u16_le();
        let time = buf.get_u64_le();
        let loc = GeoPos::new(
            f64::from_bits(buf.get_u64_le()),
            f64::from_bits(buf.get_u64_le()),
        );
        let file_size = buf.get_u64_le();
        let initial_loc = GeoPos::new(
            f64::from_bits(buf.get_u64_le()),
            f64::from_bits(buf.get_u64_le()),
        );
        let mut id16 = [0u8; 16];
        buf.copy_to_slice(&mut id16);
        let mut h16 = [0u8; 16];
        buf.copy_to_slice(&mut h16);
        Some(ViewDigest {
            seq,
            flags,
            time,
            loc,
            file_size,
            initial_loc,
            vp_id: VpId(Digest16(id16)),
            hash: Digest16(h16),
        })
    }
}

/// The Bloom keys of many VDs in one multi-buffer hashing pass:
/// equivalent to `vds.iter().map(|vd| vd.bloom_key())`, but the 72-byte
/// wire images are encoded into one flat buffer and hashed through
/// [`vm_crypto::sha256_many`]'s interleaved lanes — this is the kernel
/// behind `StoredVp::link_keys` and the ingest-side key precompute of
/// `submit_batch_warm`, where every VP brings 60 independent messages at
/// once.
pub fn bloom_keys_many(vds: &[ViewDigest]) -> Vec<Digest16> {
    let mut flat = vec![0u8; vds.len() * VD_WIRE_BYTES];
    for (vd, chunk) in vds.iter().zip(flat.chunks_exact_mut(VD_WIRE_BYTES)) {
        chunk.copy_from_slice(&vd.encode());
    }
    let msgs: Vec<&[u8]> = flat.chunks_exact(VD_WIRE_BYTES).collect();
    Digest16::hash_many(&msgs)
}

/// Compute one cascade step:
/// `H_i = H(T_i | L_i | F_i | H_{i-1} | chunk)`.
pub fn cascade_step(
    time: u64,
    loc: &GeoPos,
    file_size: u64,
    prev: &Digest16,
    chunk: &[u8],
) -> Digest16 {
    let mut h = Sha256::new();
    h.update(&time.to_le_bytes());
    h.update(&loc.encode());
    h.update(&file_size.to_le_bytes());
    h.update(prev.as_bytes());
    h.update(chunk);
    let d = h.finalize();
    let mut out = [0u8; 16];
    out.copy_from_slice(&d.0[..16]);
    Digest16(out)
}

/// The vehicle-side cascaded digest chain for one recording video.
#[derive(Clone, Debug)]
pub struct VdChain {
    vp_id: VpId,
    start_time: u64,
    initial_loc: GeoPos,
    prev_hash: Digest16,
    seq: u16,
    file_size: u64,
}

impl VdChain {
    /// Start a new chain for a video whose secret number is `secret`
    /// (so `R_u = H(Q_u)` and `H_{u,0} = R_u`).
    pub fn new(secret: [u8; 8], start_time: u64, initial_loc: GeoPos) -> Self {
        let vp_id = VpId::from_secret(&secret);
        VdChain {
            vp_id,
            start_time,
            initial_loc,
            prev_hash: vp_id.0,
            seq: 0,
            file_size: 0,
        }
    }

    /// The VP identifier of the video being recorded.
    pub fn vp_id(&self) -> VpId {
        self.vp_id
    }

    /// Seconds recorded so far.
    pub fn seconds(&self) -> u16 {
        self.seq
    }

    /// Extend the chain with the video chunk recorded in the last second
    /// and produce the VD to broadcast. Panics past 60 seconds — the
    /// dashcam must roll over to a new video (new chain) every minute.
    pub fn extend(&mut self, chunk: &[u8], loc: GeoPos) -> ViewDigest {
        assert!(
            (self.seq as u64) < crate::types::SECONDS_PER_VP,
            "1-min video already complete; start a new chain"
        );
        self.seq += 1;
        self.file_size += chunk.len() as u64;
        let time = self.start_time + self.seq as u64;
        self.prev_hash = cascade_step(time, &loc, self.file_size, &self.prev_hash, chunk);
        ViewDigest {
            seq: self.seq,
            flags: 0,
            time,
            loc,
            file_size: self.file_size,
            initial_loc: self.initial_loc,
            vp_id: self.vp_id,
            hash: self.prev_hash,
        }
    }
}

/// Errors from re-deriving a VD chain against uploaded video bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainError {
    /// Chunk count does not match the number of VDs.
    LengthMismatch,
    /// The cascaded hash diverged at the given 1-based second.
    HashMismatch(u16),
    /// A VD's cumulative file size is inconsistent with the chunks.
    SizeMismatch(u16),
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::LengthMismatch => write!(f, "chunk/VD count mismatch"),
            ChainError::HashMismatch(s) => write!(f, "cascaded hash mismatch at second {s}"),
            ChainError::SizeMismatch(s) => write!(f, "file size mismatch at second {s}"),
        }
    }
}

impl std::error::Error for ChainError {}

/// Re-derive the cascaded chain from uploaded video chunks and check it
/// against the claimed VDs (the server-side validation of Section 5.2.3:
/// "the video is first validated via cascading hash operations against the
/// system-owned VP").
pub fn verify_chain(vp_id: VpId, vds: &[ViewDigest], chunks: &[Vec<u8>]) -> Result<(), ChainError> {
    if vds.len() != chunks.len() {
        return Err(ChainError::LengthMismatch);
    }
    let mut prev = vp_id.0;
    let mut size = 0u64;
    for (i, (vd, chunk)) in vds.iter().zip(chunks).enumerate() {
        size += chunk.len() as u64;
        if vd.file_size != size {
            return Err(ChainError::SizeMismatch(i as u16 + 1));
        }
        let expect = cascade_step(vd.time, &vd.loc, size, &prev, chunk);
        if expect != vd.hash {
            return Err(ChainError::HashMismatch(i as u16 + 1));
        }
        prev = expect;
    }
    Ok(())
}

/// Non-cascaded comparator for Fig. 8: hash the whole file prefix from
/// scratch (what a naive per-second fingerprint would cost).
pub fn flat_digest(prefix: &[u8]) -> Digest16 {
    Digest16::hash(prefix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SECONDS_PER_VP;

    fn chunk(i: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|j| ((i * 31 + j as u64) % 251) as u8)
            .collect()
    }

    #[test]
    fn wire_roundtrip() {
        let mut chain = VdChain::new([9u8; 8], 100, GeoPos::new(1.0, 2.0));
        let vd = chain.extend(&chunk(0, 100), GeoPos::new(1.5, 2.0));
        let bytes = vd.encode();
        assert_eq!(bytes.len(), VD_WIRE_BYTES);
        let back = ViewDigest::decode(&bytes).expect("decodes");
        assert_eq!(vd.seq, back.seq);
        assert_eq!(vd.time, back.time);
        assert_eq!(vd.file_size, back.file_size);
        assert_eq!(vd.vp_id, back.vp_id);
        assert_eq!(vd.hash, back.hash);
        assert!((vd.loc.x - back.loc.x).abs() < 0.01);
    }

    #[test]
    fn store_frame_roundtrips_at_full_precision() {
        // The DSRC wire format quantizes coordinates to f32; the storage
        // frame must not — replay depends on bit-identical trajectories.
        let mut chain = VdChain::new([21u8; 8], 900, GeoPos::new(1.0e-7, -9.876543210123e5));
        for i in 0..5 {
            let vd = chain.extend(
                &chunk(i, 77),
                GeoPos::new(1.0 / 3.0 + i as f64, -0.1 * i as f64),
            );
            let frame = vd.encode_store();
            assert_eq!(frame.len(), VD_STORE_BYTES);
            let back = ViewDigest::decode_store(&frame).expect("decodes");
            assert_eq!(vd, back, "storage frame must be lossless");
            assert_eq!(vd.loc.x.to_bits(), back.loc.x.to_bits());
            assert_eq!(vd.loc.y.to_bits(), back.loc.y.to_bits());
        }
        // NaN coordinate bit patterns survive too (PartialEq can't see
        // them, so compare bits).
        let mut odd = chain.extend(&chunk(9, 8), GeoPos::new(0.0, 0.0));
        odd.loc = GeoPos::new(f64::from_bits(0x7ff8_dead_beef_0001), f64::NEG_INFINITY);
        let back = ViewDigest::decode_store(&odd.encode_store()).unwrap();
        assert_eq!(odd.loc.x.to_bits(), back.loc.x.to_bits());
        assert_eq!(odd.loc.y.to_bits(), back.loc.y.to_bits());
        // Only length is validated.
        assert!(ViewDigest::decode_store(&[0u8; VD_STORE_BYTES - 1]).is_none());
        assert!(ViewDigest::decode_store(&[0u8; VD_STORE_BYTES + 1]).is_none());
        assert!(ViewDigest::decode_store(&[0u8; VD_STORE_BYTES]).is_some());
    }

    #[test]
    fn decode_rejects_bad_input() {
        assert!(ViewDigest::decode(&[0u8; 71]).is_none());
        assert!(ViewDigest::decode(&[0u8; 73]).is_none());
        // seq = 0 is invalid (seconds are 1-based).
        assert!(ViewDigest::decode(&[0u8; 72]).is_none());
        // seq = 61 is invalid.
        let mut bytes = [0u8; 72];
        bytes[0] = 61;
        assert!(ViewDigest::decode(&bytes).is_none());
    }

    #[test]
    fn chain_produces_sixty_vds_and_rolls_over() {
        let mut chain = VdChain::new([1u8; 8], 0, GeoPos::new(0.0, 0.0));
        for i in 0..SECONDS_PER_VP {
            let vd = chain.extend(&chunk(i, 64), GeoPos::new(i as f64, 0.0));
            assert_eq!(vd.seq as u64, i + 1);
            assert_eq!(vd.time, i + 1);
        }
        assert_eq!(chain.seconds() as u64, SECONDS_PER_VP);
    }

    #[test]
    #[should_panic(expected = "already complete")]
    fn chain_panics_past_one_minute() {
        let mut chain = VdChain::new([1u8; 8], 0, GeoPos::new(0.0, 0.0));
        for i in 0..=SECONDS_PER_VP {
            chain.extend(&chunk(i, 8), GeoPos::new(0.0, 0.0));
        }
    }

    #[test]
    fn verify_chain_accepts_honest_upload() {
        let mut chain = VdChain::new([2u8; 8], 50, GeoPos::new(5.0, 5.0));
        let chunks: Vec<Vec<u8>> = (0..60).map(|i| chunk(i, 200)).collect();
        let vds: Vec<ViewDigest> = chunks
            .iter()
            .enumerate()
            .map(|(i, c)| chain.extend(c, GeoPos::new(5.0 + i as f64, 5.0)))
            .collect();
        assert_eq!(verify_chain(chain.vp_id(), &vds, &chunks), Ok(()));
    }

    #[test]
    fn verify_chain_rejects_tampered_video() {
        let mut chain = VdChain::new([3u8; 8], 0, GeoPos::new(0.0, 0.0));
        let mut chunks: Vec<Vec<u8>> = (0..60).map(|i| chunk(i, 100)).collect();
        let vds: Vec<ViewDigest> = chunks
            .iter()
            .map(|c| chain.extend(c, GeoPos::new(0.0, 0.0)))
            .collect();
        // Posterior fabrication: replace one frame's bytes.
        chunks[30][0] ^= 0xff;
        assert_eq!(
            verify_chain(chain.vp_id(), &vds, &chunks),
            Err(ChainError::HashMismatch(31))
        );
    }

    #[test]
    fn verify_chain_rejects_wrong_secret() {
        let mut chain = VdChain::new([4u8; 8], 0, GeoPos::new(0.0, 0.0));
        let chunks: Vec<Vec<u8>> = (0..10).map(|i| chunk(i, 50)).collect();
        let vds: Vec<ViewDigest> = chunks
            .iter()
            .map(|c| chain.extend(c, GeoPos::new(0.0, 0.0)))
            .collect();
        let wrong_id = VpId::from_secret(&[5u8; 8]);
        assert!(matches!(
            verify_chain(wrong_id, &vds, &chunks),
            Err(ChainError::HashMismatch(1))
        ));
    }

    #[test]
    fn verify_chain_rejects_length_and_size_mismatch() {
        let mut chain = VdChain::new([6u8; 8], 0, GeoPos::new(0.0, 0.0));
        let chunks: Vec<Vec<u8>> = (0..5).map(|i| chunk(i, 50)).collect();
        let mut vds: Vec<ViewDigest> = chunks
            .iter()
            .map(|c| chain.extend(c, GeoPos::new(0.0, 0.0)))
            .collect();
        assert_eq!(
            verify_chain(chain.vp_id(), &vds[..4], &chunks),
            Err(ChainError::LengthMismatch)
        );
        vds[2].file_size += 1;
        assert_eq!(
            verify_chain(chain.vp_id(), &vds, &chunks),
            Err(ChainError::SizeMismatch(3))
        );
    }

    #[test]
    fn cascade_is_order_sensitive() {
        let a = chunk(1, 64);
        let b = chunk(2, 64);
        let mut c1 = VdChain::new([7u8; 8], 0, GeoPos::new(0.0, 0.0));
        let mut c2 = VdChain::new([7u8; 8], 0, GeoPos::new(0.0, 0.0));
        c1.extend(&a, GeoPos::new(0.0, 0.0));
        let h1 = c1.extend(&b, GeoPos::new(0.0, 0.0)).hash;
        c2.extend(&b, GeoPos::new(0.0, 0.0));
        let h2 = c2.extend(&a, GeoPos::new(0.0, 0.0)).hash;
        assert_ne!(h1, h2);
    }

    #[test]
    fn bloom_key_equals_hash_of_wire_encoding() {
        // The streamed single-pass bloom_key must match hashing the
        // materialized 72-byte wire frame field for field.
        let mut chain = VdChain::new([12u8; 8], 300, GeoPos::new(-5.5, 42.25));
        for i in 0..10 {
            let vd = chain.extend(&chunk(i, 33), GeoPos::new(i as f64, -3.0));
            assert_eq!(vd.bloom_key(), vm_crypto::Digest16::hash(&vd.encode()));
        }
    }

    #[test]
    fn bloom_keys_many_matches_per_vd_keys() {
        // The multi-buffer batch must be digest-for-digest the same as
        // hashing each VD alone (including odd counts that leave lanes
        // partially filled).
        let mut chain = VdChain::new([13u8; 8], 120, GeoPos::new(7.0, -2.0));
        let vds: Vec<ViewDigest> = (0..13)
            .map(|i| chain.extend(&chunk(i, 40), GeoPos::new(i as f64, 2.0)))
            .collect();
        for take in [0usize, 1, 2, 3, 5, 13] {
            let batch = bloom_keys_many(&vds[..take]);
            let single: Vec<_> = vds[..take].iter().map(|vd| vd.bloom_key()).collect();
            assert_eq!(batch, single, "take {take}");
        }
    }

    #[test]
    fn bloom_key_distinguishes_vds() {
        let mut chain = VdChain::new([8u8; 8], 0, GeoPos::new(0.0, 0.0));
        let vd1 = chain.extend(&chunk(0, 10), GeoPos::new(0.0, 0.0));
        let vd2 = chain.extend(&chunk(1, 10), GeoPos::new(1.0, 0.0));
        assert_ne!(vd1.bloom_key(), vd2.bloom_key());
    }

    #[test]
    fn vd_does_not_reveal_video_content() {
        // The same metadata with different chunks yields different hashes,
        // but the chunk bytes never appear in the wire message.
        let mut c1 = VdChain::new([9u8; 8], 0, GeoPos::new(0.0, 0.0));
        let secret_content = b"license plate 123-ABC visible here".to_vec();
        let vd = c1.extend(&secret_content, GeoPos::new(0.0, 0.0));
        let wire = vd.encode();
        // 72 bytes cannot contain the 35-byte chunk plus 56 bytes of
        // metadata; verify no substring of the content leaks.
        let needle = &secret_content[..8];
        assert!(!wire.windows(8).any(|w| w == needle));
    }
}
