//! ViewMap — the core protocol from *"ViewMap: Sharing Private In-Vehicle
//! Dashcam Videos"* (NSDI '17), implemented in full.
//!
//! ViewMap lets authorities collect dashcam video evidence around an
//! incident while (a) keeping uploaders anonymous, (b) rejecting
//! location/time-cheating fakes automatically, and (c) paying untraceable
//! rewards. The moving parts, and where they live here:
//!
//! | Paper concept | Module |
//! |---|---|
//! | View digests (per-second cascaded fingerprints, Fig. 4) | [`vd`] |
//! | View profiles (1-min summaries + neighbor Bloom filter) | [`vp`] |
//! | Neighbor VD acceptance rules | [`neighbor`] |
//! | Guard VPs / path obfuscation (§5.1.2) | [`guard`] |
//! | Anonymous upload (Tor substitute) | [`upload`] |
//! | Server: sharded VP database (`VpId`-indexed), boards, ledger (§4) | [`server`] |
//! | Viewmap construction (§5.2.1), zero-copy `Arc` members + per-second spatial grid | [`viewmap`] |
//! | Incremental viewmap maintenance (delta ingest, bit-identical extraction) | [`maintained`] |
//! | TrustRank verification (§5.2.2, Alg. 1) on the CSR gather engine | [`trustrank`] |
//! | Video solicitation & hash validation (§5.2.3) | [`solicit`] |
//! | Untraceable rewarding (§5.3, App. A) | [`reward`] |
//! | Durable-storage seam (append-log WAL contract) | [`wal`] |
//! | Tracking adversary (§6.2.2) | [`tracker`] |
//! | Fake-VP attack toolkit & synthetic viewmaps (§6.3) | [`attack`] |
//! | Closed-form analyses (α rule, Bloom false linkage, overhead) | [`analysis`] |
//!
//! # Scale engineering
//!
//! The investigation hot path is built for city-scale populations
//! (10⁵+ VPs per minute). TrustRank runs as a gather-style power
//! iteration over a flat [`trustrank::CsrGraph`] (thread-parallel above
//! [`trustrank::PARALLEL_EDGE_THRESHOLD`] edges). Viewmap construction
//! is a four-phase parallel engine ([`viewmap`] module docs): compact
//! trajectory tables, one bounding-circle candidate grid with temporal
//! segment prefilters, SHA-NI-accelerated Bloom-key hashing cached on
//! the stored VP, and the two-way linkage test over flat probe tables —
//! every phase fans out through [`par`] with chunk-order merges, so any
//! thread count builds a bit-for-bit identical viewmap. The server's VP
//! store is striped across [`server::DB_SHARDS`] locks with an O(1)
//! `VpId → minute` index; [`server::ViewMapServer::submit_batch`]
//! amortizes stripe locking, Bloom screening, and link-key precompute
//! across whole-minute batches while staying state-indistinguishable
//! from sequential submission. Durability attaches through the
//! [`wal::VpWal`] seam: the `vm-store` crate's minute-bucketed
//! append-log segments mirror every accepted VP (group commit under
//! the committing shard's lock), and its recovery path replays a
//! directory of segments back into a state-equivalent server — see
//! `vm-store`'s crate docs for the record format and crash-recovery
//! invariants. The `vm-bench` crate's
//! `bench_investigate` binary tracks these paths at 1k/10k/100k VPs
//! against the retained naive baselines, and its `parallel_equivalence`
//! suite is the determinism harness holding parallel/batch paths equal
//! to their sequential counterparts.
//!
//! # Quick start
//!
//! ```
//! use viewmap_core::vd::VdChain;
//! use viewmap_core::types::GeoPos;
//!
//! // A dashcam records a 1-min video; every second it extends the
//! // cascaded digest chain with the newly recorded chunk and broadcasts
//! // the resulting view digest over DSRC.
//! let secret = [7u8; 8];
//! let mut chain = VdChain::new(secret, 0, GeoPos::new(10.0, 20.0));
//! for sec in 0..60 {
//!     let chunk = vec![0u8; 1024]; // video bytes for this second
//!     let vd = chain.extend(&chunk, GeoPos::new(10.0 + sec as f64, 20.0));
//!     assert_eq!(vd.encode().len(), 72); // the paper's 72-byte VD message
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod attack;
pub mod bloom;
pub mod guard;
pub mod maintained;
pub mod neighbor;
pub mod par;
pub mod reward;
pub mod server;
pub mod solicit;
pub mod tracker;
pub mod trustrank;
pub mod types;
pub mod upload;
pub mod vd;
pub mod viewmap;
pub mod vp;
pub mod wal;

pub use bloom::BloomFilter;
pub use maintained::MaintainedViewmap;
pub use types::{GeoPos, MinuteId, VpId, DSRC_RADIUS_M, SECONDS_PER_VP};
pub use vd::{VdChain, ViewDigest};
pub use viewmap::{Viewmap, ViewmapConfig};
pub use vp::{StoredVp, ViewProfile, VpBuilder, VpKind};
