//! Viewmap construction (Section 5.2.1).
//!
//! A viewmap is built per minute around an incident: select the trusted
//! VP(s) closest to the investigation site, span a coverage area `C` that
//! encompasses the site and those trusted VPs, admit every VP whose claimed
//! trajectory enters `C`, and create a *viewlink* edge between two member
//! VPs iff (a) their time-aligned claimed locations come within DSRC radio
//! range and (b) the two-way Bloom-filter membership test passes.
//!
//! # Construction engine
//!
//! Members are held as `Arc<StoredVp>` shared with the server's VP
//! database — admitting a VP into a viewmap is a pointer copy, never a
//! deep clone of its 60 VDs and 256-byte Bloom filter.
//!
//! Viewlink generation runs in four phases, each parallelized over
//! contiguous chunks via [`crate::par`] with results merged in chunk
//! order (and order-restoring sorts where a phase reorders work for
//! locality), so the constructed viewmap is **bit-for-bit identical for
//! every thread count** (the equivalence property tests in `vm-bench`
//! hold the engine to that). All four phases run on flat, cache-native
//! data — structure-of-arrays tables laid out in a spatial (Morton)
//! member order — instead of per-member heap records:
//!
//! 1. **Trajectory tables** — per member, one scan of the minute-window
//!    VDs producing (a) the compact window of claimed positions,
//!    interleaved `(x, y)` `f64` pairs with `NaN` gap slots, appended to
//!    a shared coordinate arena, and (b) the prefilter geometry — bounding
//!    box, bounding circle, and six time-segment circles — quantized to
//!    conservative fixed-point `i32` meters (mins floored, maxes/radii
//!    ceiled, centers rounded with slack added at the comparisons, so a
//!    fixed-point check can only ever *pass more* than its `f64`
//!    counterpart). Members are then permuted into Morton order of their
//!    bounding-circle grid cell and every per-member field is gathered
//!    into dense per-field arrays indexed by that rank: spatial neighbors
//!    become memory neighbors.
//! 2. **Candidate pairs** — grid cells are counting-sorted runs of the
//!    Morton permutation (cell code → contiguous rank range), so a query
//!    streams whole runs of neighbors whose prefilter fields sit in
//!    adjacent array slots — no hash-bucket `Vec`s, no per-`Traj` pointer
//!    chasing. Two members can share an in-range second only if their
//!    circle centers lie within `dsrc + r_i + r_j`, so scanning the cells
//!    within `dsrc + r_i + r_max` of each member yields a strict superset
//!    of the true pairs, each generated exactly once (from its
//!    lower-indexed member). Candidates are settled immediately — integer
//!    center/bbox-gap/segment prefilters, then the exact shared-second
//!    scan over the `f64` arena, bit-identical to the reference
//!    definition — and the surviving pair list is sorted back into
//!    ascending `(i, j)` order, erasing the Morton detour from the
//!    result.
//! 3. **Bloom keys** — members appearing in a surviving pair get their 60
//!    element-VD keys hashed and cached on the `StoredVp`
//!    ([`StoredVp::link_keys`]), so repeat investigations of the minute
//!    skip the pass. The 60 digests per member are independent messages
//!    and run through `vm_crypto`'s multi-buffer engine
//!    (`sha256_many`: interleaved SHA-NI streams, or interleaved message
//!    schedules on the scalar fallback) rather than one serial hash
//!    chain at a time.
//! 4. **Two-way linkage** — the paper's mutual Bloom test over flat
//!    probe arenas (Bloom words and key halves), laid out in the same
//!    Morton member order and *evaluated* in holder-rank order: all pairs
//!    holding the same member are consecutive, so its filter words and
//!    key halves are touched once per tile while hot in L1/L2, and the
//!    partner side of each probe is a spatial neighbor sitting nearby in
//!    the arena. Survivors are sorted back to ascending pair order before
//!    the adjacency lists are assembled.
//!
//! The engine's large transient arenas (coordinate slabs, pair lists,
//! probe tables — hundreds of MB at the 100k tier) can be reused across
//! builds through [`BuildScratch`] / [`Viewmap::build_with_scratch`]:
//! allocation reuse only, with every buffer cleared and rewritten per
//! build, so scratch builds stay bit-for-bit identical to fresh ones.

use crate::trustrank::{self, Verification};
use crate::types::{GeoPos, MinuteId, VpId, DSRC_RADIUS_M, SECONDS_PER_VP};
use crate::vp::StoredVp;
use std::sync::Arc;

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ViewmapConfig {
    /// Radio range used for the location-proximity edge precondition.
    pub dsrc_radius_m: f64,
    /// Margin added around the site–trusted-VP hull for the coverage area.
    pub coverage_margin_m: f64,
    /// TrustRank damping δ.
    pub damping: f64,
}

impl Default for ViewmapConfig {
    fn default() -> Self {
        ViewmapConfig {
            dsrc_radius_m: DSRC_RADIUS_M,
            coverage_margin_m: 200.0,
            damping: trustrank::DAMPING,
        }
    }
}

/// An investigation site: a disk around the incident location.
#[derive(Clone, Copy, Debug)]
pub struct Site {
    /// Incident location `l`.
    pub center: GeoPos,
    /// Site radius (the paper illustrates ~200 m).
    pub radius_m: f64,
}

impl Site {
    /// Does a VP claim any position inside the site?
    pub fn contains_vp(&self, vp: &StoredVp) -> bool {
        vp.vds
            .iter()
            .any(|vd| vd.loc.distance(&self.center) <= self.radius_m)
    }
}

/// A constructed viewmap for one minute.
#[derive(Clone, Debug)]
pub struct Viewmap {
    /// Member VPs (indices are node ids), shared with the server DB.
    pub vps: Vec<Arc<StoredVp>>,
    /// Symmetric adjacency lists (viewlinks).
    pub adj: Vec<Vec<usize>>,
    /// Indices of trusted member VPs.
    pub trusted: Vec<usize>,
    /// The minute this viewmap covers.
    pub minute: MinuteId,
}

impl Viewmap {
    /// Build a viewmap from the minute's candidate VPs around an incident.
    ///
    /// `candidates` must all belong to the same minute; VPs from other
    /// minutes are ignored. Trusted VPs are admitted wherever they are
    /// (they anchor the coverage area); normal VPs are admitted if their
    /// trajectory enters the coverage area. Admitted members share the
    /// caller's `Arc`s — no `StoredVp` is cloned.
    pub fn build(
        candidates: &[Arc<StoredVp>],
        site: Site,
        minute: MinuteId,
        cfg: &ViewmapConfig,
    ) -> Viewmap {
        Self::build_threads(candidates, site, minute, cfg, 0)
    }

    /// As [`build`](Self::build) with an explicit worker-thread count for
    /// the construction phases. `0` (the [`build`](Self::build) default)
    /// picks automatically: single-threaded below
    /// [`PARALLEL_MEMBER_THRESHOLD`] members, one thread per core (capped)
    /// above it. Any thread count produces a bit-for-bit identical
    /// viewmap; the explicit knob exists so benchmarks can pin the
    /// sequential baseline and tests can force the fan-out on small
    /// inputs.
    pub fn build_threads(
        candidates: &[Arc<StoredVp>],
        site: Site,
        minute: MinuteId,
        cfg: &ViewmapConfig,
        threads: usize,
    ) -> Viewmap {
        Self::build_profiled(candidates, site, minute, cfg, threads).0
    }

    /// As [`build_threads`](Self::build_threads), additionally returning
    /// the wall-clock cost of each construction phase. The
    /// instrumentation is four timestamp reads — the profiled build *is*
    /// the production build — so benchmarks and capacity planning read
    /// the real phase split instead of hand-instrumented one-offs.
    pub fn build_profiled(
        candidates: &[Arc<StoredVp>],
        site: Site,
        minute: MinuteId,
        cfg: &ViewmapConfig,
        threads: usize,
    ) -> (Viewmap, BuildProfile) {
        // Throwaway scratch: `retain_arenas = false` frees the phase-1
        // coordinate slabs as soon as the rank arena is gathered, so a
        // one-shot build keeps the pre-scratch peak-memory profile
        // (~200 MB lower at the 100k tier during phases 2-4).
        Self::build_impl(
            candidates,
            site,
            minute,
            cfg,
            threads,
            &mut BuildScratch::new(),
            false,
        )
    }

    /// As [`build_profiled`](Self::build_profiled), reusing the caller's
    /// [`BuildScratch`] for the engine's large transient arenas. A fresh
    /// build first-touches a few hundred MB of freshly mapped pages at
    /// the 100k tier (~0.5 s of page faults on a cold run); an
    /// investigation service building viewmaps back to back keeps one
    /// scratch per worker and pays that once. The scratch carries **no
    /// state between builds** — every buffer is cleared and fully
    /// rewritten before use — so the constructed viewmap is bit-for-bit
    /// identical to a fresh-allocation build (the `parallel_equivalence`
    /// suite pins scratch-reuse builds against fresh ones).
    pub fn build_with_scratch(
        candidates: &[Arc<StoredVp>],
        site: Site,
        minute: MinuteId,
        cfg: &ViewmapConfig,
        threads: usize,
        scratch: &mut BuildScratch,
    ) -> (Viewmap, BuildProfile) {
        Self::build_impl(candidates, site, minute, cfg, threads, scratch, true)
    }

    fn build_impl(
        candidates: &[Arc<StoredVp>],
        site: Site,
        minute: MinuteId,
        cfg: &ViewmapConfig,
        threads: usize,
        scratch: &mut BuildScratch,
        retain_arenas: bool,
    ) -> (Viewmap, BuildProfile) {
        let in_minute: Vec<&Arc<StoredVp>> = candidates
            .iter()
            .filter(|vp| vp.minute() == minute && !vp.vds.is_empty())
            .collect();

        // Trusted VP(s) closest to the investigation site. Squared
        // distances order identically (sqrt is monotone), so the sort
        // never pays a square root per VD.
        let mut trusted_refs: Vec<&Arc<StoredVp>> =
            in_minute.iter().copied().filter(|vp| vp.trusted).collect();
        trusted_refs.sort_by(|a, b| {
            let da = nearest_approach_sq(a, &site.center);
            let db = nearest_approach_sq(b, &site.center);
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        });

        // Coverage radius: encompass the site and the nearest trusted VP
        // (one sqrt here, at the caller — `GeoPos::distance` is
        // `distance_sq().sqrt()`, so the value is bit-identical).
        let coverage_radius = trusted_refs
            .first()
            .map(|vp| nearest_approach_sq(vp, &site.center).sqrt())
            .unwrap_or(0.0)
            .max(site.radius_m)
            + cfg.coverage_margin_m;

        let mut vps: Vec<Arc<StoredVp>> = Vec::new();
        for vp in &in_minute {
            let admit = vp.trusted
                || vp
                    .vds
                    .iter()
                    .any(|vd| vd.loc.distance(&site.center) <= coverage_radius);
            if admit {
                vps.push(Arc::clone(vp));
            }
        }

        let threads = if threads == 0 {
            crate::par::auto_threads(vps.len(), PARALLEL_MEMBER_THRESHOLD)
        } else {
            threads.clamp(1, crate::par::MAX_THREADS)
        };
        let mut profile = BuildProfile::default();
        let adj = build_viewlinks(
            &vps,
            minute,
            cfg,
            threads,
            &mut profile,
            scratch,
            retain_arenas,
        );

        let trusted = vps
            .iter()
            .enumerate()
            .filter(|(_, vp)| vp.trusted)
            .map(|(i, _)| i)
            .collect();
        (
            Viewmap {
                vps,
                adj,
                trusted,
                minute,
            },
            profile,
        )
    }

    /// As [`build`](Self::build), taking owned VPs (wraps each in an
    /// `Arc`; moving into the `Arc` is not a clone). Convenience for
    /// tests, examples, and experiment code that assembles candidate
    /// vectors locally.
    pub fn build_owned(
        candidates: Vec<StoredVp>,
        site: Site,
        minute: MinuteId,
        cfg: &ViewmapConfig,
    ) -> Viewmap {
        let arcs: Vec<Arc<StoredVp>> = candidates.into_iter().map(Arc::new).collect();
        Self::build(&arcs, site, minute, cfg)
    }

    /// Number of member VPs.
    pub fn len(&self) -> usize {
        self.vps.len()
    }

    /// True iff the viewmap has no members.
    pub fn is_empty(&self) -> bool {
        self.vps.is_empty()
    }

    /// Number of viewlinks (undirected edges).
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|n| n.len()).sum::<usize>() / 2
    }

    /// Fraction of members with at least one viewlink (Fig. 22f).
    pub fn member_connectivity(&self) -> f64 {
        if self.vps.is_empty() {
            return 0.0;
        }
        let connected = self.adj.iter().filter(|n| !n.is_empty()).count();
        connected as f64 / self.vps.len() as f64
    }

    /// Indices of members whose claimed trajectory enters the site.
    pub fn site_members(&self, site: &Site) -> Vec<usize> {
        self.vps
            .iter()
            .enumerate()
            .filter(|(_, vp)| site.contains_vp(vp))
            .map(|(i, _)| i)
            .collect()
    }

    /// Run Algorithm 1 against an investigation site; returns the
    /// verification outcome plus the marked VP identifiers.
    pub fn verify(&self, site: &Site, cfg: &ViewmapConfig) -> (Verification, Vec<VpId>) {
        let (v, ids, _) = self.verify_counted(site, cfg);
        (v, ids)
    }

    /// As [`verify`](Self::verify), also returning the TrustRank
    /// iteration count (0 when there is no trusted anchor to seed the
    /// power method). The server's investigation paths record it into
    /// the telemetry registry.
    pub fn verify_counted(
        &self,
        site: &Site,
        cfg: &ViewmapConfig,
    ) -> (Verification, Vec<VpId>, usize) {
        let site_idx = self.site_members(site);
        let (v, iterations) = if self.trusted.is_empty() {
            (
                Verification {
                    scores: vec![0.0; self.vps.len()],
                    top: None,
                    legitimate: Vec::new(),
                },
                0,
            )
        } else {
            trustrank::verify_site_csr_iter(
                &trustrank::CsrGraph::from_adj(&self.adj),
                &self.trusted,
                &site_idx,
                cfg.damping,
            )
        };
        let ids = v.legitimate.iter().map(|&i| self.vps[i].id).collect();
        (v, ids, iterations)
    }
}

/// Worker threads kick in above this many admitted members (below it,
/// spawn/join overhead outweighs the fan-out).
pub const PARALLEL_MEMBER_THRESHOLD: usize = 4096;

/// Time-partitioned bounding-circle count per trajectory: 10-second
/// granularity for a full minute. Finer segments reject more
/// temporally-misaligned near-crossings; coarser ones cost fewer circle
/// checks — 6 measured best at the 100k tier.
pub(crate) const TRAJ_SEGMENTS: usize = 6;

/// Coordinates whose bounding box stays within ±`FP_MAX_M` meters get
/// exact (non-saturating) fixed-point prefilter geometry. A member
/// claiming positions beyond a billion meters (only producible by a
/// forged trajectory — `screen()` checks time order, not plausibility)
/// is handled off-grid through the `f64` exact scan alone, so integer
/// saturation can never turn a conservative prefilter into a wrong
/// reject.
const FP_MAX_M: f64 = 1.0e9;

/// Wall-clock milliseconds per viewlink-engine phase, from
/// [`Viewmap::build_profiled`]. The phases are the four stages the
/// module docs describe; admission/coverage selection (microseconds at
/// any tier) is outside them, so the fields sum to slightly less than
/// the end-to-end build time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BuildProfile {
    /// Phase 1 — trajectory tables: member scan, Morton ordering, and
    /// the SoA gather + coordinate-arena fill.
    pub tables_ms: f64,
    /// Phase 2 — candidate generation, settled to exact in-range pairs
    /// (includes the order-restoring sort).
    pub candidates_ms: f64,
    /// Phase 3 — Bloom-key hashing for members in surviving pairs
    /// (multi-buffer SHA-256; zero when the minute is key-warm).
    pub keys_ms: f64,
    /// Phase 4 — flat-arena assembly plus the two-way Bloom linkage
    /// pass in holder-tile order.
    pub linkage_ms: f64,
}

/// Reusable large arenas for the viewlink engine, so back-to-back
/// builds stop paying first-touch page faults on hundreds of MB of
/// freshly mapped memory (the coordinate arena alone is ~200 MB at the
/// 100k tier; the probe arenas add ~120 MB more).
///
/// Semantics: pure allocation reuse. Every buffer is cleared and fully
/// rewritten by the build that borrows it, so a scratch-reuse build is
/// bit-for-bit identical to a fresh one for any population and thread
/// count — reusing one scratch across unrelated minutes, sites, and
/// populations is always safe. The clear-and-resize passes are memsets
/// over already-resident pages, which is the cheap half of what a cold
/// allocation pays (fault + zero) and none of the expensive half.
///
/// One scratch serves one build at a time (`&mut`); give each
/// investigation worker its own.
#[derive(Default)]
pub struct BuildScratch {
    /// Phase-1 per-chunk coordinate slabs (one per worker chunk).
    chunk_coords: Vec<Vec<f64>>,
    /// The rank-ordered interleaved `(x, y)` coordinate arena.
    arena: Vec<f64>,
    /// Packed candidate/surviving pair list (`i << 32 | j`).
    pairs: Vec<u64>,
    /// Holder-rank evaluation order for the linkage pass.
    eval: Vec<u64>,
    /// Flat Bloom words of every probed member.
    bloom_words: Vec<u64>,
    /// Flat `(h1, h2|1)` probe halves of every cached link key.
    key_halves: Vec<(u64, u64)>,
}

impl BuildScratch {
    /// An empty scratch; arenas grow to the working-set size of the
    /// first build that uses it and are retained from then on.
    pub fn new() -> BuildScratch {
        BuildScratch::default()
    }
}

/// Per-member scan output of phase 1: the compact-window shape, the
/// `f64` bounding circle the grid geometry derives from, and the
/// conservative fixed-point prefilter forms. The member's claimed
/// positions go to a shared coordinate slab, not into this struct — the
/// pair loop later reads them from the rank-ordered arena.
///
/// Crate-visible (not just module-local) because the incremental
/// maintainer ([`crate::maintained`]) runs the same scan and the same
/// pairwise predicates over per-member geometry rows instead of the
/// engine's rank-gathered SoA tables.
pub(crate) struct MemberGeom {
    /// First in-window offset (1-based); 0 when no in-window VDs exist.
    pub(crate) first: u32,
    /// Slots in the compact window (incl. `NaN` gaps).
    pub(crate) len: u32,
    /// Bloom-occupancy gate: fewer than `k` set bits can never pass a
    /// membership query, so this member can never hold up a viewlink.
    pub(crate) can_link: bool,
    /// Fixed-point forms are exact (see [`FP_MAX_M`]); false routes the
    /// member off-grid and straight to the exact scan.
    pub(crate) fp_exact: bool,
    /// Bounding-circle center (bbox midpoint) and radius (half-diagonal)
    /// in `f64` — the grid geometry (`r_cap`, `r_max`, cell size, cell
    /// assignment) derives from these, as before the SoA rewrite.
    pub(crate) cx: f64,
    pub(crate) cy: f64,
    pub(crate) r: f64,
    /// `(min_x, min_y, max_x, max_y)`, mins floored / maxes ceiled.
    pub(crate) bb: [i32; 4],
    /// Rounded circle center + ceiled radius; comparisons add slack to
    /// cover the rounding, so the integer check admits a superset.
    pub(crate) cxf: i32,
    pub(crate) cyf: i32,
    pub(crate) rf: i32,
    /// Per-time-segment circles `(cx, cy, r)` in the same fixed-point
    /// form; a pair can share an in-range second only if some pair of
    /// segments with overlapping offset windows comes within
    /// `dsrc + r_a + r_b`. Empty segments carry the never-overlapping
    /// `(0, 0)` window below and are skipped.
    pub(crate) segs: [(i32, i32, i32); TRAJ_SEGMENTS],
    /// Absolute offset window `[lo, hi)` of each segment (values ≤ 121,
    /// so `u8` keeps the row at 12 bytes).
    pub(crate) seg_win: [(u8, u8); TRAJ_SEGMENTS],
}

impl MemberGeom {
    /// Inert geometry for a member with no in-window VDs.
    fn empty() -> MemberGeom {
        MemberGeom {
            first: 0,
            len: 0,
            can_link: false,
            fp_exact: false,
            cx: 0.0,
            cy: 0.0,
            r: 0.0,
            bb: [0; 4],
            cxf: 0,
            cyf: 0,
            rf: 0,
            segs: [(0, 0, 0); TRAJ_SEGMENTS],
            seg_win: [(0, 0); TRAJ_SEGMENTS],
        }
    }

    /// Scan one member: append its compact window to `coords` as
    /// interleaved `(x, y)` pairs (`NaN` for missing seconds) and return
    /// the geometry. VD times are 1-based offsets from the VP's start
    /// second; a VP that starts recording mid-minute still belongs to
    /// this minute, so the window spans two minutes' worth of offsets
    /// (`1..=2·SECONDS_PER_VP`). Out-of-window VDs are ignored; when two
    /// VDs claim the same second the first one wins (the server rejects
    /// such VPs at ingest — this only matters for hand-built populations
    /// fed to `build` directly).
    pub(crate) fn scan(vp: &StoredVp, start: u64, coords: &mut Vec<f64>) -> MemberGeom {
        const WINDOW: usize = 2 * SECONDS_PER_VP as usize;
        let base = coords.len();
        // Fast path — every real VP: VD times strictly consecutive and
        // fully inside the window, so the compact window is a straight
        // copy with no scratch table.
        let contiguous = !vp.vds.is_empty()
            && vp.vds.first().expect("nonempty").time > start
            && vp.vds.last().expect("nonempty").time <= start + WINDOW as u64
            && vp.vds.windows(2).all(|w| w[1].time == w[0].time + 1);
        let lo = if contiguous {
            for vd in &vp.vds {
                coords.push(vd.loc.x);
                coords.push(vd.loc.y);
            }
            (vp.vds[0].time - start) as usize - 1
        } else {
            // General path: one pass over the VDs into a stack scratch
            // table (slot = offset − 1) tracking the occupied range,
            // then append the compact window from the scratch.
            let mut sx = [f64::NAN; WINDOW];
            let mut sy = [f64::NAN; WINDOW];
            let (mut lo, mut hi) = (usize::MAX, 0usize);
            for vd in &vp.vds {
                let off = vd.time.saturating_sub(start);
                if !(1..=WINDOW as u64).contains(&off) {
                    continue;
                }
                let slot = off as usize - 1;
                if !sx[slot].is_nan() {
                    continue;
                }
                sx[slot] = vd.loc.x;
                sy[slot] = vd.loc.y;
                lo = lo.min(slot);
                hi = hi.max(slot);
            }
            if lo == usize::MAX {
                return MemberGeom::empty();
            }
            for slot in lo..=hi {
                coords.push(sx[slot]);
                coords.push(sy[slot]);
            }
            lo
        };
        let len = (coords.len() - base) / 2;
        let window = &coords[base..];
        let mut bb = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        let mut seg_bb = [(
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        ); TRAJ_SEGMENTS];
        // The segment windows are derived from the *same* slot→segment
        // assignment that feeds each segment's bounding box (occupied
        // slot range per segment, recorded while accumulating), so a
        // position can never sit in one segment's circle while its
        // offset falls in another segment's window — the partition and
        // the windows cannot disagree, whatever `len` is. Empty segments
        // keep the never-overlapping (0, 0) window.
        let first = lo as u32 + 1;
        let mut seg_slots = [(u32::MAX, 0u32); TRAJ_SEGMENTS];
        for slot in 0..len {
            let (x, y) = (window[2 * slot], window[2 * slot + 1]);
            if x.is_nan() {
                continue;
            }
            bb.0 = bb.0.min(x);
            bb.1 = bb.1.min(y);
            bb.2 = bb.2.max(x);
            bb.3 = bb.3.max(y);
            let s = (slot * TRAJ_SEGMENTS / len).min(TRAJ_SEGMENTS - 1);
            let sb = &mut seg_bb[s];
            sb.0 = sb.0.min(x);
            sb.1 = sb.1.min(y);
            sb.2 = sb.2.max(x);
            sb.3 = sb.3.max(y);
            seg_slots[s].0 = seg_slots[s].0.min(slot as u32);
            seg_slots[s].1 = seg_slots[s].1.max(slot as u32);
        }
        let circle = |b: (f64, f64, f64, f64)| {
            (
                (b.0 + b.2) / 2.0,
                (b.1 + b.3) / 2.0,
                (b.2 - b.0).hypot(b.3 - b.1) / 2.0,
            )
        };
        let (cx, cy, r) = circle(bb);
        let fp_exact = bb.0.abs() <= FP_MAX_M
            && bb.1.abs() <= FP_MAX_M
            && bb.2.abs() <= FP_MAX_M
            && bb.3.abs() <= FP_MAX_M;
        let fixed_circle = |b: (f64, f64, f64, f64)| {
            if b.0.is_finite() {
                let (x, y, rr) = circle(b);
                (x.round() as i32, y.round() as i32, rr.ceil() as i32)
            } else {
                (0, 0, 0)
            }
        };
        MemberGeom {
            first,
            len: len as u32,
            can_link: vp.bloom.count_ones() >= vp.bloom.k(),
            fp_exact,
            cx,
            cy,
            r,
            bb: [
                bb.0.floor() as i32,
                bb.1.floor() as i32,
                bb.2.ceil() as i32,
                bb.3.ceil() as i32,
            ],
            cxf: cx.round() as i32,
            cyf: cy.round() as i32,
            rf: r.ceil() as i32,
            segs: seg_bb.map(fixed_circle),
            seg_win: seg_slots.map(|(min, max)| {
                if min == u32::MAX {
                    (0, 0)
                } else {
                    ((first + min) as u8, (first + max + 1) as u8)
                }
            }),
        }
    }

    /// Usable for candidate generation (has in-window VDs and passes the
    /// occupancy gate)?
    pub(crate) fn active(&self) -> bool {
        self.first != 0 && self.can_link
    }
}

// ── Shared pairwise predicates ──────────────────────────────────────────
//
// The viewlink edge predicate is purely *pairwise*: whether two members
// link depends only on the two trajectories (exact shared-second scan)
// and the two Bloom filters — never on the rest of the population. The
// grid, Morton order, and SoA tables above only generate/prune candidate
// supersets. These free functions are that predicate, factored out so the
// cold engine (`build_viewlinks`, reading rank-indexed SoA columns) and
// the incremental maintainer (`crate::maintained`, reading per-member
// `MemberGeom` rows) run byte-for-byte the same comparisons — the
// bit-identity the churn-equivalence suite pins rests on this sharing.

/// Conservative integer bbox prefilter: are the boxes provably farther
/// apart than the radio range? Mins are floored / maxes ceiled at
/// construction, so the computed gap underestimates the true gap and a
/// `true` here can never reject a real edge.
#[inline]
pub(crate) fn bbox_gap_beyond(ba: &[i32; 4], bb: &[i32; 4], radius_c: i64) -> bool {
    let dx = ((bb[0] - ba[2]) as i64).max((ba[0] - bb[2]) as i64).max(0);
    let dy = ((bb[1] - ba[3]) as i64).max((ba[1] - bb[3]) as i64).max(0);
    dx * dx + dy * dy > radius_c * radius_c
}

/// Conservative temporal-segment prefilter: can any pair of segments
/// with overlapping offset windows come within radio range (+2 m slack
/// for the rounded centers)? `false` proves no shared in-range second
/// exists.
#[inline]
pub(crate) fn segments_may_touch(
    sa: &[(i32, i32, i32); TRAJ_SEGMENTS],
    wa: &[(u8, u8); TRAJ_SEGMENTS],
    sb: &[(i32, i32, i32); TRAJ_SEGMENTS],
    wb: &[(u8, u8); TRAJ_SEGMENTS],
    radius_c: i64,
) -> bool {
    for s in 0..TRAJ_SEGMENTS {
        let (alo, ahi) = wa[s];
        if ahi == 0 {
            continue;
        }
        let (ax, ay, ar) = sa[s];
        for t in 0..TRAJ_SEGMENTS {
            let (blo, bhi) = wb[t];
            if bhi <= alo || ahi <= blo {
                continue;
            }
            let (bx, by, br) = sb[t];
            let lim = radius_c + ar as i64 + br as i64 + 2;
            let (dx, dy) = ((ax - bx) as i64, (ay - by) as i64);
            if dx * dx + dy * dy <= lim * lim {
                return true;
            }
        }
    }
    false
}

/// The exact location-proximity test: did the two members come within
/// `sqrt(r2)` of each other at any shared in-window second? `wa`/`wb`
/// are the members' compact windows — interleaved `(x, y)` pairs with
/// `NaN` gap slots (which compare false and drop out on their own) —
/// starting at 1-based offsets `first_a`/`first_b`.
#[inline]
pub(crate) fn shares_in_range_second(
    first_a: u32,
    len_a: u32,
    wa: &[f64],
    first_b: u32,
    len_b: u32,
    wb: &[f64],
    r2: f64,
) -> bool {
    let lo = first_a.max(first_b);
    let hi = (first_a + len_a).min(first_b + len_b);
    let mut t = lo;
    while t < hi {
        let ia = (2 * (t - first_a)) as usize;
        let ib = (2 * (t - first_b)) as usize;
        let dx = wa[ia] - wb[ib];
        let dy = wa[ia + 1] - wb[ib + 1];
        if dx * dx + dy * dy <= r2 {
            return true;
        }
        t += 1;
    }
    false
}

/// The full exact pair predicate over two members' geometry rows and
/// compact windows: conservative integer prefilters (only when both
/// members' fixed-point forms are exact), then the bit-exact `f64`
/// shared-second scan. The engine's per-candidate settling closure and
/// the incremental maintainer both resolve to this.
#[inline]
pub(crate) fn settle_pair(
    ga: &MemberGeom,
    wa: &[f64],
    gb: &MemberGeom,
    wb: &[f64],
    radius_c: i64,
    r2: f64,
) -> bool {
    if ga.fp_exact
        && gb.fp_exact
        && (bbox_gap_beyond(&ga.bb, &gb.bb, radius_c)
            || !segments_may_touch(&ga.segs, &ga.seg_win, &gb.segs, &gb.seg_win, radius_c))
    {
        return false;
    }
    shares_in_range_second(ga.first, ga.len, wa, gb.first, gb.len, wb, r2)
}

/// Grid radius cap from a population's active bounding-circle radii:
/// 4× the 95th-percentile radius, floored by the radio range. Members
/// above the cap are handled off-grid (see the cold engine's candidate
/// phase) so one city-spanning forgery cannot inflate every member's
/// query reach. Sorts `active_radii` in place.
pub(crate) fn radius_cap(active_radii: &mut [f64], radius: f64) -> f64 {
    active_radii.sort_unstable_by(f64::total_cmp);
    active_radii
        .get(active_radii.len().saturating_mul(95) / 100)
        .or(active_radii.last())
        .map_or(0.0, |&p95| (4.0 * p95).max(radius))
}

/// Grid cell size for a given radio range and capped max member radius.
#[inline]
pub(crate) fn cell_size(radius: f64, r_max: f64) -> f64 {
    ((radius + 2.0 * r_max) / 4.0).max(1.0)
}

/// Spread the 32 bits of `v` into the even bit positions of a `u64`.
fn morton_spread(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Z-order (Morton) code of a grid cell. Cell coordinates are the
/// wrapped low 32 bits of the true `i64` cell index: truncation keeps
/// every 2³²-cell-wide neighborhood collision-free — far-apart cells
/// that do collide only add candidates the center prefilter rejects, so
/// correctness never depends on the wrap (mirroring how the hash grid
/// this replaces tolerated arbitrary coordinates).
pub(crate) fn morton_code(cx: u32, cy: u32) -> u64 {
    morton_spread(cx) | (morton_spread(cy) << 1)
}

/// Viewlink edges for a member set — the four-phase engine described in
/// the module docs, phase times recorded into `profile`. Every phase
/// fans out over contiguous chunks and merges in chunk order (with
/// order-restoring sorts after the spatially-reordered passes), so the
/// result is identical for any `threads`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_viewlinks(
    vps: &[Arc<StoredVp>],
    minute: MinuteId,
    cfg: &ViewmapConfig,
    threads: usize,
    profile: &mut BuildProfile,
    scratch: &mut BuildScratch,
    retain_arenas: bool,
) -> Vec<Vec<usize>> {
    // Disjoint borrows of the reusable arenas (cleared before use; see
    // `BuildScratch` for the no-state-between-builds contract).
    let BuildScratch {
        chunk_coords,
        arena,
        pairs: in_range,
        eval,
        bloom_words,
        key_halves,
    } = scratch;
    let n = vps.len();
    let mut adj = vec![Vec::new(); n];
    if n < 2 {
        return adj;
    }
    let radius = cfg.dsrc_radius_m;
    let r2 = radius * radius;
    // Conservative integer radio range for the fixed-point prefilters.
    let radius_c = radius.ceil() as i64;
    let start = minute.start_second();
    // The SoA tables index with u32 (arena offsets count interleaved
    // coordinates: ≤ 240 per member). One minute of one city staying
    // under ~17.9M members is part of the protocol's scale envelope;
    // fail loudly rather than wrap silently if that ever moves.
    assert!(
        n as u64 * 4 * SECONDS_PER_VP <= u32::MAX as u64,
        "viewmap of {n} members exceeds u32 SoA indexing"
    );
    let member_cuts = crate::par::even_cuts(n, threads);
    let t_tables = std::time::Instant::now();

    // ── Phase 1: trajectory tables, Morton order, SoA gather ────────────
    // Parallel member scan into chunk-local geometry + coordinate slabs.
    // The slabs are scratch-owned and cleared per build: worker `t`
    // refills slab `t`, so a retained scratch serves any later build
    // (including one with a different chunk count — extra slabs idle,
    // missing ones are created empty and grow on first use).
    let chunks = member_cuts.len() - 1;
    if chunk_coords.len() < chunks {
        chunk_coords.resize_with(chunks, Vec::new);
    }
    let unit_cuts: Vec<usize> = (0..=chunks).collect();
    let chunk_geoms: Vec<Vec<MemberGeom>> =
        crate::par::map_disjoint_mut(&mut chunk_coords[..chunks], &unit_cuts, |t, slab| {
            let coords = &mut slab[0];
            coords.clear();
            let (lo, hi) = (member_cuts[t], member_cuts[t + 1]);
            coords.reserve((hi - lo) * 2 * SECONDS_PER_VP as usize);
            let mut geoms = Vec::with_capacity(hi - lo);
            for vp in &vps[lo..hi] {
                geoms.push(MemberGeom::scan(vp, start, coords));
            }
            geoms
        });
    let mut geom: Vec<MemberGeom> = Vec::with_capacity(n);
    // Where each member's window lives: (chunk, offset into its slab).
    let mut src: Vec<(u32, u32)> = Vec::with_capacity(n);
    for (c, geoms) in chunk_geoms.into_iter().enumerate() {
        let mut off = 0u32;
        for g in &geoms {
            src.push((c as u32, off));
            off += 2 * g.len;
        }
        geom.extend(geoms);
    }

    // Grid geometry from the population's *typical* trajectory extent,
    // not its most spread-out member: `screen()` only checks VD count
    // and time order, so a single city-spanning (or teleporting)
    // trajectory is admissible — and if it set `r_max`, it would inflate
    // every member's query reach to city scale and turn candidate
    // generation quadratic (a build-time DoS). Members whose radius
    // exceeds `r_cap` (4× the 95th-percentile radius, floored by the
    // radio range) — and the fixed-point-overflowing forgeries — are
    // instead handled off-grid below: each is paired against every
    // member through the same filter pipeline — exact, deterministic,
    // and linear per outlier.
    let mut active_radii: Vec<f64> = geom.iter().filter(|g| g.active()).map(|g| g.r).collect();
    let r_cap = radius_cap(&mut active_radii, radius);
    let gridded = |g: &MemberGeom| g.active() && g.fp_exact && g.r <= r_cap;
    let r_max = geom
        .iter()
        .filter(|g| gridded(g))
        .map(|g| g.r)
        .fold(0.0f64, f64::max);
    let cell = cell_size(radius, r_max);
    let rf_max = geom
        .iter()
        .filter(|g| gridded(g))
        .map(|g| g.rf)
        .max()
        .unwrap_or(0);

    // Morton permutation: gridded members sorted by cell Z-code (ties by
    // member index — fully deterministic), off-grid members appended in
    // index order. `order[rank] = member`, `rank_of[member] = rank`.
    let cell_of = |g: &MemberGeom| {
        (
            (g.cx / cell).floor() as i64 as u32,
            (g.cy / cell).floor() as i64 as u32,
        )
    };
    let mut keyed: Vec<(u64, u32)> = geom
        .iter()
        .enumerate()
        .filter(|(_, g)| gridded(g))
        .map(|(i, g)| {
            let (cx, cy) = cell_of(g);
            (morton_code(cx, cy), i as u32)
        })
        .collect();
    keyed.sort_unstable();
    let n_gridded = keyed.len();
    let wild: Vec<u32> = (0..n as u32)
        .filter(|&i| {
            let g = &geom[i as usize];
            g.active() && !gridded(g)
        })
        .collect();
    let mut order: Vec<u32> = keyed.iter().map(|&(_, i)| i).collect();
    order.extend(&wild);
    let n_ranked = order.len();
    let mut rank_of: Vec<u32> = vec![u32::MAX; n];
    for (k, &i) in order.iter().enumerate() {
        rank_of[i as usize] = k as u32;
    }

    // Cell runs: equal Z-codes are contiguous in the permutation, so a
    // cell is a `(start, len)` rank range — counting-sorted buckets with
    // no per-bucket allocations.
    let mut cells: std::collections::HashMap<u64, (u32, u32), vm_geo::FxBuildHasher> =
        std::collections::HashMap::with_capacity_and_hasher(n_gridded, Default::default());
    {
        let mut s = 0usize;
        while s < n_gridded {
            let code = keyed[s].0;
            let mut e = s + 1;
            while e < n_gridded && keyed[e].0 == code {
                e += 1;
            }
            cells.insert(code, (s as u32, (e - s) as u32));
            s = e;
        }
    }

    // Rank-indexed SoA prefilter tables: the pair loop touches these in
    // near-sequential order, so spatial neighbors share cache lines.
    let mut first = vec![0u32; n_ranked];
    let mut len_of = vec![0u32; n_ranked];
    let mut fpe = vec![false; n_ranked];
    let mut cxf = vec![0i32; n_ranked];
    let mut cyf = vec![0i32; n_ranked];
    let mut rf = vec![0i32; n_ranked];
    let mut bb = vec![[0i32; 4]; n_ranked];
    let mut segs = vec![[(0i32, 0i32, 0i32); TRAJ_SEGMENTS]; n_ranked];
    let mut seg_win = vec![[(0u8, 0u8); TRAJ_SEGMENTS]; n_ranked];
    let mut cellx = vec![0u32; n_gridded];
    let mut celly = vec![0u32; n_gridded];
    let mut reach_f = vec![0.0f64; n_gridded];
    let mut arena_off = vec![0u32; n_ranked + 1];
    for (k, &iu) in order.iter().enumerate() {
        let g = &geom[iu as usize];
        first[k] = g.first;
        len_of[k] = g.len;
        fpe[k] = g.fp_exact;
        cxf[k] = g.cxf;
        cyf[k] = g.cyf;
        rf[k] = g.rf;
        bb[k] = g.bb;
        segs[k] = g.segs;
        seg_win[k] = g.seg_win;
        if k < n_gridded {
            let (cx, cy) = cell_of(g);
            cellx[k] = cx;
            celly[k] = cy;
            reach_f[k] = radius + g.r + r_max;
        }
        arena_off[k + 1] = arena_off[k] + 2 * g.len;
    }

    // Coordinate arena in rank order: interleaved (x, y) f64 pairs, so
    // the exact scan streams two contiguous, usually-nearby slabs. The
    // arena is scratch-retained: clear + resize is a memset over warm
    // pages where a fresh allocation would fault in every page.
    let rank_cuts = crate::par::even_cuts(n_ranked, threads);
    let arena_cuts: Vec<usize> = rank_cuts.iter().map(|&k| arena_off[k] as usize).collect();
    arena.clear();
    arena.resize(arena_off[n_ranked] as usize, 0.0);
    crate::par::map_disjoint_mut(&mut arena[..], &arena_cuts, |t, slab| {
        let mut p = 0usize;
        for k in rank_cuts[t]..rank_cuts[t + 1] {
            let (c, o) = src[order[k] as usize];
            let l = 2 * len_of[k] as usize;
            slab[p..p + l].copy_from_slice(&chunk_coords[c as usize][o as usize..o as usize + l]);
            p += l;
        }
    });
    // The phase-1 slabs are fully transcribed into the rank arena; on a
    // one-shot build, free them now (they are roughly another arena's
    // worth of memory) instead of carrying them through phases 2-4. A
    // caller-owned scratch keeps them — that retained capacity is
    // exactly what the next build's reuse pays for.
    if !retain_arenas {
        for slab in chunk_coords.iter_mut() {
            *slab = Vec::new();
        }
    }
    profile.tables_ms = t_tables.elapsed().as_secs_f64() * 1e3;
    let t_candidates = std::time::Instant::now();

    // ── Phase 2: candidate pairs, settled to exact in-range pairs ───────
    // All prefilters are conservative integer comparisons (+2 m slack
    // covers the center rounding; members without exact fixed-point
    // forms skip straight to the f64 scan), and the settling scan is the
    // bit-exact f64 shared-second walk — so the surviving pair set is
    // identical to the reference definition's. The comparisons live in
    // the shared pairwise-predicate functions above (also the
    // incremental maintainer's edge test); this closure only adapts them
    // to the rank-indexed SoA columns.
    let settle = |a: usize, b: usize| -> bool {
        if fpe[a]
            && fpe[b]
            && (bbox_gap_beyond(&bb[a], &bb[b], radius_c)
                || !segments_may_touch(&segs[a], &seg_win[a], &segs[b], &seg_win[b], radius_c))
        {
            return false;
        }
        let (oa, ob) = (arena_off[a] as usize, arena_off[b] as usize);
        shares_in_range_second(
            first[a],
            len_of[a],
            &arena[oa..oa + 2 * len_of[a] as usize],
            first[b],
            len_of[b],
            &arena[ob..ob + 2 * len_of[b] as usize],
            r2,
        )
    };

    // Pairs are emitted as packed `i << 32 | j` with `i < j` in member
    // indices, each exactly once (from the lower-indexed member's cell
    // scan); the final sort restores global ascending pair order — the
    // edge order the two-way validation and adjacency assembly follow —
    // erasing the Morton processing order from the result.
    let g_cuts = crate::par::even_cuts(n_gridded, threads);
    in_range.clear();
    let pair_chunks = crate::par::map_ranges(&g_cuts, |_t, lo, hi| {
        let mut out: Vec<u64> = Vec::new();
        for a in lo..hi {
            let i = order[a] as usize;
            let rc = (reach_f[a] / cell).ceil() as i64;
            let lim = radius_c + rf[a] as i64 + rf_max as i64 + 2;
            for dy in -rc..=rc {
                let cy = celly[a].wrapping_add(dy as u32);
                for dx in -rc..=rc {
                    let cx = cellx[a].wrapping_add(dx as u32);
                    let Some(&(s, l)) = cells.get(&morton_code(cx, cy)) else {
                        continue;
                    };
                    for b in s as usize..(s + l) as usize {
                        let j = order[b] as usize;
                        if j <= i {
                            continue;
                        }
                        let (ddx, ddy) = ((cxf[a] - cxf[b]) as i64, (cyf[a] - cyf[b]) as i64);
                        let pair_lim = lim.min(radius_c + rf[a] as i64 + rf[b] as i64 + 2);
                        if ddx * ddx + ddy * ddy > pair_lim * pair_lim {
                            continue;
                        }
                        if settle(a, b) {
                            out.push(((i as u64) << 32) | j as u64);
                        }
                    }
                }
            }
        }
        out
    });
    for chunk in pair_chunks {
        in_range.extend(chunk);
    }

    // Off-grid pass for the capped/overflowing outliers: pair each
    // against every member (wild–wild pairs once, from the lower index).
    // Honest populations have no outliers and skip this entirely.
    for &wu in &wild {
        let w = wu as usize;
        for j in (0..n).filter(|&j| j != w && geom[j].active()) {
            if !gridded(&geom[j]) && j < w {
                continue;
            }
            let (lo_m, hi_m) = (w.min(j), w.max(j));
            let (a, b) = (rank_of[lo_m] as usize, rank_of[hi_m] as usize);
            if settle(a, b) {
                in_range.push(((lo_m as u64) << 32) | hi_m as u64);
            }
        }
    }
    in_range.sort_unstable();
    profile.candidates_ms = t_candidates.elapsed().as_secs_f64() * 1e3;
    if in_range.is_empty() {
        return adj;
    }
    let t_keys = std::time::Instant::now();

    // ── Phase 3: Bloom keys for members that still matter ───────────────
    let mut needs_keys = vec![false; n];
    for &packed in in_range.iter() {
        needs_keys[(packed >> 32) as usize] = true;
        needs_keys[(packed & 0xffff_ffff) as usize] = true;
    }
    let needed: Vec<usize> = (0..n).filter(|&i| needs_keys[i]).collect();
    // Hash in Morton-rank order: the freshly allocated per-VP key caches
    // then sit in memory in exactly the order the phase-4 arena gather
    // walks them, turning that gather from a random walk over ~100 MB of
    // boxes into a sequential stream (measured ~5× faster at the 100k
    // tier). The hashed values are order-independent, so this is purely
    // an allocation-layout choice.
    let mut probe_order: Vec<u32> = needed.iter().map(|&m| m as u32).collect();
    probe_order.sort_unstable_by_key(|&m| rank_of[m as usize]);
    let key_cuts = crate::par::even_cuts(probe_order.len(), threads);
    crate::par::map_ranges(&key_cuts, |_t, lo, hi| {
        for &m in &probe_order[lo..hi] {
            vps[m as usize].link_keys();
        }
    });
    profile.keys_ms = t_keys.elapsed().as_secs_f64() * 1e3;
    let t_linkage = std::time::Instant::now();

    // ── Phase 4: the paper's two-way Bloom linkage test ─────────────────
    // Flat probe tables, so the pair loop touches two dense arenas
    // instead of chasing `Arc`s into scattered multi-KB VP records:
    // Bloom bits as `u64` words and keys reduced to the `(h1, h2|1)`
    // double-hashing halves that `BloomFilter::insert`/`contains` derive
    // from a digest. Both arenas cover only `needed` members — every
    // probe has a surviving pair's endpoint as both holder and element
    // owner — and are laid out in Morton rank order, so the partner side
    // of a probe is a spatial neighbor sitting nearby in the arena
    // rather than a uniformly random multi-MB jump.
    bloom_words.clear();
    bloom_words.reserve(
        needed
            .iter()
            .map(|&m| vps[m].bloom.m_bits().div_ceil(64))
            .sum(),
    );
    let mut bloom_meta: Vec<(u32, u32, u32)> = vec![(0, 0, 0); n]; // (base, m_bits, k)
    let mut key_spans = vec![(0u32, 0u32); n];
    key_halves.clear();
    key_halves.reserve(needed.len() * SECONDS_PER_VP as usize);
    for &mu in &probe_order {
        let m = mu as usize;
        let vp = &vps[m];
        bloom_meta[m] = (
            bloom_words.len() as u32,
            vp.bloom.m_bits() as u32,
            vp.bloom.k() as u32,
        );
        vp.bloom.append_words(bloom_words);
        let cached = vp.link_keys();
        key_spans[m] = (key_halves.len() as u32, cached.len() as u32);
        for key in cached {
            key_halves.push(crate::bloom::probe_halves(key));
        }
    }
    // `holder.bloom.contains(key)` for any of `element_owner`'s keys,
    // over the flat tables — the probe sequence comes from the shared
    // `bloom::probe_halves`/`probe_slot` helpers (the same code
    // `BloomFilter::insert`/`contains` run), with the holder's words and
    // parameters loaded once per direction instead of once per key.
    let links_to = |holder: usize, element_owner: usize| -> bool {
        let (base, m, k) = bloom_meta[holder];
        let words = &bloom_words[base as usize..];
        let m = m as u64;
        let (start, len) = key_spans[element_owner];
        key_halves[start as usize..(start + len) as usize]
            .iter()
            .any(|&(h1, h2)| {
                for i in 0..k as u64 {
                    let s = crate::bloom::probe_slot(h1, h2, m, i);
                    if words[(s / 64) as usize] & (1u64 << (s % 64)) == 0 {
                        return false;
                    }
                }
                true
            })
    };
    // Holder tiles: evaluate the pairs sorted by the lower endpoint's
    // rank, so every pair holding member `i` is consecutive (its words
    // and key halves stay in L1 across its whole tile) and the `j` sides
    // are rank-local. The evaluation order is a pure function of the
    // pair set, and survivors sort back to ascending pair order, so the
    // reordering is invisible in the output.
    eval.clear();
    eval.extend(
        in_range
            .iter()
            .enumerate()
            .map(|(idx, &packed)| ((rank_of[(packed >> 32) as usize] as u64) << 32) | idx as u64),
    );
    eval.sort_unstable();
    let pair_cuts = crate::par::even_cuts(eval.len(), threads);
    let mut survivors: Vec<u32> = crate::par::map_ranges(&pair_cuts, |_t, lo, hi| {
        eval[lo..hi]
            .iter()
            .filter_map(|&e| {
                let idx = (e & 0xffff_ffff) as usize;
                let packed = in_range[idx];
                let i = (packed >> 32) as usize;
                let j = (packed & 0xffff_ffff) as usize;
                (links_to(i, j) && links_to(j, i)).then_some(idx as u32)
            })
            .collect::<Vec<u32>>()
    })
    .into_iter()
    .flatten()
    .collect();
    survivors.sort_unstable();
    for &idx in &survivors {
        let packed = in_range[idx as usize];
        let i = (packed >> 32) as usize;
        let j = (packed & 0xffff_ffff) as usize;
        adj[i].push(j);
        adj[j].push(i);
    }
    profile.linkage_ms = t_linkage.elapsed().as_secs_f64() * 1e3;
    adj
}

/// Squared nearest approach of a VP's claimed trajectory to a point.
/// Compared (and minimized) in squared space — one `sqrt` per VD here
/// used to be the dominant cost of trusted-VP selection on large
/// populations; callers that need the distance take a single `sqrt` of
/// the result, which is bit-identical because `GeoPos::distance` is
/// `distance_sq().sqrt()` and `sqrt` is monotone.
pub(crate) fn nearest_approach_sq(vp: &StoredVp, p: &GeoPos) -> f64 {
    vp.vds
        .iter()
        .map(|vd| vd.loc.distance_sq(p))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SECONDS_PER_VP;
    use crate::vp::{VpBuilder, VpKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Build a chain of vehicles along a line, each exchanging VDs with its
    /// immediate neighbors, the first one trusted.
    fn build_chain(n: usize, spacing: f64, seed: u64) -> Vec<StoredVp> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut builders: Vec<VpBuilder> = (0..n)
            .map(|i| {
                let kind = if i == 0 {
                    VpKind::Trusted
                } else {
                    VpKind::Actual
                };
                VpBuilder::new(&mut rng, 0, GeoPos::new(i as f64 * spacing, 0.0), kind)
            })
            .collect();
        for s in 0..SECONDS_PER_VP {
            let now = s + 1;
            let locs: Vec<GeoPos> = (0..n)
                .map(|i| GeoPos::new(i as f64 * spacing + s as f64, 0.0))
                .collect();
            let vds: Vec<_> = builders
                .iter_mut()
                .enumerate()
                .map(|(i, b)| b.record_second(&(s * 97).to_le_bytes(), locs[i]))
                .collect();
            for i in 0..n {
                for j in 0..n {
                    if i != j && locs[i].distance(&locs[j]) <= spacing * 1.5 {
                        builders[i].accept_neighbor_vd(vds[j], now, locs[i]);
                    }
                }
            }
        }
        builders
            .into_iter()
            .map(|b| b.finalize().profile.into_stored())
            .collect()
    }

    fn site_at(x: f64, r: f64) -> Site {
        Site {
            center: GeoPos::new(x, 0.0),
            radius_m: r,
        }
    }

    #[test]
    fn chain_viewmap_is_connected_single_layer() {
        let vps = build_chain(8, 150.0, 1);
        let site = site_at(7.0 * 150.0, 200.0);
        let vm = Viewmap::build_owned(vps, site, MinuteId(0), &ViewmapConfig::default());
        assert_eq!(vm.len(), 8);
        assert_eq!(vm.trusted, vec![0]);
        // Each interior node links to both neighbors.
        assert!(vm.edge_count() >= 7, "edges: {}", vm.edge_count());
        assert!(vm.member_connectivity() > 0.99);
    }

    #[test]
    fn verification_marks_site_vps_legitimate() {
        let vps = build_chain(8, 150.0, 2);
        let site = site_at(7.0 * 150.0, 160.0);
        let cfg = ViewmapConfig::default();
        let vm = Viewmap::build_owned(vps, site, MinuteId(0), &cfg);
        let (v, ids) = vm.verify(&site, &cfg);
        assert!(v.top.is_some());
        assert!(!ids.is_empty());
        // The marked VPs genuinely claim positions in the site.
        for &i in &v.legitimate {
            assert!(site.contains_vp(&vm.vps[i]));
        }
    }

    #[test]
    fn unlinked_far_vp_is_isolated() {
        let mut vps = build_chain(5, 150.0, 3);
        // A stranger VP near the site but never exchanged VDs with anyone.
        let mut rng = StdRng::seed_from_u64(4);
        let mut b = VpBuilder::new(&mut rng, 0, GeoPos::new(600.0, 10.0), VpKind::Actual);
        for s in 0..SECONDS_PER_VP {
            b.record_second(b"solo", GeoPos::new(600.0 + s as f64, 10.0));
        }
        vps.push(b.finalize().profile.into_stored());
        let site = site_at(600.0, 200.0);
        let vm = Viewmap::build_owned(vps, site, MinuteId(0), &ViewmapConfig::default());
        let solo = vm
            .vps
            .iter()
            .position(|vp| vp.start_loc().y == 10.0)
            .unwrap();
        assert!(vm.adj[solo].is_empty(), "stranger must have no viewlinks");
        assert!(vm.member_connectivity() < 1.0);
    }

    #[test]
    fn other_minutes_are_excluded() {
        let mut vps = build_chain(4, 150.0, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut b = VpBuilder::new(&mut rng, 60, GeoPos::new(0.0, 0.0), VpKind::Actual);
        for s in 0..SECONDS_PER_VP {
            b.record_second(b"late", GeoPos::new(s as f64, 0.0));
        }
        vps.push(b.finalize().profile.into_stored());
        // Site radius large enough that coverage admits the whole chain.
        let vm = Viewmap::build_owned(
            vps,
            site_at(0.0, 400.0),
            MinuteId(0),
            &ViewmapConfig::default(),
        );
        assert_eq!(vm.len(), 4, "minute-1 VP must not join minute-0 viewmap");
    }

    #[test]
    fn coverage_excludes_vps_far_from_everything() {
        let mut vps = build_chain(4, 100.0, 7);
        // A legitimate pair far away (5 km) — outside coverage.
        let far = build_chain(2, 100.0, 8);
        for mut vp in far {
            for vd in &mut vp.vds {
                vd.loc.x += 5000.0;
            }
            vp.trusted = false;
            vps.push(vp);
        }
        let site = site_at(300.0, 150.0);
        let vm = Viewmap::build_owned(vps, site, MinuteId(0), &ViewmapConfig::default());
        assert_eq!(vm.len(), 4, "distant VPs excluded from coverage");
    }

    #[test]
    fn no_trusted_vp_yields_no_verification() {
        let mut vps = build_chain(4, 150.0, 9);
        vps[0].trusted = false;
        let site = site_at(450.0, 200.0);
        let cfg = ViewmapConfig::default();
        let vm = Viewmap::build_owned(vps, site, MinuteId(0), &cfg);
        let (v, ids) = vm.verify(&site, &cfg);
        assert_eq!(v.top, None);
        assert!(ids.is_empty());
    }

    #[test]
    fn adjacency_is_symmetric() {
        let vps = build_chain(10, 120.0, 10);
        let vm = Viewmap::build_owned(
            vps,
            site_at(500.0, 300.0),
            MinuteId(0),
            &ViewmapConfig::default(),
        );
        for (i, nbrs) in vm.adj.iter().enumerate() {
            for &j in nbrs {
                assert!(vm.adj[j].contains(&i), "edge {i}-{j} not symmetric");
            }
        }
    }

    #[test]
    fn build_shares_arcs_with_caller() {
        // Zero-copy admission: the viewmap's members are the same
        // allocations the caller (in production, the server DB) holds.
        let vps: Vec<Arc<StoredVp>> = build_chain(4, 150.0, 11)
            .into_iter()
            .map(Arc::new)
            .collect();
        let vm = Viewmap::build(
            &vps,
            site_at(0.0, 400.0),
            MinuteId(0),
            &ViewmapConfig::default(),
        );
        assert_eq!(vm.len(), 4);
        for member in &vm.vps {
            let original = vps.iter().find(|vp| vp.id == member.id).unwrap();
            assert!(
                Arc::ptr_eq(member, original),
                "member must share the caller's allocation"
            );
        }
    }

    #[test]
    fn extreme_fp_exact_trajectories_do_not_overflow_prefilters() {
        // Forged trajectories oscillating across ±1e9 m are admissible
        // (screen() checks only VD count and time order) and sit exactly
        // inside the FP_MAX_M gate, so their fixed-point radii reach
        // ceil(√2·1e9) ≈ 1.41e9 — two of those summed overflow i32. The
        // prefilter limit arithmetic must widen to i64 first: the build
        // must not panic (debug overflow checks) and must still agree
        // with the O(n²) oracle.
        let mut rng = StdRng::seed_from_u64(77);
        let mut vps = Vec::new();
        for k in 0..2u64 {
            let mut b = VpBuilder::new(&mut rng, 0, GeoPos::new(0.0, 0.0), VpKind::Actual);
            for s in 0..SECONDS_PER_VP {
                let sign = if (s + k) % 2 == 0 { 1.0 } else { -1.0 };
                b.record_second(b"forged", GeoPos::new(sign * 1.0e9, sign * 1.0e9));
            }
            let mut fin = b.finalize();
            // Enough Bloom occupancy to pass the can-link gate, so the
            // forged members reach the candidate scan.
            for i in 0..16u64 {
                fin.profile
                    .bloom
                    .insert(&vm_crypto::Digest16::hash(&i.to_le_bytes()));
            }
            vps.push(fin.profile.into_stored());
        }
        vps.extend(build_chain(3, 150.0, 78));
        let site = site_at(0.0, 1.5e9);
        let cfg = ViewmapConfig::default();
        let vm = Viewmap::build_owned(vps, site, MinuteId(0), &cfg);
        assert_eq!(vm.len(), 5, "everyone admitted");
        for i in 0..vm.len() {
            for j in (i + 1)..vm.len() {
                let close = vm.vps[i]
                    .min_aligned_distance(&vm.vps[j])
                    .is_some_and(|d| d <= cfg.dsrc_radius_m);
                let expect = close && vm.vps[i].mutually_linked(&vm.vps[j]);
                assert_eq!(vm.adj[i].contains(&j), expect, "edge {i}-{j}");
            }
        }
    }

    #[test]
    fn build_profiled_is_the_production_build_plus_times() {
        // The profiled entry point must return the exact viewmap the
        // plain build produces (it IS the plain build), with finite,
        // non-negative per-phase times.
        let vps: Vec<Arc<StoredVp>> = build_chain(10, 120.0, 30)
            .into_iter()
            .map(Arc::new)
            .collect();
        let cfg = ViewmapConfig::default();
        let site = site_at(500.0, 300.0);
        let plain = Viewmap::build_threads(&vps, site, MinuteId(0), &cfg, 2);
        let (profiled, p) = Viewmap::build_profiled(&vps, site, MinuteId(0), &cfg, 2);
        assert_eq!(plain.len(), profiled.len());
        assert_eq!(plain.trusted, profiled.trusted);
        for i in 0..plain.len() {
            assert_eq!(plain.adj[i], profiled.adj[i], "adjacency at {i}");
        }
        assert!(plain.edge_count() > 0, "chain must link");
        for (name, v) in [
            ("tables", p.tables_ms),
            ("candidates", p.candidates_ms),
            ("keys", p.keys_ms),
            ("linkage", p.linkage_ms),
        ] {
            assert!(v.is_finite() && v >= 0.0, "{name}: {v}");
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_unrelated_builds() {
        // One scratch reused across different populations, sites, thread
        // counts, and an empty minute must never change an output bit —
        // the arenas carry allocations, not state.
        let cfg = ViewmapConfig::default();
        let mut scratch = BuildScratch::new();
        let builds: Vec<(Vec<Arc<StoredVp>>, Site, MinuteId, usize)> = vec![
            (
                build_chain(12, 140.0, 61)
                    .into_iter()
                    .map(Arc::new)
                    .collect(),
                site_at(800.0, 900.0),
                MinuteId(0),
                1,
            ),
            (
                build_chain(5, 200.0, 62)
                    .into_iter()
                    .map(Arc::new)
                    .collect(),
                site_at(0.0, 1500.0),
                MinuteId(0),
                4,
            ),
            (
                build_chain(8, 120.0, 63)
                    .into_iter()
                    .map(Arc::new)
                    .collect(),
                site_at(400.0, 600.0),
                MinuteId(3), // empty minute: early-exit path with a used scratch
                2,
            ),
            (
                build_chain(12, 140.0, 61)
                    .into_iter()
                    .map(Arc::new)
                    .collect(),
                site_at(800.0, 900.0),
                MinuteId(0),
                3,
            ),
        ];
        for (i, (vps, site, minute, threads)) in builds.iter().enumerate() {
            let fresh = Viewmap::build_threads(vps, *site, *minute, &cfg, *threads);
            let (reused, _) =
                Viewmap::build_with_scratch(vps, *site, *minute, &cfg, *threads, &mut scratch);
            assert_eq!(fresh.len(), reused.len(), "build {i}: member count");
            assert_eq!(fresh.trusted, reused.trusted, "build {i}: trusted");
            for k in 0..fresh.len() {
                assert_eq!(fresh.vps[k].id, reused.vps[k].id, "build {i}: member {k}");
                assert_eq!(fresh.adj[k], reused.adj[k], "build {i}: adjacency {k}");
            }
        }
    }

    #[test]
    fn soa_engine_matches_exhaustive_edges() {
        // The SoA/Morton candidate generation must find exactly the edges
        // an O(n²) scan over min_aligned_distance + mutually_linked finds.
        for seed in [20u64, 21, 22] {
            let vps = build_chain(12, 140.0, seed);
            let cfg = ViewmapConfig::default();
            let vm = Viewmap::build_owned(vps.clone(), site_at(800.0, 900.0), MinuteId(0), &cfg);
            assert_eq!(vm.len(), vps.len());
            // Map viewmap index -> original index via VP id.
            for i in 0..vm.len() {
                for j in (i + 1)..vm.len() {
                    let close = vm.vps[i]
                        .min_aligned_distance(&vm.vps[j])
                        .is_some_and(|d| d <= cfg.dsrc_radius_m);
                    let expect = close && vm.vps[i].mutually_linked(&vm.vps[j]);
                    let got = vm.adj[i].contains(&j);
                    assert_eq!(got, expect, "seed {seed}: edge {i}-{j} mismatch");
                }
            }
        }
    }
}
