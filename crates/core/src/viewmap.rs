//! Viewmap construction (Section 5.2.1).
//!
//! A viewmap is built per minute around an incident: select the trusted
//! VP(s) closest to the investigation site, span a coverage area `C` that
//! encompasses the site and those trusted VPs, admit every VP whose claimed
//! trajectory enters `C`, and create a *viewlink* edge between two member
//! VPs iff (a) their time-aligned claimed locations come within DSRC radio
//! range and (b) the two-way Bloom-filter membership test passes.
//!
//! # Construction engine
//!
//! Members are held as `Arc<StoredVp>` shared with the server's VP
//! database — admitting a VP into a viewmap is a pointer copy, never a
//! deep clone of its 60 VDs and 256-byte Bloom filter.
//!
//! Candidate viewlink pairs come from a per-VD spatial grid bucketed by
//! second index: every VD is dropped into a `(second, cell)` bucket, and a
//! pair is considered only when two VPs were actually within DSRC range at
//! the *same second*. That replaces the earlier trajectory-midpoint grid,
//! whose worst-case query radius (DSRC range + a full minute of travel on
//! both sides) pulled in quadratically many phantom pairs in dense
//! traffic. Each surviving pair is validated with precomputed per-member
//! Bloom keys (60 SHA-256 digests hashed once per member instead of once
//! per pair) after cheap bounding-box and Bloom-occupancy prefilters.

use crate::trustrank::{self, Verification};
use crate::types::{GeoPos, MinuteId, VpId, DSRC_RADIUS_M, SECONDS_PER_VP};
use crate::vp::StoredVp;
use std::collections::HashSet;
use std::sync::Arc;
use vm_geo::GridIndex;

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ViewmapConfig {
    /// Radio range used for the location-proximity edge precondition.
    pub dsrc_radius_m: f64,
    /// Margin added around the site–trusted-VP hull for the coverage area.
    pub coverage_margin_m: f64,
    /// TrustRank damping δ.
    pub damping: f64,
}

impl Default for ViewmapConfig {
    fn default() -> Self {
        ViewmapConfig {
            dsrc_radius_m: DSRC_RADIUS_M,
            coverage_margin_m: 200.0,
            damping: trustrank::DAMPING,
        }
    }
}

/// An investigation site: a disk around the incident location.
#[derive(Clone, Copy, Debug)]
pub struct Site {
    /// Incident location `l`.
    pub center: GeoPos,
    /// Site radius (the paper illustrates ~200 m).
    pub radius_m: f64,
}

impl Site {
    /// Does a VP claim any position inside the site?
    pub fn contains_vp(&self, vp: &StoredVp) -> bool {
        vp.vds
            .iter()
            .any(|vd| vd.loc.distance(&self.center) <= self.radius_m)
    }
}

/// A constructed viewmap for one minute.
#[derive(Clone, Debug)]
pub struct Viewmap {
    /// Member VPs (indices are node ids), shared with the server DB.
    pub vps: Vec<Arc<StoredVp>>,
    /// Symmetric adjacency lists (viewlinks).
    pub adj: Vec<Vec<usize>>,
    /// Indices of trusted member VPs.
    pub trusted: Vec<usize>,
    /// The minute this viewmap covers.
    pub minute: MinuteId,
}

impl Viewmap {
    /// Build a viewmap from the minute's candidate VPs around an incident.
    ///
    /// `candidates` must all belong to the same minute; VPs from other
    /// minutes are ignored. Trusted VPs are admitted wherever they are
    /// (they anchor the coverage area); normal VPs are admitted if their
    /// trajectory enters the coverage area. Admitted members share the
    /// caller's `Arc`s — no `StoredVp` is cloned.
    pub fn build(
        candidates: &[Arc<StoredVp>],
        site: Site,
        minute: MinuteId,
        cfg: &ViewmapConfig,
    ) -> Viewmap {
        let in_minute: Vec<&Arc<StoredVp>> = candidates
            .iter()
            .filter(|vp| vp.minute() == minute && !vp.vds.is_empty())
            .collect();

        // Trusted VP(s) closest to the investigation site.
        let mut trusted_refs: Vec<&Arc<StoredVp>> =
            in_minute.iter().copied().filter(|vp| vp.trusted).collect();
        trusted_refs.sort_by(|a, b| {
            let da = nearest_approach(a, &site.center);
            let db = nearest_approach(b, &site.center);
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        });

        // Coverage radius: encompass the site and the nearest trusted VP.
        let coverage_radius = trusted_refs
            .first()
            .map(|vp| nearest_approach(vp, &site.center))
            .unwrap_or(0.0)
            .max(site.radius_m)
            + cfg.coverage_margin_m;

        let mut vps: Vec<Arc<StoredVp>> = Vec::new();
        for vp in &in_minute {
            let admit = vp.trusted
                || vp
                    .vds
                    .iter()
                    .any(|vd| vd.loc.distance(&site.center) <= coverage_radius);
            if admit {
                vps.push(Arc::clone(vp));
            }
        }

        let adj = build_viewlinks(&vps, minute, cfg);

        let trusted = vps
            .iter()
            .enumerate()
            .filter(|(_, vp)| vp.trusted)
            .map(|(i, _)| i)
            .collect();
        Viewmap {
            vps,
            adj,
            trusted,
            minute,
        }
    }

    /// As [`build`](Self::build), taking owned VPs (wraps each in an
    /// `Arc`; moving into the `Arc` is not a clone). Convenience for
    /// tests, examples, and experiment code that assembles candidate
    /// vectors locally.
    pub fn build_owned(
        candidates: Vec<StoredVp>,
        site: Site,
        minute: MinuteId,
        cfg: &ViewmapConfig,
    ) -> Viewmap {
        let arcs: Vec<Arc<StoredVp>> = candidates.into_iter().map(Arc::new).collect();
        Self::build(&arcs, site, minute, cfg)
    }

    /// Number of member VPs.
    pub fn len(&self) -> usize {
        self.vps.len()
    }

    /// True iff the viewmap has no members.
    pub fn is_empty(&self) -> bool {
        self.vps.is_empty()
    }

    /// Number of viewlinks (undirected edges).
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|n| n.len()).sum::<usize>() / 2
    }

    /// Fraction of members with at least one viewlink (Fig. 22f).
    pub fn member_connectivity(&self) -> f64 {
        if self.vps.is_empty() {
            return 0.0;
        }
        let connected = self.adj.iter().filter(|n| !n.is_empty()).count();
        connected as f64 / self.vps.len() as f64
    }

    /// Indices of members whose claimed trajectory enters the site.
    pub fn site_members(&self, site: &Site) -> Vec<usize> {
        self.vps
            .iter()
            .enumerate()
            .filter(|(_, vp)| site.contains_vp(vp))
            .map(|(i, _)| i)
            .collect()
    }

    /// Run Algorithm 1 against an investigation site; returns the
    /// verification outcome plus the marked VP identifiers.
    pub fn verify(&self, site: &Site, cfg: &ViewmapConfig) -> (Verification, Vec<VpId>) {
        let site_idx = self.site_members(site);
        let v = if self.trusted.is_empty() {
            Verification {
                scores: vec![0.0; self.vps.len()],
                top: None,
                legitimate: Vec::new(),
            }
        } else {
            trustrank::verify_site(&self.adj, &self.trusted, &site_idx, cfg.damping)
        };
        let ids = v.legitimate.iter().map(|&i| self.vps[i].id).collect();
        (v, ids)
    }
}

/// Viewlink edges for a member set: per-second spatial candidate
/// generation, then two-way Bloom validation with precomputed keys.
fn build_viewlinks(
    vps: &[Arc<StoredVp>],
    minute: MinuteId,
    cfg: &ViewmapConfig,
) -> Vec<Vec<usize>> {
    let n = vps.len();
    let mut adj = vec![Vec::new(); n];
    if n < 2 {
        return adj;
    }
    let radius = cfg.dsrc_radius_m;
    let start = minute.start_second();

    // Bucket every VD by its second within the minute. VD times are
    // 1-based offsets from the VP's start second; a VP that starts
    // recording mid-minute still belongs to this minute, so the window
    // spans two minutes' worth of offsets.
    let slots = 2 * SECONDS_PER_VP as usize + 1;
    let mut slices: Vec<Vec<(usize, vm_geo::Point)>> = vec![Vec::new(); slots];
    for (i, vp) in vps.iter().enumerate() {
        for vd in &vp.vds {
            let off = vd.time.saturating_sub(start);
            if (1..slots as u64).contains(&off) {
                slices[off as usize].push((i, vd.loc.into()));
            }
        }
    }

    // Candidate pairs: same second, within DSRC range. A pair that rides
    // together the whole minute is rediscovered every second; the set
    // dedupes (packed u64 keys: i < j; Fx hashing — this set sees tens of
    // inserts per genuine pair).
    let mut candidates: HashSet<u64, vm_geo::FxBuildHasher> = HashSet::default();
    let mut grid = GridIndex::new(radius.max(1.0));
    for slice in &slices {
        if slice.len() < 2 {
            continue;
        }
        grid.clear();
        for &(i, p) in slice {
            grid.insert(i, p);
        }
        for &(i, p) in slice {
            grid.for_each_in_radius(&p, radius, |j, _| {
                if j > i {
                    candidates.insert(((i as u64) << 32) | j as u64);
                }
            });
        }
    }
    if candidates.is_empty() {
        return adj;
    }
    // Deterministic edge order regardless of hash-set iteration.
    let mut candidates: Vec<u64> = candidates.into_iter().collect();
    candidates.sort_unstable();

    // Per-member link context, computed once: a Bloom occupancy
    // prefilter — a filter with fewer than k set bits cannot pass any
    // membership query, so such members can never link — and element-VD
    // Bloom keys (the dominant pre-optimization cost was re-hashing
    // these per pair). Keys are hashed only for members that appear in
    // at least one candidate pair surviving the occupancy prefilter;
    // everyone else never needs them.
    let can_link: Vec<bool> = vps
        .iter()
        .map(|vp| vp.bloom.count_ones() >= vp.bloom.k())
        .collect();
    let mut keys: Vec<Vec<vm_crypto::Digest16>> = vec![Vec::new(); n];
    for &packed in &candidates {
        let i = (packed >> 32) as usize;
        let j = (packed & 0xffff_ffff) as usize;
        if can_link[i] && can_link[j] {
            for m in [i, j] {
                if keys[m].is_empty() {
                    keys[m] = vps[m].bloom_keys();
                }
            }
        }
    }

    for packed in candidates {
        let i = (packed >> 32) as usize;
        let j = (packed & 0xffff_ffff) as usize;
        if !(can_link[i] && can_link[j]) {
            continue;
        }
        // The grid guarantees a shared in-range second; the bounded
        // aligned-distance check revalidates it exactly (and cheaply —
        // bbox prefilter plus first-hit exit).
        if !vps[i].within_aligned_distance(&vps[j], radius) {
            continue;
        }
        if vps[i].links_to_keys(&keys[j]) && vps[j].links_to_keys(&keys[i]) {
            adj[i].push(j);
            adj[j].push(i);
        }
    }
    adj
}

fn nearest_approach(vp: &StoredVp, p: &GeoPos) -> f64 {
    vp.vds
        .iter()
        .map(|vd| vd.loc.distance(p))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SECONDS_PER_VP;
    use crate::vp::{VpBuilder, VpKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Build a chain of vehicles along a line, each exchanging VDs with its
    /// immediate neighbors, the first one trusted.
    fn build_chain(n: usize, spacing: f64, seed: u64) -> Vec<StoredVp> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut builders: Vec<VpBuilder> = (0..n)
            .map(|i| {
                let kind = if i == 0 {
                    VpKind::Trusted
                } else {
                    VpKind::Actual
                };
                VpBuilder::new(&mut rng, 0, GeoPos::new(i as f64 * spacing, 0.0), kind)
            })
            .collect();
        for s in 0..SECONDS_PER_VP {
            let now = s + 1;
            let locs: Vec<GeoPos> = (0..n)
                .map(|i| GeoPos::new(i as f64 * spacing + s as f64, 0.0))
                .collect();
            let vds: Vec<_> = builders
                .iter_mut()
                .enumerate()
                .map(|(i, b)| b.record_second(&(s * 97).to_le_bytes(), locs[i]))
                .collect();
            for i in 0..n {
                for j in 0..n {
                    if i != j && locs[i].distance(&locs[j]) <= spacing * 1.5 {
                        builders[i].accept_neighbor_vd(vds[j], now, locs[i]);
                    }
                }
            }
        }
        builders
            .into_iter()
            .map(|b| b.finalize().profile.into_stored())
            .collect()
    }

    fn site_at(x: f64, r: f64) -> Site {
        Site {
            center: GeoPos::new(x, 0.0),
            radius_m: r,
        }
    }

    #[test]
    fn chain_viewmap_is_connected_single_layer() {
        let vps = build_chain(8, 150.0, 1);
        let site = site_at(7.0 * 150.0, 200.0);
        let vm = Viewmap::build_owned(vps, site, MinuteId(0), &ViewmapConfig::default());
        assert_eq!(vm.len(), 8);
        assert_eq!(vm.trusted, vec![0]);
        // Each interior node links to both neighbors.
        assert!(vm.edge_count() >= 7, "edges: {}", vm.edge_count());
        assert!(vm.member_connectivity() > 0.99);
    }

    #[test]
    fn verification_marks_site_vps_legitimate() {
        let vps = build_chain(8, 150.0, 2);
        let site = site_at(7.0 * 150.0, 160.0);
        let cfg = ViewmapConfig::default();
        let vm = Viewmap::build_owned(vps, site, MinuteId(0), &cfg);
        let (v, ids) = vm.verify(&site, &cfg);
        assert!(v.top.is_some());
        assert!(!ids.is_empty());
        // The marked VPs genuinely claim positions in the site.
        for &i in &v.legitimate {
            assert!(site.contains_vp(&vm.vps[i]));
        }
    }

    #[test]
    fn unlinked_far_vp_is_isolated() {
        let mut vps = build_chain(5, 150.0, 3);
        // A stranger VP near the site but never exchanged VDs with anyone.
        let mut rng = StdRng::seed_from_u64(4);
        let mut b = VpBuilder::new(&mut rng, 0, GeoPos::new(600.0, 10.0), VpKind::Actual);
        for s in 0..SECONDS_PER_VP {
            b.record_second(b"solo", GeoPos::new(600.0 + s as f64, 10.0));
        }
        vps.push(b.finalize().profile.into_stored());
        let site = site_at(600.0, 200.0);
        let vm = Viewmap::build_owned(vps, site, MinuteId(0), &ViewmapConfig::default());
        let solo = vm
            .vps
            .iter()
            .position(|vp| vp.start_loc().y == 10.0)
            .unwrap();
        assert!(vm.adj[solo].is_empty(), "stranger must have no viewlinks");
        assert!(vm.member_connectivity() < 1.0);
    }

    #[test]
    fn other_minutes_are_excluded() {
        let mut vps = build_chain(4, 150.0, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut b = VpBuilder::new(&mut rng, 60, GeoPos::new(0.0, 0.0), VpKind::Actual);
        for s in 0..SECONDS_PER_VP {
            b.record_second(b"late", GeoPos::new(s as f64, 0.0));
        }
        vps.push(b.finalize().profile.into_stored());
        // Site radius large enough that coverage admits the whole chain.
        let vm = Viewmap::build_owned(
            vps,
            site_at(0.0, 400.0),
            MinuteId(0),
            &ViewmapConfig::default(),
        );
        assert_eq!(vm.len(), 4, "minute-1 VP must not join minute-0 viewmap");
    }

    #[test]
    fn coverage_excludes_vps_far_from_everything() {
        let mut vps = build_chain(4, 100.0, 7);
        // A legitimate pair far away (5 km) — outside coverage.
        let far = build_chain(2, 100.0, 8);
        for mut vp in far {
            for vd in &mut vp.vds {
                vd.loc.x += 5000.0;
            }
            vp.trusted = false;
            vps.push(vp);
        }
        let site = site_at(300.0, 150.0);
        let vm = Viewmap::build_owned(vps, site, MinuteId(0), &ViewmapConfig::default());
        assert_eq!(vm.len(), 4, "distant VPs excluded from coverage");
    }

    #[test]
    fn no_trusted_vp_yields_no_verification() {
        let mut vps = build_chain(4, 150.0, 9);
        vps[0].trusted = false;
        let site = site_at(450.0, 200.0);
        let cfg = ViewmapConfig::default();
        let vm = Viewmap::build_owned(vps, site, MinuteId(0), &cfg);
        let (v, ids) = vm.verify(&site, &cfg);
        assert_eq!(v.top, None);
        assert!(ids.is_empty());
    }

    #[test]
    fn adjacency_is_symmetric() {
        let vps = build_chain(10, 120.0, 10);
        let vm = Viewmap::build_owned(
            vps,
            site_at(500.0, 300.0),
            MinuteId(0),
            &ViewmapConfig::default(),
        );
        for (i, nbrs) in vm.adj.iter().enumerate() {
            for &j in nbrs {
                assert!(vm.adj[j].contains(&i), "edge {i}-{j} not symmetric");
            }
        }
    }

    #[test]
    fn build_shares_arcs_with_caller() {
        // Zero-copy admission: the viewmap's members are the same
        // allocations the caller (in production, the server DB) holds.
        let vps: Vec<Arc<StoredVp>> = build_chain(4, 150.0, 11)
            .into_iter()
            .map(Arc::new)
            .collect();
        let vm = Viewmap::build(
            &vps,
            site_at(0.0, 400.0),
            MinuteId(0),
            &ViewmapConfig::default(),
        );
        assert_eq!(vm.len(), 4);
        for member in &vm.vps {
            let original = vps.iter().find(|vp| vp.id == member.id).unwrap();
            assert!(
                Arc::ptr_eq(member, original),
                "member must share the caller's allocation"
            );
        }
    }

    #[test]
    fn per_second_grid_matches_exhaustive_edges() {
        // The per-second candidate generation must find exactly the edges
        // an O(n²) scan over min_aligned_distance + mutually_linked finds.
        for seed in [20u64, 21, 22] {
            let vps = build_chain(12, 140.0, seed);
            let cfg = ViewmapConfig::default();
            let vm = Viewmap::build_owned(vps.clone(), site_at(800.0, 900.0), MinuteId(0), &cfg);
            assert_eq!(vm.len(), vps.len());
            // Map viewmap index -> original index via VP id.
            for i in 0..vm.len() {
                for j in (i + 1)..vm.len() {
                    let close = vm.vps[i]
                        .min_aligned_distance(&vm.vps[j])
                        .is_some_and(|d| d <= cfg.dsrc_radius_m);
                    let expect = close && vm.vps[i].mutually_linked(&vm.vps[j]);
                    let got = vm.adj[i].contains(&j);
                    assert_eq!(got, expect, "seed {seed}: edge {i}-{j} mismatch");
                }
            }
        }
    }
}
