//! Viewmap construction (Section 5.2.1).
//!
//! A viewmap is built per minute around an incident: select the trusted
//! VP(s) closest to the investigation site, span a coverage area `C` that
//! encompasses the site and those trusted VPs, admit every VP whose claimed
//! trajectory enters `C`, and create a *viewlink* edge between two member
//! VPs iff (a) their time-aligned claimed locations come within DSRC radio
//! range and (b) the two-way Bloom-filter membership test passes.
//!
//! # Construction engine
//!
//! Members are held as `Arc<StoredVp>` shared with the server's VP
//! database — admitting a VP into a viewmap is a pointer copy, never a
//! deep clone of its 60 VDs and 256-byte Bloom filter.
//!
//! Viewlink generation runs in four phases, each parallelized over
//! contiguous chunks via [`crate::par`] with results merged in chunk
//! order, so the constructed viewmap is **bit-for-bit identical for every
//! thread count** (the equivalence property tests in `vm-bench` hold the
//! engine to that):
//!
//! 1. **Trajectory tables** — per member, the minute-window VD positions
//!    are unpacked into flat offset-indexed arrays (`NaN` marks missing
//!    seconds), plus a bounding box and a bounding circle. The flat
//!    arrays turn the per-pair aligned-distance scan into a branch-light
//!    walk over contiguous memory instead of a merge-join across two
//!    88-byte-stride VD vectors.
//! 2. **Candidate pairs** — a single spatial grid over trajectory
//!    bounding-circle centers. Two members can share an in-range second
//!    only if their centers lie within `dsrc + r_i + r_j`, so each grid
//!    query (radius `dsrc + r_i + r_max`) yields a strict superset of the
//!    true pairs with *no per-second grid rebuilds and no candidate
//!    dedup set* — the per-second bucket grid this replaces rediscovered
//!    every riding-together pair ~60× and spent most of the build
//!    hash-deduplicating those rediscoveries. Each candidate is settled
//!    immediately: Bloom-occupancy gate, bounding-box gap prefilter, then
//!    the exact shared-second scan over the flat tables.
//! 3. **Bloom keys** — members appearing in a surviving pair get their 60
//!    element-VD keys hashed (SHA-NI-accelerated `vm_crypto`), cached on
//!    the `StoredVp` so repeat investigations of the minute skip the pass.
//! 4. **Two-way linkage** — the paper's mutual Bloom test over the
//!    precomputed keys, in globally sorted pair order.

use crate::trustrank::{self, Verification};
use crate::types::{GeoPos, MinuteId, VpId, DSRC_RADIUS_M, SECONDS_PER_VP};
use crate::vp::StoredVp;
use std::sync::Arc;
use vm_geo::{GridIndex, Point};

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ViewmapConfig {
    /// Radio range used for the location-proximity edge precondition.
    pub dsrc_radius_m: f64,
    /// Margin added around the site–trusted-VP hull for the coverage area.
    pub coverage_margin_m: f64,
    /// TrustRank damping δ.
    pub damping: f64,
}

impl Default for ViewmapConfig {
    fn default() -> Self {
        ViewmapConfig {
            dsrc_radius_m: DSRC_RADIUS_M,
            coverage_margin_m: 200.0,
            damping: trustrank::DAMPING,
        }
    }
}

/// An investigation site: a disk around the incident location.
#[derive(Clone, Copy, Debug)]
pub struct Site {
    /// Incident location `l`.
    pub center: GeoPos,
    /// Site radius (the paper illustrates ~200 m).
    pub radius_m: f64,
}

impl Site {
    /// Does a VP claim any position inside the site?
    pub fn contains_vp(&self, vp: &StoredVp) -> bool {
        vp.vds
            .iter()
            .any(|vd| vd.loc.distance(&self.center) <= self.radius_m)
    }
}

/// A constructed viewmap for one minute.
#[derive(Clone, Debug)]
pub struct Viewmap {
    /// Member VPs (indices are node ids), shared with the server DB.
    pub vps: Vec<Arc<StoredVp>>,
    /// Symmetric adjacency lists (viewlinks).
    pub adj: Vec<Vec<usize>>,
    /// Indices of trusted member VPs.
    pub trusted: Vec<usize>,
    /// The minute this viewmap covers.
    pub minute: MinuteId,
}

impl Viewmap {
    /// Build a viewmap from the minute's candidate VPs around an incident.
    ///
    /// `candidates` must all belong to the same minute; VPs from other
    /// minutes are ignored. Trusted VPs are admitted wherever they are
    /// (they anchor the coverage area); normal VPs are admitted if their
    /// trajectory enters the coverage area. Admitted members share the
    /// caller's `Arc`s — no `StoredVp` is cloned.
    pub fn build(
        candidates: &[Arc<StoredVp>],
        site: Site,
        minute: MinuteId,
        cfg: &ViewmapConfig,
    ) -> Viewmap {
        Self::build_threads(candidates, site, minute, cfg, 0)
    }

    /// As [`build`](Self::build) with an explicit worker-thread count for
    /// the construction phases. `0` (the [`build`](Self::build) default)
    /// picks automatically: single-threaded below
    /// [`PARALLEL_MEMBER_THRESHOLD`] members, one thread per core (capped)
    /// above it. Any thread count produces a bit-for-bit identical
    /// viewmap; the explicit knob exists so benchmarks can pin the
    /// sequential baseline and tests can force the fan-out on small
    /// inputs.
    pub fn build_threads(
        candidates: &[Arc<StoredVp>],
        site: Site,
        minute: MinuteId,
        cfg: &ViewmapConfig,
        threads: usize,
    ) -> Viewmap {
        let in_minute: Vec<&Arc<StoredVp>> = candidates
            .iter()
            .filter(|vp| vp.minute() == minute && !vp.vds.is_empty())
            .collect();

        // Trusted VP(s) closest to the investigation site.
        let mut trusted_refs: Vec<&Arc<StoredVp>> =
            in_minute.iter().copied().filter(|vp| vp.trusted).collect();
        trusted_refs.sort_by(|a, b| {
            let da = nearest_approach(a, &site.center);
            let db = nearest_approach(b, &site.center);
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        });

        // Coverage radius: encompass the site and the nearest trusted VP.
        let coverage_radius = trusted_refs
            .first()
            .map(|vp| nearest_approach(vp, &site.center))
            .unwrap_or(0.0)
            .max(site.radius_m)
            + cfg.coverage_margin_m;

        let mut vps: Vec<Arc<StoredVp>> = Vec::new();
        for vp in &in_minute {
            let admit = vp.trusted
                || vp
                    .vds
                    .iter()
                    .any(|vd| vd.loc.distance(&site.center) <= coverage_radius);
            if admit {
                vps.push(Arc::clone(vp));
            }
        }

        let threads = if threads == 0 {
            crate::par::auto_threads(vps.len(), PARALLEL_MEMBER_THRESHOLD)
        } else {
            threads.clamp(1, crate::par::MAX_THREADS)
        };
        let adj = build_viewlinks(&vps, minute, cfg, threads);

        let trusted = vps
            .iter()
            .enumerate()
            .filter(|(_, vp)| vp.trusted)
            .map(|(i, _)| i)
            .collect();
        Viewmap {
            vps,
            adj,
            trusted,
            minute,
        }
    }

    /// As [`build`](Self::build), taking owned VPs (wraps each in an
    /// `Arc`; moving into the `Arc` is not a clone). Convenience for
    /// tests, examples, and experiment code that assembles candidate
    /// vectors locally.
    pub fn build_owned(
        candidates: Vec<StoredVp>,
        site: Site,
        minute: MinuteId,
        cfg: &ViewmapConfig,
    ) -> Viewmap {
        let arcs: Vec<Arc<StoredVp>> = candidates.into_iter().map(Arc::new).collect();
        Self::build(&arcs, site, minute, cfg)
    }

    /// Number of member VPs.
    pub fn len(&self) -> usize {
        self.vps.len()
    }

    /// True iff the viewmap has no members.
    pub fn is_empty(&self) -> bool {
        self.vps.is_empty()
    }

    /// Number of viewlinks (undirected edges).
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|n| n.len()).sum::<usize>() / 2
    }

    /// Fraction of members with at least one viewlink (Fig. 22f).
    pub fn member_connectivity(&self) -> f64 {
        if self.vps.is_empty() {
            return 0.0;
        }
        let connected = self.adj.iter().filter(|n| !n.is_empty()).count();
        connected as f64 / self.vps.len() as f64
    }

    /// Indices of members whose claimed trajectory enters the site.
    pub fn site_members(&self, site: &Site) -> Vec<usize> {
        self.vps
            .iter()
            .enumerate()
            .filter(|(_, vp)| site.contains_vp(vp))
            .map(|(i, _)| i)
            .collect()
    }

    /// Run Algorithm 1 against an investigation site; returns the
    /// verification outcome plus the marked VP identifiers.
    pub fn verify(&self, site: &Site, cfg: &ViewmapConfig) -> (Verification, Vec<VpId>) {
        let site_idx = self.site_members(site);
        let v = if self.trusted.is_empty() {
            Verification {
                scores: vec![0.0; self.vps.len()],
                top: None,
                legitimate: Vec::new(),
            }
        } else {
            trustrank::verify_site(&self.adj, &self.trusted, &site_idx, cfg.damping)
        };
        let ids = v.legitimate.iter().map(|&i| self.vps[i].id).collect();
        (v, ids)
    }
}

/// Worker threads kick in above this many admitted members (below it,
/// spawn/join overhead outweighs the fan-out).
pub const PARALLEL_MEMBER_THRESHOLD: usize = 4096;

/// Time-partitioned bounding-circle count per trajectory (see [`Traj`]):
/// 10-second granularity for a full minute. Finer segments reject more
/// temporally-misaligned near-crossings; coarser ones cost fewer circle
/// checks — 6 measured best at the 100k tier.
const TRAJ_SEGMENTS: usize = 6;

/// A member's minute-window trajectory in scan-friendly form: positions
/// indexed by second offset (flat, `NaN` for missing seconds), plus the
/// bounding box and bounding circle used by the candidate prefilters.
struct Traj {
    /// First in-window offset (1-based); 0 when no in-window VDs exist.
    first: u32,
    /// `xs[t - first]` / `ys[t - first]` = claimed position at offset `t`.
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// `(min_x, min_y, max_x, max_y)` over in-window VDs.
    bbox: (f64, f64, f64, f64),
    /// Bounding-circle center (bbox midpoint) and radius (half-diagonal):
    /// every in-window position lies within `r` of `(cx, cy)`.
    cx: f64,
    cy: f64,
    r: f64,
    /// Per-time-segment bounding circles `(cx, cy, r)`: segment `s`
    /// covers slot range `[s·len/SEGS, (s+1)·len/SEGS)`, i.e. absolute
    /// offsets `[first + s·len/SEGS, …)`. A pair can share an in-range
    /// second only if some pair of segments with *overlapping offset
    /// windows* comes within `dsrc + r_a + r_b` — a handful of multiplies
    /// that spare the per-second scan for trajectories that pass near
    /// each other at different times (the dominant false-candidate class
    /// in city traffic). Empty segments carry `NaN` and never match.
    segs: [(f64, f64, f64); TRAJ_SEGMENTS],
    /// Absolute offset window `[lo, hi)` of each segment, precomputed —
    /// the pair filter compares these tens of millions of times.
    seg_win: [(u32, u32); TRAJ_SEGMENTS],
    /// Bloom-occupancy gate: fewer than `k` set bits can never pass a
    /// membership query, so this member can never hold up a viewlink.
    can_link: bool,
}

impl Traj {
    /// Build the table for one member. VD times are 1-based offsets from
    /// the VP's start second; a VP that starts recording mid-minute still
    /// belongs to this minute, so the window spans two minutes' worth of
    /// offsets (`1..=2·SECONDS_PER_VP`). Out-of-window VDs are ignored;
    /// when two VDs claim the same second the first one wins (the server
    /// rejects such VPs at ingest — this only matters for hand-built
    /// populations fed to `build` directly).
    fn new(vp: &StoredVp, start: u64) -> Traj {
        const WINDOW: usize = 2 * SECONDS_PER_VP as usize;
        // Fast path — every real VP: VD times strictly consecutive and
        // fully inside the window, so the compact arrays are a straight
        // per-field copy with no scratch table.
        let contiguous = !vp.vds.is_empty()
            && vp.vds.first().expect("nonempty").time > start
            && vp.vds.last().expect("nonempty").time <= start + WINDOW as u64
            && vp.vds.windows(2).all(|w| w[1].time == w[0].time + 1);
        let (lo, xs, ys) = if contiguous {
            let lo = (vp.vds[0].time - start) as usize - 1;
            let xs: Vec<f64> = vp.vds.iter().map(|vd| vd.loc.x).collect();
            let ys: Vec<f64> = vp.vds.iter().map(|vd| vd.loc.y).collect();
            (lo, xs, ys)
        } else {
            // General path: one pass over the VDs into a stack scratch
            // table (slot = offset − 1) tracking the occupied range, then
            // carve the compact arrays out of the scratch.
            let mut sx = [f64::NAN; WINDOW];
            let mut sy = [f64::NAN; WINDOW];
            let (mut lo, mut hi) = (usize::MAX, 0usize);
            for vd in &vp.vds {
                let off = vd.time.saturating_sub(start);
                if !(1..=WINDOW as u64).contains(&off) {
                    continue;
                }
                let slot = off as usize - 1;
                if !sx[slot].is_nan() {
                    continue;
                }
                sx[slot] = vd.loc.x;
                sy[slot] = vd.loc.y;
                lo = lo.min(slot);
                hi = hi.max(slot);
            }
            if lo == usize::MAX {
                return Traj {
                    first: 0,
                    xs: Vec::new(),
                    ys: Vec::new(),
                    bbox: (0.0, 0.0, 0.0, 0.0),
                    cx: 0.0,
                    cy: 0.0,
                    r: 0.0,
                    segs: [(f64::NAN, f64::NAN, f64::NAN); TRAJ_SEGMENTS],
                    seg_win: [(0, 0); TRAJ_SEGMENTS],
                    can_link: false,
                };
            }
            (lo, sx[lo..=hi].to_vec(), sy[lo..=hi].to_vec())
        };
        let len = xs.len();
        let mut bb = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        let mut seg_bb = [(
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        ); TRAJ_SEGMENTS];
        // The segment windows are derived from the *same* slot→segment
        // assignment that feeds each segment's bounding box (occupied
        // slot range per segment, recorded while accumulating), so a
        // position can never sit in one segment's circle while its
        // offset falls in another segment's window — the partition and
        // the windows cannot disagree, whatever `len` is. Empty segments
        // keep the never-overlapping (0, 0) window.
        let first = lo as u32 + 1;
        let mut seg_slots = [(u32::MAX, 0u32); TRAJ_SEGMENTS];
        for (slot, (&x, &y)) in xs.iter().zip(&ys).enumerate() {
            if x.is_nan() {
                continue;
            }
            bb.0 = bb.0.min(x);
            bb.1 = bb.1.min(y);
            bb.2 = bb.2.max(x);
            bb.3 = bb.3.max(y);
            let s = (slot * TRAJ_SEGMENTS / len).min(TRAJ_SEGMENTS - 1);
            let sb = &mut seg_bb[s];
            sb.0 = sb.0.min(x);
            sb.1 = sb.1.min(y);
            sb.2 = sb.2.max(x);
            sb.3 = sb.3.max(y);
            seg_slots[s].0 = seg_slots[s].0.min(slot as u32);
            seg_slots[s].1 = seg_slots[s].1.max(slot as u32);
        }
        let circle = |b: (f64, f64, f64, f64)| {
            (
                (b.0 + b.2) / 2.0,
                (b.1 + b.3) / 2.0,
                (b.2 - b.0).hypot(b.3 - b.1) / 2.0,
            )
        };
        let (cx, cy, r) = circle(bb);
        let seg_win = seg_slots.map(|(min, max)| {
            if min == u32::MAX {
                (0, 0)
            } else {
                (first + min, first + max + 1)
            }
        });
        Traj {
            first,
            xs,
            ys,
            bbox: bb,
            cx,
            cy,
            r,
            segs: seg_bb.map(circle),
            seg_win,
            can_link: vp.bloom.count_ones() >= vp.bloom.k(),
        }
    }

    /// Usable for candidate generation (has in-window VDs and passes the
    /// occupancy gate)?
    fn active(&self) -> bool {
        self.first != 0 && self.can_link
    }

    /// Axis-gap between the two bounding boxes exceeds `radius`? O(1)
    /// reject before the per-second scan.
    fn bbox_gap_beyond(&self, other: &Traj, r2: f64) -> bool {
        let (a, b) = (&self.bbox, &other.bbox);
        let dx = (b.0 - a.2).max(a.0 - b.2).max(0.0);
        let dy = (b.1 - a.3).max(a.1 - b.3).max(0.0);
        dx * dx + dy * dy > r2
    }

    /// Could any segment pair bring the two trajectories within `radius`
    /// *at a shared second*? Sound reject: a shared in-range second lies
    /// in one segment of each side, so those two segments' offset windows
    /// overlap and their circles come within `radius + r_a + r_b`.
    /// Time-disjoint segment pairs are skipped outright — that temporal
    /// cut is what rejects trajectories that cross the same spot at
    /// different times. Empty segments are `NaN` and compare false.
    fn segments_may_touch(&self, other: &Traj, radius: f64) -> bool {
        for (a, &(ax, ay, ar)) in self.segs.iter().enumerate() {
            let (alo, ahi) = self.seg_win[a];
            for (b, &(bx, by, br)) in other.segs.iter().enumerate() {
                let (blo, bhi) = other.seg_win[b];
                if bhi <= alo || ahi <= blo {
                    continue;
                }
                let lim = radius + ar + br;
                let (dx, dy) = (ax - bx, ay - by);
                if dx * dx + dy * dy <= lim * lim {
                    return true;
                }
            }
        }
        false
    }

    /// Did the two trajectories come within `sqrt(r2)` of each other at
    /// any shared in-window second? `NaN` slots (missing seconds) compare
    /// false and drop out on their own.
    fn shares_in_range_second(&self, other: &Traj, r2: f64) -> bool {
        let lo = self.first.max(other.first);
        let hi = (self.first + self.xs.len() as u32).min(other.first + other.xs.len() as u32);
        let mut t = lo;
        while t < hi {
            let ia = (t - self.first) as usize;
            let ib = (t - other.first) as usize;
            let dx = self.xs[ia] - other.xs[ib];
            let dy = self.ys[ia] - other.ys[ib];
            if dx * dx + dy * dy <= r2 {
                return true;
            }
            t += 1;
        }
        false
    }
}

/// Viewlink edges for a member set — the four-phase engine described in
/// the module docs. Every phase fans out over contiguous chunks and
/// merges in chunk order, so the result is identical for any `threads`.
fn build_viewlinks(
    vps: &[Arc<StoredVp>],
    minute: MinuteId,
    cfg: &ViewmapConfig,
    threads: usize,
) -> Vec<Vec<usize>> {
    let n = vps.len();
    let mut adj = vec![Vec::new(); n];
    if n < 2 {
        return adj;
    }
    let radius = cfg.dsrc_radius_m;
    let r2 = radius * radius;
    let start = minute.start_second();
    let member_cuts = crate::par::even_cuts(n, threads);

    // ── Phase 1: trajectory tables ──────────────────────────────────────
    let trajs: Vec<Traj> = crate::par::map_ranges(&member_cuts, |_t, lo, hi| {
        vps[lo..hi]
            .iter()
            .map(|vp| Traj::new(vp, start))
            .collect::<Vec<Traj>>()
    })
    .into_iter()
    .flatten()
    .collect();

    // ── Phase 2: candidate pairs, settled to exact in-range pairs ───────
    // Grid over bounding-circle centers. Two members can share an
    // in-range second only if their centers are within
    // `radius + r_i + r_j`, so querying member `i` at
    // `radius + r_i + r_max` yields a strict superset of its true pairs.
    //
    // The grid geometry derives from the population's *typical*
    // trajectory extent, not its most spread-out member: `screen()` only
    // checks VD count and time order, so a single city-spanning (or
    // teleporting) trajectory is admissible — and if it set `r_max`, it
    // would inflate every member's query reach to city scale and turn
    // candidate generation quadratic (a build-time DoS). Members whose
    // radius exceeds `r_cap` (4× the 95th-percentile radius, floored by
    // the radio range) are instead handled off-grid below: each is paired
    // against every member through the same filter pipeline — exact,
    // deterministic, and linear per outlier.
    let mut active_radii: Vec<f64> = trajs.iter().filter(|t| t.active()).map(|t| t.r).collect();
    active_radii.sort_unstable_by(f64::total_cmp);
    let r_cap = active_radii
        .get(active_radii.len().saturating_mul(95) / 100)
        .or(active_radii.last())
        .map_or(0.0, |&p95| (4.0 * p95).max(radius));
    let gridded = |t: &Traj| t.active() && t.r <= r_cap;
    let r_max = trajs
        .iter()
        .filter(|t| gridded(t))
        .map(|t| t.r)
        .fold(0.0f64, f64::max);
    let cell = ((radius + 2.0 * r_max) / 4.0).max(1.0);
    let grid = GridIndex::build(
        cell,
        trajs
            .iter()
            .enumerate()
            .filter(|(_, t)| gridded(t))
            .map(|(i, t)| (i, Point::new(t.cx, t.cy))),
    );
    // Bounding-circle radii in a dense side table: the grid scan reads
    // `radii[j]` for every point it visits, and a 8-byte-stride array
    // stays cache-resident where the ~350-byte `Traj` records do not.
    let radii: Vec<f64> = trajs.iter().map(|t| t.r).collect();
    // Pairs are emitted as packed `i << 32 | j` with `i < j`, each exactly
    // once (from `i`'s query), in ascending `(i, j)` order per chunk;
    // chunk-order concat keeps the global list sorted — the edge order
    // the two-way validation and adjacency assembly then follow.
    let mut in_range: Vec<u64> = crate::par::map_ranges(&member_cuts, |_t, lo, hi| {
        let mut out: Vec<u64> = Vec::new();
        let mut hits: Vec<usize> = Vec::new();
        for (i, ti) in trajs.iter().enumerate().take(hi).skip(lo) {
            if !gridded(ti) {
                continue;
            }
            let p = Point::new(ti.cx, ti.cy);
            let reach = radius + ti.r + r_max;
            hits.clear();
            grid.for_each_in_radius(&p, reach, |j, q| {
                if j > i {
                    let lim = radius + ti.r + radii[j];
                    if p.distance_sq(&q) <= lim * lim {
                        hits.push(j);
                    }
                }
            });
            hits.sort_unstable();
            for &j in &hits {
                let tj = &trajs[j];
                if ti.bbox_gap_beyond(tj, r2) || !ti.segments_may_touch(tj, radius) {
                    continue;
                }
                if ti.shares_in_range_second(tj, r2) {
                    out.push(((i as u64) << 32) | j as u64);
                }
            }
        }
        out
    })
    .into_iter()
    .flatten()
    .collect();

    // Off-grid pass for the capped outliers: pair each against every
    // member (wild–wild pairs once, from the lower index). Honest
    // populations have no outliers and skip this entirely; the final
    // sort restores the global ascending pair order the grid pass emits
    // by construction.
    let wild: Vec<usize> = (0..n)
        .filter(|&i| trajs[i].active() && trajs[i].r > r_cap)
        .collect();
    if !wild.is_empty() {
        for &w in &wild {
            for j in (0..n).filter(|&j| j != w && trajs[j].active()) {
                if trajs[j].r > r_cap && j < w {
                    continue;
                }
                let (a, b) = (w.min(j), w.max(j));
                let (ta, tb) = (&trajs[a], &trajs[b]);
                if ta.bbox_gap_beyond(tb, r2) || !ta.segments_may_touch(tb, radius) {
                    continue;
                }
                if ta.shares_in_range_second(tb, r2) {
                    in_range.push(((a as u64) << 32) | b as u64);
                }
            }
        }
        in_range.sort_unstable();
    }
    if in_range.is_empty() {
        return adj;
    }

    // ── Phase 3: Bloom keys for members that still matter ────────────────
    let mut needs_keys = vec![false; n];
    for &packed in &in_range {
        needs_keys[(packed >> 32) as usize] = true;
        needs_keys[(packed & 0xffff_ffff) as usize] = true;
    }
    let needed: Vec<usize> = (0..n).filter(|&i| needs_keys[i]).collect();
    let key_cuts = crate::par::even_cuts(needed.len(), threads);
    crate::par::map_ranges(&key_cuts, |_t, lo, hi| {
        for &m in &needed[lo..hi] {
            vps[m].link_keys();
        }
    });

    // Flat probe tables, so the pair loop touches two dense arenas
    // instead of chasing `Arc`s into scattered multi-KB VP records:
    // Bloom bits as `u64` words and keys reduced to the `(h1, h2|1)`
    // double-hashing halves that `BloomFilter::insert`/`contains` derive
    // from a digest. Both arenas cover only `needed` members — every
    // phase-4 probe has a surviving pair's endpoint as both holder and
    // element owner, so nobody else's filter or keys are ever read.
    let mut bloom_words: Vec<u64> = Vec::new();
    let mut bloom_meta: Vec<(u32, u32, u32)> = vec![(0, 0, 0); n]; // (base, m_bits, k)
    for &m in &needed {
        let vp = &vps[m];
        let base = bloom_words.len() as u32;
        let bytes = vp.bloom.as_bytes();
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            bloom_words.push(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut b = [0u8; 8];
            b[..rem.len()].copy_from_slice(rem);
            bloom_words.push(u64::from_le_bytes(b));
        }
        bloom_meta[m] = (base, vp.bloom.m_bits() as u32, vp.bloom.k() as u32);
    }
    let mut key_spans = vec![(0u32, 0u32); n];
    let mut key_halves: Vec<(u64, u64)> = Vec::new();
    for &m in &needed {
        let cached = vps[m].link_keys();
        key_spans[m] = (key_halves.len() as u32, cached.len() as u32);
        for key in cached {
            key_halves.push(crate::bloom::probe_halves(key));
        }
    }
    // `holder.bloom.contains(key)` for any of `element_owner`'s keys,
    // over the flat tables — the probe sequence comes from the shared
    // `bloom::probe_halves`/`probe_slot` helpers (the same code
    // `BloomFilter::insert`/`contains` run), with the holder's words and
    // parameters loaded once per direction instead of once per key.
    let links_to = |holder: usize, element_owner: usize| -> bool {
        let (base, m, k) = bloom_meta[holder];
        let words = &bloom_words[base as usize..];
        let m = m as u64;
        let (start, len) = key_spans[element_owner];
        key_halves[start as usize..(start + len) as usize]
            .iter()
            .any(|&(h1, h2)| {
                for i in 0..k as u64 {
                    let s = crate::bloom::probe_slot(h1, h2, m, i);
                    if words[(s / 64) as usize] & (1u64 << (s % 64)) == 0 {
                        return false;
                    }
                }
                true
            })
    };

    // ── Phase 4: the paper's two-way Bloom linkage test ─────────────────
    let pair_cuts = crate::par::even_cuts(in_range.len(), threads);
    let edges: Vec<u64> = crate::par::map_ranges(&pair_cuts, |_t, lo, hi| {
        in_range[lo..hi]
            .iter()
            .copied()
            .filter(|&packed| {
                let i = (packed >> 32) as usize;
                let j = (packed & 0xffff_ffff) as usize;
                links_to(i, j) && links_to(j, i)
            })
            .collect::<Vec<u64>>()
    })
    .into_iter()
    .flatten()
    .collect();
    for packed in edges {
        let i = (packed >> 32) as usize;
        let j = (packed & 0xffff_ffff) as usize;
        adj[i].push(j);
        adj[j].push(i);
    }
    adj
}

fn nearest_approach(vp: &StoredVp, p: &GeoPos) -> f64 {
    vp.vds
        .iter()
        .map(|vd| vd.loc.distance(p))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SECONDS_PER_VP;
    use crate::vp::{VpBuilder, VpKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Build a chain of vehicles along a line, each exchanging VDs with its
    /// immediate neighbors, the first one trusted.
    fn build_chain(n: usize, spacing: f64, seed: u64) -> Vec<StoredVp> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut builders: Vec<VpBuilder> = (0..n)
            .map(|i| {
                let kind = if i == 0 {
                    VpKind::Trusted
                } else {
                    VpKind::Actual
                };
                VpBuilder::new(&mut rng, 0, GeoPos::new(i as f64 * spacing, 0.0), kind)
            })
            .collect();
        for s in 0..SECONDS_PER_VP {
            let now = s + 1;
            let locs: Vec<GeoPos> = (0..n)
                .map(|i| GeoPos::new(i as f64 * spacing + s as f64, 0.0))
                .collect();
            let vds: Vec<_> = builders
                .iter_mut()
                .enumerate()
                .map(|(i, b)| b.record_second(&(s * 97).to_le_bytes(), locs[i]))
                .collect();
            for i in 0..n {
                for j in 0..n {
                    if i != j && locs[i].distance(&locs[j]) <= spacing * 1.5 {
                        builders[i].accept_neighbor_vd(vds[j], now, locs[i]);
                    }
                }
            }
        }
        builders
            .into_iter()
            .map(|b| b.finalize().profile.into_stored())
            .collect()
    }

    fn site_at(x: f64, r: f64) -> Site {
        Site {
            center: GeoPos::new(x, 0.0),
            radius_m: r,
        }
    }

    #[test]
    fn chain_viewmap_is_connected_single_layer() {
        let vps = build_chain(8, 150.0, 1);
        let site = site_at(7.0 * 150.0, 200.0);
        let vm = Viewmap::build_owned(vps, site, MinuteId(0), &ViewmapConfig::default());
        assert_eq!(vm.len(), 8);
        assert_eq!(vm.trusted, vec![0]);
        // Each interior node links to both neighbors.
        assert!(vm.edge_count() >= 7, "edges: {}", vm.edge_count());
        assert!(vm.member_connectivity() > 0.99);
    }

    #[test]
    fn verification_marks_site_vps_legitimate() {
        let vps = build_chain(8, 150.0, 2);
        let site = site_at(7.0 * 150.0, 160.0);
        let cfg = ViewmapConfig::default();
        let vm = Viewmap::build_owned(vps, site, MinuteId(0), &cfg);
        let (v, ids) = vm.verify(&site, &cfg);
        assert!(v.top.is_some());
        assert!(!ids.is_empty());
        // The marked VPs genuinely claim positions in the site.
        for &i in &v.legitimate {
            assert!(site.contains_vp(&vm.vps[i]));
        }
    }

    #[test]
    fn unlinked_far_vp_is_isolated() {
        let mut vps = build_chain(5, 150.0, 3);
        // A stranger VP near the site but never exchanged VDs with anyone.
        let mut rng = StdRng::seed_from_u64(4);
        let mut b = VpBuilder::new(&mut rng, 0, GeoPos::new(600.0, 10.0), VpKind::Actual);
        for s in 0..SECONDS_PER_VP {
            b.record_second(b"solo", GeoPos::new(600.0 + s as f64, 10.0));
        }
        vps.push(b.finalize().profile.into_stored());
        let site = site_at(600.0, 200.0);
        let vm = Viewmap::build_owned(vps, site, MinuteId(0), &ViewmapConfig::default());
        let solo = vm
            .vps
            .iter()
            .position(|vp| vp.start_loc().y == 10.0)
            .unwrap();
        assert!(vm.adj[solo].is_empty(), "stranger must have no viewlinks");
        assert!(vm.member_connectivity() < 1.0);
    }

    #[test]
    fn other_minutes_are_excluded() {
        let mut vps = build_chain(4, 150.0, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut b = VpBuilder::new(&mut rng, 60, GeoPos::new(0.0, 0.0), VpKind::Actual);
        for s in 0..SECONDS_PER_VP {
            b.record_second(b"late", GeoPos::new(s as f64, 0.0));
        }
        vps.push(b.finalize().profile.into_stored());
        // Site radius large enough that coverage admits the whole chain.
        let vm = Viewmap::build_owned(
            vps,
            site_at(0.0, 400.0),
            MinuteId(0),
            &ViewmapConfig::default(),
        );
        assert_eq!(vm.len(), 4, "minute-1 VP must not join minute-0 viewmap");
    }

    #[test]
    fn coverage_excludes_vps_far_from_everything() {
        let mut vps = build_chain(4, 100.0, 7);
        // A legitimate pair far away (5 km) — outside coverage.
        let far = build_chain(2, 100.0, 8);
        for mut vp in far {
            for vd in &mut vp.vds {
                vd.loc.x += 5000.0;
            }
            vp.trusted = false;
            vps.push(vp);
        }
        let site = site_at(300.0, 150.0);
        let vm = Viewmap::build_owned(vps, site, MinuteId(0), &ViewmapConfig::default());
        assert_eq!(vm.len(), 4, "distant VPs excluded from coverage");
    }

    #[test]
    fn no_trusted_vp_yields_no_verification() {
        let mut vps = build_chain(4, 150.0, 9);
        vps[0].trusted = false;
        let site = site_at(450.0, 200.0);
        let cfg = ViewmapConfig::default();
        let vm = Viewmap::build_owned(vps, site, MinuteId(0), &cfg);
        let (v, ids) = vm.verify(&site, &cfg);
        assert_eq!(v.top, None);
        assert!(ids.is_empty());
    }

    #[test]
    fn adjacency_is_symmetric() {
        let vps = build_chain(10, 120.0, 10);
        let vm = Viewmap::build_owned(
            vps,
            site_at(500.0, 300.0),
            MinuteId(0),
            &ViewmapConfig::default(),
        );
        for (i, nbrs) in vm.adj.iter().enumerate() {
            for &j in nbrs {
                assert!(vm.adj[j].contains(&i), "edge {i}-{j} not symmetric");
            }
        }
    }

    #[test]
    fn build_shares_arcs_with_caller() {
        // Zero-copy admission: the viewmap's members are the same
        // allocations the caller (in production, the server DB) holds.
        let vps: Vec<Arc<StoredVp>> = build_chain(4, 150.0, 11)
            .into_iter()
            .map(Arc::new)
            .collect();
        let vm = Viewmap::build(
            &vps,
            site_at(0.0, 400.0),
            MinuteId(0),
            &ViewmapConfig::default(),
        );
        assert_eq!(vm.len(), 4);
        for member in &vm.vps {
            let original = vps.iter().find(|vp| vp.id == member.id).unwrap();
            assert!(
                Arc::ptr_eq(member, original),
                "member must share the caller's allocation"
            );
        }
    }

    #[test]
    fn per_second_grid_matches_exhaustive_edges() {
        // The per-second candidate generation must find exactly the edges
        // an O(n²) scan over min_aligned_distance + mutually_linked finds.
        for seed in [20u64, 21, 22] {
            let vps = build_chain(12, 140.0, seed);
            let cfg = ViewmapConfig::default();
            let vm = Viewmap::build_owned(vps.clone(), site_at(800.0, 900.0), MinuteId(0), &cfg);
            assert_eq!(vm.len(), vps.len());
            // Map viewmap index -> original index via VP id.
            for i in 0..vm.len() {
                for j in (i + 1)..vm.len() {
                    let close = vm.vps[i]
                        .min_aligned_distance(&vm.vps[j])
                        .is_some_and(|d| d <= cfg.dsrc_radius_m);
                    let expect = close && vm.vps[i].mutually_linked(&vm.vps[j]);
                    let got = vm.adj[i].contains(&j);
                    assert_eq!(got, expect, "seed {seed}: edge {i}-{j} mismatch");
                }
            }
        }
    }
}
