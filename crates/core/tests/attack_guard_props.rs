//! Property tests for the adversary model (`attack`) and the
//! cooperative obfuscation layer (`guard`).
//!
//! The scenario harness asserts Lemma 2 on specific worlds; these
//! properties sweep the geometric and attack parameter spaces so the
//! bound, the no-honest-countersign invariant, and the BFS hop
//! structure hold *everywhere* the generator can reach, not just at
//! the defaults.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use viewmap_core::attack::{lemma2_bound, AttackConfig, GeometricParams, SyntheticViewmap};
use viewmap_core::guard::{create_guards, GuardConfig, StraightLine};
use viewmap_core::trustrank;
use viewmap_core::types::GeoPos;
use viewmap_core::vp::exchange_minute;

fn params(n_legit: usize, area_m: f64, link_radius_m: f64) -> GeometricParams {
    GeometricParams {
        n_legit,
        area_m,
        link_radius_m,
        site_radius_m: area_m / 10.0,
        site_distance_m: area_m * 0.6,
    }
}

proptest! {
    /// Lemma 2 across the geometric/attack sweep: the total TrustRank
    /// score of the fake population never exceeds
    /// `δ/(1−δ) · Σ_attackers (fake-degree share · score)` — at any
    /// density, any hop bucket, any flood size, with or without
    /// co-located dummies.
    #[test]
    fn lemma2_bound_holds_across_sweeps(
        seed in 0u64..500,
        n_legit in 80usize..220,
        area_km in 1.2f64..3.0,
        link_radius_m in 120.0f64..320.0,
        n_attackers in 1usize..16,
        hop_lo in 1usize..8,
        hop_width in 0usize..6,
        fake_ratio in 0.3f64..3.5,
        dummies in 0usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = params(n_legit, area_km * 1000.0, link_radius_m);
        let mut map = SyntheticViewmap::generate(&p, &mut rng);
        let attackers = map.inject_attack(
            &AttackConfig {
                n_attackers,
                attacker_hops: (hop_lo, hop_lo + hop_width),
                fake_ratio,
                dummies_per_attacker: dummies,
            },
            &mut rng,
        );
        let scores = trustrank::trust_scores(
            &map.adj, &[map.trusted], trustrank::DAMPING, 1e-10,
        );
        let is_fake: Vec<bool> = map.legit.iter().map(|&l| !l).collect();
        let fake_total: f64 = scores
            .iter()
            .zip(&is_fake)
            .filter(|(_, &f)| f)
            .map(|(s, _)| *s)
            .sum();
        let bound = lemma2_bound(&map.adj, &scores, &attackers, &is_fake);
        prop_assert!(
            fake_total <= bound + 1e-9,
            "Lemma 2 violated at seed {seed}: fake total {fake_total} > bound {bound}"
        );
    }

    /// The two-way Bloom exchange means a fake VP can never hold a link
    /// to an honest non-attacker, no matter how the attack is shaped.
    #[test]
    fn fakes_only_ever_link_to_colluders(
        seed in 0u64..500,
        n_attackers in 1usize..12,
        hop_lo in 1usize..10,
        fake_ratio in 0.3f64..3.0,
        dummies in 0usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA_CE5);
        let p = params(150, 2000.0, 200.0);
        let mut map = SyntheticViewmap::generate(&p, &mut rng);
        let n_honest = map.legit.len();
        let attackers: std::collections::HashSet<usize> = map
            .inject_attack(
                &AttackConfig {
                    n_attackers,
                    attacker_hops: (hop_lo, hop_lo + 3),
                    fake_ratio,
                    dummies_per_attacker: dummies,
                },
                &mut rng,
            )
            .into_iter()
            .collect();
        for (i, nbrs) in map.adj.iter().enumerate() {
            if map.legit[i] {
                continue;
            }
            for &j in nbrs {
                let honest_victim = map.legit[j] && j < n_honest && !attackers.contains(&j);
                prop_assert!(
                    !honest_victim,
                    "fake {i} countersigned by honest non-attacker {j} (seed {seed})"
                );
            }
        }
    }

    /// BFS structure: hop distances satisfy the edge relaxation
    /// property (neighbors differ by at most one) and exactly the
    /// trusted VP's component is reachable.
    #[test]
    fn hop_distances_are_consistent(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB_F5);
        let map = SyntheticViewmap::generate(&params(120, 2200.0, 220.0), &mut rng);
        let hops = map.hops_from_trusted();
        prop_assert_eq!(hops[map.trusted], 0);
        for (i, nbrs) in map.adj.iter().enumerate() {
            for &j in nbrs {
                if hops[i] != usize::MAX {
                    prop_assert!(
                        hops[j] <= hops[i] + 1,
                        "edge ({i},{j}) violates relaxation: {} vs {}",
                        hops[i],
                        hops[j]
                    );
                }
                prop_assert_eq!(
                    hops[i] == usize::MAX,
                    hops[j] == usize::MAX,
                    "edge spans reachability boundary"
                );
            }
        }
    }

    /// Hop monotonicity in radio range: growing the link radius (same
    /// positions, same seed) never pushes a reachable node further from
    /// the trusted VP and never disconnects anything.
    #[test]
    fn hops_shrink_as_link_radius_grows(
        seed in 0u64..300,
        r_small in 130.0f64..220.0,
        grow in 1.1f64..2.0,
    ) {
        // Identical rng seeds + identical draw order (positions first,
        // then trusted, then site) ⇒ the two maps share geometry and
        // differ only in which edges exist.
        let small = SyntheticViewmap::generate(
            &params(120, 2000.0, r_small),
            &mut StdRng::seed_from_u64(seed ^ 0x60),
        );
        let large = SyntheticViewmap::generate(
            &params(120, 2000.0, r_small * grow),
            &mut StdRng::seed_from_u64(seed ^ 0x60),
        );
        prop_assert_eq!(small.trusted, large.trusted);
        let hs = small.hops_from_trusted();
        let hl = large.hops_from_trusted();
        for (i, (&a, &b)) in hs.iter().zip(&hl).enumerate() {
            if a != usize::MAX {
                prop_assert!(
                    b <= a,
                    "node {i}: radius {r_small}->{} grew hops {a}->{b}",
                    r_small * grow
                );
            }
        }
    }

    /// ⌈α·m⌉ guard accounting: at least one guard per nonempty
    /// neighborhood, never more than m for α ≤ 1, monotone in m.
    #[test]
    fn guard_count_is_ceil_alpha_m(alpha in 0.01f64..1.0, m in 1usize..200) {
        let cfg = GuardConfig { alpha, ..GuardConfig::default() };
        let g = cfg.guards_for(m);
        prop_assert_eq!(g, (alpha * m as f64).ceil() as usize);
        prop_assert!(g >= 1, "nonempty neighborhood must get a guard");
        prop_assert!(g <= m, "alpha <= 1 can never need more guards than neighbors");
        prop_assert!(g >= cfg.guards_for(m - 1).saturating_sub(0) || m == 1);
        prop_assert!(cfg.guards_for(m + 1) >= g, "guards_for must be monotone in m");
        prop_assert_eq!(cfg.guards_for(0), 0);
    }

    /// Fabricated guards always span neighbor-start → own-end, stay
    /// mutually Bloom-linked with the actual VP, and carry fresh ids —
    /// for arbitrary trajectories and α.
    #[test]
    fn guards_span_and_link_for_arbitrary_minutes(
        seed in 0u64..200,
        dx in 5.0f64..20.0,
        sep in 10.0f64..120.0,
        alpha in 0.05f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6A2D);
        let (mut fin, _) = exchange_minute(
            &mut rng,
            0,
            |s| GeoPos::new(100.0 + s as f64 * dx, 0.0),
            |s| GeoPos::new(s as f64 * dx, sep),
        );
        prop_assert!(!fin.neighbors.is_empty(), "vehicles within DSRC range must exchange");
        let cfg = GuardConfig { alpha, ..GuardConfig::default() };
        let want = cfg.guards_for(fin.neighbors.len());
        let neighbor_start = fin.neighbors[0].initial_loc();
        let own_end = fin.profile.vds.last().unwrap().loc;
        let guards = create_guards(&mut rng, &mut fin, &StraightLine, &cfg);
        prop_assert_eq!(guards.len(), want.min(fin.neighbors.len()));
        let actual = fin.profile.clone().into_stored();
        for g in &guards {
            prop_assert_eq!(g.vds.len(), 60);
            prop_assert!(g.vds[0].loc.distance(&neighbor_start) < 80.0);
            prop_assert!(g.vds[59].loc.distance(&own_end) < 1.0);
            prop_assert!(g.id() != fin.profile.id(), "guard id must be fresh");
            let stored = g.clone().into_stored();
            prop_assert!(
                actual.mutually_linked(&stored),
                "guard and actual must countersign each other"
            );
        }
    }
}
