//! Histogram correctness properties: log-bucket quantile estimates
//! against an exact sorted-sample oracle, and concurrent-recording
//! equivalence.
//!
//! The quantile bound under test is the one the bucket geometry proves
//! (see `vm-obs`'s histogram module docs): 16 sub-buckets per octave →
//! bucket width ≤ 1/16 of the bucket floor → a midpoint estimate is
//! within **1/16 relative error** of the exact rank statistic, at any
//! magnitude up to `u64::MAX`, with the sub-16 range exact.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use vm_obs::{Registry, QUANTILES};

/// The exact oracle: rank-`ceil(q·n)` element of the sorted samples
/// (the same rank definition `Histogram::quantile` estimates).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Draw a population mixing magnitudes: small exact-range values,
/// mid-range, and values up to `u64::MAX`, per a seeded plan.
fn population(seed: u64, len: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| match rng.gen_range(0u32..10) {
            0..=2 => rng.gen_range(0u64..16),            // exact linear range
            3..=5 => rng.gen_range(16u64..100_000),      // typical latencies
            6..=8 => rng.gen_range(100_000u64..1 << 40), // large magnitudes
            _ => rng.gen_range(1 << 40..=u64::MAX),      // edge of the domain
        })
        .collect()
}

proptest! {
    /// Every reported quantile of an arbitrary mixed-magnitude
    /// population is within 1/16 relative error of the exact
    /// sorted-sample oracle (absolute error ≤ 1 in the tiny range,
    /// where integer midpoints quantize).
    #[test]
    fn quantiles_track_the_exact_oracle(seed in any::<u64>(), len in 1usize..800) {
        let samples = population(seed, len);
        let reg = Registry::new();
        let h = reg.histogram("t_us");
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples;
        sorted.sort_unstable();
        for q in QUANTILES {
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile(q);
            let err = est.abs_diff(exact);
            prop_assert!(
                err as f64 <= (exact as f64 / 16.0).max(1.0),
                "q={q}: estimate {est} vs exact {exact} (err {err}, n={})",
                sorted.len()
            );
        }
    }

    /// u64 edge values: populations pinned to the extremes of the
    /// domain still estimate within the bound (no overflow in bucket
    /// math, `u64::MAX` lands in a bucket whose range ends exactly at
    /// `u64::MAX`).
    #[test]
    fn edge_values_stay_in_bounds(reps in 1usize..50) {
        let reg = Registry::new();
        let h = reg.histogram("edges");
        let edges = [0u64, 1, 15, 16, u64::MAX / 2, u64::MAX - 1, u64::MAX];
        for _ in 0..reps {
            for &v in &edges {
                h.record(v);
            }
        }
        prop_assert_eq!(h.count(), (reps * edges.len()) as u64);
        prop_assert_eq!(h.quantile(0.01), 0, "min bucket is exact");
        let top = h.quantile(1.0);
        prop_assert!(
            top.abs_diff(u64::MAX) as f64 <= u64::MAX as f64 / 16.0,
            "max estimate {top} strayed from u64::MAX"
        );
    }

    /// Concurrent-recording equivalence: N threads each recording a
    /// disjoint slice of a population leave the histogram bit-identical
    /// (count, sum, every bucket) to one thread recording the whole
    /// population serially.
    #[test]
    fn concurrent_recording_equals_merged_serial(
        seed in any::<u64>(),
        threads in 2usize..8,
        per_thread in 1usize..400,
    ) {
        let samples = population(seed, threads * per_thread);

        let serial_reg = Registry::new();
        let serial = serial_reg.histogram("h");
        for &v in &samples {
            serial.record(v);
        }

        let conc_reg = Registry::new();
        let conc = conc_reg.histogram("h");
        std::thread::scope(|scope| {
            for chunk in samples.chunks(per_thread) {
                let h = Arc::clone(&conc);
                scope.spawn(move || {
                    for &v in chunk {
                        h.record(v);
                    }
                });
            }
        });

        prop_assert_eq!(conc.count(), serial.count());
        prop_assert_eq!(conc.sum(), serial.sum());
        prop_assert_eq!(conc.bucket_counts(), serial.bucket_counts());
        prop_assert_eq!(conc.summary(), serial.summary());
    }
}
