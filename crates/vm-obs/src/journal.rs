//! The structured event journal.
//!
//! Metrics answer "how much / how fast"; the journal answers "what
//! happened": recovery warnings, replication quarantines and redials,
//! promotions, session reconnects — rare, discrete operational events
//! that today vanish once the call site that observed them returns.
//!
//! The journal is a fixed-capacity ring: recording is a short critical
//! section on a plain mutex (events are orders of magnitude rarer than
//! metric updates, so this is nowhere near any hot path), old events
//! are dropped oldest-first, and a per-kind running total survives ring
//! eviction so `vm_events_total{kind=...}` lines in the snapshot never
//! undercount.
//!
//! **Determinism.** An [`Event`] carries a monotonic sequence number
//! and no wall-clock component. Under the vopr harness every event
//! source is driven by the seeded fault plan (recovery warnings by the
//! seeded tear, quarantines by the seeded proxy cuts), so replaying a
//! `--scenario S --seed N` pair reproduces the same events — the
//! journal adds ordering, not new nondeterminism. Event *interleaving*
//! across concurrently-failing sessions can vary with scheduling, which
//! is exactly as reproducible as the underlying failures themselves.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

/// Ring capacity: enough to hold every operational event of a vopr run
/// or an operator incident window without growing unbounded.
pub const JOURNAL_CAPACITY: usize = 256;

/// One journaled event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotonic per-journal sequence number, from 0.
    pub seq: u64,
    /// Event class (static, lowercase snake-case: `recovery_warning`,
    /// `quarantine`, `redial`, `promotion`, ...).
    pub kind: &'static str,
    /// Human-readable detail line.
    pub detail: String,
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{} {}: {}", self.seq, self.kind, self.detail)
    }
}

#[derive(Default)]
struct JournalInner {
    ring: VecDeque<Event>,
    next_seq: u64,
    counts: BTreeMap<&'static str, u64>,
}

/// A ring-buffered event journal (see the module docs).
#[derive(Default)]
pub struct Journal {
    inner: Mutex<JournalInner>,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Append an event, evicting the oldest if the ring is full.
    /// Returns the assigned sequence number.
    pub fn record(&self, kind: &'static str, detail: impl Into<String>) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        *inner.counts.entry(kind).or_insert(0) += 1;
        if inner.ring.len() == JOURNAL_CAPACITY {
            inner.ring.pop_front();
        }
        inner.ring.push_back(Event {
            seq,
            kind,
            detail: detail.into(),
        });
        seq
    }

    /// The most recent `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<Event> {
        let inner = self.inner.lock().unwrap();
        let skip = inner.ring.len().saturating_sub(n);
        inner.ring.iter().skip(skip).cloned().collect()
    }

    /// Events recorded over the journal's lifetime (not just those
    /// still in the ring).
    pub fn total(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }

    /// Lifetime totals per event kind, kind-sorted.
    pub fn counts(&self) -> Vec<(&'static str, u64)> {
        self.inner
            .lock()
            .unwrap()
            .counts
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_monotonic_and_counts_survive_eviction() {
        let j = Journal::new();
        for i in 0..(JOURNAL_CAPACITY + 10) {
            let seq = j.record("tick", format!("event {i}"));
            assert_eq!(seq, i as u64);
        }
        j.record("other", "one");
        assert_eq!(j.total(), JOURNAL_CAPACITY as u64 + 11);
        let tail = j.tail(5);
        assert_eq!(tail.len(), 5);
        assert!(tail.windows(2).all(|w| w[1].seq == w[0].seq + 1));
        assert_eq!(tail.last().unwrap().kind, "other");
        // The ring dropped the oldest ticks, the totals did not.
        let counts = j.counts();
        assert_eq!(
            counts,
            vec![("other", 1), ("tick", JOURNAL_CAPACITY as u64 + 10)]
        );
    }

    #[test]
    fn tail_handles_short_journals() {
        let j = Journal::new();
        j.record("a", "x");
        assert_eq!(j.tail(10).len(), 1);
        assert_eq!(j.tail(0).len(), 0);
    }
}
