//! The named-instrument registry, its snapshot, and the text
//! exposition format.
//!
//! Registration (startup, rare) takes a mutex; recording (hot path)
//! touches only the atomics inside the instrument handles the registry
//! minted — the registry lock is never on the data path. Handles are
//! `Arc`s, so a subsystem registers its instrument set once, stores the
//! handles in a plain struct, and records through them lock-free.
//!
//! ## Exposition format
//!
//! [`Snapshot::render_text`] emits Prometheus-style `name{label="v"} value`
//! lines, one metric per line, starting with the version pseudo-metric
//! `vm_obs_snapshot_version`. Counters and gauges are one line each;
//! a histogram `h` becomes `h_count`, `h_sum`, and one
//! `h{quantile="q"}` line per estimated quantile (labels, if any, are
//! merged into the brace set). Journal per-kind lifetime totals are
//! folded in as `vm_events_total{kind="..."}` counters. The format
//! round-trips through [`parse_text`].

use crate::histogram::{Histogram, HistogramSummary};
use crate::instruments::{Counter, Gauge};
use crate::journal::Journal;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Version stamped into every snapshot (and its text exposition, as
/// the `vm_obs_snapshot_version` line).
pub const SNAPSHOT_VERSION: u32 = 1;

enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Registered {
    base: String,
    labels: Vec<(String, String)>,
    slot: Slot,
}

#[derive(Default)]
struct Instruments {
    ordered: Vec<Registered>,
    by_name: HashMap<String, usize>,
}

/// One cell's instrument registry plus its event [`Journal`].
pub struct Registry {
    enabled: Arc<AtomicBool>,
    journal: Journal,
    instruments: Mutex<Instruments>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

fn render_name(base: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{base}{{{}}}", body.join(","))
}

impl Registry {
    /// A fresh, enabled registry.
    pub fn new() -> Registry {
        Registry {
            enabled: Arc::new(AtomicBool::new(true)),
            journal: Journal::new(),
            instruments: Mutex::new(Instruments::default()),
        }
    }

    /// Turn recording on or off for every instrument this registry
    /// minted. Off, each instrument call is one relaxed load and a
    /// branch; snapshots still work (they read whatever was recorded
    /// while enabled).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether instruments currently record.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The registry's event journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    fn register<T>(
        &self,
        base: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce(Arc<AtomicBool>) -> Arc<T>,
        wrap: impl FnOnce(Arc<T>) -> Slot,
        unwrap: impl FnOnce(&Slot) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let name = render_name(base, &labels);
        let mut inner = self.instruments.lock().unwrap();
        if let Some(&idx) = inner.by_name.get(&name) {
            return unwrap(&inner.ordered[idx].slot).unwrap_or_else(|| {
                panic!("instrument {name:?} already registered with a different kind")
            });
        }
        let handle = make(Arc::clone(&self.enabled));
        let idx = inner.ordered.len();
        inner.ordered.push(Registered {
            base: base.to_string(),
            labels,
            slot: wrap(Arc::clone(&handle)),
        });
        inner.by_name.insert(name, idx);
        handle
    }

    /// Register (or fetch, idempotently) a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Register (or fetch) a labeled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register(
            name,
            labels,
            |e| Arc::new(Counter::new(e)),
            Slot::Counter,
            |s| match s {
                Slot::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Register (or fetch) a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Register (or fetch) a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.register(
            name,
            labels,
            |e| Arc::new(Gauge::new(e)),
            Slot::Gauge,
            |s| match s {
                Slot::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Register (or fetch) a histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Register (or fetch) a labeled histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.register(
            name,
            labels,
            |e| Arc::new(Histogram::new(e)),
            Slot::Histogram,
            |s| match s {
                Slot::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// A point-in-time read of every instrument plus the journal's
    /// per-kind totals.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.instruments.lock().unwrap();
        let mut entries: Vec<MetricEntry> = inner
            .ordered
            .iter()
            .map(|r| MetricEntry {
                base: r.base.clone(),
                labels: r.labels.clone(),
                data: match &r.slot {
                    Slot::Counter(c) => MetricData::Counter(c.get()),
                    Slot::Gauge(g) => MetricData::Gauge(g.get()),
                    Slot::Histogram(h) => MetricData::Histogram(h.summary()),
                },
            })
            .collect();
        drop(inner);
        for (kind, total) in self.journal.counts() {
            entries.push(MetricEntry {
                base: "vm_events_total".to_string(),
                labels: vec![("kind".to_string(), kind.to_string())],
                data: MetricData::Counter(total),
            });
        }
        Snapshot {
            version: SNAPSHOT_VERSION,
            entries,
        }
    }
}

/// The value side of one snapshot entry.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricData {
    /// Monotonic counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram summary (count, sum, quantiles).
    Histogram(HistogramSummary),
}

/// One named instrument's snapshot row.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricEntry {
    /// Metric name without labels.
    pub base: String,
    /// Label pairs, registration order.
    pub labels: Vec<(String, String)>,
    /// The value(s).
    pub data: MetricData,
}

impl MetricEntry {
    /// The full `name{label="v"}` identifier.
    pub fn name(&self) -> String {
        render_name(&self.base, &self.labels)
    }
}

/// A point-in-time read of a whole [`Registry`].
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// All instruments, registration order, then journal totals.
    pub entries: Vec<MetricEntry>,
}

impl Snapshot {
    fn find(&self, name: &str) -> Option<&MetricEntry> {
        self.entries.iter().find(|e| e.name() == name)
    }

    /// Counter value by full name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.find(name)?.data {
            MetricData::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Gauge value by full name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.find(name)?.data {
            MetricData::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// Histogram summary by full name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        match &self.find(name)?.data {
            MetricData::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Render the versioned text exposition (see the module docs).
    pub fn render_text(&self) -> String {
        let mut out = format!("vm_obs_snapshot_version {}\n", self.version);
        for e in &self.entries {
            match &e.data {
                MetricData::Counter(v) => {
                    out.push_str(&format!("{} {v}\n", e.name()));
                }
                MetricData::Gauge(v) => {
                    out.push_str(&format!("{} {v}\n", e.name()));
                }
                MetricData::Histogram(h) => {
                    let with = |extra: &[(String, String)]| {
                        let mut labels = e.labels.clone();
                        labels.extend_from_slice(extra);
                        labels
                    };
                    out.push_str(&format!(
                        "{} {}\n",
                        render_name(&format!("{}_count", e.base), &e.labels),
                        h.count
                    ));
                    out.push_str(&format!(
                        "{} {}\n",
                        render_name(&format!("{}_sum", e.base), &e.labels),
                        h.sum
                    ));
                    for &(q, v) in &h.quantiles {
                        let labels = with(&[("quantile".to_string(), format!("{q}"))]);
                        out.push_str(&format!("{} {v}\n", render_name(&e.base, &labels)));
                    }
                }
            }
        }
        out
    }
}

/// Parse a text exposition back into `(full_name, value)` pairs, in
/// line order. Returns `None` if any non-empty line is not a
/// `name value` pair with a numeric value — the wire consumer's
/// "parseable snapshot" check.
pub fn parse_text(text: &str) -> Option<Vec<(String, f64)>> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.rsplit_once(' ')?;
        let name = name.trim_end();
        if name.is_empty() {
            return None;
        }
        out.push((name.to_string(), value.parse::<f64>().ok()?));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_kind_checked() {
        let r = Registry::new();
        let a = r.counter("hits");
        let b = r.counter("hits");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same handle behind the same name");
        let l1 = r.counter_with("reqs", &[("op", "x")]);
        let l2 = r.counter_with("reqs", &[("op", "y")]);
        l1.inc();
        assert_eq!(l2.get(), 0, "distinct label sets are distinct instruments");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_collision_panics() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn snapshot_covers_instruments_and_journal() {
        let r = Registry::new();
        r.counter("c").add(7);
        r.gauge("g").set(-3);
        let h = r.histogram_with("lat_us", &[("op", "submit")]);
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        r.journal().record("quarantine", "follower x");
        r.journal().record("quarantine", "follower y");

        let snap = r.snapshot();
        assert_eq!(snap.version, SNAPSHOT_VERSION);
        assert_eq!(snap.counter("c"), Some(7));
        assert_eq!(snap.gauge("g"), Some(-3));
        let hs = snap.histogram("lat_us{op=\"submit\"}").unwrap();
        assert_eq!(hs.count, 3);
        assert_eq!(hs.sum, 60);
        assert_eq!(
            snap.counter("vm_events_total{kind=\"quarantine\"}"),
            Some(2)
        );
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let r = Registry::new();
        r.counter("c").add(1);
        r.gauge("g").set(-5);
        r.histogram("h").record(100);
        r.journal().record("promotion", "epoch 2");
        let text = r.snapshot().render_text();
        let parsed = parse_text(&text).expect("parseable");
        assert_eq!(parsed[0], ("vm_obs_snapshot_version".to_string(), 1.0));
        let get = |n: &str| {
            parsed
                .iter()
                .find(|(name, _)| name == n)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("missing {n}"))
        };
        assert_eq!(get("c"), 1.0);
        assert_eq!(get("g"), -5.0);
        assert_eq!(get("h_count"), 1.0);
        assert_eq!(get("h_sum"), 100.0);
        assert!(get("h{quantile=\"0.5\"}") > 0.0);
        assert_eq!(get("vm_events_total{kind=\"promotion\"}"), 1.0);
        assert!(parse_text("not a metric line at all").is_none());
        assert!(parse_text("name notanumber").is_none());
    }

    #[test]
    fn disabling_freezes_every_minted_instrument() {
        let r = Registry::new();
        let c = r.counter("c");
        let h = r.histogram("h");
        c.inc();
        h.record(5);
        r.set_enabled(false);
        c.inc();
        h.record(5);
        assert!(!r.enabled());
        assert_eq!(r.snapshot().counter("c"), Some(1));
        assert_eq!(r.snapshot().histogram("h").unwrap().count, 1);
        r.set_enabled(true);
        c.inc();
        assert_eq!(r.snapshot().counter("c"), Some(2));
    }
}
