//! Single-atomic instruments: counters and gauges.
//!
//! Both share the registry's enabled flag (an `Arc<AtomicBool>`): a
//! disabled registry turns every mutation into one relaxed load and a
//! predicted-not-taken branch, which is the entire disabled-state cost
//! the bench overhead column measures.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    value: AtomicU64,
}

impl Counter {
    pub(crate) fn new(enabled: Arc<AtomicBool>) -> Counter {
        Counter {
            enabled,
            value: AtomicU64::new(0),
        }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down (queue depth, active
/// sessions, current lag).
#[derive(Debug)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    value: AtomicI64,
}

impl Gauge {
    pub(crate) fn new(enabled: Arc<AtomicBool>) -> Gauge {
        Gauge {
            enabled,
            value: AtomicI64::new(0),
        }
    }

    /// Overwrite the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Add `n` (negative to decrease).
    #[inline]
    pub fn add(&self, n: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract 1.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled(on: bool) -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(on))
    }

    #[test]
    fn counter_counts_and_respects_disable() {
        let flag = enabled(true);
        let c = Counter::new(Arc::clone(&flag));
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        flag.store(false, Ordering::Relaxed);
        c.add(1000);
        assert_eq!(c.get(), 42, "disabled counter must not move");
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new(enabled(true));
        g.set(10);
        g.add(-3);
        g.inc();
        g.dec();
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn disabled_gauge_is_frozen() {
        let g = Gauge::new(enabled(false));
        g.set(10);
        g.add(5);
        assert_eq!(g.get(), 0);
    }
}
