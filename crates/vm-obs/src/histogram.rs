//! The log-bucketed histogram.
//!
//! Values 0..15 get exact buckets; every value ≥ 16 lands in one of 16
//! sub-buckets of its power-of-two octave, i.e. the bucket spanning
//! `[(16+s)·2^(o-4), (16+s+1)·2^(o-4))` for octave `o` and sub-bucket
//! `s`. Bucket width over bucket floor is at most `1/16`, so reporting
//! a bucket's midpoint for any value inside it carries a relative error
//! of at most `1/32` — and because the bucketing function is monotone,
//! the rank-`r` sample of a recorded population falls in exactly the
//! bucket where the cumulative count crosses `r`. Together those give
//! the quantile bound the property suite pins: any
//! [`Histogram::quantile`] estimate is within `1/16` of the exact
//! sorted-sample oracle, at every magnitude up to `u64::MAX`.
//!
//! Recording is one relaxed-load enabled check plus three relaxed
//! `fetch_add`s (bucket, count, sum) — no locks, no allocation — so N
//! threads recording concurrently produce bit-identical totals to the
//! same values recorded serially (also pinned by the property suite).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Exact buckets below this value (and sub-buckets per octave above
/// it). 16 = 4 sub-bucket bits.
const LINEAR: u64 = 16;
const SUB_BITS: u32 = 4;

/// Total bucket count: 16 exact + 16 sub-buckets for each octave
/// `4..=63`.
pub const BUCKETS: usize = LINEAR as usize + (64 - SUB_BITS as usize) * LINEAR as usize;

/// The quantiles a [`HistogramSummary`] reports (and the text
/// exposition emits).
pub const QUANTILES: [f64; 4] = [0.5, 0.9, 0.99, 1.0];

/// Bucket index for a value. Monotone in `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros(); // >= SUB_BITS
        let sub = (v >> (octave - SUB_BITS)) & (LINEAR - 1);
        (octave - SUB_BITS + 1) as usize * LINEAR as usize + sub as usize
    }
}

/// `[low, high]` value range of a bucket.
fn bucket_range(idx: usize) -> (u64, u64) {
    if idx < LINEAR as usize {
        (idx as u64, idx as u64)
    } else {
        let octave = (idx / LINEAR as usize) as u32 + SUB_BITS - 1;
        let sub = (idx % LINEAR as usize) as u64;
        let low = (LINEAR + sub) << (octave - SUB_BITS);
        let width = 1u64 << (octave - SUB_BITS);
        (low, low + (width - 1))
    }
}

/// The representative value reported for a bucket: its midpoint.
fn bucket_midpoint(idx: usize) -> u64 {
    let (lo, hi) = bucket_range(idx);
    lo + (hi - lo) / 2
}

/// A lock-free log-bucketed histogram of `u64` samples.
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    pub(crate) fn new(enabled: Arc<AtomicBool>) -> Histogram {
        Histogram {
            enabled,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration as whole microseconds.
    #[inline]
    pub fn record_duration_us(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Time `f` and record the elapsed microseconds. When the registry
    /// is disabled the clock is never read — `f` just runs — so the
    /// disabled state pays no `Instant::now` either.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        if !self.enabled.load(Ordering::Relaxed) {
            return f();
        }
        let start = Instant::now();
        let r = f();
        self.record_duration_us(start.elapsed());
        r
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimate the `q`-quantile (`0.0 < q <= 1.0`) of the recorded
    /// population: the midpoint of the bucket holding the exact
    /// rank-`ceil(q·count)` sample. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_midpoint(idx);
            }
        }
        // Racing recorders can leave `count` ahead of the bucket scan;
        // fall back to the highest populated bucket.
        let last = self
            .buckets
            .iter()
            .rposition(|b| b.load(Ordering::Relaxed) > 0)
            .unwrap_or(0);
        bucket_midpoint(last)
    }

    /// Point-in-time summary (count, sum, the [`QUANTILES`]).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            quantiles: QUANTILES.map(|q| (q, self.quantile(q))),
        }
    }

    /// Raw bucket counts (index order). For the equivalence property
    /// suite.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// A histogram's snapshot row: count, sum, and the fixed quantile set.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// `(q, estimate)` for each of [`QUANTILES`].
    pub quantiles: [(f64, u64); 4],
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist() -> Histogram {
        Histogram::new(Arc::new(AtomicBool::new(true)))
    }

    #[test]
    fn bucket_index_is_monotone_and_exact_below_linear() {
        for v in 0..LINEAR {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_range(v as usize), (v, v));
        }
        let mut prev = 0;
        for shift in 0..64 {
            for v in [1u64 << shift, (1u64 << shift) | ((1u64 << shift) - 1)] {
                let idx = bucket_index(v);
                assert!(idx >= prev, "bucket order broke at {v}");
                let (lo, hi) = bucket_range(idx);
                assert!(lo <= v && v <= hi, "{v} outside its bucket [{lo}, {hi}]");
                prev = idx;
            }
        }
    }

    #[test]
    fn top_bucket_covers_u64_max() {
        let idx = bucket_index(u64::MAX);
        assert!(idx < BUCKETS);
        let (_, hi) = bucket_range(idx);
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded() {
        // Midpoint vs any member of the same bucket: ≤ 1/32 above the
        // linear region, exact below it.
        for shift in 4..64 {
            for v in [1u64 << shift, (1u64 << shift) + ((1u64 << shift) >> 2)] {
                let mid = bucket_midpoint(bucket_index(v));
                let err = mid.abs_diff(v) as f64 / v as f64;
                assert!(err <= 1.0 / 32.0 + 1e-12, "{v}: rel err {err}");
            }
        }
    }

    #[test]
    fn quantiles_of_small_exact_population() {
        let h = hist();
        for v in 1..=10u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 55);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 10);
    }

    #[test]
    fn disabled_histogram_records_nothing() {
        let h = Histogram::new(Arc::new(AtomicBool::new(false)));
        h.record(123);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }
}
