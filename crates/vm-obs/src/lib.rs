//! `vm-obs` — the zero-dependency telemetry core for the ViewMap
//! workspace.
//!
//! Every serving layer in the workspace (engine, durable store, network
//! front-end, replication) needs runtime visibility, and the build
//! environment has no registry access — so this crate hand-rolls the
//! whole telemetry plane on `std` alone:
//!
//! * [`Counter`] / [`Gauge`] — single-atomic instruments whose hot path
//!   is one relaxed load (the enabled check) plus one atomic add/store.
//! * [`Histogram`] — a log-bucketed latency/size histogram
//!   (16 sub-buckets per power of two, so quantile estimates carry a
//!   provable ≤ 1/32 relative error) with lock-free recording.
//! * [`Registry`] — a named-instrument registry: registration takes a
//!   lock once at startup, recording never does. A registry can be
//!   toggled off ([`Registry::set_enabled`]) and every instrument it
//!   minted collapses to a relaxed-load-and-branch, which is what makes
//!   the instrumentation overhead *provable* (the bench compares the
//!   two states and gates the delta).
//! * [`Snapshot`] — a point-in-time read of every instrument, rendered
//!   to a versioned Prometheus-style text exposition
//!   ([`Snapshot::render_text`]) and parseable back
//!   ([`parse_text`]) so wire consumers need no other format.
//! * [`Journal`] — a ring-buffered structured event journal for rare
//!   operational events (recovery warnings, quarantines, promotions,
//!   reconnects). Events carry a monotonic sequence number and **no
//!   wall-clock component**, so a seeded vopr run produces the same
//!   journal every time; see the module docs for the determinism
//!   argument.
//!
//! The workspace convention: one [`Registry`] per cell, created by
//! whoever opens the `ViewMapServer`, shared (`Arc`) down into the
//! store and out to the service/replication layers, so one
//! [`Registry::snapshot`] — and one `STATS` wire scrape — covers the
//! whole stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod instruments;
mod journal;
mod registry;

pub use histogram::{Histogram, HistogramSummary, BUCKETS, QUANTILES};
pub use instruments::{Counter, Gauge};
pub use journal::{Event, Journal, JOURNAL_CAPACITY};
pub use registry::{parse_text, MetricData, MetricEntry, Registry, Snapshot, SNAPSHOT_VERSION};
