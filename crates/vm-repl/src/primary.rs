//! The primary side: a replication hub that ships committed WAL frames
//! to connected followers, and the [`ReplicatedWal`] decorator that
//! feeds it from the server's normal logging path.
//!
//! # Shipping order is the correctness backbone
//!
//! The server appends to its WAL under the committing minute's shard
//! lock, so per-minute append order equals bucket order. The hub adds
//! one global invariant on top: every shipped message — live append,
//! catch-up chunk, eviction — is assigned its op number and written to
//! follower sockets **under one stream mutex**. A follower therefore
//! observes a single serialized message sequence whose per-minute
//! record order equals the primary's bucket order, which is exactly
//! what replaying through [`ViewMapServer::submit_replay_batch`] needs
//! to rebuild byte-identical buckets, indexes, and segments.
//!
//! Catch-up runs under the same mutex: while a joining follower's
//! missing segment tails are being streamed, no live append can ship,
//! so there is no gap between "what catch-up read from disk" and "what
//! the live stream sends next". (Local durability is *not* behind the
//! mutex — `ReplicatedWal::append` writes to the local store first and
//! only then takes the stream lock, so an overlap where catch-up reads
//! a record the live path also ships is possible. Overlap is benign:
//! the follower's replay dedup drops the second copy before it touches
//! the follower's log.)
//!
//! # Acknowledgment and the commit watermark
//!
//! Each follower session runs an ACK-reader thread that advances the
//! session's acked-op cell. [`ReplHub::watermark`] is the smallest
//! acked op across live sessions — the op up to which *every* live
//! follower has validated, replayed, and locally logged the stream.
//! With [`ReplicationConfig::sync_ack`] the shipping path blocks until
//! the shipped op is acked everywhere (bounded by `ack_timeout`; a
//! follower that can't keep up is detached, never waited on forever —
//! availability over a sick replica, and the vopr failover torture
//! only promotes followers whose acks the primary actually saw).

use crate::wire::{ReplMsg, MAX_FRAMES_MSG_BYTES};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::sync::{Condvar, Mutex as StdMutex};
use std::time::Duration;
use viewmap_core::server::ViewMapServer;
use viewmap_core::types::MinuteId;
use viewmap_core::viewmap::ViewmapConfig;
use viewmap_core::vp::StoredVp;
use viewmap_core::wal::VpWal;
use vm_crypto::RsaKeyPair;
use vm_obs::{Counter, Gauge, Histogram, Registry};
use vm_store::segment::{parse_segment_file_name, segment_path};
use vm_store::{tail_frames, RecoveryReport, StoreConfig, VpStore};

/// Replication policy for a primary.
#[derive(Clone, Copy, Debug)]
pub struct ReplicationConfig {
    /// The primary's epoch (fenced against follower hellos).
    pub epoch: u64,
    /// Block each shipped append until every live follower acks it.
    /// Off by default: asynchronous shipping, bounded only by socket
    /// buffers, is the paper-faithful "follower trails by shipping
    /// latency" mode (callers who need "committed means on the
    /// replica" without serializing per append can drain to
    /// [`ReplHub::watermark`] instead); per-append synchronous acks are
    /// for failover tests, where a crash may follow any single op.
    pub sync_ack: bool,
    /// How long a synchronous append waits for a follower's ack before
    /// detaching it.
    pub ack_timeout: Duration,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            epoch: 1,
            sync_ack: false,
            ack_timeout: Duration::from_secs(5),
        }
    }
}

/// One follower's ack state, shared with its ACK-reader thread.
struct AckCell {
    /// std (not parking_lot) because the ack wait needs a Condvar.
    acked: StdMutex<u64>,
    advanced: Condvar,
}

struct FollowerSession {
    /// Write half (the ACK reader owns a cloned read half).
    stream: TcpStream,
    ack: Arc<AckCell>,
    alive: Arc<AtomicBool>,
    /// Per-session telemetry (`None` on an unbound hub).
    obs: Option<Arc<SessionObs>>,
}

/// Bound on the per-session `(op, cumulative bytes)` ledger; a follower
/// more than this many ops behind simply stops advancing its byte-lag
/// gauge until it catches back up into the window.
const SESSION_LEDGER_CAP: usize = 8192;

/// One follower session's lag instruments, shared with its ACK reader.
struct SessionObs {
    /// `(op, cumulative bytes shipped to this session as of that op)`
    /// for ops not yet acked. Per-session cumulative, so another
    /// follower's catch-up traffic never inflates this one's byte lag.
    ledger: Mutex<VecDeque<(u64, u64)>>,
    /// Cumulative payload bytes shipped to this session.
    shipped_bytes: AtomicU64,
    /// The hub's high-water op gauge (shared), read for op lag.
    hub_next_op: Arc<Gauge>,
    /// `next_op - acked_op` — ops shipped but not yet acked by this
    /// follower.
    lag_ops: Arc<Gauge>,
    /// Shipped-but-unacked payload bytes for this follower.
    lag_bytes: Arc<Gauge>,
}

/// The hub's instrument set, registered on the primary's registry by
/// [`ReplHub::bind_obs`] so one `STATS` snapshot covers the shipping
/// side too.
struct HubMetrics {
    registry: Arc<Registry>,
    /// Socket-write time of one broadcast op across all followers.
    ship_us: Arc<Histogram>,
    /// `sync_ack` wait per op (absent from async-shipping profiles).
    ack_wait_us: Arc<Histogram>,
    shipped_ops: Arc<Counter>,
    /// High-water op number (catch-up chunks included).
    next_op: Arc<Gauge>,
    /// Cumulative payload bytes assigned to ops.
    shipped_bytes: Arc<Gauge>,
    catchup_bytes: Arc<Counter>,
    follower_connects: Arc<Counter>,
    follower_detaches: Arc<Counter>,
}

impl HubMetrics {
    fn register(obs: &Arc<Registry>) -> HubMetrics {
        HubMetrics {
            registry: Arc::clone(obs),
            ship_us: obs.histogram("vm_repl_ship_us"),
            ack_wait_us: obs.histogram("vm_repl_ack_wait_us"),
            shipped_ops: obs.counter("vm_repl_shipped_ops_total"),
            next_op: obs.gauge("vm_repl_next_op"),
            shipped_bytes: obs.gauge("vm_repl_shipped_bytes"),
            catchup_bytes: obs.counter("vm_repl_catchup_bytes_total"),
            follower_connects: obs.counter("vm_repl_follower_connects_total"),
            follower_detaches: obs.counter("vm_repl_follower_detaches_total"),
        }
    }
}

/// Everything serialized by the stream mutex.
struct StreamState {
    next_op: u64,
    sessions: Vec<FollowerSession>,
}

/// The shipping side of a replicated cell: listener, follower
/// sessions, op counter, watermark.
pub struct ReplHub {
    dir: PathBuf,
    cfg: ReplicationConfig,
    addr: SocketAddr,
    stream: Mutex<StreamState>,
    shutdown: AtomicBool,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Telemetry, bound once (idempotently) by [`ReplHub::bind_obs`].
    obs: OnceLock<HubMetrics>,
    /// Label source for per-follower lag gauges.
    next_follower_id: AtomicU64,
}

impl ReplHub {
    /// Bind `listen_addr` and start accepting followers that will be
    /// caught up from the segment directory `dir`.
    pub fn spawn(
        dir: impl AsRef<Path>,
        listen_addr: impl ToSocketAddrs,
        cfg: ReplicationConfig,
    ) -> std::io::Result<Arc<ReplHub>> {
        let listener = TcpListener::bind(listen_addr)?;
        let addr = listener.local_addr()?;
        let hub = Arc::new(ReplHub {
            dir: dir.as_ref().to_path_buf(),
            cfg,
            addr,
            stream: Mutex::new(StreamState {
                next_op: 0,
                sessions: Vec::new(),
            }),
            shutdown: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
            obs: OnceLock::new(),
            next_follower_id: AtomicU64::new(1),
        });
        let accept_hub = Arc::clone(&hub);
        let accept = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_hub.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let Ok(stream) = conn else { continue };
                // A misbehaving joiner must not wedge the accept loop.
                if let Err(e) = accept_hub.admit_follower(stream) {
                    let _ = e; // refused or died mid-handshake; it can redial
                }
            }
        });
        hub.threads.lock().push(accept);
        Ok(hub)
    }

    /// The address followers dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Bind the hub's telemetry to `obs` (normally the primary server's
    /// registry — [`Primary::open`] does this). Idempotent; later calls
    /// are ignored. Sessions admitted before the bind ship unmetered.
    pub fn bind_obs(&self, obs: &Arc<Registry>) {
        let _ = self.obs.set(HubMetrics::register(obs));
    }

    /// Drop dead sessions, counting and journaling the detaches.
    fn prune_dead(&self, state: &mut StreamState) {
        let before = state.sessions.len();
        state.sessions.retain(|s| s.alive.load(Ordering::Acquire));
        let dropped = before - state.sessions.len();
        if dropped > 0 {
            if let Some(h) = self.obs.get() {
                h.follower_detaches.add(dropped as u64);
                h.registry.journal().record(
                    "follower_detached",
                    format!("{dropped} follower session(s) detached"),
                );
            }
        }
    }

    /// Account one shipped op: `bytes` of payload assigned to
    /// `state.next_op`, ledgered for `target` (a catch-up session not
    /// yet registered) or for every registered session.
    fn note_ship(&self, state: &StreamState, bytes: u64, target: Option<&SessionObs>) {
        let Some(h) = self.obs.get() else { return };
        h.shipped_ops.inc();
        h.next_op.set(state.next_op as i64);
        h.shipped_bytes.add(bytes as i64);
        let push = |so: &SessionObs| {
            let cum = so.shipped_bytes.fetch_add(bytes, Ordering::AcqRel) + bytes;
            let mut ledger = so.ledger.lock();
            ledger.push_back((state.next_op, cum));
            if ledger.len() > SESSION_LEDGER_CAP {
                ledger.pop_front();
            }
        };
        match target {
            Some(so) => push(so),
            None => {
                for s in &state.sessions {
                    if let Some(so) = &s.obs {
                        push(so);
                    }
                }
            }
        }
    }

    /// Live follower sessions right now.
    pub fn follower_count(&self) -> usize {
        let mut stream = self.stream.lock();
        self.prune_dead(&mut stream);
        stream.sessions.len()
    }

    /// The commit watermark: the highest op every live follower has
    /// acked (0 with no live followers — nothing is remotely
    /// committed).
    pub fn watermark(&self) -> u64 {
        let mut stream = self.stream.lock();
        self.prune_dead(&mut stream);
        stream
            .sessions
            .iter()
            .map(|s| *s.ack.acked.lock().expect("ack cell poisoned"))
            .min()
            .unwrap_or(0)
    }

    /// Ops shipped so far.
    pub fn shipped_ops(&self) -> u64 {
        self.stream.lock().next_op
    }

    /// Stop accepting, drop every follower session, join the threads.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway dial.
        let _ = TcpStream::connect(self.addr);
        {
            let mut stream = self.stream.lock();
            for s in stream.sessions.drain(..) {
                s.alive.store(false, Ordering::Release);
                let _ = s.stream.shutdown(std::net::Shutdown::Both);
            }
        }
        let threads: Vec<_> = std::mem::take(&mut *self.threads.lock());
        for t in threads {
            let _ = t.join();
        }
    }

    /// Handshake + catch-up + registration for one dialing follower.
    fn admit_follower(self: &Arc<Self>, stream: TcpStream) -> std::io::Result<()> {
        stream.set_nodelay(true).ok();
        // Bound the handshake read so a silent dialer can't pin the
        // accept loop (and with it, shutdown); cleared again below —
        // an idle ACK channel is normal, a mute join is not.
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let Some(ReplMsg::Hello { epoch, cursors }) = ReplMsg::read_from(&mut reader)? else {
            return Err(std::io::Error::other("follower closed before HELLO"));
        };
        stream.set_read_timeout(None)?;
        // Epoch fence: a follower from a *later* configuration means
        // this primary is the stale node; it must not feed it.
        if epoch > self.cfg.epoch {
            return Err(std::io::Error::other(format!(
                "follower epoch {epoch} ahead of primary epoch {} — refusing",
                self.cfg.epoch
            )));
        }
        let mut writer = stream.try_clone()?;
        ReplMsg::HelloOk {
            epoch: self.cfg.epoch,
        }
        .write_to(&mut writer)?;

        // Under the stream mutex: stream the missing segment tails,
        // then register for live shipping. Holding the lock across
        // both is what closes the catch-up/live gap (see module docs).
        let mut state = self.stream.lock();
        let sobs = self.obs.get().map(|h| {
            let id = self
                .next_follower_id
                .fetch_add(1, Ordering::Relaxed)
                .to_string();
            h.follower_connects.inc();
            h.registry.journal().record(
                "follower_connected",
                format!("follower {id} admitted at op {}", state.next_op),
            );
            Arc::new(SessionObs {
                ledger: Mutex::new(VecDeque::new()),
                shipped_bytes: AtomicU64::new(0),
                hub_next_op: Arc::clone(&h.next_op),
                lag_ops: h
                    .registry
                    .gauge_with("vm_repl_watermark_lag_ops", &[("follower", id.as_str())]),
                lag_bytes: h
                    .registry
                    .gauge_with("vm_repl_watermark_lag_bytes", &[("follower", id.as_str())]),
            })
        });
        self.catch_up(&mut state, &mut writer, &cursors, sobs.as_deref())?;
        let ack = Arc::new(AckCell {
            acked: StdMutex::new(0),
            advanced: Condvar::new(),
        });
        let alive = Arc::new(AtomicBool::new(true));
        let session = FollowerSession {
            stream,
            ack: Arc::clone(&ack),
            alive: Arc::clone(&alive),
            obs: sobs.clone(),
        };
        state.sessions.push(session);
        drop(state);

        let reader_thread = std::thread::spawn(move || {
            // Cumulative session bytes at the highest acked op, carried
            // across acks (a capped ledger may skip entries).
            let mut acked_cum: u64 = 0;
            // Anything that isn't an ACK — EOF, garbage, an unexpected
            // opcode — falls out of the `while let` and ends the session.
            while let Ok(Some(ReplMsg::Ack { op })) = ReplMsg::read_from(&mut reader) {
                let mut acked = ack.acked.lock().expect("ack cell poisoned");
                if op > *acked {
                    *acked = op;
                }
                drop(acked);
                ack.advanced.notify_all();
                // Lag gauges come last: nothing below touches the ack
                // cell or the stream mutex, so a blocked sync_ack waiter
                // is already unblocked by the notify above.
                if let Some(so) = &sobs {
                    let next = so.hub_next_op.get().max(0) as u64;
                    so.lag_ops.set(next.saturating_sub(op) as i64);
                    let mut ledger = so.ledger.lock();
                    while ledger.front().is_some_and(|(o, _)| *o <= op) {
                        acked_cum = ledger.pop_front().expect("front checked").1;
                    }
                    drop(ledger);
                    let shipped = so.shipped_bytes.load(Ordering::Acquire);
                    so.lag_bytes.set(shipped.saturating_sub(acked_cum) as i64);
                }
            }
            // Zero the lag gauges so a detached follower doesn't pin a
            // stale lag in every later snapshot.
            if let Some(so) = &sobs {
                so.lag_ops.set(0);
                so.lag_bytes.set(0);
            }
            alive.store(false, Ordering::Release);
            ack.advanced.notify_all();
        });
        self.threads.lock().push(reader_thread);
        Ok(())
    }

    /// Stream every committed segment frame past the follower's
    /// cursors, chunked, assigning ops from the shared counter. Called
    /// with the stream mutex held.
    fn catch_up(
        &self,
        state: &mut StreamState,
        writer: &mut TcpStream,
        cursors: &[(u64, u64)],
        sobs: Option<&SessionObs>,
    ) -> std::io::Result<()> {
        let mut minutes: Vec<MinuteId> = std::fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_segment_file_name(&e.file_name().to_string_lossy()))
            .collect();
        minutes.sort_unstable();
        for minute in minutes {
            let skip = cursors
                .iter()
                .find(|(m, _)| *m == minute.0)
                .map_or(0, |(_, records)| *records) as usize;
            let path = segment_path(&self.dir, minute);
            // `None` marks a foreign file recovery would quarantine;
            // the store can't have written it, so there is nothing of
            // ours to ship. `Some(empty)` covers a racing eviction.
            let Some(frames) = tail_frames(&path, minute, skip)? else {
                continue;
            };
            let mut chunk: Vec<Vec<u8>> = Vec::new();
            let mut chunk_bytes = 0usize;
            for frame in frames {
                if chunk_bytes + frame.len() > MAX_FRAMES_MSG_BYTES && !chunk.is_empty() {
                    self.ship_chunk(state, writer, minute, std::mem::take(&mut chunk), sobs)?;
                    chunk_bytes = 0;
                }
                chunk_bytes += frame.len();
                chunk.push(frame);
            }
            if !chunk.is_empty() {
                self.ship_chunk(state, writer, minute, chunk, sobs)?;
            }
        }
        Ok(())
    }

    fn ship_chunk(
        &self,
        state: &mut StreamState,
        writer: &mut TcpStream,
        minute: MinuteId,
        frames: Vec<Vec<u8>>,
        sobs: Option<&SessionObs>,
    ) -> std::io::Result<()> {
        state.next_op += 1;
        let bytes: u64 = frames.iter().map(|f| f.len() as u64).sum();
        if let Some(h) = self.obs.get() {
            h.catchup_bytes.add(bytes);
        }
        self.note_ship(state, bytes, sobs);
        ReplMsg::Frames {
            op: state.next_op,
            minute: minute.0,
            frames,
        }
        .write_to(writer)
    }

    /// Ship one committed append to every live follower (called by
    /// [`ReplicatedWal::append`] *after* local durability).
    ///
    /// Encoding runs on worker threads through the store's group-commit
    /// framer ([`vm_store::frame_records`]) *before* the stream lock is
    /// taken, and a large append ships as several
    /// [`MAX_FRAMES_MSG_BYTES`]-bounded ops rather than one giant
    /// message — so a follower starts validating and replaying the
    /// first chunk while later chunks are still being written, and the
    /// ack watermark advances incrementally instead of only at the end.
    /// A follower admitted between the encode and the send sees these
    /// records twice (once via catch-up, once shipped); its replay
    /// dedup eats the overlap, as for any catch-up/stream overlap.
    fn ship_append(&self, minute: MinuteId, vps: &[&StoredVp]) {
        {
            // Don't pay the encode with nobody listening.
            let mut state = self.stream.lock();
            self.prune_dead(&mut state);
            if state.sessions.is_empty() {
                return;
            }
        }
        let frames = vm_store::frame_records(vps);
        let mut state = self.stream.lock();
        self.prune_dead(&mut state);
        if state.sessions.is_empty() {
            return;
        }
        let mut chunk: Vec<Vec<u8>> = Vec::new();
        let mut chunk_bytes = 0usize;
        for frame in frames {
            if chunk_bytes + frame.len() > MAX_FRAMES_MSG_BYTES && !chunk.is_empty() {
                state.next_op += 1;
                self.note_ship(&state, chunk_bytes as u64, None);
                let msg = ReplMsg::Frames {
                    op: state.next_op,
                    minute: minute.0,
                    frames: std::mem::take(&mut chunk),
                };
                self.broadcast(&mut state, &msg);
                chunk_bytes = 0;
            }
            chunk_bytes += frame.len();
            chunk.push(frame);
        }
        if !chunk.is_empty() {
            state.next_op += 1;
            self.note_ship(&state, chunk_bytes as u64, None);
            let msg = ReplMsg::Frames {
                op: state.next_op,
                minute: minute.0,
                frames: chunk,
            };
            self.broadcast(&mut state, &msg);
        }
    }

    /// Mirror a retention sweep.
    fn ship_evict(&self, cutoff: MinuteId) {
        let mut state = self.stream.lock();
        self.prune_dead(&mut state);
        if state.sessions.is_empty() {
            return;
        }
        state.next_op += 1;
        self.note_ship(&state, 0, None);
        let msg = ReplMsg::Evict {
            op: state.next_op,
            cutoff: cutoff.0,
        };
        self.broadcast(&mut state, &msg);
    }

    /// Write `msg` to every session; under `sync_ack`, wait for each
    /// to ack it (detaching on timeout). Shipping failures detach the
    /// session — replication never fails the primary's local commit.
    fn broadcast(&self, state: &mut StreamState, msg: &ReplMsg) {
        let op = state.next_op;
        let obs = self.obs.get();
        let write_all = |sessions: &mut Vec<FollowerSession>| {
            for s in sessions.iter_mut() {
                let mut writer = &s.stream;
                if msg.write_to(&mut writer).is_err() {
                    s.alive.store(false, Ordering::Release);
                    let _ = s.stream.shutdown(std::net::Shutdown::Both);
                }
            }
        };
        match obs {
            Some(h) => h.ship_us.time(|| write_all(&mut state.sessions)),
            None => write_all(&mut state.sessions),
        }
        if self.cfg.sync_ack {
            let wait_all = |sessions: &[FollowerSession]| {
                for s in sessions {
                    if !s.alive.load(Ordering::Acquire) {
                        continue;
                    }
                    let deadline = std::time::Instant::now() + self.cfg.ack_timeout;
                    let mut acked = s.ack.acked.lock().expect("ack cell poisoned");
                    while *acked < op && s.alive.load(Ordering::Acquire) {
                        let now = std::time::Instant::now();
                        if now >= deadline {
                            // Too slow for synchronous replication: detach
                            // rather than stall every future commit.
                            s.alive.store(false, Ordering::Release);
                            let _ = s.stream.shutdown(std::net::Shutdown::Both);
                            break;
                        }
                        let (guard, timeout) = s
                            .ack
                            .advanced
                            .wait_timeout(acked, deadline - now)
                            .expect("ack cell poisoned");
                        acked = guard;
                        if timeout.timed_out() && *acked < op {
                            s.alive.store(false, Ordering::Release);
                            let _ = s.stream.shutdown(std::net::Shutdown::Both);
                            break;
                        }
                    }
                }
            };
            match obs {
                Some(h) => h.ack_wait_us.time(|| wait_all(&state.sessions)),
                None => wait_all(&state.sessions),
            }
        }
        self.prune_dead(state);
    }
}

impl Drop for ReplHub {
    fn drop(&mut self) {
        // Arc'd hubs shut down via the method; this is the last-resort
        // path when the final clone drops without one.
        if !self.shutdown.swap(true, Ordering::AcqRel) {
            let _ = TcpStream::connect(self.addr);
            let mut stream = self.stream.lock();
            for s in stream.sessions.drain(..) {
                let _ = s.stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

/// A [`VpWal`] decorator: local durability first, then log shipping.
///
/// Attach one to a server (`attach_wal` / `replace_wal`) and every
/// committed append flows to the hub's followers; eviction sweeps ship
/// too, so follower retention mirrors the primary's. `sync` is purely
/// local — the remote equivalent is the ack watermark.
pub struct ReplicatedWal {
    inner: Box<dyn VpWal>,
    hub: Arc<ReplHub>,
}

impl ReplicatedWal {
    /// Wrap `inner` so its committed appends also ship through `hub`.
    pub fn new(inner: Box<dyn VpWal>, hub: Arc<ReplHub>) -> Self {
        ReplicatedWal { inner, hub }
    }

    /// The hub this WAL ships through.
    pub fn hub(&self) -> &Arc<ReplHub> {
        &self.hub
    }
}

impl VpWal for ReplicatedWal {
    fn append(&self, vps: &[&StoredVp]) -> std::io::Result<()> {
        let Some(first) = vps.first() else {
            return Ok(());
        };
        // Local first: a record is never on a follower before it is on
        // the primary's own disk.
        self.inner.append(vps)?;
        self.hub.ship_append(first.minute(), vps);
        Ok(())
    }

    fn evict_minutes_before(&self, cutoff: MinuteId) -> std::io::Result<usize> {
        let removed = self.inner.evict_minutes_before(cutoff)?;
        self.hub.ship_evict(cutoff);
        Ok(removed)
    }

    fn sync(&self) -> std::io::Result<()> {
        self.inner.sync()
    }
}

/// A serving primary: a durable [`ViewMapServer`] whose WAL ships to
/// followers through an embedded [`ReplHub`].
pub struct Primary {
    server: Arc<ViewMapServer>,
    hub: Arc<ReplHub>,
}

impl Primary {
    /// Open (or recover) the store in `dir` under the operator's
    /// signing `key`, start the replication listener on `listen_addr`,
    /// and wire the server's WAL through it.
    ///
    /// The key rules are [`vm_store::PersistentServer::open_with_key`]'s: an
    /// existing keyfile must match (re-keying orphans outstanding
    /// cash); a missing one is persisted from `key`. The whole
    /// replication group shares one key — that is what lets a promoted
    /// follower keep redeeming cash the old primary minted.
    pub fn open(
        dir: impl AsRef<Path>,
        key: RsaKeyPair,
        vmcfg: ViewmapConfig,
        store_cfg: StoreConfig,
        repl_cfg: ReplicationConfig,
        listen_addr: impl ToSocketAddrs,
    ) -> std::io::Result<(Primary, RecoveryReport)> {
        let dir = dir.as_ref().to_path_buf();
        // Assemble by hand instead of `open_with_key`: the store must
        // end up *inside* a ReplicatedWal, not attached bare.
        let (store, vps, mut report) = VpStore::open(&dir, store_cfg)?;
        match vm_store::keyfile::load(store.dir())? {
            Some(existing) if existing != key => {
                return Err(std::io::Error::other(format!(
                    "store {} already holds a different signing key — refusing to re-key",
                    store.dir().display()
                )));
            }
            Some(_) => {}
            None => vm_store::keyfile::save(store.dir(), &key)?,
        }
        let mut srv = ViewMapServer::with_key(key, vmcfg);
        let results = srv.submit_replay_batch(vps);
        report.rejected = results.iter().filter(|r| r.is_err()).count();
        // Bind store and hub telemetry into the server's registry so a
        // single STATS snapshot covers the whole replicated cell. The
        // store must bind before it moves into the ReplicatedWal.
        store.bind_obs(srv.obs(), &report);
        let hub = ReplHub::spawn(&dir, listen_addr, repl_cfg)?;
        hub.bind_obs(srv.obs());
        srv.attach_wal(Box::new(ReplicatedWal::new(
            Box::new(store),
            Arc::clone(&hub),
        )));
        Ok((
            Primary {
                server: Arc::new(srv),
                hub,
            },
            report,
        ))
    }

    /// The serving server (share it with a `VmService` front-end).
    pub fn server(&self) -> &Arc<ViewMapServer> {
        &self.server
    }

    /// The replication hub.
    pub fn hub(&self) -> &Arc<ReplHub> {
        &self.hub
    }

    /// The address followers dial.
    pub fn repl_addr(&self) -> SocketAddr {
        self.hub.addr()
    }

    /// Kill the replication side (listener, sessions) without touching
    /// the local server — the "primary crashed" half of a failover.
    /// Dropping the `Primary` does the same.
    pub fn shutdown_replication(&self) {
        self.hub.shutdown();
    }
}

impl Drop for Primary {
    fn drop(&mut self) {
        self.hub.shutdown();
    }
}
