//! The replication wire protocol: typed messages over the service's
//! frame codec, carrying the store's segment frames verbatim.
//!
//! Replication adds **no third codec**. The outer envelope is the
//! vm-service frame ([`vm_service::proto::Frame`]: magic `VMS1`,
//! length, checksum64, `request_id | opcode | payload`) with
//! replication opcodes in the `0x20` range and `request_id` pinned to
//! 0 — a replication link is a dedicated connection, not a pipelined
//! session, so there is nothing to correlate. The records *inside* a
//! [`ReplMsg::Frames`] payload are raw **segment frames** — the exact
//! bytes [`vm_store`] appends to disk (`VMR1` header + delta-compressed
//! body) — so the follower validates and decodes shipped records with
//! the same rules recovery applies to its own log, and a shipped byte
//! stream is bit-identical to the primary's segment tail.
//!
//! # Messages
//!
//! | op | message | direction | payload |
//! |---|---|---|---|
//! | `0x20` | `HELLO` | follower → primary | `epoch u64`, `n u32`, n × (`minute u64`, `records u64`) |
//! | `0x21` | `FRAMES` | primary → follower | `op u64`, `minute u64`, `n u32`, n × (`len u32`, segment frame) |
//! | `0x22` | `EVICT` | primary → follower | `op u64`, `cutoff u64` |
//! | `0x23` | `ACK` | follower → primary | `op u64` |
//! | `0x24` | `HELLO_OK` | primary → follower | `epoch u64` |
//!
//! `HELLO` carries the follower's **per-minute cursors** — how many
//! committed records its own log already holds for each minute — which
//! is all the primary needs to stream exactly the missing tail of each
//! segment ([`vm_store::tail_frames`]). Cursors make catch-up robust
//! to retention: an evicted minute simply has no segment left to tail.
//! Overlap (a cursor behind what was actually shipped) is safe because
//! the follower applies through the server's replay path, whose dedup
//! rejects records it already holds *before* they reach its log.
//!
//! `op` numbers are assigned by the primary, monotonically per hub
//! lifetime, one per shipped message; `ACK` echoes the highest op the
//! follower has fully applied (validated, replayed, logged). The
//! primary's commit watermark is the smallest acked op across live
//! followers.

use std::io::{BufRead, Write};
use viewmap_core::types::MinuteId;
use viewmap_core::vp::StoredVp;
use vm_service::proto::Frame;
use vm_store::FRAME_HEADER_BYTES as SEGMENT_FRAME_HEADER_BYTES;

/// Follower → primary: identify, prove epoch, describe what's held.
pub const OP_REPL_HELLO: u8 = 0x20;
/// Primary → follower: one op's worth of raw segment frames.
pub const OP_REPL_FRAMES: u8 = 0x21;
/// Primary → follower: a retention sweep to mirror.
pub const OP_REPL_EVICT: u8 = 0x22;
/// Follower → primary: highest fully-applied op.
pub const OP_REPL_ACK: u8 = 0x23;
/// Primary → follower: stream accepted; primary's epoch.
pub const OP_REPL_HELLO_OK: u8 = 0x24;

/// One typed replication message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplMsg {
    /// Follower's epoch plus per-minute `(minute, committed records)`
    /// cursors for catch-up positioning.
    Hello {
        /// The follower's current epoch.
        epoch: u64,
        /// `(minute, committed record count)` for every minute the
        /// follower's own log holds.
        cursors: Vec<(u64, u64)>,
    },
    /// Primary accepts the stream.
    HelloOk {
        /// The primary's epoch (must be ≥ the follower's).
        epoch: u64,
    },
    /// Raw segment frames for one minute, in bucket order.
    Frames {
        /// This message's op number.
        op: u64,
        /// The minute every carried frame belongs to.
        minute: u64,
        /// Raw segment frames (`VMR1` header + body), disk bytes
        /// verbatim.
        frames: Vec<Vec<u8>>,
    },
    /// Mirror `evict_minutes_before(cutoff)`.
    Evict {
        /// This message's op number.
        op: u64,
        /// Exclusive minute cutoff.
        cutoff: u64,
    },
    /// Highest op the follower has fully applied.
    Ack {
        /// The op number.
        op: u64,
    },
}

/// A replication message that failed to parse. The connection is not
/// recoverable; the receiver drops it and (for a follower) resyncs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replication wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

fn take_u32(buf: &[u8], at: &mut usize) -> Result<u32, WireError> {
    let bytes = buf
        .get(*at..*at + 4)
        .ok_or_else(|| err("truncated u32"))?
        .try_into()
        .expect("4 bytes");
    *at += 4;
    Ok(u32::from_le_bytes(bytes))
}

fn take_u64(buf: &[u8], at: &mut usize) -> Result<u64, WireError> {
    let bytes = buf
        .get(*at..*at + 8)
        .ok_or_else(|| err("truncated u64"))?
        .try_into()
        .expect("8 bytes");
    *at += 8;
    Ok(u64::from_le_bytes(bytes))
}

impl ReplMsg {
    /// The message's opcode.
    pub fn opcode(&self) -> u8 {
        match self {
            ReplMsg::Hello { .. } => OP_REPL_HELLO,
            ReplMsg::HelloOk { .. } => OP_REPL_HELLO_OK,
            ReplMsg::Frames { .. } => OP_REPL_FRAMES,
            ReplMsg::Evict { .. } => OP_REPL_EVICT,
            ReplMsg::Ack { .. } => OP_REPL_ACK,
        }
    }

    /// Wrap the message in a service frame (request id 0).
    pub fn to_frame(&self) -> Frame {
        let mut payload = Vec::new();
        match self {
            ReplMsg::Hello { epoch, cursors } => {
                payload.extend_from_slice(&epoch.to_le_bytes());
                payload.extend_from_slice(&(cursors.len() as u32).to_le_bytes());
                for (minute, records) in cursors {
                    payload.extend_from_slice(&minute.to_le_bytes());
                    payload.extend_from_slice(&records.to_le_bytes());
                }
            }
            ReplMsg::HelloOk { epoch } => payload.extend_from_slice(&epoch.to_le_bytes()),
            ReplMsg::Frames { op, minute, frames } => {
                payload.extend_from_slice(&op.to_le_bytes());
                payload.extend_from_slice(&minute.to_le_bytes());
                payload.extend_from_slice(&(frames.len() as u32).to_le_bytes());
                for f in frames {
                    payload.extend_from_slice(&(f.len() as u32).to_le_bytes());
                    payload.extend_from_slice(f);
                }
            }
            ReplMsg::Evict { op, cutoff } => {
                payload.extend_from_slice(&op.to_le_bytes());
                payload.extend_from_slice(&cutoff.to_le_bytes());
            }
            ReplMsg::Ack { op } => payload.extend_from_slice(&op.to_le_bytes()),
        }
        Frame {
            request_id: 0,
            opcode: self.opcode(),
            payload,
        }
    }

    /// Parse a service frame back into a typed message.
    pub fn from_frame(frame: &Frame) -> Result<ReplMsg, WireError> {
        let buf = frame.payload.as_slice();
        let mut at = 0usize;
        let msg = match frame.opcode {
            OP_REPL_HELLO => {
                let epoch = take_u64(buf, &mut at)?;
                let n = take_u32(buf, &mut at)? as usize;
                if n > buf.len() / 16 + 1 {
                    return Err(err(format!("hello cursor count {n} exceeds payload")));
                }
                let mut cursors = Vec::with_capacity(n);
                for _ in 0..n {
                    let minute = take_u64(buf, &mut at)?;
                    let records = take_u64(buf, &mut at)?;
                    cursors.push((minute, records));
                }
                ReplMsg::Hello { epoch, cursors }
            }
            OP_REPL_HELLO_OK => ReplMsg::HelloOk {
                epoch: take_u64(buf, &mut at)?,
            },
            OP_REPL_FRAMES => {
                let op = take_u64(buf, &mut at)?;
                let minute = take_u64(buf, &mut at)?;
                let n = take_u32(buf, &mut at)? as usize;
                if n > buf.len() / SEGMENT_FRAME_HEADER_BYTES + 1 {
                    return Err(err(format!("frame count {n} exceeds payload")));
                }
                let mut frames = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = take_u32(buf, &mut at)? as usize;
                    let bytes = buf
                        .get(at..at + len)
                        .ok_or_else(|| err("truncated segment frame"))?;
                    at += len;
                    frames.push(bytes.to_vec());
                }
                ReplMsg::Frames { op, minute, frames }
            }
            OP_REPL_EVICT => ReplMsg::Evict {
                op: take_u64(buf, &mut at)?,
                cutoff: take_u64(buf, &mut at)?,
            },
            OP_REPL_ACK => ReplMsg::Ack {
                op: take_u64(buf, &mut at)?,
            },
            other => return Err(err(format!("unknown replication opcode {other:#04x}"))),
        };
        if at != buf.len() {
            return Err(err(format!(
                "trailing garbage: {} of {} payload bytes consumed",
                at,
                buf.len()
            )));
        }
        Ok(msg)
    }

    /// Write the message as one service frame and flush.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        self.to_frame().write_to(w)?;
        w.flush()
    }

    /// Read one message. `Ok(None)` is a clean EOF at a frame boundary.
    pub fn read_from(r: &mut impl BufRead) -> std::io::Result<Option<ReplMsg>> {
        let Some(frame) = Frame::read_from(r)? else {
            return Ok(None);
        };
        ReplMsg::from_frame(&frame)
            .map(Some)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Validate one shipped segment frame with exactly the rules recovery
/// applies to a frame read off disk — magic, declared length, checksum,
/// decodable body, minute agreement — and return the decoded record.
///
/// A frame that fails here is an **injury**, not a protocol state: the
/// follower applies the valid prefix of the message, counts the injury,
/// and drops the connection to resync via catch-up. It must never panic
/// and must never let a corrupt record reach the follower's store.
pub fn validate_segment_frame(bytes: &[u8], minute: MinuteId) -> Result<StoredVp, WireError> {
    if bytes.len() < SEGMENT_FRAME_HEADER_BYTES {
        return Err(err("segment frame shorter than its header"));
    }
    if bytes[..4] != vm_store::segment::FRAME_MAGIC {
        return Err(err("bad segment frame magic"));
    }
    let body_len = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    if bytes.len() != SEGMENT_FRAME_HEADER_BYTES + body_len {
        return Err(err(format!(
            "declared body {body_len} B, carried {} B",
            bytes.len() - SEGMENT_FRAME_HEADER_BYTES
        )));
    }
    let declared = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let body = &bytes[SEGMENT_FRAME_HEADER_BYTES..];
    if vm_crypto::checksum64(body) != declared {
        return Err(err("segment frame checksum mismatch"));
    }
    let vp = vm_store::decode_record(body).map_err(|e| err(format!("undecodable body: {e}")))?;
    if vp.minute() != minute {
        return Err(err(format!(
            "record minute {} inside a minute-{} message",
            vp.minute().0,
            minute.0
        )));
    }
    Ok(vp)
}

/// Validate a whole `FRAMES` payload with exactly
/// [`validate_segment_frame`]'s rules, batched for the apply path's hot
/// loop: structural header checks first, every body checksum through
/// the multi-buffer engine ([`vm_crypto::checksum64_many`]), then the
/// surviving bodies decoded on worker threads. Returns the decoded
/// records and, if any frame is injured, the first injury — in which
/// case the records are exactly the **valid prefix** before it, the
/// same contract the serial validator gives the follower (apply the
/// prefix, count the injury, drop the connection, resync).
pub fn validate_segment_frames(
    frames: &[Vec<u8>],
    minute: MinuteId,
) -> (Vec<StoredVp>, Option<WireError>) {
    // Structural + checksum screen: find the first frame the serial
    // validator would reject before decoding.
    let mut structurally_ok = frames.len();
    for (i, bytes) in frames.iter().enumerate() {
        let ok = bytes.len() >= SEGMENT_FRAME_HEADER_BYTES
            && bytes[..4] == vm_store::segment::FRAME_MAGIC
            && bytes.len()
                == SEGMENT_FRAME_HEADER_BYTES
                    + u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
        if !ok {
            structurally_ok = i;
            break;
        }
    }
    let bodies: Vec<&[u8]> = frames[..structurally_ok]
        .iter()
        .map(|b| &b[SEGMENT_FRAME_HEADER_BYTES..])
        .collect();
    let mut clean = structurally_ok;
    for (i, sum) in vm_crypto::checksum64_many(&bodies).into_iter().enumerate() {
        let declared = u64::from_le_bytes(
            frames[i][8..SEGMENT_FRAME_HEADER_BYTES]
                .try_into()
                .expect("8 bytes"),
        );
        if sum != declared {
            clean = i;
            break;
        }
    }
    // Decode the clean prefix in parallel; injuries past `clean` are
    // re-diagnosed serially below for the exact per-frame error.
    let decoded = if clean == 0 {
        Vec::new()
    } else {
        let cuts = viewmap_core::par::even_cuts(
            clean,
            viewmap_core::par::auto_threads(clean, DECODE_PARALLEL_THRESHOLD),
        );
        viewmap_core::par::map_ranges(&cuts, |_t, lo, hi| {
            frames[lo..hi]
                .iter()
                .map(|b| vm_store::decode_record(&b[SEGMENT_FRAME_HEADER_BYTES..]))
                .collect::<Vec<_>>()
        })
    };
    let mut records = Vec::with_capacity(clean);
    for result in decoded.into_iter().flatten() {
        match result {
            Ok(vp) if vp.minute() == minute => records.push(vp),
            Ok(vp) => {
                return (
                    records,
                    Some(err(format!(
                        "record minute {} inside a minute-{} message",
                        vp.minute().0,
                        minute.0
                    ))),
                );
            }
            Err(e) => return (records, Some(err(format!("undecodable body: {e}")))),
        }
    }
    if clean < frames.len() {
        // Re-run the serial validator on the injured frame for its
        // precise diagnosis (and as the single source of truth).
        let injury = validate_segment_frame(&frames[clean], minute)
            .err()
            .unwrap_or_else(|| err("batched validation disagrees with serial validator"));
        return (records, Some(injury));
    }
    (records, None)
}

/// Batches below this decode on the caller's thread. Lower than the
/// store's append threshold: decode is the apply path's biggest single
/// cost, so even a few hundred records repay the spawn/join.
const DECODE_PARALLEL_THRESHOLD: usize = 512;

/// Ceiling on segment-frame bytes per `FRAMES` message: catch-up chunks
/// a long segment tail rather than building one giant payload (the
/// outer codec's `MAX_BODY_BYTES` is 64 MiB; staying far under it keeps
/// per-message buffers cache-friendly on both ends).
pub const MAX_FRAMES_MSG_BYTES: usize = 2 << 20;

#[cfg(test)]
mod tests {
    use super::*;
    use viewmap_core::bloom::BloomFilter;
    use viewmap_core::types::{GeoPos, VpId, SECONDS_PER_VP};
    use viewmap_core::vd::ViewDigest;

    fn vp(tag: u64, minute: u64) -> StoredVp {
        let mut id = [0u8; 16];
        id[..8].copy_from_slice(&tag.to_le_bytes());
        id[8..].copy_from_slice(&minute.to_le_bytes());
        let vp_id = VpId(vm_crypto::Digest16(id));
        let start = minute * SECONDS_PER_VP;
        let vds: Vec<ViewDigest> = (1..=SECONDS_PER_VP as u16)
            .map(|seq| ViewDigest {
                seq,
                flags: 0,
                time: start + seq as u64,
                loc: GeoPos::new(seq as f64 * 8.0, tag as f64),
                file_size: seq as u64 * 64,
                initial_loc: GeoPos::new(0.0, tag as f64),
                vp_id,
                hash: vm_crypto::Digest16(id),
            })
            .collect();
        StoredVp::new(vp_id, vds, BloomFilter::default(), false)
    }

    fn segment_frame(tag: u64, minute: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        vm_store::segment::append_frame(&mut buf, &vp(tag, minute));
        buf
    }

    #[test]
    fn every_message_round_trips() {
        let msgs = [
            ReplMsg::Hello {
                epoch: 7,
                cursors: vec![(0, 12), (9, 1)],
            },
            ReplMsg::HelloOk { epoch: 7 },
            ReplMsg::Frames {
                op: 41,
                minute: 9,
                frames: vec![segment_frame(1, 9), segment_frame(2, 9)],
            },
            ReplMsg::Evict { op: 42, cutoff: 5 },
            ReplMsg::Ack { op: 41 },
        ];
        for msg in msgs {
            let mut wire = Vec::new();
            msg.write_to(&mut wire).unwrap();
            let mut r = std::io::BufReader::new(wire.as_slice());
            assert_eq!(ReplMsg::read_from(&mut r).unwrap().unwrap(), msg);
            assert!(ReplMsg::read_from(&mut r).unwrap().is_none(), "clean EOF");
        }
    }

    #[test]
    fn shipped_frames_are_disk_bytes_and_validate() {
        let frame = segment_frame(3, 4);
        let rec = validate_segment_frame(&frame, MinuteId(4)).unwrap();
        let mut rebuilt = Vec::new();
        vm_store::segment::append_frame(&mut rebuilt, &rec);
        assert_eq!(rebuilt, frame, "validate→re-encode is bit-identical");
        assert!(matches!(
            validate_segment_frame(&frame, MinuteId(5)),
            Err(WireError(e)) if e.contains("minute")
        ));
    }

    #[test]
    fn single_byte_corruption_never_validates_and_never_panics() {
        let frame = segment_frame(8, 2);
        for i in 0..frame.len() {
            let mut hurt = frame.clone();
            hurt[i] ^= 0x40;
            assert!(
                validate_segment_frame(&hurt, MinuteId(2)).is_err(),
                "byte {i} flip passed validation"
            );
        }
        // Torn at every boundary: shorter slices must also fail cleanly.
        for cut in 0..frame.len() {
            assert!(validate_segment_frame(&frame[..cut], MinuteId(2)).is_err());
        }
    }

    #[test]
    fn garbage_frames_error_instead_of_parsing() {
        let frame = Frame {
            request_id: 0,
            opcode: OP_REPL_FRAMES,
            payload: vec![1, 2, 3],
        };
        assert!(ReplMsg::from_frame(&frame).is_err());
        let frame = Frame {
            request_id: 0,
            opcode: 0x55,
            payload: Vec::new(),
        };
        assert!(ReplMsg::from_frame(&frame).is_err());
        // An ACK with trailing bytes is a framing bug, not an ack.
        let mut payload = 9u64.to_le_bytes().to_vec();
        payload.push(0);
        let frame = Frame {
            request_id: 0,
            opcode: OP_REPL_ACK,
            payload,
        };
        assert!(ReplMsg::from_frame(&frame).is_err());
    }
}
