//! `vm-repl` — primary→follower replication for ViewMap cells: WAL
//! log shipping, follower catch-up, and explicit promotion.
//!
//! A single ViewMap cell is already durable (`vm-store`) and already
//! serves concurrent traffic (`vm-service`); what it cannot survive is
//! the machine under it. This crate replicates a cell by shipping the
//! one artifact that already defines its state bit-exactly — the
//! append log's segment frames — to follower cells that replay them
//! through the server's normal recovery path:
//!
//! * [`wire`] — the replication messages: vm-service frames (`0x20`
//!   opcode range) whose `FRAMES` payloads carry raw `vm-store`
//!   segment frames, so the disk codec doubles as the wire codec and
//!   a follower validates shipped records exactly like recovered ones.
//! * [`primary`] — [`primary::ReplHub`] (listener, follower sessions,
//!   op numbering, ack watermark) and [`primary::ReplicatedWal`], the
//!   `VpWal` decorator that ships every committed append after local
//!   durability. [`primary::Primary`] bundles a durable server with a
//!   hub.
//! * [`follower`] — [`follower::Follower`]: a durable replica that
//!   dials the primary, positions catch-up with per-minute cursors
//!   from its own log, validates and applies the stream (injuries
//!   quarantine the connection, never the store), acks applied ops,
//!   and [`follower::Follower::promote`]s into a byte-equivalent
//!   serving primary of the next epoch.
//!
//! The replication group shares one RSA signing identity (the
//! `vm-store` keyfile / `open_with_key`): a promoted follower redeems
//! cash the failed primary minted, so the paper's reward economy
//! survives failover. Role fencing on the serving side is
//! [`vm_service::RoleCell`] — follower front-ends reject mutations
//! with `NotPrimary` until promotion flips them live.
//!
//! Determinism is load-bearing end to end: shipping is serialized
//! under one stream mutex (per-minute order = bucket order = replay
//! order), reconnect jitter is seeded, and the vopr `replica` /
//! `failover` / `lagging-follower` scenarios replay whole
//! crash-and-promote histories from a single seed and check the
//! promoted follower against an in-process oracle.
//!
//! See `ARCHITECTURE.md` §8 for the protocol spec and the
//! equivalence argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod follower;
pub mod primary;
pub mod wire;

pub use follower::{Follower, FollowerConfig, FollowerStats};
pub use primary::{Primary, ReplHub, ReplicatedWal, ReplicationConfig};
pub use wire::{validate_segment_frame, validate_segment_frames, ReplMsg, WireError};
