//! The follower side: a durable replica that dials its primary,
//! applies the shipped stream through the server's replay path, and
//! can be promoted into a serving primary.
//!
//! # Why the replica is byte-equivalent
//!
//! The follower opens its own [`vm_store::VpStore`]-backed server with the
//! group's shared signing key ([`PersistentServer::open_with_key`]),
//! so its store is **attached**: every shipped record the replay path
//! accepts is appended to the follower's own segments, in apply order.
//! The primary serializes shipping (one stream mutex), per-minute
//! shipped order equals the primary's bucket order, and
//! [`ViewMapServer::submit_replay_batch_cold`] preserves each record's
//! own bytes bit-exactly — so the follower's buckets, id index, viewmap
//! checksums, and segment files all converge to the primary's. The
//! vopr `failover` scenario checks exactly this against an oracle fed
//! the acked ops. (The replay is **cold** — no link-key warm: a
//! standby logs and indexes at ingest speed, and the first
//! investigation after a promotion hashes its keys lazily.)
//!
//! Application is pipelined: a reader thread drains the socket while
//! the applier coalesces queued chunks of the same minute into one
//! batch-sized validate + replay + log, acking the run's last op —
//! the follower's version of group commit.
//!
//! # Injuries never poison the store
//!
//! Every segment frame inside a `FRAMES` message is validated with the
//! recovery rules ([`crate::wire::validate_segment_frames`]) *before*
//! anything is applied. A torn or corrupted frame ends the message at
//! the valid prefix: the prefix is applied (it is real committed
//! data), the injury is counted, the connection is dropped, and the
//! next dial's catch-up — positioned by the follower's own cursors —
//! re-streams whatever was lost. Replay dedup makes the overlap
//! harmless. The same path handles primaries that die mid-frame.
//!
//! # Reconnect backoff
//!
//! Redials back off exponentially with **seeded jitter**
//! ([`FollowerConfig::backoff_seed`]): a fleet of followers orphaned
//! by the same primary crash must not redial in lockstep, and a vopr
//! run must be able to replay the exact jitter sequence from its seed.

use crate::wire::{validate_segment_frames, ReplMsg};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use viewmap_core::server::ViewMapServer;
use viewmap_core::types::MinuteId;
use viewmap_core::viewmap::ViewmapConfig;
use vm_crypto::RsaKeyPair;
use vm_obs::{Counter, Registry};
use vm_service::{Role, RoleCell};
use vm_store::{PersistentServer, RecoveryReport, StoreConfig};

/// Follower policy.
#[derive(Clone, Copy, Debug)]
pub struct FollowerConfig {
    /// The follower's epoch; a primary announcing a lower epoch is
    /// stale and its stream is refused.
    pub epoch: u64,
    /// Seed for the reconnect jitter stream.
    pub backoff_seed: u64,
    /// First redial delay (doubles per consecutive failure).
    pub backoff_base: Duration,
    /// Redial delay ceiling.
    pub backoff_cap: Duration,
}

impl Default for FollowerConfig {
    fn default() -> Self {
        FollowerConfig {
            epoch: 1,
            backoff_seed: 0,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
        }
    }
}

/// Counters the applier thread advances; readable at any time.
#[derive(Debug, Default)]
pub struct FollowerStats {
    /// Ops fully applied (validated, replayed, acked).
    pub applied_ops: AtomicU64,
    /// Records accepted into the replica by replay.
    pub applied_records: AtomicU64,
    /// Shipped frames that failed validation (torn, corrupted,
    /// wrong-minute); each one also forces a resync.
    pub wire_injuries: AtomicU64,
    /// Connections dropped and re-established (including injuries).
    pub resyncs: AtomicU64,
    /// Successful handshakes.
    pub connects: AtomicU64,
}

/// Registry mirrors of [`FollowerStats`], plus the journal handle —
/// registered on the replica server's registry so its `STATS` snapshot
/// (served even while fenced) carries the applier's progress.
struct FollowerObs {
    registry: Arc<Registry>,
    applied_ops: Arc<Counter>,
    applied_records: Arc<Counter>,
    wire_injuries: Arc<Counter>,
    resyncs: Arc<Counter>,
    connects: Arc<Counter>,
}

impl FollowerObs {
    fn register(obs: &Arc<Registry>) -> FollowerObs {
        FollowerObs {
            registry: Arc::clone(obs),
            applied_ops: obs.counter("vm_repl_applied_ops_total"),
            applied_records: obs.counter("vm_repl_applied_records_total"),
            wire_injuries: obs.counter("vm_repl_wire_injuries_total"),
            resyncs: obs.counter("vm_repl_resyncs_total"),
            connects: obs.counter("vm_repl_connects_total"),
        }
    }
}

struct ApplierShared {
    server: Arc<ViewMapServer>,
    stats: Arc<FollowerStats>,
    obs: FollowerObs,
    stop: AtomicBool,
    /// Current socket, kept so `stop` can shut the blocking read down.
    conn: Mutex<Option<TcpStream>>,
}

/// A replica cell: durable local store, applier thread, promotion.
pub struct Follower {
    shared: Arc<ApplierShared>,
    role: Arc<RoleCell>,
    applier: Option<std::thread::JoinHandle<()>>,
}

impl Follower {
    /// Open (or recover) the replica store in `dir` under the group's
    /// shared `key`, then start dialing `primary_addr` and applying
    /// its stream.
    ///
    /// The key must be the primary's ([`PersistentServer::open_with_key`]
    /// refuses a mismatch against an existing keyfile): reward cash is
    /// only redeemable after promotion if the replica signs and
    /// verifies under the identical RSA identity.
    pub fn open(
        dir: impl AsRef<Path>,
        key: RsaKeyPair,
        vmcfg: ViewmapConfig,
        store_cfg: StoreConfig,
        primary_addr: SocketAddr,
        cfg: FollowerConfig,
    ) -> std::io::Result<(Follower, RecoveryReport)> {
        let (server, report) = ViewMapServer::open_with_key(key, vmcfg, dir, store_cfg)?;
        let server = Arc::new(server);
        let obs = FollowerObs::register(server.obs());
        let shared = Arc::new(ApplierShared {
            server,
            stats: Arc::new(FollowerStats::default()),
            obs,
            stop: AtomicBool::new(false),
            conn: Mutex::new(None),
        });
        let role = Arc::new(RoleCell::new(Role::Follower, cfg.epoch));
        let thread_shared = Arc::clone(&shared);
        let applier = std::thread::spawn(move || applier_loop(thread_shared, primary_addr, cfg));
        Ok((
            Follower {
                shared,
                role,
                applier: Some(applier),
            },
            report,
        ))
    }

    /// The replica server: reads (investigate, lookups, digests) are
    /// served from here; mutations must be fenced by [`Self::role`].
    pub fn server(&self) -> &Arc<ViewMapServer> {
        &self.shared.server
    }

    /// The role/epoch cell to hand a `VmService` front-end
    /// (`spawn_with_role`): it rejects mutations with `NotPrimary`
    /// until promotion flips it.
    pub fn role(&self) -> &Arc<RoleCell> {
        &self.role
    }

    /// Live applier counters.
    pub fn stats(&self) -> &Arc<FollowerStats> {
        &self.shared.stats
    }

    /// Stop replicating and become the serving primary of `epoch + 1`:
    /// the applier is joined (no application races the handover), the
    /// replica WAL is synced, and the shared [`RoleCell`] flips so any
    /// already-spawned front-end starts accepting mutations. Returns
    /// the serving server and the new epoch.
    ///
    /// The server keeps its attached store: post-promotion accepts log
    /// to the same segments the replication stream built, exactly as
    /// if this node had been the primary all along.
    pub fn promote(mut self) -> std::io::Result<(Arc<ViewMapServer>, u64)> {
        self.stop_applier();
        self.shared.server.sync_wal()?;
        let epoch = self.role.promote();
        self.shared.obs.registry.journal().record(
            "promotion",
            format!("follower promoted to serving primary at epoch {epoch}"),
        );
        Ok((Arc::clone(&self.shared.server), epoch))
    }

    fn stop_applier(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(conn) = self.shared.conn.lock().take() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(handle) = self.applier.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Follower {
    fn drop(&mut self) {
        self.stop_applier();
    }
}

/// Per-minute `(minute, committed records)` cursors for HELLO —
/// accepted-equals-logged, so bucket lengths are log record counts.
fn cursors(server: &ViewMapServer) -> Vec<(u64, u64)> {
    server
        .stored_minutes()
        .into_iter()
        .map(|m| (m.0, server.vp_count(m) as u64))
        .collect()
}

fn applier_loop(shared: Arc<ApplierShared>, primary_addr: SocketAddr, cfg: FollowerConfig) {
    let mut rng = StdRng::seed_from_u64(cfg.backoff_seed);
    let mut backoff = cfg.backoff_base;
    while !shared.stop.load(Ordering::Acquire) {
        match run_session(&shared, primary_addr, cfg.epoch) {
            Ok(()) => {
                // Clean session end (primary EOF). Redial from base.
                backoff = cfg.backoff_base;
            }
            Err(_) if shared.stop.load(Ordering::Acquire) => return,
            Err(_) => {}
        }
        shared.stats.resyncs.fetch_add(1, Ordering::Relaxed);
        shared.obs.resyncs.inc();
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        // Exponential backoff with seeded jitter: sleep in
        // [0.5, 1.5] × the deterministic step, then double the step.
        let per_mille: u32 = rng.gen_range(500..=1500);
        let jittered = backoff.saturating_mul(per_mille) / 1000;
        shared.obs.registry.journal().record(
            "repl_redial",
            format!(
                "session to {primary_addr} ended; redial in {:?}",
                jittered.min(cfg.backoff_cap)
            ),
        );
        std::thread::sleep(jittered.min(cfg.backoff_cap));
        backoff = backoff.saturating_mul(2).min(cfg.backoff_cap);
    }
}

/// Messages buffered between the socket reader and the applier: deep
/// enough to coalesce a shipped burst into one group apply, shallow
/// enough that socket backpressure stays the flow control for a
/// replica that falls behind.
const APPLY_QUEUE_MSGS: usize = 8;

/// One connection's lifetime: dial, handshake, apply until the stream
/// ends or an injury forces a resync.
fn run_session(
    shared: &Arc<ApplierShared>,
    primary_addr: SocketAddr,
    epoch: u64,
) -> std::io::Result<()> {
    let stream = TcpStream::connect_timeout(&primary_addr, Duration::from_secs(2))?;
    stream.set_nodelay(true).ok();
    *shared.conn.lock() = Some(stream.try_clone()?);
    // Re-check after publishing the socket: a `stop` that raced the
    // dial has already taken (or will never see) this connection, so
    // bail instead of blocking on a handshake no one will shut down.
    if shared.stop.load(Ordering::Acquire) {
        return Ok(());
    }
    let sock = stream.try_clone()?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);

    ReplMsg::Hello {
        epoch,
        cursors: cursors(&shared.server),
    }
    .write_to(&mut writer)?;
    match ReplMsg::read_from(&mut reader)? {
        Some(ReplMsg::HelloOk { epoch: primary }) if primary >= epoch => {}
        Some(ReplMsg::HelloOk { epoch: primary }) => {
            // Epoch fence: this "primary" predates our configuration —
            // applying its stream would resurrect a superseded history.
            return Err(std::io::Error::other(format!(
                "stale primary epoch {primary} < follower epoch {epoch}"
            )));
        }
        _ => return Err(std::io::Error::other("no HELLO_OK")),
    }
    shared.stats.connects.fetch_add(1, Ordering::Relaxed);
    shared.obs.connects.inc();
    shared
        .obs
        .registry
        .journal()
        .record("repl_reconnect", format!("stream from {primary_addr} open"));

    // Decouple reading from applying: the reader thread drains the
    // socket (envelope checksum and parse) while the applier coalesces
    // whatever has queued up into one batch-sized validate + replay +
    // log — the follower's version of group commit. A primary ships a
    // large append as several bounded chunks; applying them one at a
    // time would re-pay per-batch overheads (and fall under the
    // parallel-encode thresholds) once per chunk, serializing the
    // replica several chunk-latencies behind.
    let (tx, rx) = std::sync::mpsc::sync_channel::<ReplMsg>(APPLY_QUEUE_MSGS);
    let reader_thread = std::thread::spawn(move || -> std::io::Result<()> {
        loop {
            match ReplMsg::read_from(&mut reader)? {
                Some(msg) => {
                    if tx.send(msg).is_err() {
                        return Ok(()); // applier gone; session is ending
                    }
                }
                None => return Ok(()), // clean EOF
            }
        }
    });
    let applied = apply_stream(shared, &rx, &mut writer);
    // Unblock whichever side is still inside a blocking call, then
    // surface the applier's verdict first (an injury outranks the
    // reader's "connection reset" echo of our own shutdown).
    drop(rx);
    let _ = sock.shutdown(std::net::Shutdown::Both);
    let reader_result = reader_thread
        .join()
        .unwrap_or_else(|_| Err(std::io::Error::other("replication reader panicked")));
    applied?;
    reader_result
}

/// The applier half of a session: drain queued messages, coalesce each
/// consecutive same-minute run of `FRAMES`, apply, ack the run's last
/// op. Returns when the channel closes (reader hit EOF or an error) or
/// on an apply-side failure.
fn apply_stream(
    shared: &Arc<ApplierShared>,
    rx: &std::sync::mpsc::Receiver<ReplMsg>,
    writer: &mut TcpStream,
) -> std::io::Result<()> {
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let first = match rx.recv() {
            Ok(msg) => msg,
            Err(_) => return Ok(()), // reader ended the stream
        };
        let mut queue = vec![first];
        while let Ok(msg) = rx.try_recv() {
            queue.push(msg);
        }
        let mut i = 0;
        while i < queue.len() {
            let run_minute = match &queue[i] {
                ReplMsg::Frames { minute, .. } => Some(MinuteId(*minute)),
                _ => None,
            };
            if let Some(minute) = run_minute {
                // Coalesce the run of queued FRAMES for this minute.
                let mut run_frames: Vec<Vec<u8>> = Vec::new();
                let mut last_op = 0u64;
                let mut ops = 0u64;
                while i < queue.len() {
                    let ReplMsg::Frames {
                        op,
                        minute: m,
                        frames,
                    } = &mut queue[i]
                    else {
                        break;
                    };
                    if MinuteId(*m) != minute {
                        break;
                    }
                    last_op = *op;
                    ops += 1;
                    run_frames.append(frames);
                    i += 1;
                }
                let (records, injury) = validate_segment_frames(&run_frames, minute);
                // Apply the valid prefix either way: it is committed
                // data, and catch-up after the drop re-streams the
                // rest (dedup eats the overlap). The **cold** replay
                // path skips the link-key warm: a standby logs and
                // indexes at ingest speed, and the first investigation
                // after a promotion pays the key phase lazily instead.
                let results = shared.server.submit_replay_batch_cold(records);
                let accepted = results.iter().filter(|r| r.is_ok()).count() as u64;
                shared
                    .stats
                    .applied_records
                    .fetch_add(accepted, Ordering::Relaxed);
                shared.obs.applied_records.add(accepted);
                if let Some(e) = injury {
                    shared.stats.wire_injuries.fetch_add(1, Ordering::Relaxed);
                    shared.obs.wire_injuries.inc();
                    shared.obs.registry.journal().record(
                        "repl_injury",
                        format!("injured frame in op {last_op}: {e}; dropping stream"),
                    );
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("injured frame in op {last_op}: {e}"),
                    ));
                }
                shared.stats.applied_ops.fetch_add(ops, Ordering::Relaxed);
                shared.obs.applied_ops.add(ops);
                ReplMsg::Ack { op: last_op }.write_to(writer)?;
            } else if let ReplMsg::Evict { op, cutoff } = &queue[i] {
                let (op, cutoff) = (*op, *cutoff);
                shared.server.evict_minutes_before(MinuteId(cutoff));
                shared.stats.applied_ops.fetch_add(1, Ordering::Relaxed);
                shared.obs.applied_ops.inc();
                ReplMsg::Ack { op }.write_to(writer)?;
                i += 1;
            } else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "unexpected {:#04x} on an established stream",
                        queue[i].opcode()
                    ),
                ));
            }
        }
    }
}
