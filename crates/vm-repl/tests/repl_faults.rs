//! Replication torture: live shipping, catch-up after disconnects and
//! fresh joins, byte-equivalent promotion that redeems pre-failover
//! cash, and — the robustness core — injured wire frames that
//! quarantine the connection and resync via catch-up without ever
//! poisoning the follower's store.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::BufReader;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};
use viewmap_core::bloom::BloomFilter;
use viewmap_core::server::ViewMapServer;
use viewmap_core::types::{GeoPos, MinuteId, VpId, SECONDS_PER_VP};
use viewmap_core::upload::AnonymousSubmission;
use viewmap_core::vd::ViewDigest;
use viewmap_core::viewmap::ViewmapConfig;
use viewmap_core::vp::StoredVp;
use vm_crypto::RsaKeyPair;
use vm_repl::{Follower, FollowerConfig, Primary, ReplMsg, ReplicationConfig};
use vm_store::StoreConfig;

const KEY_BITS: usize = 512;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("vm_repl_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn synthetic_vp(tag: u64, minute: u64) -> StoredVp {
    let mut id_bytes = [0u8; 16];
    id_bytes[..8].copy_from_slice(&tag.to_le_bytes());
    id_bytes[8..].copy_from_slice(&minute.to_le_bytes());
    let id = VpId(vm_crypto::Digest16(id_bytes));
    let start = minute * SECONDS_PER_VP;
    let vds: Vec<ViewDigest> = (1..=SECONDS_PER_VP as u16)
        .map(|seq| ViewDigest {
            seq,
            flags: 0,
            time: start + seq as u64,
            loc: GeoPos::new(tag as f64 % 400.0 + seq as f64 * 8.0, (tag % 37) as f64),
            file_size: seq as u64 * 64,
            initial_loc: GeoPos::new(tag as f64 % 400.0, 0.0),
            vp_id: id,
            hash: vm_crypto::Digest16(id_bytes),
        })
        .collect();
    StoredVp::new(id, vds, BloomFilter::default(), false)
}

fn submit(srv: &ViewMapServer, vp: StoredVp) {
    srv.submit(AnonymousSubmission { session_id: 0, vp })
        .expect("synthetic VP admitted");
}

fn wait_until(what: &str, timeout: Duration, mut f: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if f() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}");
}

fn assert_state_equal(a: &ViewMapServer, b: &ViewMapServer, minutes: u64, ctx: &str) {
    assert_eq!(a.state_digest(), b.state_digest(), "{ctx}: state digest");
    for m in 0..minutes {
        let ia: Vec<VpId> = a.minute_vps(MinuteId(m)).iter().map(|vp| vp.id).collect();
        let ib: Vec<VpId> = b.minute_vps(MinuteId(m)).iter().map(|vp| vp.id).collect();
        assert_eq!(ia, ib, "{ctx}: minute {m} bucket order");
    }
}

fn segment_bytes(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".vmseg"))
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn live_shipping_catch_up_and_rejoin_converge_bytewise() {
    let ptmp = TempDir::new("p_live");
    let ftmp = TempDir::new("f_live");
    let mut rng = StdRng::seed_from_u64(1);
    let key = RsaKeyPair::generate(&mut rng, KEY_BITS);

    let (primary, _) = Primary::open(
        &ptmp.0,
        key.clone(),
        ViewmapConfig::default(),
        StoreConfig::default(),
        ReplicationConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();

    // Records written *before* any follower exists: fresh-join catch-up.
    for t in 0..10 {
        submit(primary.server(), synthetic_vp(t, t % 2));
    }

    let (follower, _) = Follower::open(
        &ftmp.0,
        key.clone(),
        ViewmapConfig::default(),
        StoreConfig::default(),
        primary.repl_addr(),
        FollowerConfig {
            backoff_seed: 0x5eed,
            ..FollowerConfig::default()
        },
    )
    .unwrap();
    wait_until("fresh-join catch-up", Duration::from_secs(10), || {
        follower.server().state_digest() == primary.server().state_digest()
    });

    // Live shipping on an established stream.
    for t in 10..20 {
        submit(primary.server(), synthetic_vp(t, t % 2));
    }
    wait_until("live convergence", Duration::from_secs(10), || {
        follower.server().state_digest() == primary.server().state_digest()
    });
    assert_state_equal(follower.server(), primary.server(), 2, "live");
    assert!(follower.stats().wire_injuries.load(Ordering::Relaxed) == 0);

    // Disconnect (drop the follower entirely), keep writing, rejoin on
    // the same directory: cursors position catch-up at the stale tail.
    follower.server().sync_wal().unwrap();
    drop(follower);
    for t in 20..30 {
        submit(primary.server(), synthetic_vp(t, t % 2));
    }
    let (follower, report) = Follower::open(
        &ftmp.0,
        key.clone(),
        ViewmapConfig::default(),
        StoreConfig::default(),
        primary.repl_addr(),
        FollowerConfig {
            backoff_seed: 0x5eed + 1,
            ..FollowerConfig::default()
        },
    )
    .unwrap();
    assert_eq!(report.records, 20, "replica recovered its own log");
    assert!(!report.fresh_signing_key, "shared keyfile persisted");
    wait_until("rejoin catch-up", Duration::from_secs(10), || {
        follower.server().state_digest() == primary.server().state_digest()
    });
    assert_state_equal(follower.server(), primary.server(), 2, "rejoin");

    // The replica's segments are the primary's, byte for byte.
    primary.server().sync_wal().unwrap();
    follower.server().sync_wal().unwrap();
    assert_eq!(
        segment_bytes(&ptmp.0),
        segment_bytes(&ftmp.0),
        "segment files diverge"
    );
}

#[test]
fn promotion_is_byte_equivalent_and_redeems_prefailover_cash() {
    let ptmp = TempDir::new("p_promote");
    let ftmp = TempDir::new("f_promote");
    let mut rng = StdRng::seed_from_u64(2);
    let key = RsaKeyPair::generate(&mut rng, KEY_BITS);

    let (primary, _) = Primary::open(
        &ptmp.0,
        key.clone(),
        ViewmapConfig::default(),
        StoreConfig::default(),
        ReplicationConfig {
            sync_ack: true,
            ..ReplicationConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let (follower, _) = Follower::open(
        &ftmp.0,
        key.clone(),
        ViewmapConfig::default(),
        StoreConfig::default(),
        primary.repl_addr(),
        FollowerConfig::default(),
    )
    .unwrap();
    wait_until("follower attach", Duration::from_secs(10), || {
        primary.hub().follower_count() == 1
    });

    // Acked writes: sync_ack means every returned submit is on the
    // follower before the next one starts.
    let accepted: Vec<StoredVp> = (0..12).map(|t| synthetic_vp(t, t % 3)).collect();
    for vp in &accepted {
        submit(primary.server(), vp.clone());
    }

    // A pre-failover reward round under the shared key: the wallet's
    // unblinded cash must survive the primary's death.
    let genuine = synthetic_vp(900, 0);
    let secret = *b"QuSecret";
    let vp_id = VpId::from_secret(&secret);
    let mut reward_vp = genuine.clone();
    reward_vp.id = vp_id;
    for vd in &mut reward_vp.vds {
        vd.vp_id = vp_id;
    }
    submit(primary.server(), reward_vp.clone());
    primary.server().post_reward(vp_id, 2);
    let mut wallet = viewmap_core::reward::Wallet::new();
    let (pending, blinded) = wallet.prepare(&mut rng, primary.server().public_key(), 2);
    let signed = primary
        .server()
        .issue_blind_signatures(vp_id, &secret, &blinded)
        .unwrap();
    assert_eq!(
        wallet.accept_signed(primary.server().public_key(), pending, &signed),
        2
    );

    let shipped = primary.hub().shipped_ops();
    wait_until("acks drained", Duration::from_secs(10), || {
        primary.hub().watermark() >= shipped
    });

    // The primary dies abruptly: replication sockets and listener go
    // away; nothing tells the follower anything.
    drop(primary);

    let (promoted, epoch) = follower.promote().unwrap();
    assert_eq!(epoch, 2, "promotion entered the next epoch");

    // Zero acked-write loss, byte-equivalence against an oracle fed
    // exactly the acked operations in accepted order.
    let oracle = ViewMapServer::with_key(key.clone(), ViewmapConfig::default());
    for vp in &accepted {
        submit(&oracle, vp.clone());
    }
    submit(&oracle, reward_vp);
    assert_state_equal(&promoted, &oracle, 3, "promoted vs oracle");

    // The promoted follower shares the dead primary's RSA identity, so
    // pre-failover cash redeems — once.
    assert_eq!(wallet.cash.len(), 2);
    promoted.redeem(&wallet.cash[0]).unwrap();
    assert!(matches!(
        promoted.redeem(&wallet.cash[0]),
        Err(viewmap_core::server::RedeemError::DoubleSpend)
    ));
    promoted.redeem(&wallet.cash[1]).unwrap();

    // And it serves writes: the store stayed attached through
    // promotion, logging to the segments replication built.
    submit(&promoted, synthetic_vp(901, 0));
    promoted.sync_wal().unwrap();
}

/// A scripted peer standing in for the primary: speaks just enough of
/// the protocol to inject precisely-injured `FRAMES` payloads.
fn fake_primary_session(
    listener: &TcpListener,
    serve: impl FnOnce(&mut dyn FnMut(ReplMsg), ReplMsg) -> Vec<ReplMsg>,
) -> Vec<ReplMsg> {
    let (stream, _) = listener.accept().unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let hello = ReplMsg::read_from(&mut reader)
        .unwrap()
        .expect("follower HELLO");
    let mut writer = stream.try_clone().unwrap();
    let mut send = |msg: ReplMsg| msg.write_to(&mut writer).unwrap();
    send(ReplMsg::HelloOk { epoch: 1 });
    let expect_acks = serve(&mut send, hello);
    let mut acks = Vec::new();
    for _ in &expect_acks {
        match ReplMsg::read_from(&mut reader) {
            Ok(Some(msg)) => acks.push(msg),
            _ => break,
        }
    }
    acks
}

#[test]
fn injured_wire_frames_quarantine_the_connection_not_the_store() {
    let ftmp = TempDir::new("f_injury");
    let mut rng = StdRng::seed_from_u64(3);
    let key = RsaKeyPair::generate(&mut rng, KEY_BITS);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let (follower, _) = Follower::open(
        &ftmp.0,
        key,
        ViewmapConfig::default(),
        StoreConfig::default(),
        addr,
        FollowerConfig {
            backoff_seed: 7,
            ..FollowerConfig::default()
        },
    )
    .unwrap();

    let frame = |tag: u64| {
        let mut buf = Vec::new();
        vm_store::segment::append_frame(&mut buf, &synthetic_vp(tag, 0));
        buf
    };

    // Session 1: one good frame, then a corrupted one, then another
    // good one the injury must mask.
    let mut corrupt = frame(1);
    let len = corrupt.len();
    corrupt[len / 2] ^= 0x80;
    let acks = fake_primary_session(&listener, |send, hello| {
        assert!(matches!(&hello, ReplMsg::Hello { cursors, .. } if cursors.is_empty()));
        send(ReplMsg::Frames {
            op: 1,
            minute: 0,
            frames: vec![frame(0), corrupt, frame(2)],
        });
        Vec::new() // the injury drops the connection; no ack comes
    });
    assert!(acks.is_empty());
    wait_until("valid prefix applied", Duration::from_secs(10), || {
        follower.server().total_vps() == 1
    });
    assert_eq!(follower.stats().wire_injuries.load(Ordering::Relaxed), 1);
    assert!(
        follower.server().lookup_vp(synthetic_vp(0, 0).id).is_some(),
        "the frame before the injury is committed data"
    );

    // Session 2 (the redial): the follower's cursor says it already
    // holds 1 record of minute 0 — catch-up positioning survived the
    // injury. Re-ship the tail, overlapping the committed record to
    // prove dedup keeps overlap harmless.
    let acks = fake_primary_session(&listener, |send, hello| {
        match &hello {
            ReplMsg::Hello { cursors, .. } => {
                assert_eq!(cursors.as_slice(), &[(0, 1)], "cursor after injury")
            }
            other => panic!("expected HELLO, got {other:?}"),
        }
        let msg = ReplMsg::Frames {
            op: 1,
            minute: 0,
            frames: vec![frame(0), frame(1), frame(2)],
        };
        send(msg.clone());
        vec![msg]
    });
    assert_eq!(acks, vec![ReplMsg::Ack { op: 1 }]);
    wait_until("resync converged", Duration::from_secs(10), || {
        follower.server().total_vps() == 3
    });
    assert_eq!(follower.stats().wire_injuries.load(Ordering::Relaxed), 1);
    assert!(follower.stats().resyncs.load(Ordering::Relaxed) >= 1);

    // The store took only valid records: reopen it clean.
    follower.server().sync_wal().unwrap();
    drop(follower);
    let mut rng2 = StdRng::seed_from_u64(4);
    let (srv, report) = <ViewMapServer as vm_store::PersistentServer>::open(
        &mut rng2,
        KEY_BITS,
        ViewmapConfig::default(),
        &ftmp.0,
        StoreConfig::default(),
    )
    .unwrap();
    assert_eq!(report.records, 3);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.torn_segments, 0, "no injury reached the log");
    assert_eq!(srv.total_vps(), 3);
}

#[test]
fn torn_and_corrupted_primary_segments_ship_only_the_committed_prefix() {
    let ptmp = TempDir::new("p_torn");
    let ftmp = TempDir::new("f_torn");
    let mut rng = StdRng::seed_from_u64(5);
    let key = RsaKeyPair::generate(&mut rng, KEY_BITS);

    // Write a log, then injure it the way vm-store's fault tooling
    // does: tear the last frame of minute 0, flip a byte inside the
    // last frame of minute 1.
    {
        let (srv, _) = <ViewMapServer as vm_store::PersistentServer>::open_with_key(
            key.clone(),
            ViewmapConfig::default(),
            &ptmp.0,
            StoreConfig::default(),
        )
        .unwrap();
        for t in 0..8 {
            submit(&srv, synthetic_vp(t, t % 2));
        }
        srv.sync_wal().unwrap();
    }
    for minute in 0..2u64 {
        let path = vm_store::segment::segment_path(&ptmp.0, MinuteId(minute));
        let spans = vm_store::fault::segment_frames(&path).unwrap();
        let last = spans.last().unwrap();
        if minute == 0 {
            vm_store::fault::tear_at(&path, last.offset + last.len / 2).unwrap();
        } else {
            vm_store::fault::corrupt_at(&path, last.offset + last.len / 2).unwrap();
        }
    }

    // The primary recovers the committed prefix (3 + 3 records), and
    // that prefix is all a joining follower ever sees.
    let (primary, report) = Primary::open(
        &ptmp.0,
        key.clone(),
        ViewmapConfig::default(),
        StoreConfig::default(),
        ReplicationConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    assert_eq!(report.records, 6, "one record truncated per segment");
    assert_eq!(report.torn_segments, 2);

    let (follower, _) = Follower::open(
        &ftmp.0,
        key,
        ViewmapConfig::default(),
        StoreConfig::default(),
        primary.repl_addr(),
        FollowerConfig::default(),
    )
    .unwrap();
    wait_until("injured-log catch-up", Duration::from_secs(10), || {
        follower.server().state_digest() == primary.server().state_digest()
    });
    assert_eq!(follower.server().total_vps(), 6);
    assert_eq!(follower.stats().wire_injuries.load(Ordering::Relaxed), 0);
    assert_state_equal(follower.server(), primary.server(), 2, "injured log");
}
