//! End-to-end telemetry scrape: boot a durable primary with a loopback
//! follower, drive traffic over the wire, and read the `STATS` opcode
//! back from **both** cells — the primary's snapshot must cover every
//! layer (core, store, service, repl) with one scrape, the fenced
//! follower must serve its own snapshot while still bouncing mutations,
//! and the per-follower watermark-lag gauges must drain to zero once
//! the follower has acked everything that shipped.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use viewmap_core::bloom::BloomFilter;
use viewmap_core::types::{GeoPos, VpId, SECONDS_PER_VP};
use viewmap_core::vd::ViewDigest;
use viewmap_core::viewmap::ViewmapConfig;
use viewmap_core::vp::StoredVp;
use vm_crypto::RsaKeyPair;
use vm_repl::{Follower, FollowerConfig, Primary, ReplicationConfig};
use vm_service::proto::ErrorCode;
use vm_service::{ClientError, ServiceConfig, VmClient, VmService};
use vm_store::StoreConfig;

const KEY_BITS: usize = 512;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("vm_stats_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn synthetic_vp(tag: u64, minute: u64) -> StoredVp {
    let mut id_bytes = [0u8; 16];
    id_bytes[..8].copy_from_slice(&tag.to_le_bytes());
    id_bytes[8..].copy_from_slice(&minute.to_le_bytes());
    let id = VpId(vm_crypto::Digest16(id_bytes));
    let start = minute * SECONDS_PER_VP;
    let vds: Vec<ViewDigest> = (1..=SECONDS_PER_VP as u16)
        .map(|seq| ViewDigest {
            seq,
            flags: 0,
            time: start + seq as u64,
            loc: GeoPos::new(tag as f64 % 400.0 + seq as f64 * 8.0, (tag % 37) as f64),
            file_size: seq as u64 * 64,
            initial_loc: GeoPos::new(tag as f64 % 400.0, 0.0),
            vp_id: id,
            hash: vm_crypto::Digest16(id_bytes),
        })
        .collect();
    StoredVp::new(id, vds, BloomFilter::default(), false)
}

fn wait_until(what: &str, timeout: Duration, mut f: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if f() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}");
}

/// Scrape `STATS` through `client` and parse it into a name→value map.
fn scrape(client: &mut VmClient) -> HashMap<String, f64> {
    let text = client.stats().expect("STATS round trip");
    assert!(
        text.starts_with("vm_obs_snapshot_version 1\n"),
        "snapshot must lead with its version line, got: {:?}",
        text.lines().next()
    );
    vm_obs::parse_text(&text)
        .expect("snapshot text must parse line by line")
        .into_iter()
        .collect()
}

#[test]
fn stats_scrape_covers_the_stack_and_lag_drains() {
    let ptmp = TempDir::new("primary");
    let ftmp = TempDir::new("follower");
    let mut rng = StdRng::seed_from_u64(0x57a75);
    let key = RsaKeyPair::generate(&mut rng, KEY_BITS);
    let vmcfg = ViewmapConfig::default();
    let scfg = StoreConfig::default();

    let (primary, _) = Primary::open(
        &ptmp.0,
        key.clone(),
        vmcfg,
        scfg,
        ReplicationConfig::default(),
        "127.0.0.1:0",
    )
    .expect("open primary");
    let handle = VmService::spawn(
        Arc::clone(primary.server()),
        "127.0.0.1:0",
        ServiceConfig::default(),
    )
    .expect("spawn primary service");

    // Join the follower *before* submitting, so the byte-lag ledger sees
    // every shipped op and "drains to zero" means exactly "acked all of
    // this test's traffic".
    let (follower, _) = Follower::open(
        &ftmp.0,
        key,
        vmcfg,
        scfg,
        primary.repl_addr(),
        FollowerConfig::default(),
    )
    .expect("open follower");
    wait_until("follower to join", Duration::from_secs(10), || {
        primary.hub().follower_count() == 1
    });

    const VPS: u64 = 12;
    let mut client = VmClient::connect(handle.addr()).expect("connect primary");
    for tag in 0..VPS {
        client
            .submit(&synthetic_vp(tag + 1, 0))
            .expect("wire submit accepted");
    }
    // No trusted anchors were planted, so the verdict set is empty —
    // the call is here to push samples through the investigate pipeline
    // (TrustRank iterations, per-op latency), not to test verdicts.
    client
        .investigate(
            viewmap_core::types::MinuteId(0),
            viewmap_core::viewmap::Site {
                center: GeoPos::new(200.0, 15.0),
                radius_m: 100_000.0,
            },
        )
        .expect("wire investigation");

    // One scrape covers every layer of the primary cell.
    let stats = scrape(&mut client);
    for name in [
        // core (engine)
        "vm_core_vps_stored_total",
        "vm_core_investigate_us_count",
        "vm_core_trustrank_iterations_count",
        "vm_core_build_phase_us_count{phase=\"linkage\"}",
        // store (durability)
        "vm_store_append_us_count",
        "vm_store_fsync_us_count",
        "vm_store_appended_records_total",
        "vm_store_recoveries_total",
        // service (front-end)
        "vm_service_sessions_total",
        "vm_service_coalesce_run_frames_count",
        "vm_service_request_us_count{op=\"submit\"}",
        "vm_service_request_us_count{op=\"investigate\"}",
        // repl (shipping side)
        "vm_repl_shipped_ops_total",
        "vm_repl_next_op",
        "vm_repl_follower_connects_total",
        "vm_repl_ship_us_count",
    ] {
        assert!(stats.contains_key(name), "primary snapshot missing {name}");
    }
    assert!(stats["vm_core_vps_stored_total"] >= VPS as f64);
    assert!(stats["vm_store_appended_records_total"] >= VPS as f64);
    assert!(stats["vm_core_investigate_us_count"] >= 1.0);
    assert!(stats["vm_service_request_us_count{op=\"submit\"}"] >= 1.0);
    assert!(stats["vm_service_request_us_count{op=\"investigate\"}"] >= 1.0);
    assert_eq!(stats["vm_repl_follower_connects_total"], 1.0);
    assert_eq!(stats["vm_events_total{kind=\"follower_connected\"}"], 1.0);

    // The per-follower watermark-lag gauges drain to zero once the
    // follower acks everything shipped (poll the *scraped* values: the
    // gauges are the operator's view, so that view is what must drain).
    wait_until("watermark lag to drain", Duration::from_secs(30), || {
        let s = scrape(&mut client);
        s.get("vm_repl_watermark_lag_ops{follower=\"1\"}") == Some(&0.0)
            && s.get("vm_repl_watermark_lag_bytes{follower=\"1\"}") == Some(&0.0)
            && s["vm_repl_shipped_ops_total"] >= 1.0
    });
    assert_eq!(primary.hub().watermark(), primary.hub().shipped_ops());

    // The fenced follower serves STATS read-only: mutations still
    // bounce with NotPrimary, but the telemetry an operator needs to
    // diagnose *why* a cell is fenced is available over the same wire.
    let fhandle = VmService::spawn_with_role(
        Arc::clone(follower.server()),
        "127.0.0.1:0",
        ServiceConfig::default(),
        Some(Arc::clone(follower.role())),
    )
    .expect("spawn follower service");
    let mut fclient = VmClient::connect(fhandle.addr()).expect("connect follower");
    match fclient.submit(&synthetic_vp(999, 0)) {
        Err(ClientError::Remote(ErrorCode::NotPrimary, _)) => {}
        other => panic!("fenced follower accepted a mutation: {other:?}"),
    }
    let fstats = scrape(&mut fclient);
    for name in [
        "vm_core_vps_stored_total",
        "vm_store_appended_records_total",
        "vm_repl_applied_ops_total",
        "vm_repl_applied_records_total",
        "vm_repl_connects_total",
        "vm_repl_resyncs_total",
    ] {
        assert!(
            fstats.contains_key(name),
            "follower snapshot missing {name}"
        );
    }
    assert!(fstats["vm_repl_applied_records_total"] >= VPS as f64);
    assert!(fstats["vm_repl_connects_total"] >= 1.0);
    assert!(fstats["vm_events_total{kind=\"repl_reconnect\"}"] >= 1.0);

    drop(fclient);
    drop(fhandle);
    drop(client);
    drop(handle);
}
