//! The durability acceptance suite: simulated crashes and
//! persisted-vs-live state equivalence.
//!
//! Two properties pin the whole subsystem down:
//!
//! * **Torn-tail recovery** — a segment truncated at *every byte offset*
//!   of its tail record must recover exactly the fully-committed prefix:
//!   no panic, no partial VP, and the file cut back to the last clean
//!   frame boundary so appends can resume.
//! * **Persisted ≡ live** — after arbitrary interleavings of single
//!   submits, batches, trusted batches, and retention sweeps, a server
//!   reopened from disk must be observably identical to the live server
//!   that wrote the log: same totals, same per-minute buckets in order,
//!   same id-index routing, and same viewmap edges (checked via an edge
//!   checksum over the built adjacency).
//!
//! Every test takes its durability policy from `VM_STORE_FSYNC`
//! (default `never`); CI runs the whole file under both policies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use viewmap_core::bloom::BloomFilter;
use viewmap_core::server::ViewMapServer;
use viewmap_core::types::{GeoPos, MinuteId, VpId, SECONDS_PER_VP};
use viewmap_core::upload::AnonymousSubmission;
use viewmap_core::vd::ViewDigest;
use viewmap_core::viewmap::{Site, Viewmap, ViewmapConfig};
use viewmap_core::vp::StoredVp;
use vm_store::{segment, PersistentServer, StoreConfig, VpStore};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "vm_store_crash_{tag}_{}_{}",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "_")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn cfg() -> StoreConfig {
    StoreConfig::from_env()
}

/// A minute of `n` vehicles on a line, Bloom-wired pairwise within DSRC
/// range so viewmaps built from them have real edges; vehicle 0 is the
/// trusted seed. Deterministic in `(n, minute, seed)`.
fn linked_world(n: usize, minute: u64, seed: u64) -> Vec<StoredVp> {
    const SPACING_M: f64 = 150.0;
    let start = minute * SECONDS_PER_VP;
    let mut rng = StdRng::seed_from_u64(seed ^ (minute << 32) ^ n as u64);
    let ids: Vec<VpId> = (0..n)
        .map(|_| VpId(vm_crypto::Digest16(rng.gen())))
        .collect();
    let trajectories: Vec<Vec<ViewDigest>> = (0..n)
        .map(|i| {
            let y = minute as f64 * 10.0;
            (1..=SECONDS_PER_VP as u16)
                .map(|seq| ViewDigest {
                    seq,
                    flags: 0,
                    time: start + seq as u64,
                    loc: GeoPos::new(i as f64 * SPACING_M + seq as f64 * 7.5, y),
                    file_size: seq as u64 * 1024,
                    initial_loc: GeoPos::new(i as f64 * SPACING_M, y),
                    vp_id: ids[i],
                    hash: vm_crypto::Digest16(rng.gen()),
                })
                .collect()
        })
        .collect();
    (0..n)
        .map(|i| {
            let mut bloom = BloomFilter::default();
            for (j, traj) in trajectories.iter().enumerate() {
                if i != j && (i as f64 - j as f64).abs() * SPACING_M <= 400.0 {
                    bloom.insert(&traj[0].bloom_key());
                    bloom.insert(&traj[SECONDS_PER_VP as usize - 1].bloom_key());
                }
            }
            StoredVp::new(ids[i], trajectories[i].clone(), bloom, i == 0)
        })
        .collect()
}

fn site() -> Site {
    Site {
        center: GeoPos::new(400.0, 0.0),
        radius_m: 100_000.0,
    }
}

/// Order-independent fingerprint of a viewmap's full edge set plus its
/// member identities — the "same investigation outcome" oracle.
fn viewmap_checksum(vm: &Viewmap) -> u64 {
    let mut sum = vm.len() as u64;
    for (i, vp) in vm.vps.iter().enumerate() {
        sum = sum.wrapping_add(vp.id.0.low_u64().rotate_left((i % 61) as u32));
    }
    for (i, nbrs) in vm.adj.iter().enumerate() {
        for &j in nbrs {
            if j > i {
                sum = sum.wrapping_add((i as u64).wrapping_mul(1_000_003) ^ (j as u64));
            }
        }
    }
    sum
}

fn submission(vp: StoredVp) -> AnonymousSubmission {
    AnonymousSubmission { session_id: 0, vp }
}

/// Full observable-state equality between two servers over the given
/// minutes and ids: totals, bucket contents in order, index routing,
/// trusted flags, and built-viewmap edges.
fn assert_state_equivalent(
    a: &ViewMapServer,
    b: &ViewMapServer,
    minutes: std::ops::Range<u64>,
    ids: &[VpId],
    ctx: &str,
) {
    assert_eq!(a.total_vps(), b.total_vps(), "{ctx}: total_vps");
    for m in minutes {
        let (va, vb) = (a.minute_vps(MinuteId(m)), b.minute_vps(MinuteId(m)));
        assert_eq!(va.len(), vb.len(), "{ctx}: minute {m} bucket size");
        for (x, y) in va.iter().zip(&vb) {
            assert_eq!(x.id, y.id, "{ctx}: minute {m} bucket order");
            assert_eq!(x.trusted, y.trusted, "{ctx}: minute {m} trusted flag");
        }
        let vma = a.build_viewmap(MinuteId(m), site());
        let vmb = b.build_viewmap(MinuteId(m), site());
        assert_eq!(
            viewmap_checksum(&vma),
            viewmap_checksum(&vmb),
            "{ctx}: minute {m} viewmap edges ({} vs {} edges)",
            vma.edge_count(),
            vmb.edge_count()
        );
    }
    for id in ids {
        match (a.lookup_vp(*id), b.lookup_vp(*id)) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.id, y.id, "{ctx}: lookup id");
                assert_eq!(x.minute(), y.minute(), "{ctx}: lookup minute");
            }
            (x, y) => panic!(
                "{ctx}: lookup {id} diverges: live={} reopened={}",
                x.is_some(),
                y.is_some()
            ),
        }
    }
}

// ── Satellite: torn-tail crash simulation ──────────────────────────────

#[test]
fn torn_tail_at_every_byte_offset_recovers_the_committed_prefix() {
    let tmp = TempDir::new("torn_tail");
    let minute = MinuteId(0);
    let world = linked_world(4, 0, 11);

    // Write 3 records, note the clean length, then the tail record.
    let (store, _, _) = VpStore::open(&tmp.0, cfg()).unwrap();
    let seg = segment::segment_path(&tmp.0, minute);
    {
        use viewmap_core::wal::VpWal;
        let refs: Vec<&StoredVp> = world[..3].iter().collect();
        store.append(&refs).unwrap();
        store.sync().unwrap();
    }
    let clean_len = std::fs::metadata(&seg).unwrap().len();
    {
        use viewmap_core::wal::VpWal;
        store.append(&[&world[3]]).unwrap();
        store.sync().unwrap();
    }
    drop(store);
    let pristine = std::fs::read(&seg).unwrap();
    assert!(pristine.len() as u64 > clean_len);

    // Crash at every byte offset of the tail record: the first 3 records
    // must come back bit-identical, the 4th must vanish, and the file
    // must be truncated to the clean boundary.
    for cut in clean_len..pristine.len() as u64 {
        std::fs::write(&seg, &pristine[..cut as usize]).unwrap();
        let (_, vps, report) =
            VpStore::open(&tmp.0, cfg()).unwrap_or_else(|e| panic!("open at cut {cut}: {e}"));
        assert_eq!(vps.len(), 3, "cut {cut}: committed prefix only");
        assert_eq!(report.records, 3, "cut {cut}");
        assert_eq!(
            report.torn_segments,
            usize::from(cut > clean_len),
            "cut {cut}: torn iff bytes past the boundary exist"
        );
        assert_eq!(
            std::fs::metadata(&seg).unwrap().len(),
            clean_len,
            "cut {cut}: truncated to the last clean frame"
        );
    }

    // After one representative crash, the log accepts appends again and
    // the next recovery sees old + new.
    std::fs::write(&seg, &pristine[..(clean_len + 7) as usize]).unwrap();
    let (store, vps, _) = VpStore::open(&tmp.0, cfg()).unwrap();
    assert_eq!(vps.len(), 3);
    {
        use viewmap_core::wal::VpWal;
        store.append(&[&world[3]]).unwrap();
        store.sync().unwrap();
    }
    drop(store);
    let (_, vps, report) = VpStore::open(&tmp.0, cfg()).unwrap();
    assert_eq!((vps.len(), report.torn_segments), (4, 0));
    for (a, b) in world.iter().zip(&vps) {
        assert_eq!(a.id, b.id, "append-after-recovery order");
    }
}

#[test]
fn torn_tail_recovery_feeds_an_equivalent_server() {
    // End to end: a server recovered from a torn log equals a live
    // server that only ever saw the committed prefix.
    let tmp = TempDir::new("torn_server");
    let world = linked_world(6, 0, 13);
    let mut rng = StdRng::seed_from_u64(1);
    {
        let (srv, _) =
            ViewMapServer::open(&mut rng, 512, ViewmapConfig::default(), &tmp.0, cfg()).unwrap();
        let results = srv.submit_trusted_batch(vec![world[0].clone()]);
        assert!(results[0].is_ok());
        for vp in &world[1..] {
            srv.submit(submission(vp.clone())).unwrap();
        }
        srv.sync_wal().unwrap();
    }
    // Tear 40 bytes off the tail (mid-record: records are KBs).
    let seg = segment::segment_path(&tmp.0, MinuteId(0));
    let bytes = std::fs::read(&seg).unwrap();
    std::fs::write(&seg, &bytes[..bytes.len() - 40]).unwrap();

    let (recovered, report) =
        ViewMapServer::open(&mut rng, 512, ViewmapConfig::default(), &tmp.0, cfg()).unwrap();
    assert_eq!(report.records, 5, "tail record torn away");
    assert_eq!(report.torn_segments, 1);
    assert_eq!(report.rejected, 0);

    let live = ViewMapServer::new(&mut rng, 512, ViewmapConfig::default());
    let r = live.submit_trusted_batch(vec![world[0].clone()]);
    assert!(r[0].is_ok());
    for vp in &world[1..5] {
        live.submit(submission(vp.clone())).unwrap();
    }
    let ids: Vec<VpId> = world.iter().map(|vp| vp.id).collect();
    assert_state_equivalent(&live, &recovered, 0..1, &ids, "torn-tail server");
}

// ── Satellite: persisted-vs-live equivalence under random traffic ──────

/// One random traffic history applied twice — to a RAM-only server and
/// to a persistent one — then the persistent server is dropped and
/// reopened. All three must agree on every observable.
fn run_random_history(case: u64) {
    let tmp = TempDir::new(&format!("equiv_{case}"));
    let mut rng = StdRng::seed_from_u64(case);
    let vmcfg = ViewmapConfig::default();
    let minutes = 3u64;
    let per_minute = 8usize;

    // The VP pool: a linked world per minute (index 0 trusted).
    let pool: Vec<Vec<StoredVp>> = (0..minutes)
        .map(|m| linked_world(per_minute, m, 1000 + case))
        .collect();
    let ids: Vec<VpId> = pool.iter().flatten().map(|vp| vp.id).collect();

    let live = ViewMapServer::new(&mut rng, 512, vmcfg);
    let (durable, _) = ViewMapServer::open(&mut rng, 512, vmcfg, &tmp.0, cfg()).unwrap();

    let n_ops = rng.gen_range(6..18);
    for _ in 0..n_ops {
        match rng.gen_range(0..4u32) {
            // Single submit (duplicates welcome — both must agree).
            0 => {
                let m = rng.gen_range(0..minutes) as usize;
                let i = rng.gen_range(0..per_minute);
                let vp = pool[m][i].clone();
                let a = live.submit(submission(vp.clone()));
                let b = durable.submit(submission(vp));
                assert_eq!(a, b, "case {case}: single submit outcome");
            }
            // Plain batch of a random slice (may span replays).
            1 => {
                let m = rng.gen_range(0..minutes) as usize;
                let lo = rng.gen_range(0..per_minute);
                let hi = rng.gen_range(lo..=per_minute);
                let batch: Vec<AnonymousSubmission> =
                    pool[m][lo..hi].iter().cloned().map(submission).collect();
                let a = live.submit_batch(batch.clone());
                let b = durable.submit_batch(batch);
                assert_eq!(a, b, "case {case}: batch outcomes");
            }
            // Trusted batch (key-warm path).
            2 => {
                let m = rng.gen_range(0..minutes) as usize;
                let i = rng.gen_range(0..per_minute);
                let a = live.submit_trusted_batch(vec![pool[m][i].clone()]);
                let b = durable.submit_trusted_batch(vec![pool[m][i].clone()]);
                assert_eq!(a, b, "case {case}: trusted batch outcomes");
            }
            // Retention sweep.
            _ => {
                let cutoff = MinuteId(rng.gen_range(0..=minutes));
                let a = live.evict_minutes_before(cutoff);
                let b = durable.evict_minutes_before(cutoff);
                assert_eq!(a, b, "case {case}: eviction count at {cutoff:?}");
            }
        }
    }

    // Live vs durable before the restart...
    assert_state_equivalent(
        &live,
        &durable,
        0..minutes,
        &ids,
        &format!("case {case}: pre"),
    );
    durable.sync_wal().unwrap();
    drop(durable);

    // ...and vs the server recovered from disk after it.
    let (reopened, report) = ViewMapServer::open(&mut rng, 512, vmcfg, &tmp.0, cfg()).unwrap();
    assert_eq!(report.rejected, 0, "case {case}: replay must screen clean");
    assert_eq!(report.torn_segments, 0, "case {case}: graceful shutdown");
    assert_state_equivalent(
        &live,
        &reopened,
        0..minutes,
        &ids,
        &format!("case {case}: post-recovery"),
    );
    assert_eq!(
        live.total_vps(),
        report.records,
        "case {case}: the log holds exactly the live records"
    );
}

#[test]
fn persisted_equals_live_across_random_submit_batch_evict_histories() {
    // A spread of deterministic histories; each exercises a different
    // interleaving of singles, batches, trusted batches, and sweeps.
    for case in 0..12u64 {
        run_random_history(case);
    }
}

#[test]
fn eviction_drops_segments_and_memory_together() {
    let tmp = TempDir::new("evict");
    let mut rng = StdRng::seed_from_u64(5);
    let vmcfg = ViewmapConfig::default();
    let (srv, _) = ViewMapServer::open(&mut rng, 512, vmcfg, &tmp.0, cfg()).unwrap();
    for m in 0..4u64 {
        let world = linked_world(3, m, 77);
        let results = srv.submit_batch(world.into_iter().map(submission));
        assert!(results.iter().all(|r| r.is_ok()));
    }
    assert_eq!(srv.total_vps(), 12);
    for m in 0..4u64 {
        assert!(segment::segment_path(&tmp.0, MinuteId(m)).exists());
    }

    assert_eq!(srv.evict_minutes_before(MinuteId(2)), 6);
    for m in 0..2u64 {
        assert!(
            !segment::segment_path(&tmp.0, MinuteId(m)).exists(),
            "minute {m} segment must be deleted with the memory sweep"
        );
    }
    drop(srv);

    let (reopened, report) = ViewMapServer::open(&mut rng, 512, vmcfg, &tmp.0, cfg()).unwrap();
    assert_eq!(report.segments, 2);
    assert_eq!(reopened.total_vps(), 6);
    for m in 0..2u64 {
        assert_eq!(reopened.vp_count(MinuteId(m)), 0, "minute {m} stays gone");
    }
    // Evicted ids are submittable again — on both layers.
    let world = linked_world(3, 0, 77);
    reopened.submit(submission(world[1].clone())).unwrap();
    assert_eq!(reopened.vp_count(MinuteId(0)), 1);
}

#[test]
fn recovered_server_is_key_warm_and_investigates_identically() {
    // The recovery path replays through the warm batch machinery: every
    // recovered VP must already hold its link keys, and the first
    // investigation after a restart must match the pre-restart one.
    let tmp = TempDir::new("warm");
    let mut rng = StdRng::seed_from_u64(9);
    let vmcfg = ViewmapConfig::default();
    let world = linked_world(10, 0, 21);
    let before;
    {
        let (srv, _) = ViewMapServer::open(&mut rng, 512, vmcfg, &tmp.0, cfg()).unwrap();
        let results = srv.submit_batch(world.iter().cloned().map(submission));
        assert!(results.iter().all(|r| r.is_ok()));
        before = viewmap_checksum(&srv.build_viewmap(MinuteId(0), site()));
        srv.sync_wal().unwrap();
    }
    let (srv, _) = ViewMapServer::open(&mut rng, 512, vmcfg, &tmp.0, cfg()).unwrap();
    for vp in srv.minute_vps(MinuteId(0)) {
        assert!(vp.is_key_warm(), "recovered VP {} is key-cold", vp.id);
    }
    let after = viewmap_checksum(&srv.build_viewmap(MinuteId(0), site()));
    assert_eq!(before, after, "restart changed the investigation outcome");
}
