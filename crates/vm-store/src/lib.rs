//! `vm-store` — durable append-log VP storage with crash recovery.
//!
//! The ViewMap server is RAM-first: a sharded minute-keyed map plus a
//! `VpId → (minute, pos)` index, both append-only per minute. That
//! layout maps directly onto a minute-bucketed append log, and this
//! crate is that log: one segment file per minute, records appended in
//! exactly the order the in-memory bucket grows, group-committed per
//! batch, checksummed per record, and truncated back to the last fully
//! committed record on open. [`VpStore`] implements the server's
//! [`viewmap_core::wal::VpWal`] seam; [`PersistentServer`] adds the
//! `ViewMapServer::open` / `ViewMapServer::persistent` constructors
//! that replay a directory of segments through the normal batch-ingest
//! machinery (including its parallel link-key warm) and then attach the
//! store as the server's live WAL.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/
//!   minute-000000000000.vmseg      one segment per logged minute
//!   minute-000000000017.vmseg
//!   ...
//!
//! segment  := seg_header frame*
//! seg_header (16 B) := magic "VMSEG001" (8 B) | minute u64 LE
//! frame (16 B + body) :=
//!   ┌──────────────┬─────────────┬──────────────────┬────────────┐
//!   │ magic "VMR1" │ body_len u32│ checksum64 u64 LE │ body bytes │
//!   │ (4 B)        │ LE (4 B)    │ of body           │ (body_len) │
//!   └──────────────┴─────────────┴──────────────────┴────────────┘
//!
//! body (one VP record, see `codec`) :=
//!   vp_id (16 B) | trusted u8 | n_vds u16 LE | bloom_k u8
//!   | bloom_len u16 LE | bloom bytes
//!   | vds[0] as an 84-byte full-precision frame (`encode_store`)
//!   | vds[1..] as predictive delta frames:
//!       shape u8                  set bits mark explicitly-encoded fields;
//!                                 clear bits mean the predictor holds:
//!         bit0 seq    (pred: prev+1)     → zigzag-varint Δseq
//!         bit1 flags  (pred: prev)       → varint flags
//!         bit2 time   (pred: prev+1)     → zigzag-varint Δtime
//!         bit3 fsize  (pred: repeat Δ)   → zigzag-varint Δ-of-Δ
//!         bit4 initial(pred: prev)       → 2 × varint xor-bits
//!         bit5 vp_id  (pred: prev)       → 2 × varint xor-bits
//!       varint xor-bits(loc.x vs 2·prev − prev2)   (always)
//!       varint xor-bits(loc.y vs 2·prev − prev2)   (always)
//!       hash (16 B raw)
//! ```
//!
//! The predictors encode what every honest per-second cascade produces
//! — counters advancing by one, constant identity fields, a steady
//! video byte rate, near-linear motion — so the typical delta frame is
//! a shape byte, two short coordinate xors (linear extrapolation leaves
//! only low mantissa bits), and the incompressible 16-byte cascade
//! hash: ~20 B per VD, ~1.5 KB per 60-VD record against 5.3 KB flat.
//! Every field still round-trips **bit-exactly** for arbitrary values
//! (NaN payloads included; the coordinate predictor falls back to the
//! previous sample's bits on non-finite inputs so it is plain IEEE
//! arithmetic on every platform), which recovery correctness depends
//! on: a replayed server must build the same viewmap edges the live
//! one did.
//!
//! # Recovery invariants
//!
//! 1. **Committed prefix.** On [`VpStore::open`], each segment is
//!    scanned frame by frame; the first frame whose magic, length, or
//!    checksum fails ends the valid prefix and the file is truncated
//!    there. A crash mid-write (torn frame header, torn body, bit rot
//!    in the tail) therefore recovers exactly the fully-committed
//!    record prefix — never a partial VP, never a panic.
//! 2. **Order.** The server appends under the committing minute's shard
//!    lock, so a segment's record order equals the in-memory bucket's
//!    append order; replaying segments in minute order through
//!    [`viewmap_core::server::ViewMapServer::submit_replay_batch`]
//!    rebuilds bucket positions — and with them the id index — exactly.
//! 3. **Re-screened replay.** Replay goes through the normal admission
//!    screen and dedup; a log can never smuggle in a VP the live server
//!    would have rejected.
//! 4. **Retention.** `evict_minutes_before` deletes whole segment files
//!    in lockstep with the in-memory sweep: disk never resurrects a
//!    minute the privacy model already expired.
//! 5. **Foreign files.** A file under a segment name that this store
//!    did not write there (wrong magic, or a header minute
//!    contradicting the filename) is never replayed, never mutated,
//!    and never deleted: recovery moves it aside to
//!    `*.vmseg.mismatch*` so the minute restarts a clean segment while
//!    the original bytes survive for the operator.
//! 6. **Single process.** A `LOCK` pidfile makes the directory
//!    exclusive for the store's lifetime; locks from provably-dead
//!    owners are reclaimed so crash recovery stays unattended.
//!
//! Durability policy is [`Fsync`]: `Always` fsyncs once per group
//! commit (survives power loss), `Never` leaves flushing to the OS page
//! cache (survives process crash; the default, and what the benchmarks
//! measure). The RSA signing key **is** persisted, beside the segments
//! as `signing.key` (see [`keyfile`]): cash verifies only against the
//! key that minted it, so the key must outlive any single process —
//! and must be *shared* with replication followers, whose promotion
//! would otherwise orphan every outstanding unit. `open` loads the
//! keyfile (generating and persisting one on first boot);
//! [`PersistentServer::open_with_key`] opens around an
//! operator-supplied key and refuses a mismatch. Only a recovery that
//! finds records with **no keyfile beside them** (a pre-keyfile
//! directory, or a deleted key) still generates fresh and flags it
//! ([`RecoveryReport::fresh_signing_key`] /
//! [`RecoveryWarning::FreshSigningKey`]) instead of passing silently.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod fault;
pub mod keyfile;
pub mod segment;
pub mod store;

pub use codec::{decode_record, encode_record, CodecError};
pub use fault::FrameSpan;
pub use segment::{tail_frames, SegmentMeta, FRAME_HEADER_BYTES, SEGMENT_HEADER_BYTES};
pub use store::{
    frame_records, Fsync, PersistentServer, RecoveryReport, RecoveryWarning, StoreConfig, VpStore,
};
