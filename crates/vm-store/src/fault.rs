//! Seeded fault injection against segment files — the storage half of
//! the `vm-vopr` deterministic crash simulator.
//!
//! A simulated process crash drops the in-memory server without a
//! graceful sync; what the next open sees on disk is then decided
//! *here*, by explicitly injuring the segment tail at exact, seeded
//! byte offsets:
//!
//! * [`tear_at`] truncates a file mid-frame — the torn group commit a
//!   power cut leaves behind;
//! * a truncation at a frame boundary (an offset from
//!   [`segment_frames`]) models an fsync-loss window: the last group
//!   commits never reached stable media, but everything before them is
//!   intact;
//! * [`corrupt_at`] flips one byte in place — bit rot under a valid
//!   length, which recovery must catch by checksum, not by length.
//!
//! [`segment_frames`] is deliberately an **independent** re-walk of the
//! frame layout (magic, declared length, checksum — it never calls
//! [`crate::codec::decode_record`]): the harness uses it both to pick
//! injury offsets and as a cross-check that the segment writer actually
//! produced the layout recovery expects.

use crate::segment::{FRAME_HEADER_BYTES, FRAME_MAGIC, SEGMENT_HEADER_BYTES, SEGMENT_MAGIC};
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// One committed frame's position inside a segment file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameSpan {
    /// Byte offset of the frame header from the start of the file.
    pub offset: u64,
    /// Total frame length (header + body).
    pub len: u64,
}

impl FrameSpan {
    /// Byte offset one past the frame — the clean boundary a
    /// frame-aligned truncation cuts at.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// Walk a segment file and return the span of every committed frame, in
/// file order. The walk stops at the first frame whose magic, declared
/// length, or checksum fails — exactly where recovery would truncate —
/// and never decodes record bodies, so it stays an independent check on
/// the on-disk layout. Errors only on I/O; a file that is not a segment
/// at all (short or wrong header magic) yields an empty list.
pub fn segment_frames(path: &Path) -> std::io::Result<Vec<FrameSpan>> {
    let mut data = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut data)?;
    let mut spans = Vec::new();
    if data.len() < SEGMENT_HEADER_BYTES || data[..8] != SEGMENT_MAGIC {
        return Ok(spans);
    }
    let mut off = SEGMENT_HEADER_BYTES;
    while off + FRAME_HEADER_BYTES <= data.len() {
        let header = &data[off..off + FRAME_HEADER_BYTES];
        if header[..4] != FRAME_MAGIC {
            break;
        }
        let body_len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
        let checksum = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let body_at = off + FRAME_HEADER_BYTES;
        let Some(body) = data.get(body_at..body_at + body_len) else {
            break;
        };
        if vm_crypto::checksum64(body) != checksum {
            break;
        }
        spans.push(FrameSpan {
            offset: off as u64,
            len: (FRAME_HEADER_BYTES + body_len) as u64,
        });
        off = body_at + body_len;
    }
    Ok(spans)
}

/// Truncate `path` to exactly `byte_len` bytes — the simulated torn
/// write. Cutting at a [`FrameSpan`] boundary models an fsync-loss
/// window (whole group commits vanish, the rest is clean); cutting
/// inside a frame models a torn group commit the next recovery must
/// truncate away. Growing a file is not a fault this injector models,
/// so a `byte_len` past the current end is an error.
pub fn tear_at(path: &Path, byte_len: u64) -> std::io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    let current = file.metadata()?.len();
    if byte_len > current {
        return Err(std::io::Error::other(format!(
            "tear_at {byte_len} past the end of {} ({current} bytes)",
            path.display()
        )));
    }
    file.set_len(byte_len)?;
    file.sync_data()
}

/// XOR one byte of `path` in place at `offset` — simulated bit rot.
/// Returns the original byte so a harness can assert the flip landed
/// where its seed said it would.
pub fn corrupt_at(path: &Path, offset: u64) -> std::io::Result<u8> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    let mut byte = [0u8; 1];
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(&mut byte)?;
    let original = byte[0];
    byte[0] ^= 0xff;
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(&byte)?;
    file.sync_data()?;
    Ok(original)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{append_frame, recover_segment, segment_path, SegmentWriter};
    use std::path::PathBuf;
    use viewmap_core::types::{GeoPos, MinuteId, VpId, SECONDS_PER_VP};
    use viewmap_core::vd::ViewDigest;
    use viewmap_core::vp::StoredVp;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("vm_store_fault_{tag}_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn synthetic_vp(tag: u64, minute: u64) -> StoredVp {
        let mut id_bytes = [0u8; 16];
        id_bytes[..8].copy_from_slice(&tag.to_le_bytes());
        id_bytes[8..].copy_from_slice(&minute.to_le_bytes());
        let id = VpId(vm_crypto::Digest16(id_bytes));
        let start = minute * SECONDS_PER_VP;
        let vds: Vec<ViewDigest> = (1..=SECONDS_PER_VP as u16)
            .map(|seq| ViewDigest {
                seq,
                flags: 0,
                time: start + seq as u64,
                loc: GeoPos::new(tag as f64 + seq as f64 * 8.0, minute as f64),
                file_size: seq as u64 * 64,
                initial_loc: GeoPos::new(tag as f64, 0.0),
                vp_id: id,
                hash: vm_crypto::Digest16(id_bytes),
            })
            .collect();
        StoredVp::new(id, vds, viewmap_core::bloom::BloomFilter::default(), false)
    }

    fn write_segment(dir: &Path, minute: MinuteId, n: u64) -> PathBuf {
        let mut w = SegmentWriter::open(dir, minute).unwrap();
        let mut frames = Vec::new();
        for tag in 0..n {
            append_frame(&mut frames, &synthetic_vp(tag, minute.0));
        }
        w.append(&frames).unwrap();
        w.sync().unwrap();
        segment_path(dir, minute)
    }

    #[test]
    fn frame_walk_matches_recovery_and_non_segments_yield_nothing() {
        let tmp = TempDir::new("walk");
        let path = write_segment(&tmp.0, MinuteId(3), 5);
        let spans = segment_frames(&path).unwrap();
        assert_eq!(spans.len(), 5);
        assert_eq!(spans[0].offset, SEGMENT_HEADER_BYTES as u64);
        // Spans tile the file exactly: each frame starts where the
        // previous one ends, and the last one ends at EOF.
        for w in spans.windows(2) {
            assert_eq!(w[0].end(), w[1].offset);
        }
        assert_eq!(
            spans.last().unwrap().end(),
            std::fs::metadata(&path).unwrap().len()
        );
        // The independent walk agrees with the real recovery scan.
        let (meta, _) = recover_segment(&path, MinuteId(3)).unwrap().unwrap();
        assert_eq!(meta.records, spans.len());

        let foreign = tmp.0.join("not-a-segment");
        std::fs::write(&foreign, b"hello").unwrap();
        assert!(segment_frames(&foreign).unwrap().is_empty());
    }

    #[test]
    fn frame_boundary_tear_drops_whole_records_cleanly() {
        let tmp = TempDir::new("boundary");
        let minute = MinuteId(0);
        let path = write_segment(&tmp.0, minute, 4);
        let spans = segment_frames(&path).unwrap();
        // Cut two whole frames off the tail: an fsync-loss window.
        tear_at(&path, spans[2].offset).unwrap();
        let (meta, vps) = recover_segment(&path, minute).unwrap().unwrap();
        assert_eq!(meta.records, 2, "two survivors");
        assert_eq!(meta.truncated_bytes, 0, "boundary cut is not torn");
        assert_eq!(vps.len(), 2);
        // Growing the file back is not a modeled fault.
        assert!(tear_at(&path, spans[3].end()).is_err());
    }

    #[test]
    fn mid_frame_tear_is_torn_and_truncated_by_recovery() {
        let tmp = TempDir::new("midframe");
        let minute = MinuteId(1);
        let path = write_segment(&tmp.0, minute, 3);
        let spans = segment_frames(&path).unwrap();
        let cut = spans[2].offset + 7; // 7 bytes into the tail frame's header
        tear_at(&path, cut).unwrap();
        let (meta, vps) = recover_segment(&path, minute).unwrap().unwrap();
        assert_eq!(meta.records, 2);
        assert_eq!(meta.truncated_bytes, 7, "the torn header bytes");
        assert_eq!(vps.len(), 2);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            spans[2].offset,
            "recovery cut back to the clean boundary"
        );
    }

    #[test]
    fn corrupt_at_ends_the_committed_prefix_at_the_flip() {
        let tmp = TempDir::new("bitrot");
        let minute = MinuteId(2);
        let path = write_segment(&tmp.0, minute, 3);
        let spans = segment_frames(&path).unwrap();
        let flip = spans[1].offset + FRAME_HEADER_BYTES as u64 + 10; // record 2's body
        let original = corrupt_at(&path, flip).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap()[flip as usize],
            original ^ 0xff
        );
        assert_eq!(
            segment_frames(&path).unwrap().len(),
            1,
            "walk stops at the rot"
        );
        let (meta, vps) = recover_segment(&path, minute).unwrap().unwrap();
        assert_eq!((meta.records, vps.len()), (1, 1));
        assert!(meta.truncated_bytes > 0);
    }
}
