//! Persistence for the server's RSA signing key (`<dir>/signing.key`).
//!
//! Virtual cash verifies against the key that minted it, so the key
//! must outlive any single process: a restarted cell — or a follower
//! promoted after its primary died — that generated a fresh key would
//! orphan every outstanding unit. [`crate::PersistentServer::open`]
//! loads the key from here on reopen and persists a newly generated
//! one on first boot, retiring the old `FreshSigningKey` limitation
//! for directories that have one.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic "VMKEY001" (8 B)
//! | n_len u32 | n big-endian bytes      modulus
//! | e_len u32 | e big-endian bytes      public exponent
//! | d_len u32 | d big-endian bytes      private exponent
//! | checksum64 u64                      over every preceding byte
//! ```
//!
//! Writes are atomic (temp file + rename), so a crash mid-save leaves
//! either the old key or the new one, never a torn file. A present but
//! unreadable keyfile is a **loud error**, not a silent regenerate:
//! minting under a surprise fresh key is exactly the failure this
//! module exists to prevent.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use vm_crypto::{checksum64, BigUint, RsaKeyPair, RsaPublicKey};

/// File name of the persisted signing key inside a store directory.
pub const KEYFILE_NAME: &str = "signing.key";

const KEYFILE_MAGIC: [u8; 8] = *b"VMKEY001";

/// Path of the keyfile inside `dir`.
pub fn keyfile_path(dir: &Path) -> PathBuf {
    dir.join(KEYFILE_NAME)
}

fn push_part(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn corrupt(path: &Path, what: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!(
            "signing keyfile {} is corrupt ({what}) — refusing to generate a fresh key over it; \
             restore the keyfile from backup or delete it to consciously re-key",
            path.display()
        ),
    )
}

/// Serialize `key` to its keyfile bytes.
fn encode(key: &RsaKeyPair) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(&KEYFILE_MAGIC);
    push_part(&mut out, &key.public().modulus().to_bytes_be());
    push_part(&mut out, &key.public().exponent().to_bytes_be());
    push_part(&mut out, &key.private_exponent().to_bytes_be());
    let sum = checksum64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Persist `key` as `<dir>/signing.key`, atomically (temp + rename +
/// directory-entry durability via fsync on the temp file).
pub fn save(dir: &Path, key: &RsaKeyPair) -> std::io::Result<()> {
    let bytes = encode(key);
    let tmp = dir.join(format!("{KEYFILE_NAME}.tmp.{}", std::process::id()));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, keyfile_path(dir))
}

/// Load the signing key from `<dir>/signing.key`.
///
/// `Ok(None)` means no keyfile exists (first boot, or a pre-keyfile
/// directory). A keyfile that exists but fails any structural check —
/// magic, part framing, checksum — is an error: see the module docs.
pub fn load(dir: &Path) -> std::io::Result<Option<RsaKeyPair>> {
    let path = keyfile_path(dir);
    let mut data = Vec::new();
    match std::fs::File::open(&path) {
        Ok(mut f) => f.read_to_end(&mut data)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if data.len() < KEYFILE_MAGIC.len() + 8 || data[..8] != KEYFILE_MAGIC {
        return Err(corrupt(&path, "bad magic or short file"));
    }
    let (body, sum_bytes) = data.split_at(data.len() - 8);
    let stored = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
    if checksum64(body) != stored {
        return Err(corrupt(&path, "checksum mismatch"));
    }
    let mut off = KEYFILE_MAGIC.len();
    let mut part = |what: &str| -> std::io::Result<BigUint> {
        let len_bytes = body
            .get(off..off + 4)
            .ok_or_else(|| corrupt(&path, what))?
            .try_into()
            .expect("4 bytes");
        let len = u32::from_le_bytes(len_bytes) as usize;
        let bytes = body
            .get(off + 4..off + 4 + len)
            .ok_or_else(|| corrupt(&path, what))?;
        off += 4 + len;
        Ok(BigUint::from_bytes_be(bytes))
    };
    let n = part("modulus part torn")?;
    let e = part("exponent part torn")?;
    let d = part("private part torn")?;
    if off != body.len() {
        return Err(corrupt(&path, "trailing bytes"));
    }
    Ok(Some(RsaKeyPair::from_parts(
        RsaPublicKey::from_parts(n, e),
        d,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("vm_store_keyfile_{tag}_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let tmp = TempDir::new("roundtrip");
        assert!(load(&tmp.0).unwrap().is_none(), "no keyfile yet");
        let mut rng = StdRng::seed_from_u64(11);
        let key = RsaKeyPair::generate(&mut rng, 512);
        save(&tmp.0, &key).unwrap();
        let back = load(&tmp.0).unwrap().expect("keyfile present");
        assert_eq!(back, key);
        // Overwrite with a different key: last save wins.
        let key2 = RsaKeyPair::generate(&mut rng, 512);
        save(&tmp.0, &key2).unwrap();
        assert_eq!(load(&tmp.0).unwrap().unwrap(), key2);
    }

    #[test]
    fn corrupt_keyfiles_error_loudly() {
        let tmp = TempDir::new("corrupt");
        let mut rng = StdRng::seed_from_u64(12);
        let key = RsaKeyPair::generate(&mut rng, 512);
        save(&tmp.0, &key).unwrap();
        let good = std::fs::read(keyfile_path(&tmp.0)).unwrap();

        // Flipped byte in the body: checksum catches it.
        let mut bad = good.clone();
        bad[KEYFILE_MAGIC.len() + 6] ^= 0xff;
        std::fs::write(keyfile_path(&tmp.0), &bad).unwrap();
        assert!(load(&tmp.0).is_err());

        // Truncated file.
        std::fs::write(keyfile_path(&tmp.0), &good[..good.len() / 2]).unwrap();
        assert!(load(&tmp.0).is_err());

        // Wrong magic.
        let mut bad = good.clone();
        bad[0] ^= 0x20;
        std::fs::write(keyfile_path(&tmp.0), &bad).unwrap();
        assert!(load(&tmp.0).is_err());

        // The error tells the operator what to do, and never silently
        // regenerates.
        std::fs::write(keyfile_path(&tmp.0), &good[..good.len() / 2]).unwrap();
        let err = load(&tmp.0).unwrap_err();
        assert!(err.to_string().contains("refusing"), "{err}");
    }
}
