//! [`VpStore`] — a directory of minute segments behind the server's
//! [`VpWal`] seam — and the [`PersistentServer`] constructors that put
//! a recovered [`ViewMapServer`] on top of it.

use crate::keyfile;
use crate::segment::{self, parse_segment_file_name, recover_segment, segment_path, SegmentWriter};
use parking_lot::Mutex;
use rand::Rng;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use viewmap_core::server::ViewMapServer;
use viewmap_core::types::MinuteId;
use viewmap_core::viewmap::ViewmapConfig;
use viewmap_core::vp::StoredVp;
use viewmap_core::wal::VpWal;
use vm_crypto::RsaKeyPair;
use vm_obs::{Counter, Histogram, Registry};

/// How hard a group commit pushes toward stable media.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fsync {
    /// `fdatasync` once per group commit: committed means power-loss
    /// durable. The group-commit batching is what keeps this affordable
    /// — one sync per batch, never one per VP.
    Always,
    /// Leave flushing to the OS page cache: committed means
    /// process-crash durable (the write has returned from the kernel),
    /// but power loss may drop the tail — which recovery then truncates
    /// cleanly. The default, and the mode the benchmarks measure.
    Never,
}

/// Store configuration.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Durability policy for group commits.
    pub fsync: Fsync,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            fsync: Fsync::Never,
        }
    }
}

impl StoreConfig {
    /// Read the policy from `VM_STORE_FSYNC` (`always` / `never`,
    /// case-insensitive; unset means `never`) — the knob the CI
    /// durability matrix turns so the whole suite runs under both
    /// policies.
    ///
    /// Panics on any other value: an operator who writes
    /// `VM_STORE_FSYNC=true` believing commits are power-loss durable
    /// must not be silently downgraded to `never`.
    pub fn from_env() -> StoreConfig {
        let fsync = match std::env::var("VM_STORE_FSYNC") {
            Err(std::env::VarError::NotPresent) => Fsync::Never,
            Ok(v) if v.eq_ignore_ascii_case("always") || v == "1" => Fsync::Always,
            Ok(v) if v.eq_ignore_ascii_case("never") || v == "0" || v.is_empty() => Fsync::Never,
            other => panic!(
                "VM_STORE_FSYNC must be 'always' or 'never', got {other:?} — refusing to guess \
                 a durability policy"
            ),
        };
        StoreConfig { fsync }
    }
}

/// A post-recovery condition the operator must act on (or consciously
/// accept). Produced by [`RecoveryReport::warnings`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryWarning {
    /// The store recovered existing records but **no signing keyfile**
    /// was found beside them, so the server was constructed with a
    /// freshly generated RSA key (now persisted for the next boot).
    /// This only happens to directories written before key persistence
    /// existed, or when an operator deleted `signing.key`. Every unit
    /// of cash issued before the restart verifies only under the *old*
    /// key: until the operator re-supplies it (restore the keyfile, or
    /// reopen via [`PersistentServer::open_with_key`]), outstanding
    /// cash is unredeemable (`RedeemError::BadSignature`) and rewards
    /// issued now are signed by a key pre-restart wallets have never
    /// seen.
    FreshSigningKey {
        /// How many records the replay recovered under the new key.
        recovered_records: usize,
    },
}

impl std::fmt::Display for RecoveryWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryWarning::FreshSigningKey { recovered_records } => write!(
                f,
                "recovered {recovered_records} records with no signing keyfile beside them; \
                 a fresh RSA key was generated and persisted — cash issued before the restart \
                 will not verify until the operator re-supplies the original key"
            ),
        }
    }
}

/// What [`VpStore::open`] found on disk (and what replay did with it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segment files replayed.
    pub segments: usize,
    /// Committed records recovered across all segments.
    pub records: usize,
    /// Segments that had a torn tail truncated.
    pub torn_segments: usize,
    /// Total bytes truncated off torn tails.
    pub truncated_bytes: u64,
    /// Recovered records the admission screen rejected on replay
    /// (always 0 for logs this layer wrote — the server screens before
    /// logging — so nonzero means a hand-edited or foreign log).
    pub rejected: usize,
    /// Segment files moved aside (`*.vmseg.mismatch`) because their
    /// header minute contradicted their filename — a renamed or
    /// misplaced file this store never wrote. Quarantining frees the
    /// filename so post-recovery appends for that minute start a clean
    /// segment instead of appending records behind a wrong header
    /// (where every later recovery would silently skip them).
    pub quarantined: usize,
    /// Set by [`PersistentServer::open`] when recovered records were
    /// replayed under a freshly generated signing key because no
    /// `signing.key` file existed beside them (see
    /// [`RecoveryWarning::FreshSigningKey`] and `ARCHITECTURE.md`).
    /// Always `false` for an empty (first-boot) store — a fresh key
    /// over no recovered state orphans nothing — and for every boot
    /// after that, since `open` persists the key it generates.
    pub fresh_signing_key: bool,
}

impl RecoveryReport {
    /// The typed warnings an operator should surface (log, alert)
    /// after standing a server up on this recovery.
    pub fn warnings(&self) -> Vec<RecoveryWarning> {
        let mut out = Vec::new();
        if self.fresh_signing_key {
            out.push(RecoveryWarning::FreshSigningKey {
                recovered_records: self.records,
            });
        }
        out
    }
}

/// Open segment writers kept warm between group commits. Minutes are
/// ingested mostly in wall-clock order, so a tiny LRU covers the
/// active write set; anything older is reopened on demand (cheap — the
/// file already exists and `open` is append-mode).
const MAX_OPEN_SEGMENTS: usize = 8;

/// Batches at or above this size frame on worker threads (mirroring the
/// server's batch-ingest threshold economics: below it, spawn/join
/// overhead beats the fan-out).
const APPEND_PARALLEL_THRESHOLD: usize = 2048;

/// Per-worker byte budget of one commit chunk. A group commit streams
/// the batch through encode→checksum→write in runs of roughly this many
/// bytes instead of materializing the whole batch in one buffer: a
/// city-scale batch (100k records ≈ 150 MB framed) otherwise spills
/// every stage out of cache and pays a cold first touch on ~40k fresh
/// pages — measured at ~10× the per-byte cost of the 10k tier, the
/// `wal_append_ms` regression the bench gate now watches at every tier.
/// Chunking keeps each run cache-resident end to end and bounds the
/// retained encode scratch at a few MB instead of the largest batch
/// ever seen. Commit semantics are unchanged: the records of one
/// `append` still land contiguously, in order, with at most one fsync —
/// a crash between chunk writes truncates to a record boundary exactly
/// as a torn single write would.
const COMMIT_CHUNK_BYTES: usize = 4 << 20;

/// End index of the byte-budgeted chunk starting at `lo` (always at
/// least one record, conservative via [`crate::codec::encoded_size_hint`]).
fn chunk_end(vps: &[&StoredVp], lo: usize, budget: usize) -> usize {
    let mut hi = lo;
    let mut bytes = 0usize;
    while hi < vps.len() && bytes < budget {
        bytes += segment::FRAME_HEADER_BYTES + crate::codec::encoded_size_hint(vps[hi]);
        hi += 1;
    }
    hi
}

/// Frame a run of records — header placeholders, delta-encoded bodies,
/// one multi-buffer checksum pass, headers backpatched — into one
/// buffer. The group-commit unit of work, chunked across workers for
/// large batches.
fn frame_batch(vps: &[&StoredVp]) -> Vec<u8> {
    let mut frames = Vec::new();
    frame_batch_into(vps, &mut frames);
    frames
}

/// As [`frame_batch`], appending into a caller-retained buffer — the
/// single-worker path frames straight into the store's scratch so a
/// group commit touches each byte once (encode, hash, write) with no
/// intermediate allocation.
fn frame_batch_into(vps: &[&StoredVp], frames: &mut Vec<u8>) {
    let base = frames.len();
    frames.reserve(
        vps.iter()
            .map(|vp| segment::FRAME_HEADER_BYTES + crate::codec::encoded_size_hint(vp))
            .sum(),
    );
    let mut spans: Vec<(usize, usize)> = Vec::with_capacity(vps.len());
    for vp in vps {
        let header_at = frames.len();
        frames.resize(header_at + segment::FRAME_HEADER_BYTES, 0);
        let body_at = frames.len();
        crate::codec::encode_record(vp, frames);
        spans.push((header_at, frames.len() - body_at));
    }
    debug_assert!(spans.iter().all(|&(h, _)| h >= base));
    let sums = {
        let bodies: Vec<&[u8]> = spans
            .iter()
            .map(|&(h, l)| {
                &frames[h + segment::FRAME_HEADER_BYTES..h + segment::FRAME_HEADER_BYTES + l]
            })
            .collect();
        vm_crypto::checksum64_many(&bodies)
    };
    for (&(h, l), sum) in spans.iter().zip(sums) {
        segment::patch_frame_header(&mut frames[h..], l, sum);
    }
}

/// Frame each record as its own standalone segment frame (`VMR1`
/// header + checksummed body), encoding on worker threads and stamping
/// checksums through the multi-buffer engine. This is the log-shipping
/// encoder: a replication hub frames a committed append once more for
/// the wire at the group-commit path's throughput, and each returned
/// buffer is one `FRAMES` payload entry verbatim.
pub fn frame_records(vps: &[&StoredVp]) -> Vec<Vec<u8>> {
    fn frame_each(vps: &[&StoredVp]) -> Vec<Vec<u8>> {
        let mut frames: Vec<Vec<u8>> = vps
            .iter()
            .map(|vp| {
                let mut buf = Vec::with_capacity(
                    segment::FRAME_HEADER_BYTES + crate::codec::encoded_size_hint(vp),
                );
                buf.resize(segment::FRAME_HEADER_BYTES, 0);
                crate::codec::encode_record(vp, &mut buf);
                buf
            })
            .collect();
        let sums = {
            let bodies: Vec<&[u8]> = frames
                .iter()
                .map(|f| &f[segment::FRAME_HEADER_BYTES..])
                .collect();
            vm_crypto::checksum64_many(&bodies)
        };
        for (frame, sum) in frames.iter_mut().zip(sums) {
            let body_len = frame.len() - segment::FRAME_HEADER_BYTES;
            segment::patch_frame_header(frame, body_len, sum);
        }
        frames
    }
    let threads = viewmap_core::par::auto_threads(vps.len(), APPEND_PARALLEL_THRESHOLD);
    if threads <= 1 {
        return frame_each(vps);
    }
    let cuts = viewmap_core::par::even_cuts(vps.len(), threads);
    viewmap_core::par::map_ranges(&cuts, |_t, lo, hi| frame_each(&vps[lo..hi]))
        .into_iter()
        .flatten()
        .collect()
}

struct WriterCache {
    /// `(minute, writer)`, most recently used last.
    open: Vec<(u64, SegmentWriter)>,
}

/// Exclusive ownership of a store directory, held for the store's
/// lifetime via a `LOCK` pidfile. Two live processes appending to the
/// same segments would interleave mid-frame and silently truncate each
/// other's records at the next recovery, so the second open must fail
/// loudly instead.
///
/// Staleness: a crashed owner never removes its pidfile, and refusing
/// to reopen after a crash would defeat crash recovery — so a lock
/// whose recorded pid no longer exists (checked via `/proc/<pid>`) is
/// reclaimed. On platforms without `/proc`, delete `<dir>/LOCK`
/// manually after a crash. Pid-recycling can make a dead owner look
/// alive; the error names the pid and path so an operator can resolve
/// it. (Best-effort by design: the lock defends against accidental
/// double-starts, not adversarial racers.)
struct DirLock {
    path: PathBuf,
}

impl DirLock {
    fn acquire(dir: &Path) -> std::io::Result<DirLock> {
        let path = dir.join("LOCK");
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    use std::io::Write;
                    let _ = write!(f, "{}", std::process::id());
                    return Ok(DirLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let owner: Option<u32> = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse().ok());
                    // Reclaim ONLY a provably-dead owner. A pidfile we
                    // cannot read/parse, or a pid we cannot verify (no
                    // /proc), is treated as held: mistaking a live
                    // owner for dead corrupts segments, while the
                    // converse just asks an operator to delete LOCK.
                    let provably_dead = owner.is_some_and(|pid| {
                        Path::new("/proc").is_dir() && !Path::new(&format!("/proc/{pid}")).exists()
                    });
                    if !provably_dead {
                        return Err(std::io::Error::other(format!(
                            "store {} is locked ({}; owner pid {:?}); a second opener would \
                             corrupt segments — delete the LOCK file if the owner is dead",
                            dir.display(),
                            path.display(),
                            owner,
                        )));
                    }
                    std::fs::remove_file(&path)?;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// First free quarantine name for a foreign file: `<name>.mismatch`,
/// then `.mismatch.1`, `.mismatch.2`, … — never silently replacing an
/// earlier quarantined file (each may be someone's only copy). Race-free
/// because the directory is single-process under the `DirLock`.
fn quarantine_path(path: &Path) -> PathBuf {
    let base = path.as_os_str().to_owned();
    for i in 0u32.. {
        let mut name = base.clone();
        if i == 0 {
            name.push(".mismatch");
        } else {
            name.push(format!(".mismatch.{i}"));
        }
        let candidate = PathBuf::from(name);
        if !candidate.exists() {
            return candidate;
        }
    }
    unreachable!("u32 quarantine suffixes exhausted")
}

/// A durable, crash-recoverable append log of VPs: one segment file per
/// minute under one directory. Implements [`VpWal`], so attaching it to
/// a [`ViewMapServer`] makes every accepted VP durable without touching
/// the investigation hot path (reads never look at the store).
///
/// Concurrency: a `LOCK` pidfile makes the store single-process (see
/// `DirLock`); within it, the server serializes appends per minute
/// (they happen under the minute shard's write lock) and the store's
/// own mutexes are held only to check buffers and writers in and out,
/// never across I/O. Retention sweeps of a minute still receiving
/// traffic are the caller's race to avoid — `evict_minutes_before` is
/// meant for minutes past the retention horizon, which by definition no
/// longer ingest.
pub struct VpStore {
    dir: PathBuf,
    fsync: Fsync,
    writers: Mutex<WriterCache>,
    /// Encode scratch: group commits borrow one buffer instead of
    /// allocating a fresh multi-KB Vec per batch.
    scratch: Mutex<Vec<u8>>,
    /// Telemetry, bound once by [`VpStore::bind_obs`] (the durable
    /// constructors bind the owning server's registry). Unbound stores
    /// — unit tests, bare `VpStore::open` callers — pay one
    /// `OnceLock::get` per append and record nothing.
    obs: OnceLock<StoreMetrics>,
    /// Held for the store's lifetime; released (deleted) on drop.
    _lock: DirLock,
}

/// The store's instrument set, registered on the owning server's
/// [`Registry`].
struct StoreMetrics {
    append_us: Arc<Histogram>,
    fsync_us: Arc<Histogram>,
    batch_records: Arc<Histogram>,
    appended_records: Arc<Counter>,
    segments_evicted: Arc<Counter>,
}

impl StoreMetrics {
    fn register(obs: &Registry) -> StoreMetrics {
        StoreMetrics {
            append_us: obs.histogram("vm_store_append_us"),
            fsync_us: obs.histogram("vm_store_fsync_us"),
            batch_records: obs.histogram("vm_store_batch_records"),
            appended_records: obs.counter("vm_store_appended_records_total"),
            segments_evicted: obs.counter("vm_store_segments_evicted_total"),
        }
    }
}

impl VpStore {
    /// Open (creating the directory if needed), take the directory
    /// lock, and recover the store: every segment is scanned to its
    /// last fully-committed record, torn tails are truncated in place,
    /// files that are not segments this store wrote (wrong magic, or a
    /// header minute contradicting the filename) are moved aside to
    /// `*.vmseg.mismatch*`, and the committed records come back in
    /// (minute, append) order, ready for
    /// [`ViewMapServer::submit_replay_batch`].
    pub fn open(
        dir: impl AsRef<Path>,
        cfg: StoreConfig,
    ) -> std::io::Result<(VpStore, Vec<StoredVp>, RecoveryReport)> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let lock = DirLock::acquire(&dir)?;

        let mut minutes: Vec<MinuteId> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_segment_file_name(&e.file_name().to_string_lossy()))
            .collect();
        minutes.sort_unstable();

        let mut report = RecoveryReport::default();
        let mut vps = Vec::new();
        for minute in minutes {
            let path = segment_path(&dir, minute);
            let Some((meta, records)) = recover_segment(&path, minute)? else {
                // Not a segment this store wrote under that name (torn
                // first write, renamed file, misplaced backup). It must
                // not stay under the segment name — a post-recovery
                // append for the minute would push durable records
                // behind a header every later recovery skips — and it
                // must not be deleted either (it may be the only copy
                // of something an operator misplaced). Move it aside,
                // untouched, under a name recovery never scans.
                std::fs::rename(&path, quarantine_path(&path))?;
                report.quarantined += 1;
                continue;
            };
            report.segments += 1;
            report.records += meta.records;
            if meta.truncated_bytes > 0 {
                report.torn_segments += 1;
                report.truncated_bytes += meta.truncated_bytes;
            }
            vps.extend(records);
        }

        Ok((
            VpStore {
                dir,
                fsync: cfg.fsync,
                writers: Mutex::new(WriterCache { open: Vec::new() }),
                scratch: Mutex::new(Vec::new()),
                obs: OnceLock::new(),
                _lock: lock,
            },
            vps,
            report,
        ))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bind this store's telemetry to `obs` (normally the owning
    /// server's registry, so one snapshot covers core and store
    /// together) and publish what recovery found: the report's counts
    /// become one-shot counters, and every
    /// [`RecoveryReport::warnings`] entry plus each quarantined
    /// segment lands in the event journal — observable after the fact
    /// through `STATS` long after the boot-time log line scrolled
    /// away. Idempotent per store (later calls are ignored); the
    /// durable constructors call it before attaching the WAL.
    pub fn bind_obs(&self, obs: &Registry, report: &RecoveryReport) {
        if self.obs.get().is_some() {
            return;
        }
        let metrics = StoreMetrics::register(obs);
        obs.counter("vm_store_recoveries_total").inc();
        obs.counter("vm_store_recovered_segments_total")
            .add(report.segments as u64);
        obs.counter("vm_store_recovered_records_total")
            .add(report.records as u64);
        obs.counter("vm_store_torn_segments_total")
            .add(report.torn_segments as u64);
        obs.counter("vm_store_truncated_bytes_total")
            .add(report.truncated_bytes);
        obs.counter("vm_store_replay_rejected_total")
            .add(report.rejected as u64);
        obs.counter("vm_store_quarantined_segments_total")
            .add(report.quarantined as u64);
        for warning in report.warnings() {
            obs.journal()
                .record("recovery_warning", warning.to_string());
        }
        if report.quarantined > 0 {
            obs.journal().record(
                "segment_quarantined",
                format!(
                    "{} foreign segment file(s) moved aside as *.vmseg.mismatch during recovery",
                    report.quarantined
                ),
            );
        }
        if report.torn_segments > 0 {
            obs.journal().record(
                "torn_tail_truncated",
                format!(
                    "{} segment(s) lost a torn tail ({} bytes truncated)",
                    report.torn_segments, report.truncated_bytes
                ),
            );
        }
        let _ = self.obs.set(metrics);
    }

    /// Run `f` on the minute's segment writer. The cache mutex is held
    /// only to check the writer out and back in — never across `f`'s
    /// I/O — so appends of *different* minutes overlap their writes and
    /// fsyncs. Appends of the *same* minute are already serialized by
    /// the server (they happen under the minute shard's write lock), so
    /// checking the writer out cannot race a same-minute append.
    fn with_writer<T>(
        &self,
        minute: MinuteId,
        f: impl FnOnce(&mut SegmentWriter) -> std::io::Result<T>,
    ) -> std::io::Result<T> {
        let checked_out = {
            let mut cache = self.writers.lock();
            cache
                .open
                .iter()
                .position(|(m, _)| *m == minute.0)
                .map(|i| cache.open.remove(i))
        };
        let mut entry = match checked_out {
            Some(e) => e,
            None => (minute.0, SegmentWriter::open(&self.dir, minute)?),
        };
        let result = f(&mut entry.1);
        let mut cache = self.writers.lock();
        cache.open.push(entry); // most recently used last
        if cache.open.len() > MAX_OPEN_SEGMENTS {
            cache.open.remove(0); // close the coldest handle
        }
        result
    }
}

impl VpWal for VpStore {
    fn append(&self, vps: &[&StoredVp]) -> std::io::Result<()> {
        let Some(first) = vps.first() else {
            return Ok(());
        };
        let minute = first.minute();
        debug_assert!(
            vps.iter().all(|vp| vp.minute() == minute),
            "one append call spans one minute"
        );
        // Group commit: stream the batch through encode→checksum→write
        // in cache-resident chunks ([`COMMIT_CHUNK_BYTES`] per worker),
        // at most one fsync at the end. Within each chunk the bodies
        // are encoded first and checksummed together through the
        // multi-buffer engine (`checksum64_many` — interleaved SHA
        // streams), then the frame headers are backpatched; large
        // chunks fan out over scoped workers whose buffers are written
        // in chunk order, so the on-disk record order is exactly `vps`
        // order on any thread count. Chunking (rather than one
        // batch-sized buffer) is what keeps the per-byte cost flat from
        // the 10k to the 100k tier — see [`COMMIT_CHUNK_BYTES`].
        let threads = viewmap_core::par::auto_threads(vps.len(), APPEND_PARALLEL_THRESHOLD);
        // Borrow the retained scratch allocation by *taking* it — the
        // scratch mutex is held only for the swap, never across framing
        // or I/O, so appends of different minutes overlap their encode
        // and fsync work (a concurrent taker simply starts with a fresh
        // buffer; the larger allocation wins the slot back below).
        let mut frames = {
            let mut scratch = self.scratch.lock();
            std::mem::take(&mut *scratch)
        };
        let metrics = self.obs.get();
        let commit = |frames: &mut Vec<u8>| {
            self.with_writer(minute, |w| {
                let mut lo = 0usize;
                while lo < vps.len() {
                    let hi = chunk_end(vps, lo, COMMIT_CHUNK_BYTES * threads);
                    if threads <= 1 {
                        frames.clear();
                        frame_batch_into(&vps[lo..hi], frames);
                        w.append(frames)?;
                    } else {
                        let cuts = viewmap_core::par::even_cuts(hi - lo, threads);
                        let chunks = viewmap_core::par::map_ranges(&cuts, |_t, a, b| {
                            frame_batch(&vps[lo + a..lo + b])
                        });
                        for chunk in &chunks {
                            w.append(chunk)?;
                        }
                    }
                    lo = hi;
                }
                if self.fsync == Fsync::Always {
                    match metrics {
                        Some(m) => m.fsync_us.time(|| w.sync())?,
                        None => w.sync()?,
                    }
                }
                Ok(())
            })
        };
        // `Histogram::time` skips the clock entirely when telemetry is
        // disabled, so the unbound/disabled path is the pre-telemetry
        // code shape plus one `OnceLock::get`.
        let result = match metrics {
            Some(m) => m.append_us.time(|| commit(&mut frames)),
            None => commit(&mut frames),
        };
        let mut scratch = self.scratch.lock();
        if scratch.capacity() < frames.capacity() {
            *scratch = frames;
        }
        if let Some(m) = metrics {
            if result.is_ok() {
                m.batch_records.record(vps.len() as u64);
                m.appended_records.add(vps.len() as u64);
            }
        }
        result
    }

    fn evict_minutes_before(&self, cutoff: MinuteId) -> std::io::Result<usize> {
        let mut cache = self.writers.lock();
        cache.open.retain(|(m, _)| *m >= cutoff.0);
        let mut removed = 0usize;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let Some(minute) = parse_segment_file_name(&entry.file_name().to_string_lossy()) else {
                continue;
            };
            if minute.0 < cutoff.0 {
                std::fs::remove_file(entry.path())?;
                removed += 1;
            }
        }
        if let Some(m) = self.obs.get() {
            m.segments_evicted.add(removed as u64);
        }
        Ok(removed)
    }

    fn sync(&self) -> std::io::Result<()> {
        let mut cache = self.writers.lock();
        for (_, w) in cache.open.iter_mut() {
            w.sync()?;
        }
        Ok(())
    }
}

/// The durable constructors for [`ViewMapServer`] — `use` this trait
/// and `ViewMapServer::open(…)` / `ViewMapServer::persistent(…)` read
/// like inherent constructors. (They live on a trait because the
/// server crate cannot depend back on this one.)
pub trait PersistentServer: Sized {
    /// Stand up a server backed by the append log in `dir`: recover the
    /// log (truncating torn tails), replay the committed records through
    /// the batch-ingest machinery — parallel link-key warm included, so
    /// a freshly recovered server investigates key-warm — and attach the
    /// store so every future accepted VP is logged. The recovered server
    /// is state-equivalent to the one that wrote the log: same minute
    /// buckets in order, same id index, same viewmap edges.
    ///
    /// The signing key is durable: a `signing.key` file in `dir` is
    /// loaded (and `rng`/`key_bits` go unused); absent one, a fresh key
    /// is generated and persisted for every later boot. Recovering
    /// records with no keyfile beside them flags
    /// [`RecoveryReport::fresh_signing_key`].
    fn open<R: Rng + ?Sized>(
        rng: &mut R,
        key_bits: usize,
        cfg: ViewmapConfig,
        dir: impl AsRef<Path>,
        store_cfg: StoreConfig,
    ) -> std::io::Result<(Self, RecoveryReport)>;

    /// As [`open`](Self::open), but around an **operator-supplied**
    /// signing key — the constructor replication uses so a follower
    /// shares its primary's key and a promoted follower keeps redeeming
    /// cash minted before the failover.
    ///
    /// If `dir` already holds a keyfile it must match `key`; a mismatch
    /// is an error (silently re-keying a store orphans outstanding
    /// cash). A missing keyfile is persisted from `key`, so later
    /// [`open`](Self::open) calls recover the same identity.
    fn open_with_key(
        key: RsaKeyPair,
        cfg: ViewmapConfig,
        dir: impl AsRef<Path>,
        store_cfg: StoreConfig,
    ) -> std::io::Result<(Self, RecoveryReport)>;

    /// As [`open`](Self::open), discarding the report — the one-liner
    /// for "give me a durable server at this path, fresh or recovered".
    fn persistent<R: Rng + ?Sized>(
        rng: &mut R,
        key_bits: usize,
        cfg: ViewmapConfig,
        dir: impl AsRef<Path>,
        store_cfg: StoreConfig,
    ) -> std::io::Result<Self> {
        Self::open(rng, key_bits, cfg, dir, store_cfg).map(|(srv, _)| srv)
    }
}

/// Shared tail of the durable constructors: replay the recovered
/// records, count rejects, attach the store as the live WAL.
fn finish_open(
    key: RsaKeyPair,
    cfg: ViewmapConfig,
    store: VpStore,
    vps: Vec<StoredVp>,
    mut report: RecoveryReport,
) -> (ViewMapServer, RecoveryReport) {
    let mut srv = ViewMapServer::with_key(key, cfg);
    // Replay precedes attach: the records being replayed are already
    // on disk, and an attached WAL would double-log them.
    let results = srv.submit_replay_batch(vps);
    report.rejected = results.iter().filter(|r| r.is_err()).count();
    // Bind the store's telemetry to the server's registry (one
    // snapshot covers the whole stack) and publish the recovery
    // outcome — counters plus journal events for every warning.
    store.bind_obs(srv.obs(), &report);
    srv.attach_wal(Box::new(store));
    (srv, report)
}

impl PersistentServer for ViewMapServer {
    fn open<R: Rng + ?Sized>(
        rng: &mut R,
        key_bits: usize,
        cfg: ViewmapConfig,
        dir: impl AsRef<Path>,
        store_cfg: StoreConfig,
    ) -> std::io::Result<(ViewMapServer, RecoveryReport)> {
        let (store, vps, mut report) = VpStore::open(dir, store_cfg)?;
        let key = match keyfile::load(store.dir())? {
            Some(key) => key,
            None => {
                // No persisted identity. Over recovered records that
                // means pre-restart cash is orphaned until the operator
                // re-supplies the old key — say so in the report
                // instead of letting the fresh key pass silently.
                report.fresh_signing_key = report.records > 0;
                let key = RsaKeyPair::generate(rng, key_bits);
                keyfile::save(store.dir(), &key)?;
                key
            }
        };
        Ok(finish_open(key, cfg, store, vps, report))
    }

    fn open_with_key(
        key: RsaKeyPair,
        cfg: ViewmapConfig,
        dir: impl AsRef<Path>,
        store_cfg: StoreConfig,
    ) -> std::io::Result<(ViewMapServer, RecoveryReport)> {
        let (store, vps, report) = VpStore::open(dir, store_cfg)?;
        match keyfile::load(store.dir())? {
            Some(existing) if existing != key => {
                return Err(std::io::Error::other(format!(
                    "store {} already holds a different signing key — refusing to re-key \
                     (outstanding cash would be orphaned); delete {} only if that is intended",
                    store.dir().display(),
                    keyfile::keyfile_path(store.dir()).display(),
                )));
            }
            Some(_) => {}
            None => keyfile::save(store.dir(), &key)?,
        }
        Ok(finish_open(key, cfg, store, vps, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use viewmap_core::bloom::BloomFilter;
    use viewmap_core::types::{GeoPos, VpId, SECONDS_PER_VP};
    use viewmap_core::vd::ViewDigest;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("vm_store_store_{tag}_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn synthetic_vp(tag: u64, minute: u64) -> StoredVp {
        let mut id_bytes = [0u8; 16];
        id_bytes[..8].copy_from_slice(&tag.to_le_bytes());
        id_bytes[8..].copy_from_slice(&minute.to_le_bytes());
        let id = VpId(vm_crypto::Digest16(id_bytes));
        let start = minute * SECONDS_PER_VP;
        let vds: Vec<ViewDigest> = (1..=SECONDS_PER_VP as u16)
            .map(|seq| ViewDigest {
                seq,
                flags: 0,
                time: start + seq as u64,
                loc: GeoPos::new(tag as f64 + seq as f64 * 8.0, minute as f64),
                file_size: seq as u64 * 64,
                initial_loc: GeoPos::new(tag as f64, 0.0),
                vp_id: id,
                hash: vm_crypto::Digest16(id_bytes),
            })
            .collect();
        StoredVp::new(id, vds, BloomFilter::default(), false)
    }

    fn cfg() -> StoreConfig {
        StoreConfig::from_env()
    }

    #[test]
    fn append_recover_evict_cycle() {
        let tmp = TempDir::new("cycle");
        let (store, vps, report) = VpStore::open(&tmp.0, cfg()).unwrap();
        assert!(vps.is_empty());
        assert_eq!(report, RecoveryReport::default());

        for minute in 0..3u64 {
            let group: Vec<StoredVp> = (0..4)
                .map(|t| synthetic_vp(minute * 10 + t, minute))
                .collect();
            let refs: Vec<&StoredVp> = group.iter().collect();
            store.append(&refs).unwrap();
        }
        store.sync().unwrap();
        drop(store);

        let (store, vps, report) = VpStore::open(&tmp.0, cfg()).unwrap();
        assert_eq!(report.segments, 3);
        assert_eq!(report.records, 12);
        assert_eq!(report.torn_segments, 0);
        assert_eq!(vps.len(), 12);
        // Minute order, append order within each minute.
        let tags: Vec<u64> = vps
            .iter()
            .map(|vp| u64::from_le_bytes(vp.id.0.as_bytes()[..8].try_into().unwrap()))
            .collect();
        let expect: Vec<u64> = (0..3u64)
            .flat_map(|m| (0..4u64).map(move |t| m * 10 + t))
            .collect();
        assert_eq!(tags, expect);

        assert_eq!(store.evict_minutes_before(MinuteId(2)).unwrap(), 2);
        drop(store);
        let (_, vps, report) = VpStore::open(&tmp.0, cfg()).unwrap();
        assert_eq!(report.segments, 1);
        assert_eq!(vps.len(), 4, "only minute 2 survives eviction");
        assert!(vps.iter().all(|vp| vp.minute() == MinuteId(2)));
    }

    #[test]
    fn empty_append_is_a_noop_and_foreign_files_are_ignored() {
        let tmp = TempDir::new("noop");
        let (store, _, _) = VpStore::open(&tmp.0, cfg()).unwrap();
        store.append(&[]).unwrap();
        std::fs::write(tmp.0.join("README.txt"), b"not a segment").unwrap();
        drop(store);
        let (_, vps, report) = VpStore::open(&tmp.0, cfg()).unwrap();
        assert!(vps.is_empty());
        assert_eq!(report.segments, 0);
        assert!(tmp.0.join("README.txt").exists(), "foreign files untouched");
    }

    #[test]
    fn writer_cache_evicts_cold_handles_but_loses_nothing() {
        // Touch 3× MAX_OPEN_SEGMENTS minutes round-robin so handles are
        // constantly evicted and reopened mid-stream.
        let tmp = TempDir::new("lru");
        let (store, _, _) = VpStore::open(&tmp.0, cfg()).unwrap();
        let minutes = (MAX_OPEN_SEGMENTS * 3) as u64;
        for round in 0..2u64 {
            for minute in 0..minutes {
                let vp = synthetic_vp(round * minutes + minute, minute);
                store.append(&[&vp]).unwrap();
            }
        }
        drop(store);
        let (_, vps, report) = VpStore::open(&tmp.0, cfg()).unwrap();
        assert_eq!(report.segments, minutes as usize);
        assert_eq!(vps.len(), (2 * minutes) as usize);
    }

    #[test]
    fn renamed_segment_is_quarantined_and_the_minute_restarts_clean() {
        let tmp = TempDir::new("renamed");
        let (store, _, _) = VpStore::open(&tmp.0, cfg()).unwrap();
        let vp = synthetic_vp(1, 5);
        store.append(&[&vp]).unwrap();
        drop(store);
        let wrong_name = crate::segment::segment_path(&tmp.0, MinuteId(7));
        std::fs::rename(
            crate::segment::segment_path(&tmp.0, MinuteId(5)),
            &wrong_name,
        )
        .unwrap();

        let original_bytes = std::fs::read(&wrong_name).unwrap();
        let (store, vps, report) = VpStore::open(&tmp.0, cfg()).unwrap();
        assert_eq!(report.segments, 0, "header/name mismatch is not replayed");
        assert_eq!(report.quarantined, 1);
        assert!(vps.is_empty());
        assert!(
            !wrong_name.exists(),
            "mismatched file must not stay under the segment name"
        );
        // The quarantined copy is byte-identical: recovery mutates
        // nothing it cannot vouch for (it may be someone's backup).
        let quarantined = tmp.0.join("minute-000000000007.vmseg.mismatch");
        assert_eq!(std::fs::read(&quarantined).unwrap(), original_bytes);

        // The freed minute starts a clean segment, and records appended
        // to it survive the next recovery (they'd be invisible if the
        // husk had stayed appendable under the wrong header).
        store.append(&[&synthetic_vp(2, 7)]).unwrap();
        drop(store);
        let (store, vps, report) = VpStore::open(&tmp.0, cfg()).unwrap();
        assert_eq!((report.segments, report.quarantined), (1, 0));
        assert_eq!(vps.len(), 1);
        assert_eq!(vps[0].minute(), MinuteId(7));
        drop(store);

        // A second foreign file under the same name gets a fresh
        // quarantine suffix — never replacing the first quarantined copy.
        std::fs::write(&wrong_name, b"another misplaced file").unwrap();
        let (_, _, report) = VpStore::open(&tmp.0, cfg()).unwrap();
        assert_eq!(report.quarantined, 1);
        assert_eq!(std::fs::read(&quarantined).unwrap(), original_bytes);
        assert_eq!(
            std::fs::read(tmp.0.join("minute-000000000007.vmseg.mismatch.1")).unwrap(),
            b"another misplaced file"
        );
    }

    #[test]
    fn directory_lock_blocks_second_opener_and_recovers_after_crash() {
        let tmp = TempDir::new("dirlock");
        let (store, _, _) = VpStore::open(&tmp.0, cfg()).unwrap();
        let err = match VpStore::open(&tmp.0, cfg()) {
            Err(e) => e,
            Ok(_) => panic!("second opener must fail"),
        };
        assert!(err.to_string().contains("locked"), "{err}");
        drop(store);
        // Graceful drop releases the lock.
        let (store, _, _) = VpStore::open(&tmp.0, cfg()).unwrap();
        drop(store);
        if Path::new("/proc").is_dir() {
            // Simulated crash: a LOCK whose pid is provably dead is
            // reclaimed (refusing here would defeat crash recovery).
            std::fs::write(tmp.0.join("LOCK"), "4294000001").unwrap();
            let (store, _, _) = VpStore::open(&tmp.0, cfg()).unwrap();
            drop(store);
        }
        // An unverifiable LOCK (garbage pid) is treated as held.
        std::fs::write(tmp.0.join("LOCK"), "not-a-pid").unwrap();
        assert!(VpStore::open(&tmp.0, cfg()).is_err());
    }

    #[test]
    fn parallel_framing_is_byte_identical_to_serial() {
        // Above APPEND_PARALLEL_THRESHOLD the append frames on worker
        // threads; the on-disk bytes must equal the single-chunk serial
        // framing exactly (chunk-order merge, deterministic encode).
        let tmp = TempDir::new("parframe");
        let n = APPEND_PARALLEL_THRESHOLD + 513;
        let group: Vec<StoredVp> = (0..n as u64).map(|t| synthetic_vp(t, 0)).collect();
        let refs: Vec<&StoredVp> = group.iter().collect();
        let (store, _, _) = VpStore::open(&tmp.0, cfg()).unwrap();
        store.append(&refs).unwrap();
        store.sync().unwrap();
        drop(store);

        let disk = std::fs::read(crate::segment::segment_path(&tmp.0, MinuteId(0))).unwrap();
        let serial = frame_batch(&refs);
        assert_eq!(
            &disk[crate::segment::SEGMENT_HEADER_BYTES..],
            &serial[..],
            "parallel framing changed the byte stream"
        );
        let (_, vps, report) = VpStore::open(&tmp.0, cfg()).unwrap();
        assert_eq!(report.records, n);
        for (a, b) in group.iter().zip(&vps) {
            assert_eq!(a.id, b.id, "replay order");
        }
    }

    #[test]
    fn fresh_signing_key_over_recovered_state_is_warned() {
        // First boot: empty store, fresh key persisted — nothing
        // orphaned, no warning. A normal restart loads the keyfile, so
        // no warning either. Only a restart over real records with the
        // keyfile *deleted* (or a pre-keyfile directory) generates a
        // fresh key over recovered state — and the report must say so,
        // typed.
        let tmp = TempDir::new("freshkey");
        let vmcfg = ViewmapConfig::default();
        {
            let mut rng = StdRng::seed_from_u64(7);
            let (srv, report) = ViewMapServer::open(&mut rng, 512, vmcfg, &tmp.0, cfg()).unwrap();
            assert!(!report.fresh_signing_key, "empty store: fresh key is fine");
            assert!(report.warnings().is_empty());
            srv.submit_trusted(synthetic_vp(1, 0)).unwrap();
            srv.sync_wal().unwrap();
        }
        {
            let mut rng = StdRng::seed_from_u64(8);
            let (_srv, report) = ViewMapServer::open(&mut rng, 512, vmcfg, &tmp.0, cfg()).unwrap();
            assert!(
                !report.fresh_signing_key,
                "persisted key retires the warning for normal restarts"
            );
        }
        std::fs::remove_file(crate::keyfile::keyfile_path(&tmp.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let (_srv, report) = ViewMapServer::open(&mut rng, 512, vmcfg, &tmp.0, cfg()).unwrap();
        assert!(report.fresh_signing_key);
        assert_eq!(
            report.warnings(),
            vec![RecoveryWarning::FreshSigningKey {
                recovered_records: 1
            }]
        );
        assert!(
            report.warnings()[0].to_string().contains("re-supplies"),
            "warning text tells the operator what to do"
        );
    }

    #[test]
    fn signing_key_persists_across_restart_and_honors_old_cash() {
        // Cash minted before a restart must redeem after it: the key is
        // loaded from the keyfile, not regenerated.
        let tmp = TempDir::new("keycash");
        let vmcfg = ViewmapConfig::default();
        let mut rng = StdRng::seed_from_u64(21);
        let mut wallet = viewmap_core::reward::Wallet::new();
        let old_public = {
            let (srv, _) = ViewMapServer::open(&mut rng, 512, vmcfg, &tmp.0, cfg()).unwrap();
            let secret = *b"QuSecret";
            let vp_id = viewmap_core::types::VpId::from_secret(&secret);
            srv.post_reward(vp_id, 2);
            let (pending, blinded) = wallet.prepare(&mut rng, srv.public_key(), 2);
            let signed = srv
                .issue_blind_signatures(vp_id, &secret, &blinded)
                .unwrap();
            assert_eq!(
                wallet.accept_signed(srv.public_key(), pending, &signed),
                2,
                "cash minted pre-restart"
            );
            srv.public_key().clone()
        };
        let (srv, report) = ViewMapServer::open(&mut rng, 512, vmcfg, &tmp.0, cfg()).unwrap();
        assert!(!report.fresh_signing_key);
        assert_eq!(srv.public_key(), &old_public, "same identity after reboot");
        srv.redeem(&wallet.cash[0])
            .expect("pre-restart cash redeems after restart");

        // open_with_key: matching key is fine; a different key refuses.
        drop(srv);
        let loaded = crate::keyfile::load(&tmp.0).unwrap().unwrap();
        let (srv, _) = ViewMapServer::open_with_key(loaded, vmcfg, &tmp.0, cfg()).unwrap();
        assert_eq!(srv.public_key(), &old_public);
        drop(srv);
        let other = vm_crypto::RsaKeyPair::generate(&mut rng, 512);
        let err = match ViewMapServer::open_with_key(other, vmcfg, &tmp.0, cfg()) {
            Err(e) => e,
            Ok(_) => panic!("mismatched key must refuse to open"),
        };
        assert!(err.to_string().contains("refusing to re-key"), "{err}");
    }

    #[test]
    fn persistent_server_round_trips_state() {
        let tmp = TempDir::new("server");
        let mut rng = StdRng::seed_from_u64(1);
        let vmcfg = ViewmapConfig::default();
        {
            let (srv, report) = ViewMapServer::open(&mut rng, 512, vmcfg, &tmp.0, cfg()).unwrap();
            assert_eq!(report, RecoveryReport::default());
            for m in 0..3u64 {
                for t in 0..5u64 {
                    srv.submit_trusted(synthetic_vp(m * 10 + t, m)).unwrap();
                }
            }
            assert_eq!(srv.total_vps(), 15);
            srv.sync_wal().unwrap();
        }
        let mut rng = StdRng::seed_from_u64(2);
        let (srv, report) = ViewMapServer::open(&mut rng, 512, vmcfg, &tmp.0, cfg()).unwrap();
        assert_eq!(report.records, 15);
        assert_eq!(report.rejected, 0);
        assert_eq!(srv.total_vps(), 15);
        for m in 0..3u64 {
            assert_eq!(srv.vp_count(MinuteId(m)), 5);
            for t in 0..5u64 {
                let id = synthetic_vp(m * 10 + t, m).id;
                let vp = srv.lookup_vp(id).expect("recovered and indexed");
                assert!(vp.trusted, "trusted flag survives the log");
                assert!(vp.is_key_warm(), "replay warms link keys");
            }
        }
        // The reopened server keeps logging: a third generation sees the
        // post-recovery submissions too.
        srv.submit_trusted(synthetic_vp(99, 1)).unwrap();
        drop(srv);
        let mut rng = StdRng::seed_from_u64(3);
        let (srv, report) = ViewMapServer::open(&mut rng, 512, vmcfg, &tmp.0, cfg()).unwrap();
        assert_eq!(report.records, 16);
        assert_eq!(srv.vp_count(MinuteId(1)), 6);
    }
}
