//! Minute-bucketed append-only segment files: framing, the append-side
//! writer, and the torn-tail recovery scan.
//!
//! A segment holds every logged VP of one minute, in bucket order. Its
//! name carries the minute (`minute-000000000042.vmseg`) so retention
//! can sweep by filename and recovery can replay in minute order
//! without opening anything twice. Framing and the recovery invariant
//! are described in the crate docs; the short version: a frame is only
//! considered committed if its magic, declared length, checksum, and
//! body decode all hold, and the first frame that fails ends the
//! segment — [`recover_segment`] truncates the file right there.

use crate::codec::{decode_record, encode_record};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use viewmap_core::types::MinuteId;
use viewmap_core::vp::StoredVp;
use vm_crypto::checksum64;

/// Segment file magic (8 bytes, versioned).
pub const SEGMENT_MAGIC: [u8; 8] = *b"VMSEG001";

/// Segment header size: magic + minute id.
pub const SEGMENT_HEADER_BYTES: usize = 16;

/// Record frame magic (4 bytes, versioned).
pub const FRAME_MAGIC: [u8; 4] = *b"VMR1";

/// Frame header size: magic + body length + body checksum.
pub const FRAME_HEADER_BYTES: usize = 16;

/// File name of a minute's segment (fixed-width, so lexicographic order
/// is minute order).
pub fn segment_file_name(minute: MinuteId) -> String {
    format!("minute-{:012}.vmseg", minute.0)
}

/// Parse a segment file name back to its minute; `None` for foreign
/// files (recovery ignores anything it didn't write).
pub fn parse_segment_file_name(name: &str) -> Option<MinuteId> {
    let digits = name.strip_prefix("minute-")?.strip_suffix(".vmseg")?;
    if digits.len() != 12 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok().map(MinuteId)
}

/// Path of a minute's segment inside the store directory.
pub fn segment_path(dir: &Path, minute: MinuteId) -> PathBuf {
    dir.join(segment_file_name(minute))
}

/// Append one framed record (header + checksummed body) for `vp` to
/// `out`. The body is encoded in place and the header backpatched, so a
/// group commit encodes a whole batch into a single buffer with no
/// intermediate copies.
pub fn append_frame(out: &mut Vec<u8>, vp: &StoredVp) {
    let header_at = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER_BYTES]);
    let body_at = out.len();
    encode_record(vp, out);
    let body_len = out.len() - body_at;
    let checksum = checksum64(&out[body_at..]);
    patch_frame_header(&mut out[header_at..], body_len, checksum);
}

/// Write a frame header (magic, body length, checksum) into the first
/// [`FRAME_HEADER_BYTES`] of `frame`. Split out from [`append_frame`]
/// so the store's group-commit path can encode every body first, batch
/// the checksums through the multi-buffer hash engine, and patch all
/// headers afterwards.
pub fn patch_frame_header(frame: &mut [u8], body_len: usize, checksum: u64) {
    assert!(body_len <= u32::MAX as usize, "record body exceeds u32");
    frame[..4].copy_from_slice(&FRAME_MAGIC);
    frame[4..8].copy_from_slice(&(body_len as u32).to_le_bytes());
    frame[8..16].copy_from_slice(&checksum.to_le_bytes());
}

/// Shape of one recovered (or about-to-be-written) segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentMeta {
    /// The minute the segment buckets.
    pub minute: MinuteId,
    /// Committed records recovered from it.
    pub records: usize,
    /// Bytes cut off the tail (0 for a clean segment).
    pub truncated_bytes: u64,
}

/// Append-side handle on one segment file. Creation writes the header;
/// every [`append`](Self::append) is a single `write_all` of
/// pre-assembled frames (the group-commit unit). The writer never
/// reads: the store recovers the file *before* constructing a writer,
/// so the tail is known-valid by the time appends start.
pub struct SegmentWriter {
    file: File,
}

impl SegmentWriter {
    /// Open (or create) the segment for `minute` in `dir`.
    pub fn open(dir: &Path, minute: MinuteId) -> std::io::Result<SegmentWriter> {
        let path = segment_path(dir, minute);
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if file.metadata()?.len() == 0 {
            let mut header = [0u8; SEGMENT_HEADER_BYTES];
            header[..8].copy_from_slice(&SEGMENT_MAGIC);
            header[8..].copy_from_slice(&minute.0.to_le_bytes());
            file.write_all(&header)?;
        }
        Ok(SegmentWriter { file })
    }

    /// One group commit: a single buffered write of pre-framed records.
    pub fn append(&mut self, frames: &[u8]) -> std::io::Result<()> {
        self.file.write_all(frames)
    }

    /// Force the segment to stable media (the `Fsync::Always` half of a
    /// group commit, and the graceful-shutdown flush).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }
}

/// Recover one segment file: validate the header against the minute
/// the file's name claims, scan frames to the last fully-committed
/// record, truncate any torn tail in place, and decode the committed
/// prefix.
///
/// Returns `Ok(None)` — with the file **untouched** — when the header
/// is short, carries the wrong magic, or names a different minute than
/// `expected`. All three mean the file is not a segment this store
/// wrote under that name (a torn first write, a renamed file, an
/// operator's misplaced backup); disposition belongs to the caller
/// ([`crate::VpStore`] quarantines it), and the recovery scan must
/// never mutate bytes it cannot vouch for.
pub fn recover_segment(
    path: &Path,
    expected: MinuteId,
) -> std::io::Result<Option<(SegmentMeta, Vec<StoredVp>)>> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    if data.len() < SEGMENT_HEADER_BYTES || data[..8] != SEGMENT_MAGIC {
        return Ok(None);
    }
    let minute = MinuteId(u64::from_le_bytes(data[8..16].try_into().expect("8 bytes")));
    if minute != expected {
        return Ok(None);
    }

    let mut vps = Vec::new();
    let mut off = SEGMENT_HEADER_BYTES;
    // A frame is committed iff every one of these checks passes; the
    // first failure ends the valid prefix. No partial state escapes:
    // `vps` only ever grows by fully-decoded records.
    while off < data.len() {
        let Some(header) = data.get(off..off + FRAME_HEADER_BYTES) else {
            break; // torn frame header
        };
        if header[..4] != FRAME_MAGIC {
            break;
        }
        let body_len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
        let checksum = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let body_at = off + FRAME_HEADER_BYTES;
        let Some(body) = data.get(body_at..body_at + body_len) else {
            break; // torn body
        };
        if checksum64(body) != checksum {
            break; // bit rot or torn write inside the body
        }
        let Ok(vp) = decode_record(body) else {
            break; // checksum-valid but undecodable: treat as torn
        };
        vps.push(vp);
        off = body_at + body_len;
    }

    let truncated_bytes = (data.len() - off) as u64;
    if truncated_bytes > 0 {
        // Cut the torn tail off so the next append starts at a clean
        // frame boundary (appending after garbage would orphan every
        // later record behind an invalid frame).
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(off as u64)?;
        file.sync_data()?;
    }
    Ok(Some((
        SegmentMeta {
            minute,
            records: vps.len(),
            truncated_bytes,
        },
        vps,
    )))
}

/// Stream the committed frames of a segment for replication catch-up:
/// validate exactly as [`recover_segment`] does (magic, length,
/// checksum, decode), skip the first `skip` committed frames, and
/// return the **raw frame bytes** (header + body) of the rest — the
/// disk codec doubles as the wire codec, so these go on the
/// replication link unchanged and the follower re-validates them
/// frame by frame.
///
/// Returns `Ok(None)` for a file that is not a segment this store
/// wrote under that name (same contract as [`recover_segment`]), and
/// never mutates the file — a torn tail simply ends the stream, and
/// the store's own recovery owns truncation.
pub fn tail_frames(
    path: &Path,
    expected: MinuteId,
    skip: usize,
) -> std::io::Result<Option<Vec<Vec<u8>>>> {
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut f) => f.read_to_end(&mut data)?,
        // Raced an eviction sweep: the minute is gone, nothing to ship.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Some(Vec::new())),
        Err(e) => return Err(e),
    };
    if data.len() < SEGMENT_HEADER_BYTES || data[..8] != SEGMENT_MAGIC {
        return Ok(None);
    }
    let minute = MinuteId(u64::from_le_bytes(data[8..16].try_into().expect("8 bytes")));
    if minute != expected {
        return Ok(None);
    }

    let mut out = Vec::new();
    let mut seen = 0usize;
    let mut off = SEGMENT_HEADER_BYTES;
    while off < data.len() {
        let Some(header) = data.get(off..off + FRAME_HEADER_BYTES) else {
            break;
        };
        if header[..4] != FRAME_MAGIC {
            break;
        }
        let body_len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
        let checksum = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let body_at = off + FRAME_HEADER_BYTES;
        let Some(body) = data.get(body_at..body_at + body_len) else {
            break;
        };
        if checksum64(body) != checksum || decode_record(body).is_err() {
            break;
        }
        if seen >= skip {
            out.push(data[off..body_at + body_len].to_vec());
        }
        seen += 1;
        off = body_at + body_len;
    }
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use viewmap_core::types::GeoPos;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("vm_store_segment_{tag}_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn vp(seed: u64) -> StoredVp {
        let mut rng = StdRng::seed_from_u64(seed);
        let (fa, _) = viewmap_core::vp::exchange_minute(
            &mut rng,
            0,
            move |s| GeoPos::new(s as f64 * 8.0 + seed as f64, 0.0),
            move |s| GeoPos::new(s as f64 * 8.0 + seed as f64, 30.0),
        );
        fa.profile.into_stored()
    }

    #[test]
    fn file_names_roundtrip_and_reject_foreign_files() {
        for m in [0u64, 1, 42, 999_999_999_999] {
            let name = segment_file_name(MinuteId(m));
            assert_eq!(parse_segment_file_name(&name), Some(MinuteId(m)));
        }
        for bad in [
            "minute-42.vmseg",            // not fixed-width
            "minute-00000000004x.vmseg",  // non-digit
            "minute-000000000042.vmseg2", // wrong suffix
            "other-000000000042.vmseg",   // wrong prefix
            ".vmseg",
            "BENCH.json",
        ] {
            assert_eq!(parse_segment_file_name(bad), None, "{bad}");
        }
    }

    #[test]
    fn write_then_recover_roundtrips_in_order() {
        let tmp = TempDir::new("roundtrip");
        let minute = MinuteId(0);
        let mut w = SegmentWriter::open(&tmp.0, minute).unwrap();
        let vps: Vec<StoredVp> = (0..5).map(vp).collect();
        // Two group commits: 3 records, then 2.
        for group in [&vps[..3], &vps[3..]] {
            let mut frames = Vec::new();
            for vp in group {
                append_frame(&mut frames, vp);
            }
            w.append(&frames).unwrap();
        }
        w.sync().unwrap();
        drop(w);

        let (meta, back) = recover_segment(&segment_path(&tmp.0, minute), minute)
            .unwrap()
            .expect("valid segment");
        assert_eq!(meta.minute, minute);
        assert_eq!(meta.records, 5);
        assert_eq!(meta.truncated_bytes, 0);
        assert_eq!(back.len(), 5);
        for (a, b) in vps.iter().zip(&back) {
            crate::codec::assert_vp_bit_identical(a, b, "segment roundtrip");
        }

        // Reopening for append does not disturb the contents.
        let mut w = SegmentWriter::open(&tmp.0, minute).unwrap();
        let mut frames = Vec::new();
        append_frame(&mut frames, &vp(9));
        w.append(&frames).unwrap();
        drop(w);
        let (meta, back) = recover_segment(&segment_path(&tmp.0, minute), minute)
            .unwrap()
            .unwrap();
        assert_eq!((meta.records, back.len()), (6, 6));
    }

    #[test]
    fn foreign_files_are_reported_untouched() {
        // Invalid header, or a header naming another minute: the scan
        // reports None and must not mutate a byte — disposition
        // (quarantine) is the store's call, and the file may be an
        // operator's misplaced backup.
        let tmp = TempDir::new("badheader");
        let mut wrong_minute = Vec::new();
        wrong_minute.extend_from_slice(&SEGMENT_MAGIC);
        wrong_minute.extend_from_slice(&9u64.to_le_bytes());
        wrong_minute.extend_from_slice(b"trailing garbage that must survive");
        for (tag, bytes) in [
            ("empty", &b""[..]),
            ("short", &b"VMSEG0"[..]),
            ("wrong_magic", &b"NOTASEG0\x01\0\0\0\0\0\0\0"[..]),
            ("wrong_minute", &wrong_minute[..]),
        ] {
            let path = tmp.0.join(format!("{tag}.vmseg"));
            std::fs::write(&path, bytes).unwrap();
            assert!(
                recover_segment(&path, MinuteId(3)).unwrap().is_none(),
                "{tag}"
            );
            assert_eq!(
                std::fs::read(&path).unwrap(),
                bytes,
                "{tag}: foreign bytes must be left exactly as found"
            );
        }
    }

    #[test]
    fn tail_frames_skips_and_returns_raw_reusable_frames() {
        let tmp = TempDir::new("tail");
        let minute = MinuteId(4);
        let mut w = SegmentWriter::open(&tmp.0, minute).unwrap();
        let vps: Vec<StoredVp> = (0..4).map(vp).collect();
        let mut frames = Vec::new();
        for vp in &vps {
            append_frame(&mut frames, vp);
        }
        w.append(&frames).unwrap();
        drop(w);

        let path = segment_path(&tmp.0, minute);
        let all = tail_frames(&path, minute, 0).unwrap().unwrap();
        assert_eq!(all.len(), 4);
        // Raw frames concatenate back into exactly the on-disk stream.
        assert_eq!(all.concat(), frames);
        // Each raw frame's body decodes to the record it framed — the
        // property replication relies on (ship bytes, replay records).
        for (raw, vp) in all.iter().zip(&vps) {
            let back = decode_record(&raw[FRAME_HEADER_BYTES..]).unwrap();
            crate::codec::assert_vp_bit_identical(vp, &back, "tail frame");
        }
        // Skip positions a catch-up cursor mid-segment.
        let tail = tail_frames(&path, minute, 3).unwrap().unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0], all[3]);
        assert!(tail_frames(&path, minute, 9).unwrap().unwrap().is_empty());
        // Foreign minute: same None contract as recovery.
        assert!(tail_frames(&path, MinuteId(5), 0).unwrap().is_none());
        // A vanished segment (eviction race) is an empty stream.
        assert!(
            tail_frames(&tmp.0.join("minute-000000000099.vmseg"), MinuteId(99), 0)
                .unwrap()
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn corruption_ends_the_valid_prefix_and_truncates() {
        // Flip one byte inside the second record's body: recovery keeps
        // record 1, truncates at record 2's frame, and a re-scan of the
        // truncated file is clean.
        let tmp = TempDir::new("corrupt");
        let minute = MinuteId(3);
        let mut w = SegmentWriter::open(&tmp.0, minute).unwrap();
        let mut frames = Vec::new();
        let r1_len = {
            append_frame(&mut frames, &vp(1));
            frames.len()
        };
        append_frame(&mut frames, &vp(2));
        append_frame(&mut frames, &vp(3));
        w.append(&frames).unwrap();
        drop(w);

        let path = segment_path(&tmp.0, minute);
        let mut bytes = std::fs::read(&path).unwrap();
        let flip_at = SEGMENT_HEADER_BYTES + r1_len + FRAME_HEADER_BYTES + 40;
        bytes[flip_at] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let (meta, back) = recover_segment(&path, minute).unwrap().unwrap();
        assert_eq!(meta.records, 1, "only the record before the flip survives");
        assert!(meta.truncated_bytes > 0);
        crate::codec::assert_vp_bit_identical(&vp(1), &back[0], "survivor");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            (SEGMENT_HEADER_BYTES + r1_len) as u64,
            "file truncated to the last committed frame"
        );
        let (meta2, _) = recover_segment(&path, minute).unwrap().unwrap();
        assert_eq!(meta2.truncated_bytes, 0, "second scan is clean");
        assert_eq!(meta2.records, 1);
    }
}
