//! The compact binary VP record codec (see the crate docs for the
//! byte-level diagram).
//!
//! A record body is self-delimiting and **bit-exact**: decoding an
//! encoded [`StoredVp`] reproduces every field down to the `f64` bit
//! patterns of its trajectory (NaN payloads included). The first
//! trajectory sample is written as the 84-byte full-precision frame
//! ([`ViewDigest::encode_store`]); every later sample is a *predictive
//! delta frame*: a shape byte marks which fields deviate from their
//! predictors (counters advance by one, identity fields repeat, the
//! file-size delta repeats, coordinates extrapolate linearly), and only
//! the deviating fields are encoded — wrapping zigzag-varint deltas for
//! the integers, xor-of-bits varints for the coordinates, the cascade
//! hash raw (hashes don't compress). Honest cascades hit every
//! predictor, so a typical VD costs one shape byte, two short
//! coordinate xors, and its 16-byte hash.
//!
//! Integrity is **not** this module's job: the segment layer frames
//! each body with a length and a [`vm_crypto::checksum64`], and only
//! checksum-valid bodies reach [`decode_record`]. Decoding is still
//! total — any truncated or trailing-garbage body returns a
//! [`CodecError`], never a panic — because the torn-tail recovery scan
//! feeds it candidate bodies while probing where the valid prefix ends.

use viewmap_core::bloom::BloomFilter;
use viewmap_core::types::VpId;
use viewmap_core::vd::{ViewDigest, VD_STORE_BYTES};
use viewmap_core::vp::StoredVp;
use vm_crypto::Digest16;

/// Why a record body failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The body ended before the declared content did.
    Truncated,
    /// Bytes remained after the declared content (a body must be
    /// consumed exactly — anything else is framing corruption).
    Trailing,
    /// A field carried a value the encoder can never produce (empty
    /// Bloom filter, zero hash functions) — foreign or hand-edited
    /// bytes, rejected rather than guessed at.
    Malformed,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "record body truncated"),
            CodecError::Trailing => write!(f, "record body has trailing bytes"),
            CodecError::Malformed => write!(f, "record body carries an unencodable value"),
        }
    }
}

impl std::error::Error for CodecError {}

// ── varint / zigzag primitives ─────────────────────────────────────────

#[cfg(test)]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Varint into a stack scratch at `pos` (hot path: the per-VD delta
/// frame assembles in a fixed array and lands in the output with one
/// `extend_from_slice`, instead of ~10 bounds-checked `Vec` pushes).
#[inline]
fn put_varint_at(buf: &mut [u8], pos: &mut usize, mut v: u64) {
    while v >= 0x80 {
        buf[*pos] = (v as u8) | 0x80;
        *pos += 1;
        v >>= 7;
    }
    buf[*pos] = v as u8;
    *pos += 1;
}

/// Upper bound of one delta frame: shape byte + 10 varints (≤ 10 B
/// each) + 16 B hash.
const DELTA_FRAME_MAX: usize = 128;

// Shape-byte bits: a set bit means the field is explicitly present in
// the frame; clear means its predictor holds. Predictors are what every
// honest per-second cascade produces — `seq`/`time` advance by one,
// `flags`/`initial_loc`/`vp_id` repeat, and the video byte rate is
// steady so the `file_size` delta repeats too — which makes the typical
// frame one shape byte, two coordinate xors, a hash, and **zero**
// varints for the other seven fields. That's both smaller and ~3×
// fewer varint loops than encoding every field unconditionally (the
// group-commit encode pass is varint-bound at city-scale batches).
const EXPLICIT_SEQ: u8 = 1 << 0;
const EXPLICIT_FLAGS: u8 = 1 << 1;
const EXPLICIT_TIME: u8 = 1 << 2;
const EXPLICIT_FSIZE: u8 = 1 << 3;
const EXPLICIT_INITIAL: u8 = 1 << 4;
const EXPLICIT_VPID: u8 = 1 << 5;

/// Coordinate predictor: linear extrapolation from the two previous
/// samples (`2·prev − prev2`) — a vehicle at steady speed lands within
/// rounding of it, so the xor against the true bits keeps only a few
/// low mantissa bits and varint-encodes in 2–4 bytes instead of 6–7 for
/// a plain prev-xor. Restricted to finite inputs (falling back to the
/// previous sample's bits) so the prediction is plain IEEE-754
/// add/mul, bit-deterministic on every platform — NaN-payload
/// propagation is the one fp behavior that may differ across ISAs, and
/// a cross-arch log replay must reproduce the exact bits.
#[inline]
fn predict_coord(prev: f64, prev2: f64) -> u64 {
    if prev.is_finite() && prev2.is_finite() {
        (2.0 * prev - prev2).to_bits()
    } else {
        prev.to_bits()
    }
}

fn get_varint(buf: &mut &[u8]) -> Result<u64, CodecError> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let (&b, rest) = buf.split_first().ok_or(CodecError::Truncated)?;
        *buf = rest;
        v |= ((b & 0x7f) as u64) << shift;
        if b < 0x80 {
            return Ok(v);
        }
    }
    // 10 continuation bytes would shift past 63 — framing corruption.
    Err(CodecError::Truncated)
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], CodecError> {
    if buf.len() < n {
        return Err(CodecError::Truncated);
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

// ── record encode ──────────────────────────────────────────────────────

/// Append the record body for `vp` to `out` (the segment layer frames
/// it with length + checksum). Reuses `out`'s allocation across calls —
/// the group-commit path encodes a whole batch into one buffer.
pub fn encode_record(vp: &StoredVp, out: &mut Vec<u8>) {
    assert!(vp.vds.len() <= u16::MAX as usize, "VD count exceeds u16");
    let bloom_bytes = vp.bloom.as_bytes();
    assert!(bloom_bytes.len() <= u16::MAX as usize, "bloom exceeds u16");
    assert!(vp.bloom.k() <= u8::MAX as usize, "bloom k exceeds u8");

    out.extend_from_slice(vp.id.0.as_bytes());
    out.push(vp.trusted as u8);
    out.extend_from_slice(&(vp.vds.len() as u16).to_le_bytes());
    out.push(vp.bloom.k() as u8);
    out.extend_from_slice(&(bloom_bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bloom_bytes);

    let Some(first) = vp.vds.first() else {
        return;
    };
    out.extend_from_slice(&first.encode_store());
    // Delta frames assemble in a stack chunk flushed to `out` every few
    // KB: one memcpy per ~30 VDs instead of one `Vec` append per VD —
    // this loop is the group-commit path's hot spot at city-scale
    // batches, so the byte plumbing stays off the heap.
    let mut chunk = [0u8; 4096];
    let mut p = 0usize;
    // Predicted file-size delta: the previous frame's delta (0 before
    // any delta frame exists). Wrapping i64 arithmetic so arbitrary u64
    // file sizes round-trip.
    let mut fs_delta_pred = 0i64;
    let mut prev2_loc = first.loc;
    for w in vp.vds.windows(2) {
        let (prev, cur) = (&w[0], &w[1]);
        if p + DELTA_FRAME_MAX > chunk.len() {
            out.extend_from_slice(&chunk[..p]);
            p = 0;
        }
        let shape_at = p;
        p += 1; // shape byte, patched once the frame's fields are known
        let mut shape = 0u8;
        if cur.seq != prev.seq.wrapping_add(1) {
            shape |= EXPLICIT_SEQ;
            put_varint_at(
                &mut chunk,
                &mut p,
                zigzag(cur.seq.wrapping_sub(prev.seq) as i16 as i64),
            );
        }
        if cur.flags != prev.flags {
            shape |= EXPLICIT_FLAGS;
            put_varint_at(&mut chunk, &mut p, cur.flags as u64);
        }
        if cur.time != prev.time.wrapping_add(1) {
            shape |= EXPLICIT_TIME;
            put_varint_at(
                &mut chunk,
                &mut p,
                zigzag(cur.time.wrapping_sub(prev.time) as i64),
            );
        }
        let fs_delta = cur.file_size.wrapping_sub(prev.file_size) as i64;
        if fs_delta != fs_delta_pred {
            shape |= EXPLICIT_FSIZE;
            put_varint_at(
                &mut chunk,
                &mut p,
                zigzag(fs_delta.wrapping_sub(fs_delta_pred)),
            );
        }
        fs_delta_pred = fs_delta;
        put_varint_at(
            &mut chunk,
            &mut p,
            cur.loc.x.to_bits() ^ predict_coord(prev.loc.x, prev2_loc.x),
        );
        put_varint_at(
            &mut chunk,
            &mut p,
            cur.loc.y.to_bits() ^ predict_coord(prev.loc.y, prev2_loc.y),
        );
        prev2_loc = prev.loc;
        let inix = cur.initial_loc.x.to_bits() ^ prev.initial_loc.x.to_bits();
        let iniy = cur.initial_loc.y.to_bits() ^ prev.initial_loc.y.to_bits();
        if inix != 0 || iniy != 0 {
            shape |= EXPLICIT_INITIAL;
            put_varint_at(&mut chunk, &mut p, inix);
            put_varint_at(&mut chunk, &mut p, iniy);
        }
        if cur.vp_id != prev.vp_id {
            shape |= EXPLICIT_VPID;
            put_varint_at(
                &mut chunk,
                &mut p,
                cur.vp_id.0.low_u64() ^ prev.vp_id.0.low_u64(),
            );
            put_varint_at(
                &mut chunk,
                &mut p,
                cur.vp_id.0.high_u64() ^ prev.vp_id.0.high_u64(),
            );
        }
        chunk[shape_at] = shape;
        chunk[p..p + 16].copy_from_slice(cur.hash.as_bytes());
        p += 16;
    }
    out.extend_from_slice(&chunk[..p]);
}

/// Conservative per-record byte estimate for pre-reserving a
/// group-commit buffer (typical honest records land well under it).
pub fn encoded_size_hint(vp: &StoredVp) -> usize {
    22 + vp.bloom.as_bytes().len() + VD_STORE_BYTES + vp.vds.len().saturating_sub(1) * 40
}

// ── record decode ──────────────────────────────────────────────────────

fn digest16_from_halves(lo: u64, hi: u64) -> Digest16 {
    let mut b = [0u8; 16];
    b[..8].copy_from_slice(&lo.to_le_bytes());
    b[8..].copy_from_slice(&hi.to_le_bytes());
    Digest16(b)
}

/// Decode one record body back into a [`StoredVp`]. Total: truncated or
/// over-long bodies return a [`CodecError`].
pub fn decode_record(body: &[u8]) -> Result<StoredVp, CodecError> {
    let mut buf = body;
    let mut id16 = [0u8; 16];
    id16.copy_from_slice(take(&mut buf, 16)?);
    let id = VpId(Digest16(id16));
    let trusted = take(&mut buf, 1)?[0] != 0;
    let n_vds = u16::from_le_bytes(take(&mut buf, 2)?.try_into().expect("2 bytes")) as usize;
    let bloom_k = take(&mut buf, 1)?[0] as usize;
    let bloom_len = u16::from_le_bytes(take(&mut buf, 2)?.try_into().expect("2 bytes")) as usize;
    // The encoder only ever writes filters `BloomFilter` can represent
    // (≥ 1 byte, ≥ 1 hash); anything else would panic inside
    // `from_bytes`, and decode must stay total — reject it instead.
    if bloom_len == 0 || bloom_k == 0 {
        return Err(CodecError::Malformed);
    }
    let bloom = BloomFilter::from_bytes(take(&mut buf, bloom_len)?.to_vec(), bloom_k);

    let mut vds: Vec<ViewDigest> = Vec::with_capacity(n_vds);
    if n_vds > 0 {
        let first = ViewDigest::decode_store(take(&mut buf, VD_STORE_BYTES)?)
            .expect("exact-length slice decodes");
        vds.push(first);
        let mut fs_delta_pred = 0i64;
        let mut prev2_loc = vds[0].loc;
        for _ in 1..n_vds {
            let prev = *vds.last().expect("nonempty");
            let shape = take(&mut buf, 1)?[0];
            let seq = if shape & EXPLICIT_SEQ != 0 {
                prev.seq
                    .wrapping_add(unzigzag(get_varint(&mut buf)?) as u16)
            } else {
                prev.seq.wrapping_add(1)
            };
            let flags = if shape & EXPLICIT_FLAGS != 0 {
                get_varint(&mut buf)? as u16
            } else {
                prev.flags
            };
            let time = if shape & EXPLICIT_TIME != 0 {
                prev.time
                    .wrapping_add(unzigzag(get_varint(&mut buf)?) as u64)
            } else {
                prev.time.wrapping_add(1)
            };
            let fs_delta = if shape & EXPLICIT_FSIZE != 0 {
                fs_delta_pred.wrapping_add(unzigzag(get_varint(&mut buf)?))
            } else {
                fs_delta_pred
            };
            fs_delta_pred = fs_delta;
            let file_size = prev.file_size.wrapping_add(fs_delta as u64);
            let x = f64::from_bits(predict_coord(prev.loc.x, prev2_loc.x) ^ get_varint(&mut buf)?);
            let y = f64::from_bits(predict_coord(prev.loc.y, prev2_loc.y) ^ get_varint(&mut buf)?);
            prev2_loc = prev.loc;
            let (ix, iy) = if shape & EXPLICIT_INITIAL != 0 {
                (
                    f64::from_bits(prev.initial_loc.x.to_bits() ^ get_varint(&mut buf)?),
                    f64::from_bits(prev.initial_loc.y.to_bits() ^ get_varint(&mut buf)?),
                )
            } else {
                (prev.initial_loc.x, prev.initial_loc.y)
            };
            let vp_id = if shape & EXPLICIT_VPID != 0 {
                VpId(digest16_from_halves(
                    prev.vp_id.0.low_u64() ^ get_varint(&mut buf)?,
                    prev.vp_id.0.high_u64() ^ get_varint(&mut buf)?,
                ))
            } else {
                prev.vp_id
            };
            let mut h16 = [0u8; 16];
            h16.copy_from_slice(take(&mut buf, 16)?);
            vds.push(ViewDigest {
                seq,
                flags,
                time,
                loc: viewmap_core::types::GeoPos::new(x, y),
                file_size,
                initial_loc: viewmap_core::types::GeoPos::new(ix, iy),
                vp_id,
                hash: Digest16(h16),
            });
        }
    }
    if !buf.is_empty() {
        return Err(CodecError::Trailing);
    }
    Ok(StoredVp::new(id, vds, bloom, trusted))
}

/// Bit-exact VP equality (PartialEq on f64 can't see NaN payloads).
/// Shared by the codec, segment, and crash-recovery test suites.
#[cfg(test)]
pub(crate) fn assert_vp_bit_identical(a: &StoredVp, b: &StoredVp, ctx: &str) {
    tests::assert_vp_bit_identical_impl(a, b, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use viewmap_core::types::GeoPos;

    pub(crate) fn assert_vp_bit_identical_impl(a: &StoredVp, b: &StoredVp, ctx: &str) {
        assert_eq!(a.id, b.id, "{ctx}: id");
        assert_eq!(a.trusted, b.trusted, "{ctx}: trusted");
        assert_eq!(a.bloom.as_bytes(), b.bloom.as_bytes(), "{ctx}: bloom");
        assert_eq!(a.bloom.k(), b.bloom.k(), "{ctx}: bloom k");
        assert_eq!(a.vds.len(), b.vds.len(), "{ctx}: vd count");
        for (i, (x, y)) in a.vds.iter().zip(&b.vds).enumerate() {
            assert_eq!(x.seq, y.seq, "{ctx}: vd {i} seq");
            assert_eq!(x.flags, y.flags, "{ctx}: vd {i} flags");
            assert_eq!(x.time, y.time, "{ctx}: vd {i} time");
            assert_eq!(x.file_size, y.file_size, "{ctx}: vd {i} file_size");
            assert_eq!(x.vp_id, y.vp_id, "{ctx}: vd {i} vp_id");
            assert_eq!(x.hash, y.hash, "{ctx}: vd {i} hash");
            for (fa, fb, name) in [
                (x.loc.x, y.loc.x, "loc.x"),
                (x.loc.y, y.loc.y, "loc.y"),
                (x.initial_loc.x, y.initial_loc.x, "initial_loc.x"),
                (x.initial_loc.y, y.initial_loc.y, "initial_loc.y"),
            ] {
                assert_eq!(fa.to_bits(), fb.to_bits(), "{ctx}: vd {i} {name}");
            }
        }
    }

    fn roundtrip(vp: &StoredVp, ctx: &str) -> usize {
        let mut body = Vec::new();
        encode_record(vp, &mut body);
        let back = decode_record(&body).unwrap_or_else(|e| panic!("{ctx}: decode: {e}"));
        assert_vp_bit_identical_impl(vp, &back, ctx);
        body.len()
    }

    fn realistic_vp(seed: u64) -> StoredVp {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let (fa, _) = viewmap_core::vp::exchange_minute(
            &mut rng,
            (seed % 7) * 60,
            move |s| GeoPos::new(s as f64 * 9.7 + seed as f64, 0.3 * s as f64),
            move |s| GeoPos::new(s as f64 * 9.7 + seed as f64, 40.0 + 0.3 * s as f64),
        );
        fa.profile.into_stored()
    }

    #[test]
    fn realistic_records_roundtrip_and_compress() {
        for seed in 0..8u64 {
            let vp = realistic_vp(seed);
            let bytes = roundtrip(&vp, &format!("seed {seed}"));
            let flat = 16 + 1 + 2 + 1 + 2 + vp.bloom.as_bytes().len() + vp.vds.len() * 84;
            assert!(
                bytes < flat / 2 + 100,
                "seed {seed}: delta record {bytes} B vs flat {flat} B"
            );
        }
    }

    #[test]
    fn trusted_flag_and_empty_trajectory_roundtrip() {
        let mut vp = realistic_vp(99);
        vp.trusted = true;
        roundtrip(&vp, "trusted");
        let empty = StoredVp::new(vp.id, Vec::new(), BloomFilter::default(), false);
        roundtrip(&empty, "no VDs");
    }

    #[test]
    fn every_strict_prefix_fails_to_decode() {
        // The torn-tail scan hands the codec truncated bodies; every one
        // must come back Err (no panic, no partial VP).
        let vp = realistic_vp(7);
        let mut body = Vec::new();
        encode_record(&vp, &mut body);
        for cut in 0..body.len() {
            assert!(
                decode_record(&body[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        let mut long = body.clone();
        long.push(0);
        assert_eq!(decode_record(&long).err(), Some(CodecError::Trailing));
    }

    #[test]
    fn unencodable_bloom_shapes_are_rejected_not_panicked() {
        // decode must stay total for foreign bytes: an empty filter or
        // k = 0 can never come from encode_record (BloomFilter asserts
        // both), so a checksum-valid body carrying them is Malformed.
        let make = |k: u8, bloom_len: u16| {
            let mut body = vec![0u8; 16]; // vp_id
            body.push(0); // trusted
            body.extend_from_slice(&0u16.to_le_bytes()); // n_vds
            body.push(k);
            body.extend_from_slice(&bloom_len.to_le_bytes());
            body.extend_from_slice(&vec![0xAB; bloom_len as usize]);
            body
        };
        assert_eq!(
            decode_record(&make(0, 4)).err(),
            Some(CodecError::Malformed)
        );
        assert_eq!(
            decode_record(&make(8, 0)).err(),
            Some(CodecError::Malformed)
        );
        assert!(decode_record(&make(8, 4)).is_ok());
    }

    #[test]
    fn varint_extremes_roundtrip() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut buf = out.as_slice();
            assert_eq!(get_varint(&mut buf), Ok(v));
            assert!(buf.is_empty());
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // An 11-byte continuation run is corruption, not a value.
        let mut buf: &[u8] = &[0x80u8; 11];
        assert_eq!(get_varint(&mut buf), Err(CodecError::Truncated));
    }

    proptest! {
        /// The exhaustive roundtrip property: arbitrary bit patterns in
        /// every field — discontinuous timestamps, wrapping file sizes,
        /// NaN/infinity coordinates, per-VD vp_ids that differ from the
        /// record id, odd bloom shapes — must survive bit-exactly.
        #[test]
        fn arbitrary_records_roundtrip_bit_exactly(
            id in any::<[u8; 16]>(),
            trusted in any::<bool>(),
            n_vds in 0usize..70,
            field_seed in any::<u64>(),
            bloom_k in 1usize..16,
            bloom_len in 1usize..64,
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(field_seed);
            let bloom_bytes: Vec<u8> = (0..bloom_len).map(|_| rng.gen()).collect();
            let vds: Vec<ViewDigest> = (0..n_vds)
                .map(|_| ViewDigest {
                    seq: rng.gen(),
                    flags: rng.gen(),
                    time: rng.gen(),
                    loc: GeoPos::new(
                        f64::from_bits(rng.gen()),
                        f64::from_bits(rng.gen()),
                    ),
                    file_size: rng.gen(),
                    initial_loc: GeoPos::new(
                        f64::from_bits(rng.gen()),
                        f64::from_bits(rng.gen()),
                    ),
                    vp_id: VpId(Digest16(rng.gen())),
                    hash: Digest16(rng.gen()),
                })
                .collect();
            let vp = StoredVp::new(
                VpId(Digest16(id)),
                vds,
                BloomFilter::from_bytes(bloom_bytes, bloom_k),
                trusted,
            );
            roundtrip(&vp, "arbitrary record");
        }

        /// Smooth trajectories (the honest-vehicle shape) must beat the
        /// flat encoding by a wide margin — the whole point of the
        /// delta layer.
        #[test]
        fn smooth_trajectories_stay_compact(
            seed in any::<u64>(),
            speed in 1.0f64..40.0,
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let id = VpId(Digest16(rng.gen()));
            let x0: f64 = rng.gen_range(-1.0e5..1.0e5);
            let y0: f64 = rng.gen_range(-1.0e5..1.0e5);
            let vds: Vec<ViewDigest> = (1..=60u16)
                .map(|s| ViewDigest {
                    seq: s,
                    flags: 0,
                    time: 1000 + s as u64,
                    loc: GeoPos::new(x0 + speed * s as f64, y0 + 0.5 * speed * s as f64),
                    file_size: s as u64 * 875 * 1024,
                    initial_loc: GeoPos::new(x0, y0),
                    vp_id: id,
                    hash: Digest16(rng.gen()),
                })
                .collect();
            let vp = StoredVp::new(id, vds, BloomFilter::default(), false);
            let bytes = roundtrip(&vp, "smooth trajectory");
            prop_assert!(bytes < 3000, "smooth 60-VD record took {bytes} B");
        }
    }
}
