//! Dashcam visibility model.
//!
//! Section 7.2.2 / Table 2 of the paper correlate VP linkage with whether
//! "either video of two time-aligned VPs captured the other vehicle at
//! least for a moment". Visibility requires line of sight and decays with
//! distance (a car at 350 m is a few pixels and often missed by the
//! camera's field of view); even at close LOS range the field of view
//! occasionally misses the other vehicle (the paper measures 93% "on
//! video" for a 100%-linked LOS intersection).

use rand::Rng;

/// Probabilistic camera visibility.
#[derive(Clone, Copy, Debug)]
pub struct CameraModel {
    /// Maximum distance at which another vehicle can appear on video, m.
    pub max_visible_m: f64,
    /// Probability of capture at point-blank LOS range (field-of-view
    /// geometry, mounting angle).
    pub base_visibility: f64,
    /// Linear visibility decay at `max_visible_m` (fraction of base lost).
    pub distance_falloff: f64,
}

impl Default for CameraModel {
    fn default() -> Self {
        CameraModel {
            max_visible_m: 400.0,
            base_visibility: 0.95,
            distance_falloff: 0.35,
        }
    }
}

impl CameraModel {
    /// Probability that a vehicle at `distance_m` under line-of-sight
    /// appears on video during an encounter.
    pub fn visibility_prob(&self, distance_m: f64, los: bool) -> f64 {
        if !los || distance_m > self.max_visible_m {
            return 0.0;
        }
        let frac = (distance_m / self.max_visible_m).clamp(0.0, 1.0);
        (self.base_visibility * (1.0 - self.distance_falloff * frac)).clamp(0.0, 1.0)
    }

    /// Bernoulli draw of an encounter-level "on video" outcome.
    pub fn visible<R: Rng + ?Sized>(&self, rng: &mut R, distance_m: f64, los: bool) -> bool {
        let p = self.visibility_prob(distance_m, los);
        p > 0.0 && rng.gen_bool(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nlos_is_never_visible() {
        let cam = CameraModel::default();
        assert_eq!(cam.visibility_prob(10.0, false), 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(!cam.visible(&mut rng, 10.0, false));
    }

    #[test]
    fn visibility_decays_with_distance() {
        let cam = CameraModel::default();
        assert!(cam.visibility_prob(50.0, true) > cam.visibility_prob(300.0, true));
        assert_eq!(cam.visibility_prob(500.0, true), 0.0);
    }

    #[test]
    fn close_los_visibility_matches_table2_intersection() {
        // Table 2, Intersection 1: 100% linked, 93% on video at close range.
        let cam = CameraModel::default();
        let p = cam.visibility_prob(60.0, true);
        assert!(p > 0.85 && p < 1.0, "close-range visibility {p}");
    }

    #[test]
    fn draw_frequency_matches_probability() {
        let cam = CameraModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 20_000;
        let hits = (0..trials)
            .filter(|_| cam.visible(&mut rng, 200.0, true))
            .count();
        let expect = cam.visibility_prob(200.0, true);
        let got = hits as f64 / trials as f64;
        assert!((got - expect).abs() < 0.02, "{got} vs {expect}");
    }
}
