//! Scripted Table-2 measurement scenarios.
//!
//! Section 7.2.2 of the paper reports fourteen semi-controlled two-vehicle
//! scenarios (open road, blocked by a building, LOS/NLOS intersections,
//! overpasses, tunnels, ...) with the measured VP-linkage ratio and the
//! fraction of encounters where the other vehicle appeared on video. Each
//! scenario here scripts the same geometry: a 60-second encounter with a
//! distance profile and an obstruction pattern, run through the channel and
//! camera models.

use crate::camera::CameraModel;
use crate::channel::{Blockage, Channel};
use rand::Rng;

/// Which Table-2 row a scenario reproduces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Open road, clear LOS.
    OpenRoad,
    /// Fully blocked by a building.
    Building1,
    /// Intersection with open corners (LOS).
    Intersection1,
    /// Intersection blocked by corner buildings (NLOS).
    Intersection2,
    /// Overpass with LOS between levels.
    Overpass1,
    /// Overpass/underpass without LOS.
    Overpass2,
    /// Driving in mixed traffic.
    Traffic,
    /// A row of large vehicles between the two cars.
    VehicleArray,
    /// Pedestrians between vehicles (no RF obstruction).
    Pedestrians,
    /// Separate tunnel tubes.
    Tunnels,
    /// Partially blocked by a building (mixed).
    Building2,
    /// Double-deck bridge, different decks.
    DoubleDeckBridge,
    /// Suburban house between vehicles (mixed).
    House,
    /// Different floors of a parking structure.
    ParkingStructure,
}

/// How line-of-sight evolves over an encounter.
#[derive(Clone, Copy, Debug)]
enum LosPattern {
    /// LOS for the entire encounter.
    Always,
    /// Obstructed (by `Blockage`) for the entire encounter.
    Never(Blockage),
    /// Whole encounter is LOS with probability `p`, otherwise obstructed.
    PerTrial(f64, Blockage),
}

/// A scripted two-vehicle encounter.
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// Which Table-2 row this is.
    pub kind: ScenarioKind,
    /// Table-2 row label.
    pub name: &'static str,
    /// Table-2 condition column ("LOS", "NLOS", "LOS/NLOS").
    pub condition: &'static str,
    /// Distance at the start/end of the encounter, meters.
    far_m: f64,
    /// Distance at closest approach, meters.
    near_m: f64,
    los: LosPattern,
}

/// Outcome of one scenario trial.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrialOutcome {
    /// Did the two vehicles establish two-way VP linkage this minute?
    pub linked: bool,
    /// Did either vehicle appear on the other's video?
    pub on_video: bool,
}

/// All fourteen Table-2 scenarios, in the paper's row order.
pub const SCENARIOS: [Scenario; 14] = [
    Scenario {
        kind: ScenarioKind::OpenRoad,
        name: "Open road",
        condition: "LOS",
        far_m: 350.0,
        near_m: 50.0,
        los: LosPattern::Always,
    },
    Scenario {
        kind: ScenarioKind::Building1,
        name: "Building 1",
        condition: "NLOS",
        far_m: 160.0,
        near_m: 80.0,
        los: LosPattern::Never(Blockage::Building),
    },
    Scenario {
        kind: ScenarioKind::Intersection1,
        name: "Intersection 1",
        condition: "LOS",
        far_m: 250.0,
        near_m: 30.0,
        los: LosPattern::Always,
    },
    Scenario {
        kind: ScenarioKind::Intersection2,
        name: "Intersection 2",
        condition: "NLOS",
        far_m: 300.0,
        near_m: 40.0,
        los: LosPattern::Never(Blockage::Building),
    },
    Scenario {
        kind: ScenarioKind::Overpass1,
        name: "Overpass 1",
        condition: "LOS",
        far_m: 220.0,
        near_m: 40.0,
        los: LosPattern::PerTrial(0.80, Blockage::Building),
    },
    Scenario {
        kind: ScenarioKind::Overpass2,
        name: "Overpass 2",
        condition: "NLOS",
        far_m: 220.0,
        near_m: 70.0,
        los: LosPattern::Never(Blockage::Building),
    },
    Scenario {
        kind: ScenarioKind::Traffic,
        name: "Traffic",
        condition: "LOS/NLOS",
        far_m: 280.0,
        near_m: 60.0,
        los: LosPattern::PerTrial(0.58, Blockage::Building),
    },
    Scenario {
        kind: ScenarioKind::VehicleArray,
        name: "Vehicle array",
        condition: "NLOS",
        far_m: 120.0,
        near_m: 50.0,
        los: LosPattern::Never(Blockage::Building),
    },
    Scenario {
        kind: ScenarioKind::Pedestrians,
        name: "Pedestrians",
        condition: "LOS",
        far_m: 90.0,
        near_m: 20.0,
        los: LosPattern::Always,
    },
    Scenario {
        kind: ScenarioKind::Tunnels,
        name: "Tunnels",
        condition: "NLOS",
        far_m: 300.0,
        near_m: 120.0,
        los: LosPattern::Never(Blockage::Building),
    },
    Scenario {
        kind: ScenarioKind::Building2,
        name: "Building 2",
        condition: "LOS/NLOS",
        far_m: 340.0,
        near_m: 180.0,
        los: LosPattern::PerTrial(0.40, Blockage::Building),
    },
    Scenario {
        kind: ScenarioKind::DoubleDeckBridge,
        name: "Double-deck bridge",
        condition: "NLOS",
        far_m: 220.0,
        near_m: 120.0,
        los: LosPattern::Never(Blockage::Building),
    },
    Scenario {
        kind: ScenarioKind::House,
        name: "House",
        condition: "LOS/NLOS",
        far_m: 150.0,
        near_m: 50.0,
        los: LosPattern::PerTrial(0.55, Blockage::Building),
    },
    Scenario {
        kind: ScenarioKind::ParkingStructure,
        name: "Parking structure",
        condition: "NLOS",
        far_m: 150.0,
        near_m: 55.0,
        los: LosPattern::Never(Blockage::Building),
    },
];

impl Scenario {
    /// Distance between the vehicles at second `t` of the 60-second
    /// encounter (V-shaped approach-and-depart profile).
    pub fn distance_at(&self, t: usize) -> f64 {
        let t = t.min(60) as f64;
        let half = 30.0;
        let frac = (t - half).abs() / half; // 1 at ends, 0 at closest
        self.near_m + (self.far_m - self.near_m) * frac
    }

    /// Run one 60-second encounter trial.
    pub fn run_trial<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        channel: &Channel,
        camera: &CameraModel,
    ) -> TrialOutcome {
        let (los, blockage) = match self.los {
            LosPattern::Always => (true, Blockage::Los),
            LosPattern::Never(b) => (false, b),
            LosPattern::PerTrial(p, b) => {
                if rng.gen_bool(p) {
                    (true, Blockage::Los)
                } else {
                    (false, b)
                }
            }
        };
        let slow = channel.sample_slow_shadow(rng, blockage);
        let mut a_received = false;
        let mut b_received = false;
        for t in 0..60 {
            let d = self.distance_at(t);
            if channel
                .try_deliver_with_shadow(rng, d, blockage, slow)
                .is_some()
            {
                a_received = true;
            }
            if channel
                .try_deliver_with_shadow(rng, d, blockage, slow)
                .is_some()
            {
                b_received = true;
            }
        }
        let linked = a_received && b_received;
        // Encounter-level visibility at closest approach under the trial's
        // LOS state.
        let on_video = camera.visible(rng, self.near_m, los);
        TrialOutcome { linked, on_video }
    }

    /// Run `trials` encounters and return (VP-linkage ratio, on-video ratio).
    pub fn measure<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        channel: &Channel,
        camera: &CameraModel,
        trials: usize,
    ) -> (f64, f64) {
        let mut linked = 0usize;
        let mut video = 0usize;
        for _ in 0..trials {
            let o = self.run_trial(rng, channel, camera);
            if o.linked {
                linked += 1;
            }
            if o.on_video {
                video += 1;
            }
        }
        (linked as f64 / trials as f64, video as f64 / trials as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn measure(kind: ScenarioKind, seed: u64) -> (f64, f64) {
        let s = SCENARIOS.iter().find(|s| s.kind == kind).expect("scenario");
        let mut rng = StdRng::seed_from_u64(seed);
        s.measure(&mut rng, &Channel::default(), &CameraModel::default(), 400)
    }

    #[test]
    fn distance_profile_is_v_shaped() {
        let s = &SCENARIOS[0];
        assert_eq!(s.distance_at(0), 350.0);
        assert_eq!(s.distance_at(30), 50.0);
        assert_eq!(s.distance_at(60), 350.0);
        assert!(s.distance_at(15) > s.distance_at(25));
    }

    #[test]
    fn open_road_links_and_sees() {
        let (vlr, video) = measure(ScenarioKind::OpenRoad, 1);
        assert!(vlr > 0.98, "open road VLR {vlr}");
        assert!(video > 0.85, "open road video {video}");
    }

    #[test]
    fn full_nlos_scenarios_rarely_link_and_never_see() {
        for kind in [
            ScenarioKind::Building1,
            ScenarioKind::Tunnels,
            ScenarioKind::DoubleDeckBridge,
        ] {
            let (vlr, video) = measure(kind, 2);
            assert!(vlr < 0.08, "{kind:?} VLR {vlr}");
            assert_eq!(video, 0.0, "{kind:?} video {video}");
        }
    }

    #[test]
    fn nlos_intersection_links_occasionally() {
        // Table 2: Intersection 2 reports 9% linkage, 0% on video.
        let (vlr, video) = measure(ScenarioKind::Intersection2, 3);
        assert!(vlr > 0.01 && vlr < 0.35, "intersection-2 VLR {vlr}");
        assert_eq!(video, 0.0);
    }

    #[test]
    fn mixed_scenarios_sit_between() {
        let (vlr_traffic, video_traffic) = measure(ScenarioKind::Traffic, 4);
        assert!(
            vlr_traffic > 0.4 && vlr_traffic < 0.9,
            "traffic VLR {vlr_traffic}"
        );
        assert!(video_traffic <= vlr_traffic + 0.1);
        let (vlr_house, _) = measure(ScenarioKind::House, 5);
        assert!(
            vlr_house > 0.35 && vlr_house < 0.85,
            "house VLR {vlr_house}"
        );
    }

    #[test]
    fn on_video_never_dramatically_exceeds_linkage() {
        // Paper's key field observation: vehicles appear on video only when
        // their VPs link; on-video ratio tracks (and is below) VLR.
        let mut rng = StdRng::seed_from_u64(6);
        let ch = Channel::default();
        let cam = CameraModel::default();
        for s in &SCENARIOS {
            let (vlr, video) = s.measure(&mut rng, &ch, &cam, 300);
            assert!(
                video <= vlr + 0.12,
                "{}: video {video} vs VLR {vlr}",
                s.name
            );
        }
    }

    #[test]
    fn all_fourteen_rows_present() {
        assert_eq!(SCENARIOS.len(), 14);
        let names: Vec<&str> = SCENARIOS.iter().map(|s| s.name).collect();
        assert!(names.contains(&"Open road"));
        assert!(names.contains(&"Parking structure"));
    }
}
