//! DSRC radio channel model — the ns-3 / field-testbed substitute.
//!
//! The paper's field study (Section 7) establishes the causal structure the
//! protocol relies on: VP linkage is dominated by *line-of-sight condition*
//! (buildings, overpasses, heavy vehicle traffic), while distance, RSSI and
//! vehicle speed have little impact within the 400 m DSRC range. This crate
//! reproduces exactly that structure:
//!
//! * log-distance path loss with log-normal shadowing at 5.9 GHz,
//! * a harsh building-obstruction penalty (NLOS effectively kills the link
//!   beyond a few tens of meters),
//! * a milder vehicle-obstruction penalty (heavy traffic),
//! * a logistic RSSI→PDR curve with a fluctuating "gray zone" between
//!   −100 and −80 dBm, matching Fig. 16 and Bai et al. \[17\],
//! * a camera-visibility model used for the VP-link/video-content
//!   correlation study (Table 2, Fig. 20).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod camera;
pub mod channel;
pub mod environment;
pub mod scenario;

pub use camera::CameraModel;
pub use channel::{Blockage, Channel, ChannelParams};
pub use environment::Environment;
pub use scenario::{Scenario, ScenarioKind, SCENARIOS};
