//! Path loss, shadowing, and the RSSI→PDR curve.
//!
//! Shadowing is split into a *slow* component (sampled once per
//! vehicle-pair per minute — obstruction geometry barely changes within a
//! 1-min VP window, and the channel is reciprocal) and a *fast* per-beacon
//! component. This split is what makes per-minute VP-linkage probabilities
//! behave like the paper's field measurements: a blocked minute stays
//! blocked instead of being rescued by one lucky beacon out of sixty.

use rand::Rng;

/// What stands between transmitter and receiver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Blockage {
    /// Clear line of sight.
    Los,
    /// Obstructed by vehicle traffic (trucks, buses between the two).
    Vehicle,
    /// Obstructed by a building / bridge / tunnel wall.
    Building,
}

/// Channel model parameters.
///
/// Defaults are calibrated so the model reproduces the paper's field
/// observations: open-road VP linkage ≳ 99% out to 400 m (Fig. 15),
/// building NLOS linkage ≈ 0 beyond a few tens of meters with occasional
/// very-short-range exceptions (Table 2), and a fluctuating PDR in the
/// −100..−80 dBm band (Fig. 16).
#[derive(Clone, Copy, Debug)]
pub struct ChannelParams {
    /// Transmit power in dBm (the paper sets 14 dBm, after \[17\]).
    pub tx_power_dbm: f64,
    /// Reference path loss at 1 m for 5.9 GHz, dB.
    pub pl0_db: f64,
    /// Path-loss exponent under LOS.
    pub exponent: f64,
    /// Extra attenuation when a building blocks the path, dB.
    pub building_penalty_db: f64,
    /// Extra attenuation when vehicle traffic blocks the path, dB.
    pub vehicle_penalty_db: f64,
    /// Slow (per-pair, per-minute) shadowing σ under LOS, dB.
    pub shadow_sigma_los_db: f64,
    /// Slow shadowing σ when obstructed, dB.
    pub shadow_sigma_nlos_db: f64,
    /// Fast per-beacon fading σ, dB.
    pub fast_sigma_db: f64,
    /// RSSI at which the PDR curve crosses 50%, dBm.
    pub pdr_midpoint_dbm: f64,
    /// Logistic width of the PDR transition, dB.
    pub pdr_width_db: f64,
    /// Hard reception cutoff (DSRC radio range), meters.
    pub max_range_m: f64,
}

impl Default for ChannelParams {
    fn default() -> Self {
        ChannelParams {
            tx_power_dbm: 14.0,
            pl0_db: 47.86, // free space at 1 m, 5.9 GHz
            exponent: 2.1,
            building_penalty_db: 38.0,
            vehicle_penalty_db: 20.0,
            shadow_sigma_los_db: 2.0,
            shadow_sigma_nlos_db: 6.0,
            fast_sigma_db: 1.5,
            pdr_midpoint_dbm: -91.0,
            pdr_width_db: 3.0,
            max_range_m: 400.0,
        }
    }
}

/// The DSRC channel: maps (distance, blockage) to RSSI samples and
/// delivery outcomes.
#[derive(Clone, Copy, Debug, Default)]
pub struct Channel {
    /// Model parameters.
    pub params: ChannelParams,
}

impl Channel {
    /// Channel with explicit parameters.
    pub fn new(params: ChannelParams) -> Self {
        Channel { params }
    }

    /// Deterministic mean path loss in dB for a distance and blockage.
    pub fn mean_path_loss_db(&self, distance_m: f64, blockage: Blockage) -> f64 {
        let d = distance_m.max(1.0);
        let mut pl = self.params.pl0_db + 10.0 * self.params.exponent * d.log10();
        pl += match blockage {
            Blockage::Los => 0.0,
            Blockage::Vehicle => self.params.vehicle_penalty_db,
            Blockage::Building => self.params.building_penalty_db,
        };
        pl
    }

    /// Slow shadowing standard deviation for a blockage state.
    pub fn slow_sigma_db(&self, blockage: Blockage) -> f64 {
        match blockage {
            Blockage::Los => self.params.shadow_sigma_los_db,
            _ => self.params.shadow_sigma_nlos_db,
        }
    }

    /// Sample the slow shadowing term for a vehicle pair (held fixed for a
    /// 1-min VP window; the channel is reciprocal so both directions share
    /// it).
    pub fn sample_slow_shadow<R: Rng + ?Sized>(&self, rng: &mut R, blockage: Blockage) -> f64 {
        gaussian(rng) * self.slow_sigma_db(blockage)
    }

    /// Sample an RSSI in dBm given the slow shadowing term; adds fast
    /// per-beacon fading.
    pub fn sample_rssi_with_shadow<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        distance_m: f64,
        blockage: Blockage,
        slow_shadow_db: f64,
    ) -> f64 {
        let fast = gaussian(rng) * self.params.fast_sigma_db;
        self.params.tx_power_dbm - self.mean_path_loss_db(distance_m, blockage)
            + slow_shadow_db
            + fast
    }

    /// Sample an RSSI with freshly drawn slow shadowing (convenience for
    /// one-off transmissions).
    pub fn sample_rssi<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        distance_m: f64,
        blockage: Blockage,
    ) -> f64 {
        let slow = self.sample_slow_shadow(rng, blockage);
        self.sample_rssi_with_shadow(rng, distance_m, blockage, slow)
    }

    /// Packet delivery ratio for an RSSI value (logistic transition).
    pub fn pdr(&self, rssi_dbm: f64) -> f64 {
        let x = (rssi_dbm - self.params.pdr_midpoint_dbm) / self.params.pdr_width_db;
        1.0 / (1.0 + (-x).exp())
    }

    /// Attempt to deliver one beacon under a given slow-shadow term;
    /// returns the sampled RSSI on success.
    pub fn try_deliver_with_shadow<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        distance_m: f64,
        blockage: Blockage,
        slow_shadow_db: f64,
    ) -> Option<f64> {
        if distance_m > self.params.max_range_m {
            return None;
        }
        let rssi = self.sample_rssi_with_shadow(rng, distance_m, blockage, slow_shadow_db);
        if rng.gen_bool(self.pdr(rssi).clamp(0.0, 1.0)) {
            Some(rssi)
        } else {
            None
        }
    }

    /// Attempt to deliver one beacon with fresh slow shadowing.
    pub fn try_deliver<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        distance_m: f64,
        blockage: Blockage,
    ) -> Option<f64> {
        let slow = self.sample_slow_shadow(rng, blockage);
        self.try_deliver_with_shadow(rng, distance_m, blockage, slow)
    }

    /// Empirical delivery probability over `trials` independent beacons
    /// (fresh slow shadowing each time; for calibration tests and Fig. 16).
    pub fn empirical_pdr<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        distance_m: f64,
        blockage: Blockage,
        trials: usize,
    ) -> f64 {
        let mut ok = 0usize;
        for _ in 0..trials {
            if self.try_deliver(rng, distance_m, blockage).is_some() {
                ok += 1;
            }
        }
        ok as f64 / trials as f64
    }

    /// Probability that a full 1-minute, two-way VP linkage succeeds for a
    /// stationary pair at `distance_m` in `blockage` state: both vehicles
    /// must receive at least one of the other's 60 beacons, under one shared
    /// slow-shadow draw.
    pub fn minute_linkage<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        distance_m: f64,
        blockage: Blockage,
    ) -> bool {
        let slow = self.sample_slow_shadow(rng, blockage);
        let mut a_received = false;
        let mut b_received = false;
        for _ in 0..60 {
            if !a_received
                && self
                    .try_deliver_with_shadow(rng, distance_m, blockage, slow)
                    .is_some()
            {
                a_received = true;
            }
            if !b_received
                && self
                    .try_deliver_with_shadow(rng, distance_m, blockage, slow)
                    .is_some()
            {
                b_received = true;
            }
            if a_received && b_received {
                return true;
            }
        }
        false
    }
}

/// Standard normal sample (Box–Muller).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn minute_linkage_rate(ch: &Channel, d: f64, b: Blockage, trials: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let ok = (0..trials)
            .filter(|_| ch.minute_linkage(&mut rng, d, b))
            .count();
        ok as f64 / trials as f64
    }

    #[test]
    fn path_loss_grows_with_distance_and_blockage() {
        let ch = Channel::default();
        assert!(
            ch.mean_path_loss_db(100.0, Blockage::Los) > ch.mean_path_loss_db(10.0, Blockage::Los)
        );
        assert!(
            ch.mean_path_loss_db(100.0, Blockage::Building)
                > ch.mean_path_loss_db(100.0, Blockage::Vehicle)
        );
        assert!(
            ch.mean_path_loss_db(100.0, Blockage::Vehicle)
                > ch.mean_path_loss_db(100.0, Blockage::Los)
        );
    }

    #[test]
    fn pdr_is_monotone_logistic() {
        let ch = Channel::default();
        assert!(ch.pdr(-120.0) < 0.01);
        assert!(ch.pdr(-60.0) > 0.99);
        assert!((ch.pdr(ch.params.pdr_midpoint_dbm) - 0.5).abs() < 1e-12);
        let mut last = 0.0;
        for rssi in -120..-50 {
            let p = ch.pdr(rssi as f64);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn beyond_max_range_never_delivers() {
        let ch = Channel::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(ch.try_deliver(&mut rng, 401.0, Blockage::Los).is_none());
        }
    }

    #[test]
    fn open_road_minute_linkage_near_one_at_400m() {
        // Fig. 15: open-road VLR > 99% out to 400 m.
        let ch = Channel::default();
        let rate = minute_linkage_rate(&ch, 400.0, Blockage::Los, 400, 2);
        assert!(rate > 0.97, "open-road VLR at 400 m: {rate}");
    }

    #[test]
    fn building_blockage_kills_minute_linkage_at_distance() {
        // Table 2: Building/Tunnel/Double-deck NLOS scenarios report 0%.
        let ch = Channel::default();
        let rate = minute_linkage_rate(&ch, 150.0, Blockage::Building, 400, 3);
        assert!(rate < 0.03, "NLOS VLR at 150 m should be ~0, got {rate}");
    }

    #[test]
    fn building_blockage_sometimes_links_when_very_close() {
        // Table 2: Intersection 2 (NLOS) 9%, Parking structure 3% — nonzero
        // only at very short range.
        let ch = Channel::default();
        let near = minute_linkage_rate(&ch, 40.0, Blockage::Building, 600, 4);
        assert!(near > 0.02 && near < 0.40, "close NLOS VLR: {near}");
    }

    #[test]
    fn vehicle_obstruction_reduces_long_range_linkage() {
        // Fig. 17: heavy-traffic minutes at long range often fail to link.
        let ch = Channel::default();
        let veh = minute_linkage_rate(&ch, 300.0, Blockage::Vehicle, 400, 5);
        let los = minute_linkage_rate(&ch, 300.0, Blockage::Los, 400, 6);
        assert!(los > 0.97, "LOS at 300 m: {los}");
        assert!(veh < 0.6, "vehicle-obstructed at 300 m: {veh}");
    }

    #[test]
    fn gray_zone_fluctuates() {
        // Between −100 and −80 dBm per-batch PDR varies (Fig. 16 scatter).
        let ch = Channel::default();
        let mut rng = StdRng::seed_from_u64(7);
        let mut batch_pdrs = Vec::new();
        for _ in 0..30 {
            let slow = ch.sample_slow_shadow(&mut rng, Blockage::Los);
            let ok = (0..50)
                .filter(|_| {
                    ch.try_deliver_with_shadow(&mut rng, 330.0, Blockage::Los, slow)
                        .is_some()
                })
                .count();
            batch_pdrs.push(ok as f64 / 50.0);
        }
        let min = batch_pdrs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = batch_pdrs.iter().cloned().fold(0.0f64, f64::max);
        assert!(max - min > 0.1, "expected fluctuation, got {min}..{max}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn rssi_decomposition_is_consistent() {
        let ch = Channel::default();
        let mut rng = StdRng::seed_from_u64(9);
        // With zero slow shadow and the fast term's sigma small, the RSSI
        // concentrates around tx - PL.
        let expect = ch.params.tx_power_dbm - ch.mean_path_loss_db(100.0, Blockage::Los);
        let mean: f64 = (0..2000)
            .map(|_| ch.sample_rssi_with_shadow(&mut rng, 100.0, Blockage::Los, 0.0))
            .sum::<f64>()
            / 2000.0;
        assert!((mean - expect).abs() < 0.2, "mean {mean} vs {expect}");
    }
}
