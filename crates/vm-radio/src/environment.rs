//! Named measurement environments (Section 7.2).
//!
//! An environment bundles a building density (for geometric LOS tests) with
//! a *per-minute* probability of vehicle obstruction: obstruction geometry
//! (a truck convoy between two cars) persists on the timescale of a whole
//! VP window, which is how heavy traffic lowers linkage in the paper's
//! highway experiments (Fig. 17) without one lucky beacon rescuing the
//! minute.

use crate::channel::Blockage;
use rand::Rng;
use vm_geo::BuildingParams;

/// A measurement environment: building geometry + traffic obstruction.
#[derive(Clone, Copy, Debug)]
pub struct Environment {
    /// Human-readable name (matches the paper's figure legends).
    pub name: &'static str,
    /// Building generation parameters for this environment.
    pub buildings: BuildingParams,
    /// Per-minute probability that vehicle traffic obstructs the path.
    pub traffic_blockage: f64,
}

impl Environment {
    /// Open road: no obstacles at all (Fig. 15 "Open road").
    pub fn open_road() -> Self {
        Environment {
            name: "open-road",
            buildings: BuildingParams::open_road(),
            traffic_blockage: 0.0,
        }
    }

    /// Highway with light traffic (Fig. 17 "Hwy1").
    pub fn highway_light() -> Self {
        Environment {
            name: "highway-light",
            buildings: BuildingParams::highway(),
            traffic_blockage: 0.05,
        }
    }

    /// Highway with heavy traffic (Fig. 17 "Hwy2").
    pub fn highway_heavy() -> Self {
        Environment {
            name: "highway-heavy",
            buildings: BuildingParams::highway(),
            traffic_blockage: 0.5,
        }
    }

    /// Rural road: near-open terrain with occasional farm structures
    /// and almost no traffic obstruction.
    pub fn rural() -> Self {
        Environment {
            name: "rural",
            buildings: BuildingParams::highway(),
            traffic_blockage: 0.02,
        }
    }

    /// Residential area (Fig. 15).
    pub fn residential() -> Self {
        Environment {
            name: "residential",
            buildings: BuildingParams::residential(),
            traffic_blockage: 0.05,
        }
    }

    /// Downtown (Fig. 15): dense buildings plus city traffic.
    pub fn downtown() -> Self {
        Environment {
            name: "downtown",
            buildings: BuildingParams::downtown(),
            traffic_blockage: 0.15,
        }
    }

    /// All Fig. 15 environments in the paper's legend order.
    pub fn fig15_set() -> [Environment; 4] {
        [
            Self::open_road(),
            Self::highway_light(),
            Self::residential(),
            Self::downtown(),
        ]
    }

    /// Resolve the blockage state for one 1-min VP window: the geometric
    /// LOS answer (from the building index) composed with a per-minute
    /// vehicle obstruction draw.
    pub fn blockage<R: Rng + ?Sized>(&self, geometric_los: bool, rng: &mut R) -> Blockage {
        if !geometric_los {
            Blockage::Building
        } else if self.traffic_blockage > 0.0 && rng.gen_bool(self.traffic_blockage) {
            Blockage::Vehicle
        } else {
            Blockage::Los
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn building_nlos_always_wins() {
        let env = Environment::open_road();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(env.blockage(false, &mut rng), Blockage::Building);
    }

    #[test]
    fn open_road_never_vehicle_blocked() {
        let env = Environment::open_road();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(env.blockage(true, &mut rng), Blockage::Los);
        }
    }

    #[test]
    fn heavy_traffic_blocks_more_than_light() {
        let mut rng = StdRng::seed_from_u64(2);
        let count = |env: &Environment, rng: &mut StdRng| {
            (0..2000)
                .filter(|_| env.blockage(true, rng) == Blockage::Vehicle)
                .count()
        };
        let heavy = count(&Environment::highway_heavy(), &mut rng);
        let light = count(&Environment::highway_light(), &mut rng);
        assert!(heavy > light * 3, "heavy {heavy} vs light {light}");
    }

    #[test]
    fn densities_ordered_open_to_downtown() {
        assert!(Environment::open_road().buildings.density == 0.0);
        assert!(
            Environment::downtown().buildings.density
                > Environment::residential().buildings.density
        );
        assert!(
            Environment::residential().buildings.density
                > Environment::highway_light().buildings.density
        );
    }
}
