//! Criterion micro-benchmarks over the protocol's hot paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use viewmap_core::bloom::BloomFilter;
use viewmap_core::trustrank;
use viewmap_core::types::GeoPos;
use viewmap_core::vd::{flat_digest, VdChain};
use vm_crypto::{Digest16, RsaKeyPair};
use vm_geo::{CityParams, RoadNetwork, Router};

fn bench_digest(c: &mut Criterion) {
    // The paper's core performance claim (Fig. 8): cascaded hashing is
    // constant-time per second; flat re-hashing grows with the prefix.
    let chunk = vec![0xa5u8; 875 * 1024]; // ~50 MB / 60 s
    let mut g = c.benchmark_group("digest");
    g.sample_size(10);
    g.bench_function("cascade_one_second", |b| {
        b.iter_batched(
            || {
                let mut chain = VdChain::new([1u8; 8], 0, GeoPos::new(0.0, 0.0));
                for _ in 0..30 {
                    chain.extend(&chunk[..64], GeoPos::new(0.0, 0.0));
                }
                chain
            },
            |mut chain| chain.extend(&chunk, GeoPos::new(0.0, 0.0)),
            BatchSize::LargeInput,
        )
    });
    let prefix_30s = vec![0xa5u8; 875 * 1024 * 30];
    g.bench_function("flat_rehash_at_30s", |b| {
        b.iter(|| flat_digest(&prefix_30s))
    });
    g.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let keys: Vec<Digest16> = (0..100u64)
        .map(|i| Digest16::hash(&i.to_le_bytes()))
        .collect();
    c.bench_function("bloom_insert_100", |b| {
        b.iter(|| {
            let mut f = BloomFilter::default();
            for k in &keys {
                f.insert(k);
            }
            f
        })
    });
    let mut f = BloomFilter::default();
    for k in &keys {
        f.insert(k);
    }
    c.bench_function("bloom_query", |b| {
        let probe = Digest16::hash(b"probe");
        b.iter(|| f.contains(&probe))
    });
}

fn bench_trustrank(c: &mut Criterion) {
    // A 1000-node geometric-ish graph.
    let mut rng = StdRng::seed_from_u64(1);
    let n = 1000;
    let mut adj = vec![Vec::new(); n];
    for i in 0..n {
        for _ in 0..4 {
            let j = rng.gen_range(0..n);
            if i != j && !adj[i].contains(&j) {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    c.bench_function("trustrank_1000_nodes", |b| {
        b.iter(|| trustrank::trust_scores(&adj, &[0], 0.8, 1e-10))
    });
}

fn bench_route(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let net = RoadNetwork::synthetic_city(&CityParams::small_area(), &mut rng);
    let router = Router::new(&net);
    let pairs: Vec<_> = (0..32)
        .map(|_| (net.random_node(&mut rng), net.random_node(&mut rng)))
        .collect();
    c.bench_function("astar_route_4km_city", |b| {
        let mut i = 0;
        b.iter(|| {
            let (a, z) = pairs[i % pairs.len()];
            i += 1;
            router.route(a, z)
        })
    });
}

fn bench_blur(c: &mut Criterion) {
    use vm_vision::{BlurPipeline, SyntheticScene};
    let mut rng = StdRng::seed_from_u64(3);
    let scene = SyntheticScene::generate(&mut rng, 640, 480, 2);
    let mut g = c.benchmark_group("vision");
    g.sample_size(20);
    g.bench_function("blur_frame_640x480", |b| {
        let mut pipe = BlurPipeline::new();
        b.iter(|| pipe.process(&scene.frame.data, 640, 480))
    });
    g.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let key = RsaKeyPair::generate(&mut rng, 1024);
    let hashed = key.public().fdh(b"one unit of cash");
    let mut g = c.benchmark_group("rsa");
    g.sample_size(10);
    g.bench_function("blind_sign_unblind_1024", |b| {
        b.iter(|| {
            let (blinded, secret) = key.public().blind(&hashed, &mut rng).unwrap();
            let s = key.sign_blinded(&blinded).unwrap();
            key.public().unblind(&s, &secret)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_digest,
    bench_bloom,
    bench_trustrank,
    bench_route,
    bench_blur,
    bench_rsa
);
criterion_main!(benches);
