//! Ablation benches: cost of the design choices DESIGN.md calls out
//! (Bloom size, damping factor, guard rate, viewmap construction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use viewmap_core::bloom::BloomFilter;
use viewmap_core::trustrank;
use viewmap_core::types::{GeoPos, MinuteId};
use viewmap_core::viewmap::{Site, Viewmap, ViewmapConfig};
use vm_crypto::Digest16;

fn bloom_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom_m_sweep");
    for m in [1024usize, 2048, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let keys: Vec<Digest16> = (0..100u64)
                .map(|i| Digest16::hash(&i.to_le_bytes()))
                .collect();
            b.iter(|| {
                let mut f = BloomFilter::new(m, 8);
                for k in &keys {
                    f.insert(k);
                }
                f.contains(&Digest16::hash(b"probe"))
            })
        });
    }
    g.finish();
}

fn damping_convergence(c: &mut Criterion) {
    // Higher damping → slower convergence; this is the latency cost of
    // the paper's δ = 0.8 choice.
    let mut rng = StdRng::seed_from_u64(1);
    let n = 500;
    let mut adj = vec![Vec::new(); n];
    for i in 0..n {
        for _ in 0..3 {
            let j = rng.gen_range(0..n);
            if i != j && !adj[i].contains(&j) {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    let mut g = c.benchmark_group("damping_sweep");
    for damping in [0.5f64, 0.8, 0.95] {
        g.bench_with_input(BenchmarkId::from_parameter(damping), &damping, |b, &d| {
            b.iter(|| trustrank::trust_scores(&adj, &[0], d, 1e-10))
        });
    }
    g.finish();
}

fn viewmap_build(c: &mut Criterion) {
    use viewmap_core::vp::{VpBuilder, VpKind};
    // A 60-VP chain world, built once; benchmark viewmap construction.
    let mut rng = StdRng::seed_from_u64(2);
    let n = 60usize;
    let mut builders: Vec<VpBuilder> = (0..n)
        .map(|i| {
            let kind = if i == 0 {
                VpKind::Trusted
            } else {
                VpKind::Actual
            };
            VpBuilder::new(&mut rng, 0, GeoPos::new(i as f64 * 120.0, 0.0), kind)
        })
        .collect();
    for s in 0..60u64 {
        let locs: Vec<GeoPos> = (0..n)
            .map(|i| GeoPos::new(i as f64 * 120.0 + s as f64 * 10.0, 0.0))
            .collect();
        let vds: Vec<_> = builders
            .iter_mut()
            .enumerate()
            .map(|(i, b)| b.record_second(&s.to_le_bytes(), locs[i]))
            .collect();
        for i in 0..n {
            for j in 0..n {
                if i != j && locs[i].distance(&locs[j]) <= 390.0 {
                    builders[i].accept_neighbor_vd(vds[j], s + 1, locs[i]);
                }
            }
        }
    }
    let vps: Vec<_> = builders
        .into_iter()
        .map(|b| std::sync::Arc::new(b.finalize().profile.into_stored()))
        .collect();
    let site = Site {
        center: GeoPos::new(3600.0, 0.0),
        radius_m: 400.0,
    };
    let cfg = ViewmapConfig::default();
    let mut g = c.benchmark_group("viewmap");
    g.sample_size(20);
    g.bench_function("build_60_vps", |b| {
        b.iter(|| Viewmap::build(&vps, site, MinuteId(0), &cfg))
    });
    let vm = Viewmap::build(&vps, site, MinuteId(0), &cfg);
    g.bench_function("verify_60_vps", |b| b.iter(|| vm.verify(&site, &cfg)));
    g.finish();
}

fn guard_creation(c: &mut Criterion) {
    use viewmap_core::guard::{create_guards, GuardConfig, StraightLine};
    use viewmap_core::vp::exchange_minute;
    let mut g = c.benchmark_group("guard_alpha_sweep");
    for alpha in [0.1f64, 0.5, 1.0] {
        g.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &alpha| {
            let mut rng = StdRng::seed_from_u64(3);
            let cfg = GuardConfig {
                alpha,
                ..GuardConfig::default()
            };
            b.iter(|| {
                let (mut fin, _) = exchange_minute(
                    &mut rng,
                    0,
                    |s| GeoPos::new(s as f64 * 12.0, 0.0),
                    |s| GeoPos::new(s as f64 * 12.0, 50.0),
                );
                create_guards(&mut rng, &mut fin, &StraightLine, &cfg)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bloom_sizes,
    damping_convergence,
    viewmap_build,
    guard_creation
);
criterion_main!(benches);
