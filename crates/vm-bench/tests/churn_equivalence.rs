//! Churn equivalence: the incrementally maintained viewmap must be
//! bit-identical to a cold build at **every** point of **any** ingest /
//! evict history.
//!
//! The maintained graph (`viewmap_core::maintained`) is spliced under
//! the server's commit lock on every submit path and dropped on
//! eviction, so the property to hold is strong: after each operation of
//! a randomized history — single submits, cold and key-warm batches,
//! trusted batches, retention sweeps — extraction from the live graph
//! must equal a cold `Viewmap::build` over the same bucket in members,
//! adjacency, trusted set, edge checksum, and (bit-for-bit) TrustRank
//! scores. The suite drives seeded random interleavings plus the
//! degenerate shapes a fuzzer finds last: the empty minute, the single
//! member, and a minute fully evicted and then resubmitted.
//!
//! Runs in the threaded release matrix alongside `parallel_equivalence`;
//! the probes call the auto-parallel engines, so both harness thread
//! counts exercise the same equality.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use viewmap_core::server::ViewMapServer;
use viewmap_core::types::{GeoPos, MinuteId};
use viewmap_core::upload::AnonymousSubmission;
use viewmap_core::viewmap::{Site, ViewmapConfig};
use viewmap_core::vp::StoredVp;
use vm_bench::worlds::{linked_minute, viewmap_checksum};

/// Minutes the random histories spread their traffic across.
const MINUTES: u64 = 3;

/// VPs per minute pool (enough for real edges, small enough that a
/// 40-step history with a cold build per probe stays fast in debug).
const POOL: usize = 12;

/// A site covering every `linked_minute` trajectory, so probes verify
/// the whole graph.
fn wide_site() -> Site {
    Site {
        center: GeoPos::new(POOL as f64 * vm_bench::worlds::LINKED_SPACING_M / 2.0, 0.0),
        radius_m: 1_000_000.0,
    }
}

fn anon(vp: StoredVp) -> AnonymousSubmission {
    AnonymousSubmission { session_id: 0, vp }
}

/// The oracle: cold-build the minute from the bucket, extract the same
/// minute from the maintained graph, and require the two identical in
/// every observable — then require the investigation entry points to
/// agree on the answer they would hand an authority.
fn probe(srv: &ViewMapServer, minute: MinuteId, cfg: &ViewmapConfig, ctx: &str) {
    let site = wide_site();
    let cold = srv.build_viewmap(minute, site);
    let maintained = srv.build_viewmap_maintained(minute, site);
    assert!(srv.has_maintained(minute), "{ctx}: graph kept alive");

    assert_eq!(maintained.len(), cold.len(), "{ctx}: member count");
    assert_eq!(maintained.minute, cold.minute, "{ctx}: minute");
    assert_eq!(maintained.trusted, cold.trusted, "{ctx}: trusted set");
    for i in 0..cold.len() {
        assert_eq!(
            maintained.vps[i].id, cold.vps[i].id,
            "{ctx}: member order at {i}"
        );
        assert_eq!(maintained.adj[i], cold.adj[i], "{ctx}: adjacency at {i}");
    }
    assert_eq!(
        viewmap_checksum(&maintained),
        viewmap_checksum(&cold),
        "{ctx}: edge checksum"
    );

    // TrustRank outcomes, bit for bit: identical graphs must produce
    // identical score vectors, top pick, and legitimate set.
    let (vc, _) = cold.verify(&site, cfg);
    let (vm, _) = maintained.verify(&site, cfg);
    assert_eq!(vc.scores.len(), vm.scores.len(), "{ctx}: score length");
    for (i, (a, b)) in vc.scores.iter().zip(&vm.scores).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: score bits at {i}");
    }
    assert_eq!(vc.top, vm.top, "{ctx}: top member");
    assert_eq!(vc.legitimate, vm.legitimate, "{ctx}: legitimate set");

    // And the public entry points agree end to end.
    assert_eq!(
        srv.investigate_maintained(minute, site),
        srv.investigate(minute, site),
        "{ctx}: investigation ids"
    );
}

/// One seeded random history: deal each minute's pool out across
/// singles, cold batches, warm batches, and trusted batches, interleave
/// retention sweeps (which make evicted pools dealable again), and
/// probe a random minute after every step.
fn run_history(seed: u64, steps: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = ViewmapConfig::default();
    let mut key_rng = StdRng::seed_from_u64(seed ^ 0x5e_17e5);
    let srv = ViewMapServer::new(&mut key_rng, 512, cfg);

    let pools: Vec<Vec<StoredVp>> = (0..MINUTES).map(|m| linked_minute(POOL, m, seed)).collect();
    // Next undealt index per pool; eviction rewinds it so the same VPs
    // flow in again (their ids left the dedup index with the sweep).
    let mut next = vec![0usize; MINUTES as usize];

    for step in 0..steps {
        let m = rng.gen_range(0..MINUTES) as usize;
        let ctx = format!("seed {seed} step {step}");
        match rng.gen_range(0..5u32) {
            // Single submit of the pool's next VP (authority channel for
            // the trusted anchor at index 0).
            0 => {
                if next[m] < POOL {
                    let vp = pools[m][next[m]].clone();
                    next[m] += 1;
                    if vp.trusted {
                        srv.submit_trusted(vp).expect("trusted stored");
                    } else {
                        srv.submit(anon(vp)).expect("stored");
                    }
                }
            }
            // Cold or key-warm batch of the next few VPs.
            1 | 2 => {
                let k = rng.gen_range(1..=4usize).min(POOL - next[m]);
                let chunk: Vec<StoredVp> = pools[m][next[m]..next[m] + k].to_vec();
                next[m] += k;
                let (trusted, plain): (Vec<_>, Vec<_>) =
                    chunk.into_iter().partition(|vp| vp.trusted);
                if !trusted.is_empty() {
                    let r = srv.submit_trusted_batch(trusted);
                    assert!(r.iter().all(|x| x.is_ok()), "{ctx}: trusted batch");
                }
                if !plain.is_empty() {
                    let subs = plain.into_iter().map(anon);
                    let r = if rng.gen_bool(0.5) {
                        srv.submit_batch(subs)
                    } else {
                        srv.submit_batch_warm(subs)
                    };
                    assert!(r.iter().all(|x| x.is_ok()), "{ctx}: batch");
                }
            }
            // Trusted batch: re-anchor with a fresh authority VP drawn
            // from a disjoint pool (minute offset past the history's
            // range keeps its ids unique per draw).
            3 => {
                let extra = linked_minute(1, m as u64, seed ^ (0x7ab0 + step as u64));
                let r = srv.submit_trusted_batch(extra);
                assert!(r.iter().all(|x| x.is_ok()), "{ctx}: extra trusted");
            }
            // Retention sweep; evicted minutes become resubmittable.
            _ => {
                let cutoff = MinuteId(rng.gen_range(0..=MINUTES));
                srv.evict_minutes_before(cutoff);
                for (em, n) in next.iter_mut().enumerate() {
                    if (em as u64) < cutoff.0 {
                        assert!(
                            !srv.has_maintained(MinuteId(em as u64)),
                            "{ctx}: maintained graph survived eviction"
                        );
                        *n = 0;
                    }
                }
            }
        }
        probe(&srv, MinuteId(rng.gen_range(0..MINUTES)), &cfg, &ctx);
    }
}

#[test]
fn random_churn_histories_stay_equivalent() {
    for seed in 0..4u64 {
        run_history(seed, 40);
    }
}

#[test]
fn longer_history_one_seed() {
    run_history(0xc0ffee, 80);
}

#[test]
fn empty_minute_probe_is_equivalent() {
    let cfg = ViewmapConfig::default();
    let mut rng = StdRng::seed_from_u64(1);
    let srv = ViewMapServer::new(&mut rng, 512, cfg);
    // Nothing was ever submitted for this minute: both paths must agree
    // on the empty viewmap (and the maintained graph must exist after).
    probe(&srv, MinuteId(7), &cfg, "empty minute");
    assert_eq!(
        srv.build_viewmap_maintained(MinuteId(7), wide_site()).len(),
        0
    );
}

#[test]
fn single_member_minute_is_equivalent() {
    let cfg = ViewmapConfig::default();
    let mut rng = StdRng::seed_from_u64(2);
    let srv = ViewMapServer::new(&mut rng, 512, cfg);
    let pool = linked_minute(1, 0, 9);
    srv.submit_trusted(pool[0].clone()).expect("stored");
    probe(&srv, MinuteId(0), &cfg, "single member");
    // Growing the singleton afterwards splices instead of rebuilding.
    let grown = linked_minute(3, 0, 10);
    let r = srv.submit_batch_warm(grown.into_iter().filter(|vp| !vp.trusted).map(anon));
    assert!(r.iter().all(|x| x.is_ok()));
    probe(&srv, MinuteId(0), &cfg, "singleton grown");
}

#[test]
fn fully_evicted_then_resubmitted_minute_is_equivalent() {
    let cfg = ViewmapConfig::default();
    let mut rng = StdRng::seed_from_u64(3);
    let srv = ViewMapServer::new(&mut rng, 512, cfg);
    let pool = linked_minute(POOL, 0, 11);

    let (trusted, plain): (Vec<_>, Vec<_>) = pool.clone().into_iter().partition(|vp| vp.trusted);
    let r = srv.submit_trusted_batch(trusted.clone());
    assert!(r.iter().all(|x| x.is_ok()));
    let r = srv.submit_batch_warm(plain.clone().into_iter().map(anon));
    assert!(r.iter().all(|x| x.is_ok()));
    probe(&srv, MinuteId(0), &cfg, "before eviction");

    assert_eq!(srv.evict_minutes_before(MinuteId(1)), POOL);
    assert!(
        !srv.has_maintained(MinuteId(0)),
        "graph dropped with minute"
    );
    probe(&srv, MinuteId(0), &cfg, "after full eviction");

    // The same VPs flow back in (eviction forgot their ids); the fresh
    // maintained graph must match a fresh cold build exactly.
    let r = srv.submit_trusted_batch(trusted);
    assert!(r.iter().all(|x| x.is_ok()));
    let r = srv.submit_batch_warm(plain.into_iter().map(anon));
    assert!(r.iter().all(|x| x.is_ok()));
    probe(&srv, MinuteId(0), &cfg, "resubmitted after eviction");
}
