//! The determinism harness for parallel viewmap construction and batch
//! ingest.
//!
//! Parallel code is where silent nondeterminism creeps in, so these tests
//! hold the engines to the strongest property available:
//!
//! * `Viewmap::build_threads(…, t)` must return a **bit-for-bit
//!   identical** viewmap (members, adjacency, trusted set, verification
//!   scores) for every thread count `t`, across random populations,
//!   densities, and degenerate shapes;
//! * `ViewMapServer::submit_batch` must leave the server in a state
//!   indistinguishable from sequential `submit` calls, and the viewmap
//!   built from a batch-ingested store must equal the one built from a
//!   singles-ingested store;
//! * a fixed-seed 100k-VP world is pinned down to member/edge counts and
//!   an edge checksum, so no future refactor can silently reshape
//!   city-scale viewmap topology.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use viewmap_core::server::ViewMapServer;
use viewmap_core::types::{GeoPos, MinuteId};
use viewmap_core::upload::AnonymousSubmission;
use viewmap_core::viewmap::{Site, Viewmap, ViewmapConfig};
use viewmap_core::vp::StoredVp;
use vm_bench::investigate::SynthWorld;

const THREAD_COUNTS: [usize; 4] = [2, 3, 5, 8];

/// Assert two viewmaps are bit-for-bit the same construction.
fn assert_identical(a: &Viewmap, b: &Viewmap, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: member count");
    assert_eq!(a.trusted, b.trusted, "{ctx}: trusted set");
    assert_eq!(a.minute, b.minute, "{ctx}: minute");
    for i in 0..a.len() {
        assert_eq!(a.vps[i].id, b.vps[i].id, "{ctx}: member order at {i}");
        assert_eq!(a.adj[i], b.adj[i], "{ctx}: adjacency at node {i}");
    }
}

/// Build with 1 thread and with each multi-thread count; all must agree,
/// including the verification outcome (scores compared exactly — the
/// gather order is pinned, so not even the floating-point summation may
/// drift).
fn check_all_thread_counts(vps: &[Arc<StoredVp>], site: Site, minute: MinuteId, ctx: &str) {
    let cfg = ViewmapConfig::default();
    let sequential = Viewmap::build_threads(vps, site, minute, &cfg, 1);
    let (sv, sids) = sequential.verify(&site, &cfg);
    for t in THREAD_COUNTS {
        let parallel = Viewmap::build_threads(vps, site, minute, &cfg, t);
        assert_identical(&sequential, &parallel, &format!("{ctx} threads={t}"));
        let (pv, pids) = parallel.verify(&site, &cfg);
        assert_eq!(sv.scores, pv.scores, "{ctx} threads={t}: scores");
        assert_eq!(sv.top, pv.top, "{ctx} threads={t}: top");
        assert_eq!(sv.legitimate, pv.legitimate, "{ctx} threads={t}: marked");
        assert_eq!(sids, pids, "{ctx} threads={t}: marked ids");
    }
}

fn arcs(vps: &[StoredVp]) -> Vec<Arc<StoredVp>> {
    vps.iter().cloned().map(Arc::new).collect()
}

#[test]
fn parallel_build_identical_across_random_populations() {
    for (n, seed) in [(60usize, 7u64), (300, 11), (900, 23)] {
        let w = SynthWorld::generate(n, seed);
        check_all_thread_counts(
            &arcs(&w.vps),
            w.site,
            w.minute,
            &format!("n={n} seed={seed}"),
        );
    }
}

#[test]
fn parallel_build_identical_across_densities() {
    // Rescale a world's coordinates to sweep sparse→dense geometry while
    // keeping the Bloom wiring fixed (wiring is an input, not a function
    // of geometry, so any wiring is a legal population).
    let base = SynthWorld::generate(400, 31);
    for scale in [0.25f64, 1.0, 4.0] {
        let mut vps = base.vps.clone();
        for vp in &mut vps {
            for vd in &mut vp.vds {
                vd.loc.x *= scale;
                vd.loc.y *= scale;
                vd.initial_loc.x *= scale;
                vd.initial_loc.y *= scale;
            }
        }
        let site = Site {
            center: GeoPos::new(base.site.center.x * scale, base.site.center.y * scale),
            radius_m: base.site.radius_m * scale.max(1.0),
        };
        check_all_thread_counts(&arcs(&vps), site, base.minute, &format!("scale={scale}"));
    }
}

#[test]
fn parallel_build_identical_on_degenerate_shapes() {
    let site = Site {
        center: GeoPos::new(0.0, 0.0),
        radius_m: 500.0,
    };

    // Empty minute: the population belongs to minute 0, the build asks
    // for minute 5.
    let w = SynthWorld::generate(50, 41);
    let empty = Viewmap::build_threads(
        &arcs(&w.vps),
        w.site,
        MinuteId(5),
        &ViewmapConfig::default(),
        8,
    );
    assert!(empty.is_empty(), "minute-5 viewmap from minute-0 VPs");
    check_all_thread_counts(&arcs(&w.vps), w.site, MinuteId(5), "empty minute");

    // Single VP.
    let single = vec![w.vps[0].clone()];
    check_all_thread_counts(&arcs(&single), site, MinuteId(0), "single VP");

    // Every VP's whole trajectory in one grid cell (identical stationary
    // positions): candidate generation degenerates to all-pairs.
    let mut packed = SynthWorld::generate(80, 43).vps;
    for vp in &mut packed {
        for vd in &mut vp.vds {
            vd.loc = GeoPos::new(10.0, 20.0);
        }
    }
    check_all_thread_counts(&arcs(&packed), site, MinuteId(0), "all VPs one cell");

    // More threads than members.
    let tiny = &w.vps[..3];
    let cfg = ViewmapConfig::default();
    let a = Viewmap::build_threads(&arcs(tiny), w.site, w.minute, &cfg, 1);
    let b = Viewmap::build_threads(&arcs(tiny), w.site, w.minute, &cfg, 16);
    assert_identical(&a, &b, "threads > members");
}

#[test]
fn parallel_build_identical_with_time_gapped_vds() {
    // Recording hiccups: some VPs skip seconds (still 60 VDs, strictly
    // increasing times), so their compact trajectory tables have NaN gap
    // slots and lengths not divisible by the segment count — the shape
    // that once broke the segment-window quantization. The engine must
    // stay thread-count-deterministic AND agree with the O(n²) oracle.
    let mut w = SynthWorld::generate(300, 97);
    let mut rng = StdRng::seed_from_u64(98);
    for vp in w.vps.iter_mut() {
        if rand::Rng::gen_bool(&mut rng, 0.25) {
            let cut = rand::Rng::gen_range(&mut rng, 10..55);
            let shift = rand::Rng::gen_range(&mut rng, 1..4u64);
            for vd in &mut vp.vds[cut..] {
                vd.time += shift;
            }
        }
    }
    check_all_thread_counts(&arcs(&w.vps), w.site, w.minute, "time-gapped");

    let cfg = ViewmapConfig::default();
    let vm = Viewmap::build_threads(&arcs(&w.vps), w.site, w.minute, &cfg, 4);
    for i in 0..vm.len() {
        for j in (i + 1)..vm.len() {
            let close = vm.vps[i]
                .min_aligned_distance(&vm.vps[j])
                .is_some_and(|d| d <= cfg.dsrc_radius_m);
            let expect = close && vm.vps[i].mutually_linked(&vm.vps[j]);
            assert_eq!(
                vm.adj[i].contains(&j),
                expect,
                "gapped edge {i}-{j} disagrees with oracle"
            );
        }
    }
}

#[test]
fn outlier_trajectories_stay_exact_and_off_grid() {
    // A few city-spanning trajectories (a teleporting forgery passes the
    // ingest screen — it has 60 strictly-increasing VDs) must neither
    // blow up candidate generation (they are handled off-grid) nor lose
    // or gain edges: the engine stays oracle-exact and thread-count
    // deterministic with outliers present.
    let mut w = SynthWorld::generate(220, 101);
    for (k, idx) in [3usize, 57, 140].into_iter().enumerate() {
        let vp = &mut w.vps[idx];
        for (s, vd) in vp.vds.iter_mut().enumerate() {
            // Sweep diagonally across the whole area, passing near the
            // center mid-minute; consecutive claimed positions hundreds
            // of meters apart (far beyond any honest vehicle).
            let t = s as f64 / 59.0;
            vd.loc = GeoPos::new(w.side_m * t, w.side_m * t + (k as f64 - 1.0) * 120.0);
        }
    }
    check_all_thread_counts(&arcs(&w.vps), w.site, w.minute, "outliers");

    let cfg = ViewmapConfig::default();
    let vm = Viewmap::build_threads(&arcs(&w.vps), w.site, w.minute, &cfg, 4);
    for i in 0..vm.len() {
        for j in (i + 1)..vm.len() {
            let close = vm.vps[i]
                .min_aligned_distance(&vm.vps[j])
                .is_some_and(|d| d <= cfg.dsrc_radius_m);
            let expect = close && vm.vps[i].mutually_linked(&vm.vps[j]);
            assert_eq!(
                vm.adj[i].contains(&j),
                expect,
                "outlier edge {i}-{j} disagrees with oracle"
            );
        }
    }
}

#[test]
fn parallel_build_matches_exhaustive_oracle() {
    // The full engine (any thread count) must reproduce the paper's edge
    // definition computed the O(n²) way: shared in-range second + mutual
    // Bloom linkage.
    let w = SynthWorld::generate(250, 53);
    let cfg = ViewmapConfig::default();
    let vm = Viewmap::build_threads(&arcs(&w.vps), w.site, w.minute, &cfg, 8);
    assert_eq!(vm.len(), w.vps.len());
    for i in 0..vm.len() {
        for j in (i + 1)..vm.len() {
            let close = vm.vps[i]
                .min_aligned_distance(&vm.vps[j])
                .is_some_and(|d| d <= cfg.dsrc_radius_m);
            let expect = close && vm.vps[i].mutually_linked(&vm.vps[j]);
            assert_eq!(
                vm.adj[i].contains(&j),
                expect,
                "edge {i}-{j} disagrees with oracle"
            );
        }
    }
}

// ── Batch ingest vs sequential submits ─────────────────────────────────

fn submission(vp: StoredVp) -> AnonymousSubmission {
    AnonymousSubmission { session_id: 0, vp }
}

#[test]
fn batch_ingested_server_state_and_viewmap_match_singles() {
    let mut rng = StdRng::seed_from_u64(61);
    let w = SynthWorld::generate(500, 67);
    let cfg = ViewmapConfig::default();
    let singles = ViewMapServer::new(&mut rng, 512, cfg);
    let batched = ViewMapServer::new(&mut rng, 512, cfg);

    // Sequential path, with a duplicate resend sprinkled in.
    let mut seq_results = Vec::new();
    for vp in &w.vps {
        seq_results.push(singles.submit(submission(vp.clone())));
    }
    seq_results.push(singles.submit(submission(w.vps[17].clone())));

    // Batch path: same stream, split into three uneven batches.
    let mut stream: Vec<StoredVp> = w.vps.clone();
    stream.push(w.vps[17].clone());
    let mut bat_results = Vec::new();
    for chunk in [&stream[..120], &stream[120..121], &stream[121..]] {
        bat_results.extend(batched.submit_batch(chunk.iter().cloned().map(submission)));
    }
    assert_eq!(seq_results, bat_results, "per-VP outcomes");
    assert_eq!(singles.total_vps(), batched.total_vps());
    assert_eq!(singles.total_vps(), w.vps.len());

    // Same bucket contents in order, same index routing.
    let (a, b) = (singles.minute_vps(w.minute), batched.minute_vps(w.minute));
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id, "bucket order");
    }
    for vp in &w.vps {
        assert_eq!(
            singles.lookup_vp(vp.id).map(|v| v.minute()),
            batched.lookup_vp(vp.id).map(|v| v.minute()),
        );
    }

    // And the production investigation path sees identical viewmaps.
    let vm_a = singles.build_viewmap(w.minute, w.site);
    let vm_b = batched.build_viewmap(w.minute, w.site);
    assert_identical(&vm_a, &vm_b, "singles vs batch store");
}

#[test]
fn interleaved_concurrent_batches_and_singles_from_scoped_threads() {
    // Concurrent ingest across minutes and stripes: batches and singles
    // racing must accept each id exactly once and leave every record
    // reachable through the index.
    let mut rng = StdRng::seed_from_u64(71);
    let srv = ViewMapServer::new(&mut rng, 512, ViewmapConfig::default());
    // One world partitioned across threads — VP ids are tag-derived, so
    // disjoint ranges of one world guarantee disjoint id sets while still
    // hitting shared stripes and the shared minute shard.
    let w = SynthWorld::generate(360, 80);
    let parts: Vec<&[StoredVp]> = w.vps.chunks(120).collect();

    let accepted: usize = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, part) in parts.iter().enumerate() {
            let srv = &srv;
            handles.push(scope.spawn(move || {
                let mut ok = 0usize;
                if t % 2 == 0 {
                    // Two overlapping batches.
                    let half = part.len() / 2;
                    for range in [&part[..half + 20], &part[half..]] {
                        ok += srv
                            .submit_batch(range.iter().cloned().map(submission))
                            .into_iter()
                            .filter(|r| r.is_ok())
                            .count();
                    }
                } else {
                    for vp in *part {
                        // Each id raced twice through the single path.
                        ok += [
                            srv.submit(submission(vp.clone())),
                            srv.submit(submission(vp.clone())),
                        ]
                        .iter()
                        .filter(|r| r.is_ok())
                        .count();
                    }
                }
                ok
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    let expect = w.vps.len();
    assert_eq!(accepted, expect, "each id accepted exactly once");
    assert_eq!(srv.total_vps(), expect);
    for vp in &w.vps {
        let stored = srv.lookup_vp(vp.id).expect("reachable through index");
        assert_eq!(stored.id, vp.id);
    }
}

// ── Scratch reuse (arena recycling) vs fresh allocation ────────────────

#[test]
fn scratch_reuse_identical_across_populations_and_thread_counts() {
    // One BuildScratch carried across every population/thread-count
    // combination (including a degenerate empty minute in the middle)
    // must reproduce the fresh-allocation build bit for bit — arena
    // reuse is an allocation-lifetime optimization, never a state leak.
    use viewmap_core::viewmap::BuildScratch;
    let cfg = ViewmapConfig::default();
    let mut scratch = BuildScratch::new();
    let worlds: Vec<SynthWorld> = [(120usize, 301u64), (500, 303), (90, 305)]
        .into_iter()
        .map(|(n, seed)| SynthWorld::generate(n, seed))
        .collect();
    for (wi, w) in worlds.iter().enumerate() {
        let vps = arcs(&w.vps);
        for t in [1usize, 2, 5, 8] {
            let fresh = Viewmap::build_threads(&vps, w.site, w.minute, &cfg, t);
            let (reused, _) =
                Viewmap::build_with_scratch(&vps, w.site, w.minute, &cfg, t, &mut scratch);
            assert_identical(&fresh, &reused, &format!("world {wi} threads={t} scratch"));
            let (sv, _) = fresh.verify(&w.site, &cfg);
            let (rv, _) = reused.verify(&w.site, &cfg);
            assert_eq!(sv.scores, rv.scores, "world {wi} threads={t}: scores");
        }
        // Poison-check: an empty minute build on the used scratch, then
        // keep going with the same scratch.
        let (empty, _) =
            Viewmap::build_with_scratch(&vps, w.site, MinuteId(9), &cfg, 4, &mut scratch);
        assert!(empty.is_empty(), "world {wi}: minute-9 build");
    }
}

// ── 100k-tier topology pin ─────────────────────────────────────────────

/// Stable fingerprint of the full edge set (order-independent per edge,
/// order of edges irrelevant to the sum).
fn edge_checksum(vm: &Viewmap) -> u64 {
    let mut sum = 0u64;
    for (i, nbrs) in vm.adj.iter().enumerate() {
        for &j in nbrs {
            if j > i {
                sum = sum.wrapping_add((i as u64).wrapping_mul(1_000_003) ^ (j as u64));
            }
        }
    }
    sum
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "100k-tier build: minutes in debug, run under --release (CI threaded job)"
)]
fn hundred_k_tier_topology_pinned_to_seed_42() {
    // The exact world the investigation benchmark uses. If this test
    // fails after an engine change, the viewmap topology changed — that
    // is a correctness regression, not a tuning outcome; the constants
    // below were cross-checked against the pre-rewrite per-second-grid
    // engine, which produced the identical edge set.
    let w = SynthWorld::generate(100_000, 42);
    let cfg = ViewmapConfig::default();
    let vm = Viewmap::build(&arcs(&w.vps), w.site, w.minute, &cfg);
    assert_eq!(vm.len(), 100_000, "member count");
    assert_eq!(vm.trusted, vec![0], "trusted seed index");
    assert_eq!(vm.edge_count(), 1_075_043, "edge count");
    assert_eq!(edge_checksum(&vm), 35_188_850_907_922_891, "edge checksum");

    // Sampled viewlinks: degree and first/last neighbor of a spread of
    // members (adjacency is in ascending neighbor order per node).
    for (node, degree, first, last) in SAMPLED_ADJACENCY {
        assert_eq!(vm.adj[node].len(), degree, "degree of node {node}");
        assert_eq!(vm.adj[node].first(), Some(&first), "node {node} first");
        assert_eq!(vm.adj[node].last(), Some(&last), "node {node} last");
    }

    // ── Incremental delta pin ───────────────────────────────────────
    // Grow the pinned world by the seeded +1k churn delta through the
    // maintained path and pin the grown topology too. The cold-build
    // oracle above anchors the base; the maintained path's equality to
    // a cold build of the grown bucket is proven structurally by the
    // churn-equivalence suite and re-asserted on every bench run, so
    // this pin records the incremental result directly instead of
    // rerunning the O(n·k) oracle on 101k members.
    let delta = arcs(&SynthWorld::delta(w.side_m, 1_000, 42));
    let mut mv = viewmap_core::MaintainedViewmap::create(
        arcs(&w.vps),
        w.minute,
        &cfg,
        0,
        &mut viewmap_core::viewmap::BuildScratch::new(),
    );
    assert_eq!(mv.edge_count(), 1_075_043, "maintained create edge count");
    mv.ingest(&delta);
    let grown = mv.extract(w.site, &cfg);
    assert_eq!(grown.len(), 101_000, "grown member count");
    assert_eq!(grown.edge_count(), 1_075_188, "grown edge count");
    assert_eq!(
        edge_checksum(&grown),
        35_203_396_227_061_832,
        "grown edge checksum"
    );
    // The delta wires its Bloom filters only among itself, so the base
    // members' adjacency is untouched by the splice — the sampled rows
    // must still hold verbatim on the grown graph.
    for (node, degree, first, last) in SAMPLED_ADJACENCY {
        assert_eq!(grown.adj[node].len(), degree, "grown degree of {node}");
        assert_eq!(grown.adj[node].first(), Some(&first), "grown {node} first");
        assert_eq!(grown.adj[node].last(), Some(&last), "grown {node} last");
    }
}

/// `(node, degree, first neighbor, last neighbor)` under seed 42,
/// recorded from the pinned run (and identical under the pre-rewrite
/// per-second-grid engine).
const SAMPLED_ADJACENCY: [(usize, usize, usize, usize); 6] = [
    (0, 24, 2_315, 89_628),
    (1, 24, 10_521, 79_638),
    (777, 24, 12_666, 97_674),
    (31_337, 24, 3_138, 58_313),
    (50_000, 23, 539, 94_979),
    (99_999, 12, 3_075, 96_667),
];
