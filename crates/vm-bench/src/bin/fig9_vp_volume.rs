//! Fig. 9: volume of VP creation vs neighbor count.
use viewmap_core::analysis::vp_volume_per_minute;
use vm_bench::csv_header;

fn main() {
    csv_header(
        "Fig. 9: VPs created per vehicle-minute vs neighbors m, for alpha in {0.1, 0.5, 0.9}",
        &["m", "alpha_0.1", "alpha_0.5", "alpha_0.9"],
    );
    for m in (20..=200).step_by(20) {
        println!(
            "{m},{},{},{}",
            vp_volume_per_minute(0.1, m),
            vp_volume_per_minute(0.5, m),
            vp_volume_per_minute(0.9, m)
        );
    }
}
