//! §6.1: communication and storage overhead accounting.
use viewmap_core::analysis;
use viewmap_core::vd::VD_WIRE_BYTES;
use vm_bench::csv_header;

fn main() {
    csv_header("Section 6.1: overhead accounting", &["quantity", "value"]);
    println!("vd_wire_bytes,{VD_WIRE_BYTES}");
    println!("vp_storage_bytes,{}", analysis::vp_storage_bytes());
    println!(
        "storage_overhead_vs_50MB_video,{:.6}%",
        analysis::storage_overhead_ratio(50 * 1024 * 1024) * 100.0
    );
    println!("# paper: 72-byte VDs, 4584-byte VPs, <0.01% of the video size");
    println!("# guard coverage rule P_t = [1-(1-(1-a)^m)^m]^t:");
    println!("alpha,m,t_minutes,P_t");
    for (alpha, m, t) in [(0.1, 50, 5u32), (0.1, 50, 10), (0.1, 30, 5), (0.5, 30, 5)] {
        println!(
            "{alpha},{m},{t},{:.5}",
            analysis::uncovered_prob(alpha, m, t)
        );
    }
}
