//! Ablation: guard rate α — privacy vs upload volume.
use vm_bench::{csv_header, privacy_exp, scaled};

fn main() {
    let vehicles = scaled(50, 20);
    let minutes = scaled(10, 5) as u64;
    csv_header(
        "Ablation: guard rate alpha vs tracking success, entropy, and upload volume",
        &[
            "alpha",
            "final_tracking_success",
            "final_entropy_bits",
            "vps_per_vehicle_minute",
        ],
    );
    for row in privacy_exp::alpha_ablation(&[0.0, 0.05, 0.1, 0.2, 0.5], vehicles, minutes) {
        println!(
            "{},{:.4},{:.3},{:.2}",
            row.alpha, row.final_success, row.final_entropy, row.vps_per_vehicle_minute
        );
    }
    println!("# the paper picks alpha=0.1: enough confusion, modest volume (Fig. 9 + P_t rule)");
}
