//! Fig. 20: correlation between VP links and video contents.
use vm_bench::{csv_header, scaled};
use vm_radio::Environment;
use vm_sim::vlr_experiment;

fn main() {
    let trials = scaled(800, 100);
    csv_header(
        "Fig. 20: Pearson correlation of VP linkage vs on-video, by distance and environment",
        &["distance_m", "downtown", "residential", "highway"],
    );
    for d in (50..=400).step_by(50) {
        let down = vlr_experiment(&Environment::downtown(), d as f64, trials, 2100 + d as u64);
        let res = vlr_experiment(
            &Environment::residential(),
            d as f64,
            trials,
            2200 + d as u64,
        );
        let hwy = vlr_experiment(
            &Environment::highway_heavy(),
            d as f64,
            trials,
            2300 + d as u64,
        );
        println!(
            "{d},{:.3},{:.3},{:.3}",
            down.correlation, res.correlation, hwy.correlation
        );
    }
    println!("# paper: correlation 0.7-0.9 across distances");
}
