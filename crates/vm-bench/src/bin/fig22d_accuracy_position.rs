//! Fig. 22d: accuracy vs attacker positions, traffic-derived viewmaps.
use viewmap_core::attack::AttackConfig;
use vm_bench::{csv_header, scaled, traffic, verification};
use vm_mobility::SpeedScenario;

fn main() {
    let vehicles = scaled(500, 120);
    let runs = scaled(40, 8);
    let out = traffic::traffic_run(vehicles, 2, SpeedScenario::Mix, 41);
    let vm = traffic::traffic_viewmap(&out, 1);
    csv_header(
        "Fig. 22d: accuracy (%) vs attacker hop bucket x fake ratio (traffic-derived viewmap)",
        &["hop_bucket_low", "fake_ratio_pct", "accuracy_pct", "runs"],
    );
    for bucket in verification::HOP_BUCKETS {
        for ratio in verification::FAKE_RATIOS {
            let cfg = AttackConfig {
                n_attackers: (vehicles / 20).max(5),
                attacker_hops: bucket,
                fake_ratio: ratio,
                dummies_per_attacker: 0,
            };
            let acc = traffic::traffic_accuracy(&vm, &cfg, runs, 2200 + bucket.0 as u64);
            println!(
                "{},{:.0},{:.1},{}",
                bucket.0,
                ratio * 100.0,
                acc * 100.0,
                runs
            );
        }
    }
    println!("# paper: 100% in most cases, 82% worst when attackers neighbor the trusted VP");
}
