//! Fig. 22f: percentage of viewmap member VPs per speed scenario.
use vm_bench::{csv_header, scaled, traffic};

fn main() {
    let vehicles = scaled(500, 100);
    csv_header(
        "Fig. 22f: % of member VPs with at least one viewlink, per speed",
        &["speed", "member_pct"],
    );
    for (label, pct) in traffic::membership_percentages(vehicles, 2) {
        println!("{label},{pct:.1}");
    }
    println!("# paper: >97% (under 3% isolated VPs)");
}
