//! Fig. 14: Bloom-filter false linkage rate.
use viewmap_core::bloom::{false_linkage_rate, optimal_k};
use vm_bench::{csv_header, misc, scaled};

fn main() {
    csv_header(
        "Fig. 14: closed-form false linkage rate vs neighbors (optimal k), m in bits",
        &["n_neighbors", "m=1024", "m=2048", "m=3072", "m=4096"],
    );
    for n in (25..=400).step_by(25) {
        print!("{n}");
        for m in [1024usize, 2048, 3072, 4096] {
            print!(",{:.6}", false_linkage_rate(m, n, optimal_k(m, n)));
        }
        println!();
    }
    println!("# paper design point: m=2048 -> ~0.1% at 300 neighbors");
    // Empirical check of the deployed configuration (m=2048, k=8,
    // two-way 60-VD query) at realistic densities.
    let trials = scaled(400, 50);
    println!("# empirical (deployed m=2048,k=8 config, two-way query):");
    println!("n_neighbors,empirical_false_linkage");
    for n in [25usize, 50, 100, 150] {
        println!("{n},{:.6}", misc::empirical_false_linkage(n, trials, 14));
    }
}
