//! Ablation: TrustRank damping factor δ (the paper sets 0.8).
use viewmap_core::attack::GeometricParams;
use vm_bench::{csv_header, scaled, verification};

fn main() {
    let runs = scaled(40, 8);
    csv_header(
        "Ablation: accuracy vs damping factor (worst-case attackers at hops 1-5, 300% fakes)",
        &["damping", "accuracy_pct"],
    );
    let rows = verification::ablation_damping(
        &GeometricParams::default(),
        runs,
        &[0.5, 0.6, 0.7, 0.8, 0.9, 0.95],
    );
    for (d, acc) in rows {
        println!("{d},{:.1}", acc * 100.0);
    }
}
