//! Fig. 17: VLR vs distance for speed x traffic-volume conditions.
use vm_bench::{csv_header, scaled};
use vm_radio::Environment;
use vm_sim::vlr_experiment;

fn main() {
    let trials = scaled(400, 50);
    csv_header(
        "Fig. 17: VLR vs distance; Hwy1 = light traffic, Hwy2 = heavy traffic, 50/80 km/h",
        &[
            "distance_m",
            "hwy1_80kmh",
            "hwy1_50kmh",
            "hwy2_80kmh",
            "hwy2_50kmh",
        ],
    );
    // Speed has no channel effect in our model — exactly the paper's
    // field finding ("VLRs are insensitive to velocity"); the two speed
    // rows differ only by sampling noise. Traffic volume is the real
    // factor.
    for d in (25..=400).step_by(25) {
        let l80 = vlr_experiment(
            &Environment::highway_light(),
            d as f64,
            trials,
            1700 + d as u64,
        );
        let l50 = vlr_experiment(
            &Environment::highway_light(),
            d as f64,
            trials,
            1800 + d as u64,
        );
        let h80 = vlr_experiment(
            &Environment::highway_heavy(),
            d as f64,
            trials,
            1900 + d as u64,
        );
        let h50 = vlr_experiment(
            &Environment::highway_heavy(),
            d as f64,
            trials,
            2000 + d as u64,
        );
        println!(
            "{d},{:.3},{:.3},{:.3},{:.3}",
            l80.vlr, l50.vlr, h80.vlr, h50.vlr
        );
    }
    println!("# paper: insensitive to speed; heavy-traffic highway links markedly less");
}
