//! Fig. 13: accuracy under many legitimate-but-dummy attacker VPs.
use viewmap_core::attack::GeometricParams;
use vm_bench::{csv_header, scaled, verification};

fn main() {
    let runs = scaled(60, 10);
    let cells = verification::fig13_sweep(
        &GeometricParams::default(),
        8,
        &[25, 50, 75, 100, 125],
        runs,
    );
    csv_header(
        "Fig. 13: accuracy (%) vs dummy VPs per attacker x fake-VP ratio",
        &[
            "dummies_per_attacker",
            "fake_ratio_pct",
            "accuracy_pct",
            "runs",
        ],
    );
    for c in cells {
        println!(
            "{},{:.0},{:.1},{}",
            c.x,
            c.fake_ratio * 100.0,
            c.accuracy * 100.0,
            c.runs
        );
    }
    println!("# paper: accuracy stays above 95%");
}
