//! Table 1: frame rates of realtime license plate blurring.
use vm_bench::{csv_header, misc, scaled};
use vm_vision::pipeline::PAPER_TABLE1;

fn main() {
    let frames = scaled(60, 6);
    let (blur_ms, io_ms, fps) = misc::blur_benchmark(frames);
    csv_header(
        "Table 1: realtime plate blurring (measured host + paper rows)",
        &["platform", "blur_ms", "io_ms", "fps"],
    );
    println!("this host (measured,640x480),{blur_ms:.2},{io_ms:.2},{fps:.1}");
    for p in PAPER_TABLE1 {
        println!(
            "{} [paper],{:.2},{:.2},{:.0}",
            p.name, p.paper_blur_ms, p.paper_io_ms, p.paper_fps
        );
    }
}
