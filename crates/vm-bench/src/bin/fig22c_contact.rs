//! Fig. 22c: average contact time between vehicles per speed scenario.
use vm_bench::{csv_header, scaled, traffic};

fn main() {
    let vehicles = scaled(600, 100);
    let minutes = scaled(6, 2) as u64;
    csv_header(
        "Fig. 22c: average LOS contact time between vehicles (s)",
        &["speed", "avg_contact_s"],
    );
    for (label, secs) in traffic::contact_times(vehicles, minutes) {
        println!("{label},{secs:.2}");
    }
    println!("# paper: roughly 4-13 s, longer at lower speeds");
}
