//! Fig. 22b: tracking success ratio over time (n=1000, 8x8 km²).
use vm_bench::{csv_header, privacy_exp, scaled};

fn main() {
    let minutes = scaled(20, 6) as u64;
    let vehicles = scaled(1000, 150);
    let curves = privacy_exp::large_scale(minutes, vehicles, 40);
    csv_header(
        "Fig. 22b: tracking success ratio, large scale",
        &["minute", "with_guards", "no_guards"],
    );
    let horizon = curves[0].1.minutes.len();
    for t in 0..horizon {
        println!(
            "{},{:.4},{:.4}",
            t + 1,
            curves[0].1.success[t],
            curves[1].1.success[t]
        );
    }
    println!("# paper: <=0.1 by 3 min, ~0.01 by 10 min with guards; >0.9 without");
}
