//! Fig. 22a: location entropy over time (n=1000, 8x8 km²).
use vm_bench::{csv_header, privacy_exp, scaled};

fn main() {
    let minutes = scaled(20, 6) as u64;
    let vehicles = scaled(1000, 150);
    let curves = privacy_exp::large_scale(minutes, vehicles, 40);
    csv_header(
        "Fig. 22a: location entropy (bits), large scale",
        &["minute", "with_guards", "no_guards"],
    );
    let horizon = curves[0].1.minutes.len();
    for t in 0..horizon {
        println!(
            "{},{:.3},{:.3}",
            t + 1,
            curves[0].1.entropy_bits[t],
            curves[1].1.entropy_bits[t]
        );
    }
    println!("# paper: ~8 bits by 10 minutes with guards");
}
