//! Fig. 11: tracking success ratio over time (small scale).
use vm_bench::{csv_header, privacy_exp, scaled};

fn main() {
    let minutes = scaled(20, 8) as u64;
    let curves = privacy_exp::small_scale_sweep(minutes, 30);
    csv_header(
        "Fig. 11: tracking success ratio over time; n=50..200 with guards, n=50 without",
        &["minute", "n=50", "n=100", "n=150", "n=200", "n=50_no_guard"],
    );
    let horizon = curves[0].1.minutes.len();
    for t in 0..horizon {
        print!("{}", t + 1);
        for (_, c) in &curves {
            print!(",{:.4}", c.success[t]);
        }
        println!();
    }
    println!("# paper: <0.2 by 10 min, <0.1 by 15 min at n=50; >0.9 without guards");
}
