//! Fig. 8: hash generation times, cascaded vs normal (whole-prefix).
use vm_bench::{csv_header, misc, scaled};

fn main() {
    let repeats = scaled(5, 2);
    let rows = misc::hash_generation_times(50, repeats);
    csv_header(
        "Fig. 8: per-second hash generation times for a 50 MB 1-min video (ms)",
        &[
            "second",
            "cascade_avg_ms",
            "cascade_worst_ms",
            "normal_avg_ms",
            "normal_worst_ms",
        ],
    );
    for r in rows {
        println!(
            "{},{:.3},{:.3},{:.3},{:.3}",
            r.second, r.cascade_avg_ms, r.cascade_worst_ms, r.flat_avg_ms, r.flat_worst_ms
        );
    }
    println!("# paper: cascaded worst-case 0.13 s on a 1.2 GHz Pi; normal hash grows to 4.32 s");
}
