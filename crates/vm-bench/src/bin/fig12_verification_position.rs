//! Fig. 12: verification accuracy vs attackers' distance to the trusted VP.
use viewmap_core::attack::GeometricParams;
use vm_bench::{csv_header, scaled, verification};

fn main() {
    let runs = scaled(60, 10);
    let cells = verification::fig12_sweep(&GeometricParams::default(), 100, runs);
    csv_header(
        "Fig. 12: accuracy (%) vs attacker hop bucket x fake-VP ratio (1000 legit VPs)",
        &["hop_bucket_low", "fake_ratio_pct", "accuracy_pct", "runs"],
    );
    for c in cells {
        println!(
            "{},{:.0},{:.1},{}",
            c.x,
            c.fake_ratio * 100.0,
            c.accuracy * 100.0,
            c.runs
        );
    }
    println!("# paper: ~99% except attackers adjacent to the trusted VP (83% worst)");
}
