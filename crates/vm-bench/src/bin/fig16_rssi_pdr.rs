//! Fig. 16: RSSI vs PDR scatter.
use vm_bench::{csv_header, scaled};
use vm_radio::{Blockage, Channel};
use vm_sim::linkage::rssi_pdr_point;

fn main() {
    let ch = Channel::default();
    let points = scaled(300, 60);
    csv_header(
        "Fig. 16: PDR vs RSSI scatter (one point per 50-beacon batch)",
        &["rssi_dbm", "pdr"],
    );
    let mut seed = 1600u64;
    for i in 0..points {
        let d = 30.0 + (i % 75) as f64 * 5.0;
        let blockage = match i % 3 {
            0 => Blockage::Los,
            1 => Blockage::Vehicle,
            _ => Blockage::Building,
        };
        seed += 1;
        let (rssi, pdr) = rssi_pdr_point(&ch, d, blockage, 50, seed);
        if rssi > -115.0 {
            println!("{rssi:.1},{pdr:.3}");
        }
    }
    println!("# paper: PDR ~1 above -80 dBm, ~0 below -100 dBm, fluctuating in between");
}
