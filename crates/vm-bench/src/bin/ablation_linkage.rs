//! Ablation: two-way vs one-way Bloom linkage under attack.
use viewmap_core::attack::GeometricParams;
use vm_bench::{csv_header, scaled, verification};

fn main() {
    let runs = scaled(40, 8);
    csv_header(
        "Ablation: verification accuracy with two-way vs one-way linkage checks",
        &[
            "fake_ratio_pct",
            "two_way_accuracy_pct",
            "one_way_accuracy_pct",
        ],
    );
    for ratio in [1.0, 2.0, 3.0] {
        let (two, one) = verification::ablation_one_way(&GeometricParams::default(), runs, ratio);
        println!("{:.0},{:.1},{:.1}", ratio * 100.0, two * 100.0, one * 100.0);
    }
    println!("# the two-way check is what forces fakes into their own layer (Fig. 7)");
}
