//! Fig. 21: viewmaps built from traffic traces (rendered as ASCII density).
use vm_bench::{scaled, traffic};
use vm_mobility::SpeedScenario;

fn main() {
    let vehicles = scaled(400, 100);
    for speed in [SpeedScenario::Fixed(50.0), SpeedScenario::Fixed(70.0)] {
        let out = traffic::traffic_run(vehicles, 2, speed, 21);
        let vm = traffic::traffic_viewmap(&out, 1);
        println!(
            "# Fig. 21 ({}): {} member VPs, {} viewlinks, {:.1}% connected",
            speed.label(),
            vm.len(),
            vm.edge_count(),
            vm.member_connectivity() * 100.0
        );
        print!("{}", traffic::render_ascii(&vm, 78, 24, 8000.0));
        println!();
    }
    println!("# paper: the viewmap shape follows the road network of the simulated area");
}
