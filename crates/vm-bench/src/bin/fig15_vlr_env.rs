//! Fig. 15: VP linkage ratio vs distance per environment.
use vm_bench::{csv_header, scaled};
use vm_radio::Environment;
use vm_sim::vlr_experiment;

fn main() {
    let trials = scaled(400, 50);
    let envs = Environment::fig15_set();
    csv_header(
        "Fig. 15: VP linkage ratio (VLR) vs distance (m) per environment",
        &[
            "distance_m",
            "open_road",
            "highway",
            "residential",
            "downtown",
        ],
    );
    for d in (25..=400).step_by(25) {
        print!("{d}");
        for (i, env) in envs.iter().enumerate() {
            let s = vlr_experiment(env, d as f64, trials, 1500 + i as u64 * 37 + d as u64);
            print!(",{:.3}", s.vlr);
        }
        println!();
    }
    println!("# paper: open road >99% out to 400 m; downtown lowest, falling with distance");
}
