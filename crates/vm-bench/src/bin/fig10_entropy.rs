//! Fig. 10: location entropy over time (small scale, 4x4 km²).
use vm_bench::{csv_header, privacy_exp, scaled};

fn main() {
    let minutes = scaled(20, 8) as u64;
    let curves = privacy_exp::small_scale_sweep(minutes, 30);
    csv_header(
        "Fig. 10: location entropy (bits) over time; n=50..200 with guards, n=50 without",
        &["minute", "n=50", "n=100", "n=150", "n=200", "n=50_no_guard"],
    );
    let horizon = curves[0].1.minutes.len();
    for t in 0..horizon {
        print!("{}", t + 1);
        for (_, c) in &curves {
            print!(",{:.3}", c.entropy_bits[t]);
        }
        println!();
    }
    println!("# paper: ~3 bits by 10 min at n=50; near zero without guards");
}
