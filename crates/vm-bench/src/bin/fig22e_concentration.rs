//! Fig. 22e: accuracy under concentration attacks, traffic-derived.
use viewmap_core::attack::AttackConfig;
use vm_bench::{csv_header, scaled, traffic, verification};
use vm_mobility::SpeedScenario;

fn main() {
    let vehicles = scaled(500, 120);
    let runs = scaled(40, 8);
    let out = traffic::traffic_run(vehicles, 2, SpeedScenario::Mix, 51);
    let vm = traffic::traffic_viewmap(&out, 1);
    csv_header(
        "Fig. 22e: accuracy (%) vs dummy VPs per attacker x fake ratio (traffic-derived)",
        &[
            "dummies_per_attacker",
            "fake_ratio_pct",
            "accuracy_pct",
            "runs",
        ],
    );
    for dummies in [25usize, 50, 75, 100, 125] {
        for ratio in verification::FAKE_RATIOS {
            let cfg = AttackConfig {
                n_attackers: 5,
                attacker_hops: (4, 20),
                fake_ratio: ratio,
                dummies_per_attacker: dummies,
            };
            let acc = traffic::traffic_accuracy(&vm, &cfg, runs, 2300 + dummies as u64);
            println!("{dummies},{:.0},{:.1},{}", ratio * 100.0, acc * 100.0, runs);
        }
    }
    println!("# paper: accuracy still above 95%");
}
