//! City-scale investigation benchmark: times the end-to-end hot path —
//! submit → viewmap build → TrustRank verify → video-upload lookup — on
//! synthetic populations of 1k / 10k / 100k VPs, compares the optimized
//! engines against verbatim replicas of the pre-optimization algorithms,
//! and writes the results to `BENCH_investigate.json` so successive PRs
//! can track the performance trajectory.
//!
//! Two servers ingest identical populations so the two ingest paths and
//! the two build paths are measured end to end **and** proven equivalent:
//!
//! * server A takes one `submit` per VP (`submit_ms`) and builds its
//!   viewmap single-threaded with a cold key cache (`build_ms`);
//! * server B takes one `submit_batch_warm` (`batch_submit_ms`, which
//!   includes that path's ingest-side link-key precompute) and builds
//!   with the auto-parallel engine (`parallel_build_ms`).
//!
//! The run asserts the two viewmaps are identical member-for-member and
//! edge-for-edge — the same property the `vm-bench` equivalence tests
//! pin — so the speedup columns can never drift from a correctness
//! regression silently.
//!
//! Server B then also carries the incremental-maintenance path: a
//! `MaintainedViewmap` is created once (`maintained_create_ms`), then
//! [`INGEST_RUNS`] seeded +n/100 churn delta waves are batch-ingested
//! (the server splices each into the live graph), a maintained
//! extraction closing each warm re-investigation
//! (`incremental_reinvestigate_ms` is the median wave) — asserted
//! identical to a cold build over the grown bucket, and bounded at the
//! 100k tier to `build_ms / 50`.
//!
//! A third server runs the same batch ingest **through the durable
//! append log** (`vm-store`, `fsync=never` so the cost measured is the
//! encode + group-commit write, not the disk's sync latency):
//! `wal_append_ms` is that ingest, and `recover_ms` is a cold
//! `ViewMapServer::open` replaying the log back into an equivalent
//! server (checked against the live member counts). At the 10k tier the
//! run smoke-asserts `wal_append_ms ≤ 1.5 × batch_submit_ms` — the
//! durability tax on ingest must stay bounded — with both sides
//! measured as medians of [`INGEST_RUNS`] fresh-server runs so ±10%
//! single-shot host noise cannot fail a build with no regression in it.
//!
//! A fourth pair runs the same ingest through a **replicated** primary
//! (`vm-repl`, one loopback follower, every WAL append shipped as it
//! commits) and measures `repl_ack_ms`: the drain from the ingest
//! returning (locally durable, frames shipped) to the commit watermark
//! reaching the last shipped op — the follower has validated, replayed,
//! logged, and acked every record. That drain is the burst replication
//! lag an operator watches: how long "committed here" trails "safe to
//! fail over". At the 10k tier it must stay within 2× `wal_append_ms`,
//! asserted in-binary and gated again by the CI benchmark check.
//!
//! Environment knobs:
//! * `VM_BENCH_TIERS` — comma-separated VP counts (default
//!   `1000,10000,100000`); the naive baseline runs only at tiers ≤ 10k
//!   (it is quadratic-ish by construction).
//! * `VM_BENCH_OUT` — output path (default `BENCH_investigate.json`).
//! * `VM_BENCH_STORE_DIR` — where the WAL tier writes its temporary
//!   store (default: `/dev/shm` when present, else the system temp
//!   dir — RAM-backed so the metric captures the durable path's CPU
//!   cost, not the host disk's writeback throttling).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use viewmap_core::server::ViewMapServer;
use viewmap_core::solicit::VideoUpload;
use viewmap_core::types::{GeoPos, SECONDS_PER_VP};
use viewmap_core::viewmap::{BuildProfile, Viewmap, ViewmapConfig};
use viewmap_core::vp::{VpBuilder, VpKind};
use vm_bench::investigate::{naive_build, naive_verify, SynthWorld};
use vm_crypto::RsaKeyPair;
use vm_repl::{Follower, FollowerConfig, Primary, ReplicationConfig};
use vm_service::{ServiceConfig, VmClient, VmService};
use vm_store::{Fsync, PersistentServer, StoreConfig};

const NAIVE_MAX_TIER: usize = 10_000;

/// Concurrent client sessions in the service round-trip tier.
const SERVICE_CLIENTS: usize = 8;

/// Tiers at or below this also cross-check the service-path
/// investigation against a direct in-process call on the same server
/// (an extra viewmap build, so the 100k tier skips it).
const SERVICE_CHECK_MAX_TIER: usize = 10_000;

/// The tier where the WAL-overhead smoke assertion applies (below it
/// the absolute times are noise-dominated).
const WAL_ASSERT_TIER: usize = 10_000;

/// WAL ingest must stay within this factor of in-memory batch ingest.
const WAL_OVERHEAD_LIMIT: f64 = 1.5;

/// The post-ingest ack drain (ingest returned → commit watermark at the
/// last shipped op, i.e. every op validated, replayed, logged, and
/// acked by the loopback follower) must stay within this factor of
/// plain WAL ingest. The follower's replay is a cold re-run of the
/// ingest the primary already paid for, so the drain is bounded by one
/// WAL-ingest-equivalent of work plus wire overhead (framing, decode,
/// checksum revalidation, acks); 2× leaves that overhead real headroom
/// and the ratio only drifts past it if the shipping path itself starts
/// costing more than the replay it delivers.
const REPL_ACK_LIMIT: f64 = 2.0;

/// Ingest runs per side at the assert tier; both `batch_submit_ms` and
/// `wal_append_ms` are then medians, so the asserted ratio reflects the
/// paths' real costs rather than one noisy single shot.
const INGEST_RUNS: usize = 3;

/// Instrumented ingest must stay within this factor of the same ingest
/// with the telemetry registry disabled (`Registry::set_enabled(false)`
/// turns every instrument call into one relaxed load and a branch).
/// Asserted at the 10k tier on `batch_submit_ms` and `wal_append_ms`,
/// with the enabled and disabled runs interleaved so host drift hits
/// both medians alike — the observability layer must be provably
/// nearly free on the hot path.
const OBS_OVERHEAD_LIMIT: f64 = 1.05;

/// The tier where the incremental-maintenance speed assertion applies
/// (the ISSUE's target: warm re-investigation of a 100k minute after a
/// +1k delta at a small fraction of the cold build).
const INCREMENTAL_ASSERT_TIER: usize = 100_000;

/// `incremental_reinvestigate_ms` must stay within `build_ms` divided
/// by this factor at the assert tier.
const INCREMENTAL_SPEEDUP_FLOOR: f64 = 50.0;

/// Delta batch size for the incremental path: `n / 100` (so the 100k
/// tier grows by the ISSUE's +1k), floored for the small tiers.
fn delta_size(n: usize) -> usize {
    (n / 100).max(10)
}

/// Median of the collected times (sorts in place).
fn median_ms(times: &mut [f64]) -> f64 {
    times.sort_unstable_by(f64::total_cmp);
    times[times.len() / 2]
}

struct TierResult {
    n_vps: usize,
    members: usize,
    edges: usize,
    submit_ms: f64,
    batch_submit_ms: f64,
    /// `batch_submit_ms` with telemetry disabled (assert tier only).
    batch_submit_disabled_ms: Option<f64>,
    wal_append_ms: f64,
    /// `wal_append_ms` with telemetry disabled (assert tier only).
    wal_append_disabled_ms: Option<f64>,
    repl_ack_ms: f64,
    recover_ms: f64,
    service_rt_ms: f64,
    build_ms: f64,
    phase: BuildProfile,
    parallel_build_ms: f64,
    maintained_create_ms: f64,
    incremental_reinvestigate_ms: f64,
    verify_ms: f64,
    upload_us: f64,
    naive_build_ms: Option<f64>,
    naive_verify_ms: Option<f64>,
}

impl TierResult {
    fn speedup_verify_path(&self) -> Option<f64> {
        match (self.naive_build_ms, self.naive_verify_ms) {
            (Some(nb), Some(nv)) => Some((nb + nv) / (self.build_ms + self.verify_ms)),
            _ => None,
        }
    }
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

fn json_opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.3}"))
        .unwrap_or_else(|| "null".into())
}

fn run_tier(n: usize, seed: u64) -> TierResult {
    eprintln!("tier {n}: generating world...");
    let world = SynthWorld::generate(n, seed);
    let site = world.site;
    let minute = world.minute;
    let cfg = ViewmapConfig::default();

    // One genuine VP (real cascade) to drive the upload path end to end.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
    let mut builder = VpBuilder::new(
        &mut rng,
        0,
        GeoPos::new(world.side_m / 2.0, world.side_m / 2.0),
        VpKind::Actual,
    );
    let chunks: Vec<Vec<u8>> = (0..SECONDS_PER_VP)
        .map(|i| (0..64u64).map(|j| ((i * 7 + j) % 251) as u8).collect())
        .collect();
    for (i, c) in chunks.iter().enumerate() {
        builder.record_second(c, GeoPos::new(world.side_m / 2.0 + i as f64 * 8.0, 0.0));
    }
    let genuine = builder.finalize();
    let genuine_id = genuine.profile.id();

    // Small keys: RSA is not under test here. Separate servers so the
    // single/batch ingest paths and sequential/parallel build paths run
    // on identical populations without sharing key caches.
    let srv = ViewMapServer::new(&mut rng, 512, cfg);

    // ── Submit path A: one call per VP ──────────────────────────────
    let mut vps = world.vps;
    let trusted_vp = vps.remove(0);
    let batch_vps = vps.clone();
    let trusted_batch_vp = trusted_vp.clone();
    let wal_vps = vps.clone();
    let trusted_wal_vp = trusted_vp.clone();
    let submit_ms = time_ms(|| {
        srv.submit_trusted(trusted_vp).expect("trusted stored");
        for vp in vps.drain(..) {
            srv.submit(viewmap_core::upload::AnonymousSubmission { session_id: 0, vp })
                .expect("stored");
        }
        srv.submit(viewmap_core::upload::AnonymousSubmission {
            session_id: 0,
            vp: genuine.profile.clone().into_stored(),
        })
        .expect("genuine stored");
    });
    assert_eq!(srv.total_vps(), n + 1);

    // At the assert tier, the two sides of the WAL-overhead bound are
    // medians of INGEST_RUNS fresh-server runs: the bound has real but
    // modest headroom and the 1-core host's ±10% single-shot noise
    // would otherwise fail builds with no regression behind them.
    let runs = if n == WAL_ASSERT_TIER { INGEST_RUNS } else { 1 };

    // ── Submit path B: one batch (stripe locking + Bloom screening +
    //    link-key precompute amortized across the whole minute) ───────
    let mut batch_times = Vec::with_capacity(runs);
    let mut batch_disabled_times = Vec::with_capacity(runs);
    let mut srv_batch = None;
    for _ in 0..runs {
        // At the assert tier, interleave a telemetry-disabled run with
        // each instrumented one: host drift over the measurement window
        // then lands on both medians alike, so the overhead ratio
        // compares the two paths rather than two moments in time.
        if n == WAL_ASSERT_TIER {
            let server = ViewMapServer::new(&mut rng, 512, cfg);
            server.obs().set_enabled(false);
            let trusted = trusted_batch_vp.clone();
            let body = batch_vps.clone();
            let genuine_vp = genuine.profile.clone().into_stored();
            batch_disabled_times.push(time_ms(|| {
                let r = server.submit_trusted_batch(vec![trusted]);
                assert!(r.iter().all(|x| x.is_ok()), "trusted batch stored");
                let subs = body
                    .into_iter()
                    .chain(std::iter::once(genuine_vp))
                    .map(|vp| viewmap_core::upload::AnonymousSubmission { session_id: 0, vp });
                let results = server.submit_batch_warm(subs);
                assert!(results.iter().all(|x| x.is_ok()), "batch stored");
            }));
            assert_eq!(server.total_vps(), n + 1);
        }
        let server = ViewMapServer::new(&mut rng, 512, cfg);
        let trusted = trusted_batch_vp.clone();
        let body = batch_vps.clone();
        let genuine_vp = genuine.profile.clone().into_stored();
        batch_times.push(time_ms(|| {
            let r = server.submit_trusted_batch(vec![trusted]);
            assert!(r.iter().all(|x| x.is_ok()), "trusted batch stored");
            let subs = body
                .into_iter()
                .chain(std::iter::once(genuine_vp))
                .map(|vp| viewmap_core::upload::AnonymousSubmission { session_id: 0, vp });
            let results = server.submit_batch_warm(subs);
            assert!(results.iter().all(|x| x.is_ok()), "batch stored");
        }));
        assert_eq!(server.total_vps(), n + 1);
        srv_batch = Some(server);
    }
    let srv_batch = srv_batch.expect("at least one batch run");
    let batch_submit_ms = median_ms(&mut batch_times);
    let batch_submit_disabled_ms = (n == WAL_ASSERT_TIER).then(|| {
        let disabled = median_ms(&mut batch_disabled_times);
        assert!(
            batch_submit_ms <= disabled * OBS_OVERHEAD_LIMIT,
            "tier {n}: instrumented batch ingest {batch_submit_ms:.1} ms exceeds \
             {OBS_OVERHEAD_LIMIT}× telemetry-disabled {disabled:.1} ms"
        );
        disabled
    });

    // ── Submit path C: the same batch ingest through the durable
    //    append log (vm-store group commit, fsync=never — the cost
    //    measured is encode + one buffered write per batch), followed
    //    by a cold recovery of the whole store ───────────────────────
    // Prefer a RAM-backed directory: the tier metric is the CPU cost of
    // durable ingest (encode + checksum + one buffered write per
    // batch), and writing hundreds of MB to a shared disk would fold
    // unrelated writeback throttling into it (observed 3× run-to-run
    // swings on /tmp vs none on tmpfs).
    let store_base = std::env::var("VM_BENCH_STORE_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            let shm = std::path::PathBuf::from("/dev/shm");
            if shm.is_dir() {
                shm
            } else {
                std::env::temp_dir()
            }
        });
    let scfg = StoreConfig {
        fsync: Fsync::Never,
    };
    let mut wal_times = Vec::with_capacity(runs);
    let mut wal_disabled_times = Vec::with_capacity(runs);
    let mut store_dir = store_base.join("unused");
    for run in 0..runs {
        // Interleaved telemetry-disabled run (assert tier only) — same
        // rationale as the in-memory batch pair above.
        if n == WAL_ASSERT_TIER {
            let ddir = store_base.join(format!("vm_bench_wal_d_{}_{n}_{run}", std::process::id()));
            let _ = std::fs::remove_dir_all(&ddir);
            let trusted = trusted_wal_vp.clone();
            let body = wal_vps.clone();
            let genuine_vp = genuine.profile.clone().into_stored();
            let srv_wal = ViewMapServer::persistent(&mut rng, 512, cfg, &ddir, scfg)
                .expect("open disabled store");
            srv_wal.obs().set_enabled(false);
            wal_disabled_times.push(time_ms(|| {
                let r = srv_wal.submit_trusted_batch(vec![trusted]);
                assert!(r.iter().all(|x| x.is_ok()), "trusted wal batch stored");
                let subs = body
                    .into_iter()
                    .chain(std::iter::once(genuine_vp))
                    .map(|vp| viewmap_core::upload::AnonymousSubmission { session_id: 0, vp });
                let results = srv_wal.submit_batch_warm(subs);
                assert!(results.iter().all(|x| x.is_ok()), "wal batch stored");
            }));
            assert_eq!(srv_wal.total_vps(), n + 1);
            drop(srv_wal);
            let _ = std::fs::remove_dir_all(&ddir);
        }
        // A fresh directory per run: replaying run r's log into run
        // r+1's server would dedup-reject the whole batch.
        store_dir = store_base.join(format!("vm_bench_wal_{}_{n}_{run}", std::process::id()));
        let _ = std::fs::remove_dir_all(&store_dir);
        let trusted = trusted_wal_vp.clone();
        let body = wal_vps.clone();
        let genuine_vp = genuine.profile.clone().into_stored();
        let srv_wal =
            ViewMapServer::persistent(&mut rng, 512, cfg, &store_dir, scfg).expect("open store");
        wal_times.push(time_ms(|| {
            let r = srv_wal.submit_trusted_batch(vec![trusted]);
            assert!(r.iter().all(|x| x.is_ok()), "trusted wal batch stored");
            let subs = body
                .into_iter()
                .chain(std::iter::once(genuine_vp))
                .map(|vp| viewmap_core::upload::AnonymousSubmission { session_id: 0, vp });
            let results = srv_wal.submit_batch_warm(subs);
            assert!(results.iter().all(|x| x.is_ok()), "wal batch stored");
        }));
        assert_eq!(srv_wal.total_vps(), n + 1);
        srv_wal.sync_wal().expect("wal flush");
        if run + 1 < runs {
            let _ = std::fs::remove_dir_all(&store_dir);
        }
    }
    let wal_append_ms = median_ms(&mut wal_times);
    let wal_append_disabled_ms = (n == WAL_ASSERT_TIER).then(|| {
        let disabled = median_ms(&mut wal_disabled_times);
        assert!(
            wal_append_ms <= disabled * OBS_OVERHEAD_LIMIT,
            "tier {n}: instrumented WAL ingest {wal_append_ms:.1} ms exceeds \
             {OBS_OVERHEAD_LIMIT}× telemetry-disabled {disabled:.1} ms"
        );
        disabled
    });

    let mut recovered_srv: Option<ViewMapServer> = None;
    let recover_ms = time_ms(|| {
        recovered_srv =
            Some(ViewMapServer::persistent(&mut rng, 512, cfg, &store_dir, scfg).expect("recover"));
    });
    let recovered_srv = recovered_srv.unwrap();
    assert_eq!(
        recovered_srv.total_vps(),
        n + 1,
        "recovery replays every VP"
    );
    assert_eq!(
        recovered_srv.vp_count(minute),
        srv.vp_count(minute),
        "recovered minute bucket size"
    );
    assert!(
        recovered_srv.lookup_vp(genuine_id).is_some(),
        "recovered id index routes"
    );
    drop(recovered_srv);
    let _ = std::fs::remove_dir_all(&store_dir);
    if n == WAL_ASSERT_TIER {
        assert!(
            wal_append_ms <= batch_submit_ms * WAL_OVERHEAD_LIMIT,
            "tier {n}: WAL ingest {wal_append_ms:.1} ms exceeds \
             {WAL_OVERHEAD_LIMIT}× in-memory batch {batch_submit_ms:.1} ms"
        );
    }

    // ── Submit path C′: the same durable ingest on a replicated
    //    primary shipping every WAL append to a loopback follower.
    //    `repl_ack_ms` is the **ack drain**: the time from the ingest
    //    returning (all records committed locally, all frames shipped)
    //    until the commit watermark reaches the last shipped op — the
    //    follower has validated, replayed, logged, and acked every
    //    record. This is the burst replication lag an operator watches:
    //    how long "committed here" trails "safe to fail over", and the
    //    completeness assert below is what the drained watermark buys:
    //    the replica holds every record the moment it hits zero. ──────
    let mut repl_times = Vec::with_capacity(runs);
    for run in 0..runs {
        let pdir = store_base.join(format!("vm_bench_repl_p_{}_{n}_{run}", std::process::id()));
        let fdir = store_base.join(format!("vm_bench_repl_f_{}_{n}_{run}", std::process::id()));
        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&fdir);
        let key = RsaKeyPair::generate(&mut rng, 512);
        let (primary, _) = Primary::open(
            &pdir,
            key.clone(),
            cfg,
            scfg,
            ReplicationConfig::default(),
            "127.0.0.1:0",
        )
        .expect("open replicated primary");
        let (follower, _) = Follower::open(
            &fdir,
            key,
            cfg,
            scfg,
            primary.repl_addr(),
            FollowerConfig::default(),
        )
        .expect("open follower");
        while primary.hub().follower_count() == 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let trusted = trusted_wal_vp.clone();
        let body = wal_vps.clone();
        let genuine_vp = genuine.profile.clone().into_stored();
        let r = primary.server().submit_trusted_batch(vec![trusted]);
        assert!(r.iter().all(|x| x.is_ok()), "trusted repl batch stored");
        let subs = body
            .into_iter()
            .chain(std::iter::once(genuine_vp))
            .map(|vp| viewmap_core::upload::AnonymousSubmission { session_id: 0, vp });
        let results = primary.server().submit_batch_warm(subs);
        assert!(results.iter().all(|x| x.is_ok()), "repl batch stored");
        // The ingest has returned: every record is locally durable and
        // every frame is shipped. Time the drain to the commit
        // watermark — the follower acking the last shipped op.
        repl_times.push(time_ms(|| {
            let deadline = Instant::now() + std::time::Duration::from_secs(120);
            while primary.hub().watermark() < primary.hub().shipped_ops() {
                assert!(
                    Instant::now() < deadline,
                    "follower never drained the shipped ops"
                );
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }));
        assert_eq!(primary.server().total_vps(), n + 1);
        assert_eq!(
            follower.server().total_vps(),
            n + 1,
            "drained watermark left the follower incomplete"
        );
        drop(follower);
        drop(primary);
        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&fdir);
    }
    let repl_ack_ms = median_ms(&mut repl_times);
    if n == WAL_ASSERT_TIER {
        assert!(
            repl_ack_ms <= wal_append_ms * REPL_ACK_LIMIT,
            "tier {n}: replication ack drain {repl_ack_ms:.1} ms exceeds \
             {REPL_ACK_LIMIT}× WAL ingest {wal_append_ms:.1} ms"
        );
    }

    // ── Submit path D: the same population through the vm-service
    //    network front-end — SERVICE_CLIENTS concurrent pipelining
    //    sessions over loopback (the server coalesces each session's
    //    pipelined submits into warm batch ingest), ending with one
    //    investigation round trip over the wire ──────────────────────
    // The population clone for this tier is created here, after the
    // WAL/recover measurements: holding an extra copy of the whole
    // population across those paths would fold avoidable memory
    // pressure into their medians.
    let service_vps = batch_vps;
    let srv_service = std::sync::Arc::new(ViewMapServer::new(&mut rng, 512, cfg));
    srv_service
        .submit_trusted(trusted_batch_vp)
        .expect("service trusted stored");
    let service_handle = VmService::spawn(
        std::sync::Arc::clone(&srv_service),
        "127.0.0.1:0",
        ServiceConfig {
            workers: SERVICE_CLIENTS,
            ..ServiceConfig::default()
        },
    )
    .expect("spawn service");
    let addr = service_handle.addr();
    let mut service_chunks: Vec<Vec<viewmap_core::vp::StoredVp>> = {
        let cuts = viewmap_core::par::even_cuts(service_vps.len(), SERVICE_CLIENTS);
        let mut rest = service_vps;
        let mut chunks = Vec::with_capacity(SERVICE_CLIENTS);
        for w in cuts.windows(2) {
            let tail = rest.split_off(w[1] - w[0]);
            chunks.push(rest);
            rest = tail;
        }
        chunks
    };
    let mut remote_ids: Vec<viewmap_core::types::VpId> = Vec::new();
    let genuine_service_vp = genuine.profile.clone().into_stored();
    let service_rt_ms = time_ms(|| {
        std::thread::scope(|scope| {
            for chunk in service_chunks.drain(..) {
                scope.spawn(move || {
                    let mut client = VmClient::connect(addr).expect("client connect");
                    let outcomes = client.submit_pipelined(&chunk).expect("pipelined submit");
                    assert!(outcomes.iter().all(|r| r.is_ok()), "service submits stored");
                });
            }
        });
        let mut client = VmClient::connect(addr).expect("investigator connect");
        client.submit(&genuine_service_vp).expect("genuine stored");
        remote_ids = client
            .investigate(minute, site)
            .expect("remote investigation");
    });
    assert_eq!(
        srv_service.total_vps(),
        n + 1,
        "service ingested everything"
    );
    if n <= SERVICE_CHECK_MAX_TIER {
        let direct = srv_service.investigate(minute, site);
        assert_eq!(remote_ids, direct, "wire investigation equals in-process");
    }
    drop(service_handle);
    drop(srv_service);

    // ── Build path A: sequential, cold key cache, phase-profiled ────
    let mut vm: Option<Viewmap> = None;
    let mut phase = BuildProfile::default();
    let build_ms = time_ms(|| {
        let candidates = srv.minute_vps(minute);
        let (built, p) = Viewmap::build_profiled(&candidates, site, minute, &cfg, 1);
        vm = Some(built);
        phase = p;
    });
    let vm = vm.unwrap();
    let members = vm.len();
    let edges = vm.edge_count();

    // ── Build path B: auto-parallel engine on the batch-ingested
    //    (key-warm) store — the production investigation path ─────────
    let mut pvm: Option<Viewmap> = None;
    let parallel_build_ms = time_ms(|| {
        pvm = Some(srv_batch.build_viewmap(minute, site));
    });
    let pvm = pvm.unwrap();
    assert_eq!(pvm.len(), members, "parallel/sequential member mismatch");
    assert_eq!(pvm.edge_count(), edges, "parallel/sequential edge mismatch");
    for i in 0..members {
        assert_eq!(pvm.vps[i].id, vm.vps[i].id, "member order differs at {i}");
        assert_eq!(pvm.adj[i], vm.adj[i], "adjacency differs at node {i}");
    }
    drop(pvm);

    // ── Build path E: incremental maintenance — create the maintained
    //    graph once (cold, `maintained_create_ms`), then time a warm
    //    re-investigation: a +n/100 churn delta batch-ingested (the
    //    server splices it into the live graph under the commit lock)
    //    followed by a maintained extraction. The result is asserted
    //    node- and edge-identical to a cold build over the grown
    //    bucket, so the speedup column can never hide a divergence. ──
    let maintained_create_ms = time_ms(|| {
        let mvm = srv_batch.build_viewmap_maintained(minute, site);
        assert_eq!(mvm.len(), members, "maintained cold extract members");
        assert_eq!(mvm.edge_count(), edges, "maintained cold extract edges");
    });
    assert!(srv_batch.has_maintained(minute), "graph kept alive");
    // Median of INGEST_RUNS waves, each a fresh disjoint delta (wave 0
    // is the pinned one): a single ~60 ms measurement on the 1-core
    // host can catch a scheduler hiccup and blow the 50× bound with no
    // regression behind it — the same reason the WAL bound uses
    // medians.
    let mut incr_times = Vec::with_capacity(INGEST_RUNS);
    let mut ivm: Option<Viewmap> = None;
    let mut n_delta = 0usize;
    for wave in 0..INGEST_RUNS as u64 {
        let delta = SynthWorld::delta_wave(world.side_m, delta_size(n), seed, wave);
        n_delta += delta.len();
        incr_times.push(time_ms(|| {
            let subs = delta
                .into_iter()
                .map(|vp| viewmap_core::upload::AnonymousSubmission { session_id: 0, vp });
            let results = srv_batch.submit_batch_warm(subs);
            assert!(results.iter().all(|x| x.is_ok()), "delta stored");
            ivm = Some(srv_batch.build_viewmap_maintained(minute, site));
        }));
    }
    let incremental_reinvestigate_ms = median_ms(&mut incr_times);
    let ivm = ivm.unwrap();
    assert_eq!(srv_batch.total_vps(), n + 1 + n_delta);
    let grown = srv_batch.minute_vps(minute);
    let cold_grown = Viewmap::build(&grown, site, minute, &cfg);
    assert_eq!(ivm.len(), cold_grown.len(), "incremental member mismatch");
    assert_eq!(
        ivm.edge_count(),
        cold_grown.edge_count(),
        "incremental edge mismatch"
    );
    for i in 0..ivm.len() {
        assert_eq!(
            ivm.vps[i].id, cold_grown.vps[i].id,
            "incremental member order differs at {i}"
        );
        assert_eq!(
            ivm.adj[i], cold_grown.adj[i],
            "incremental adjacency differs at node {i}"
        );
    }
    drop(ivm);
    drop(cold_grown);
    if n == INCREMENTAL_ASSERT_TIER {
        assert!(
            incremental_reinvestigate_ms <= build_ms / INCREMENTAL_SPEEDUP_FLOOR,
            "tier {n}: incremental re-investigation {incremental_reinvestigate_ms:.1} ms \
             exceeds cold build {build_ms:.1} ms / {INCREMENTAL_SPEEDUP_FLOOR}"
        );
    }

    // ── Verify path (CSR TrustRank + site BFS) ──────────────────────
    let mut marked = 0usize;
    let verify_ms = time_ms(|| {
        let (v, _) = vm.verify(&site, &cfg);
        marked = v.legitimate.len();
    });
    eprintln!("tier {n}: {members} members, {edges} viewlinks, {marked} marked legitimate");

    // ── Upload path (id-indexed lookup + cascade validation) ────────
    srv.solicit(genuine_id);
    let upload = VideoUpload {
        vp_id: genuine_id,
        chunks,
    };
    let reps = 200;
    let start = Instant::now();
    for _ in 0..reps {
        srv.upload_video(&upload).expect("upload validates");
    }
    let upload_us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;

    // ── Naive baseline ──────────────────────────────────────────────
    let (mut naive_build_ms, mut naive_verify_ms) = (None, None);
    if n <= NAIVE_MAX_TIER {
        let candidates = srv.minute_vps(minute);
        let mut nvm: Option<Viewmap> = None;
        naive_build_ms = Some(time_ms(|| {
            nvm = Some(naive_build(&candidates, site, minute, &cfg));
        }));
        let nvm = nvm.unwrap();
        assert_eq!(
            nvm.edge_count(),
            edges,
            "naive and optimized construction disagree"
        );
        naive_verify_ms = Some(time_ms(|| {
            let v = naive_verify(&nvm, &site, &cfg);
            assert_eq!(v.legitimate.len(), marked, "verification outcomes differ");
        }));
    }

    TierResult {
        n_vps: n,
        members,
        edges,
        submit_ms,
        batch_submit_ms,
        batch_submit_disabled_ms,
        wal_append_ms,
        wal_append_disabled_ms,
        repl_ack_ms,
        recover_ms,
        service_rt_ms,
        build_ms,
        phase,
        parallel_build_ms,
        maintained_create_ms,
        incremental_reinvestigate_ms,
        verify_ms,
        upload_us,
        naive_build_ms,
        naive_verify_ms,
    }
}

/// One tier, fully reported: run it, print the human summary line to
/// stderr, and return the JSON row for the output file.
fn run_tier_reported(n: usize) -> String {
    let r = run_tier(n, 42);
    report_tier(&r);
    tier_row_json(&r)
}

fn report_tier(r: &TierResult) {
    let n = r.n_vps;
    eprintln!(
        "tier {n}: submit {:.1} ms (batch {:.1} ms, wal {:.1} ms, repl-ack {:.1} ms, \
             recover {:.1} ms, service {:.1} ms) | \
             build {:.1} ms (parallel {:.1} ms, incremental {:.1} ms after \
             {:.1} ms create) | \
             phases tables {:.1} / candidates {:.1} / keys {:.1} / linkage {:.1} ms | \
             verify {:.1} ms | upload {:.1} µs{}",
        r.submit_ms,
        r.batch_submit_ms,
        r.wal_append_ms,
        r.repl_ack_ms,
        r.recover_ms,
        r.service_rt_ms,
        r.build_ms,
        r.parallel_build_ms,
        r.incremental_reinvestigate_ms,
        r.maintained_create_ms,
        r.phase.tables_ms,
        r.phase.candidates_ms,
        r.phase.keys_ms,
        r.phase.linkage_ms,
        r.verify_ms,
        r.upload_us,
        r.speedup_verify_path()
            .map(|s| format!(" | verify-path speedup {s:.1}×"))
            .unwrap_or_default(),
    );
    if let (Some(bd), Some(wd)) = (r.batch_submit_disabled_ms, r.wal_append_disabled_ms) {
        eprintln!(
            "tier {n}: telemetry overhead — batch {:.1}/{bd:.1} ms ({:.3}×), \
             wal {:.1}/{wd:.1} ms ({:.3}×)",
            r.batch_submit_ms,
            r.batch_submit_ms / bd,
            r.wal_append_ms,
            r.wal_append_ms / wd,
        );
    }
}

fn tier_row_json(r: &TierResult) -> String {
    format!(
        concat!(
            "    {{\"n_vps\": {}, \"members\": {}, \"edges\": {}, ",
            "\"submit_ms\": {:.3}, \"batch_submit_ms\": {:.3}, ",
            "\"batch_submit_disabled_ms\": {}, ",
            "\"wal_append_ms\": {:.3}, \"wal_append_disabled_ms\": {}, ",
            "\"repl_ack_ms\": {:.3}, \"recover_ms\": {:.3}, ",
            "\"service_rt_ms\": {:.3}, ",
            "\"build_ms\": {:.3}, ",
            "\"phase_ms\": {{\"tables\": {:.3}, \"candidates\": {:.3}, ",
            "\"keys\": {:.3}, \"linkage\": {:.3}}}, ",
            "\"parallel_build_ms\": {:.3}, ",
            "\"maintained_create_ms\": {:.3}, ",
            "\"incremental_reinvestigate_ms\": {:.3}, ",
            "\"verify_ms\": {:.3}, ",
            "\"upload_us\": {:.3}, \"naive_build_ms\": {}, ",
            "\"naive_verify_ms\": {}, \"verify_path_speedup\": {}}}"
        ),
        r.n_vps,
        r.members,
        r.edges,
        r.submit_ms,
        r.batch_submit_ms,
        json_opt(r.batch_submit_disabled_ms),
        r.wal_append_ms,
        json_opt(r.wal_append_disabled_ms),
        r.repl_ack_ms,
        r.recover_ms,
        r.service_rt_ms,
        r.build_ms,
        r.phase.tables_ms,
        r.phase.candidates_ms,
        r.phase.keys_ms,
        r.phase.linkage_ms,
        r.parallel_build_ms,
        r.maintained_create_ms,
        r.incremental_reinvestigate_ms,
        r.verify_ms,
        r.upload_us,
        json_opt(r.naive_build_ms),
        json_opt(r.naive_verify_ms),
        json_opt(r.speedup_verify_path()),
    )
}

fn main() {
    // Child mode: measure exactly one tier in this (pristine) process
    // and emit its JSON row on stdout. The parent spawns one child per
    // tier so no tier's measurements run on a heap shaped by another
    // tier's allocation history — the 100k incremental column in
    // particular reads ~45% slower on a heap the small tiers have
    // already fragmented, which is measurement pollution, not a
    // property of the code under test.
    if let Ok(t) = std::env::var("VM_BENCH_CHILD_TIER") {
        let n: usize = t.parse().expect("VM_BENCH_CHILD_TIER must be a tier size");
        println!("{}", run_tier_reported(n));
        return;
    }

    let tiers: Vec<usize> = std::env::var("VM_BENCH_TIERS")
        .unwrap_or_else(|_| "1000,10000,100000".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let out_path =
        std::env::var("VM_BENCH_OUT").unwrap_or_else(|_| "BENCH_investigate.json".into());

    let exe = std::env::current_exe().expect("bench binary path");
    let tier_json: Vec<String> = tiers
        .iter()
        .map(|&n| {
            let out = std::process::Command::new(&exe)
                .env("VM_BENCH_CHILD_TIER", n.to_string())
                .stderr(std::process::Stdio::inherit())
                .output()
                .expect("spawn tier child");
            assert!(out.status.success(), "tier {n} child failed");
            let row = String::from_utf8(out.stdout).expect("tier row utf8");
            let row = row.trim_end();
            assert!(
                row.starts_with("    {") && row.ends_with('}'),
                "tier {n} child emitted malformed row: {row:?}"
            );
            row.to_string()
        })
        .collect();

    let json = format!(
        "{{\n  \"bench\": \"investigate\",\n  \"unit_note\": \"times in ms (upload in us); \
         naive_* are the pre-optimization algorithms on the same population; \
         batch_submit_ms is one submit_batch call (includes ingest-side link-key precompute); \
         wal_append_ms is the same batch ingest through the vm-store append log \
         (group commit, fsync=never) and recover_ms is a cold ViewMapServer::open \
         replaying that log (decode + re-ingest + parallel key warm); \
         repl_ack_ms is the post-ingest ack drain on a vm-repl primary with one \
         loopback follower: the time from the durable ingest returning until the \
         commit watermark reaches the last shipped op (every WAL append validated, \
         replayed, logged, and acked by the follower), i.e. how long committed-here \
         trails safe-to-fail-over after a burst; it must stay within 2x \
         wal_append_ms at the 10k tier; at the 10k \
         assert tier batch_submit_ms, wal_append_ms, and repl_ack_ms are medians of 3 runs; \
         batch_submit_disabled_ms and wal_append_disabled_ms (assert tier only) repeat \
         the same ingests with the vm-obs telemetry registry disabled, runs interleaved \
         with the instrumented ones; the instrumented medians must stay within 1.05x \
         the disabled ones — the metrics layer is provably nearly free on the hot path; \
         service_rt_ms is the same population ingested through the vm-service TCP \
         front-end — 8 concurrent pipelining VmClient sessions over loopback \
         (server-side coalescing into warm batches) plus one investigation round \
         trip on the wire; \
         phase_ms is the per-phase split of the sequential cold build_ms \
         (tables/candidates/keys/linkage, from Viewmap::build_profiled); \
         parallel_build_ms is the auto-parallel engine on the batch-ingested (key-warm) store, \
         asserted member- and edge-identical to the sequential cold build_ms; \
         maintained_create_ms is the one-time cold creation of the incremental \
         MaintainedViewmap on that store, and incremental_reinvestigate_ms is a warm \
         re-investigation after it exists — one submit_batch_warm of a +n/100 churn \
         delta wave (spliced into the live graph) plus a maintained extraction, the \
         median of 3 disjoint waves, asserted node- and edge-identical to a cold \
         build over the grown bucket; at the 100k tier it must stay within \
         build_ms/50; each tier is measured in its own child process so no tier \
         runs on a heap shaped by another tier's allocation history\",\n  \
         \"tiers\": [\n{}\n  ]\n}}\n",
        tier_json.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write bench output");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
