//! Table 2: VLR and on-video ratio across the 14 field scenarios.
use rand::rngs::StdRng;
use rand::SeedableRng;
use vm_bench::{csv_header, scaled};
use vm_radio::{CameraModel, Channel, SCENARIOS};

fn main() {
    let trials = scaled(500, 60);
    let ch = Channel::default();
    let cam = CameraModel::default();
    csv_header(
        "Table 2: VP linkage and on-video ratios per scenario (paper values in trailing columns)",
        &[
            "scenario",
            "condition",
            "vp_linkage_pct",
            "on_video_pct",
            "paper_linkage_pct",
            "paper_video_pct",
        ],
    );
    let paper: [(f64, f64); 14] = [
        (100.0, 100.0),
        (0.0, 0.0),
        (100.0, 93.0),
        (9.0, 0.0),
        (84.0, 77.0),
        (0.0, 0.0),
        (61.0, 52.0),
        (13.0, 0.0),
        (100.0, 100.0),
        (0.0, 0.0),
        (39.0, 18.0),
        (0.0, 0.0),
        (56.0, 51.0),
        (3.0, 0.0),
    ];
    let mut rng = StdRng::seed_from_u64(2);
    for (s, (pl, pv)) in SCENARIOS.iter().zip(paper) {
        let (vlr, video) = s.measure(&mut rng, &ch, &cam, trials);
        println!(
            "{},{},{:.0},{:.0},{:.0},{:.0}",
            s.name,
            s.condition,
            vlr * 100.0,
            video * 100.0,
            pl,
            pv
        );
    }
}
