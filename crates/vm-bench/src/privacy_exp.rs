//! Privacy experiments (Figs. 10, 11, 22a, 22b) and the α ablation.

use viewmap_core::tracker::TrackerParams;
use vm_geo::CityParams;
use vm_mobility::SpeedScenario;
use vm_radio::Environment;
use vm_sim::{privacy_curves, run_protocol_sim, PrivacyCurves, SimConfig};

/// One privacy run: fleet size, α, minutes → curves.
pub fn privacy_run(
    vehicles: usize,
    minutes: u64,
    alpha: f64,
    city: CityParams,
    seed: u64,
    targets: usize,
) -> PrivacyCurves {
    let cfg = SimConfig {
        vehicles,
        minutes,
        speed: SpeedScenario::Mix,
        alpha,
        environment: Environment::residential(),
        city,
        keep_vps: false,
        chunk_bytes: 16,
    };
    let out = run_protocol_sim(&cfg, seed);
    privacy_curves(&out, targets, TrackerParams::default())
}

/// Fig. 10/11 sweep: small-area fleets of 50/100/150/200 vehicles with
/// α = 0.1, plus the no-guard reference at n = 50.
pub fn small_scale_sweep(minutes: u64, targets: usize) -> Vec<(String, PrivacyCurves)> {
    let mut out = Vec::new();
    for &n in &[50usize, 100, 150, 200] {
        out.push((
            format!("n={n}"),
            privacy_run(
                n,
                minutes,
                0.1,
                CityParams::small_area(),
                10 + n as u64,
                targets,
            ),
        ));
    }
    out.push((
        "n=50 no-guard".to_string(),
        privacy_run(50, minutes, 0.0, CityParams::small_area(), 60, targets),
    ));
    out
}

/// Fig. 22a/b: the large-scale (n = 1000, 8×8 km²) runs with and without
/// guard VPs.
pub fn large_scale(minutes: u64, vehicles: usize, targets: usize) -> Vec<(String, PrivacyCurves)> {
    vec![
        (
            format!("n={vehicles}"),
            privacy_run(
                vehicles,
                minutes,
                0.1,
                CityParams::seoul_like(),
                22,
                targets,
            ),
        ),
        (
            format!("n={vehicles} no-guard"),
            privacy_run(
                vehicles,
                minutes,
                0.0,
                CityParams::seoul_like(),
                22,
                targets,
            ),
        ),
    ]
}

/// α ablation: privacy vs upload volume as the guard rate varies.
pub struct AlphaAblation {
    /// Guard rate.
    pub alpha: f64,
    /// Final-minute tracking success.
    pub final_success: f64,
    /// Final-minute entropy, bits.
    pub final_entropy: f64,
    /// Mean VPs uploaded per vehicle per minute.
    pub vps_per_vehicle_minute: f64,
}

/// Sweep α and report the privacy/overhead trade-off (Design ablation 3).
pub fn alpha_ablation(alphas: &[f64], vehicles: usize, minutes: u64) -> Vec<AlphaAblation> {
    alphas
        .iter()
        .map(|&alpha| {
            let cfg = SimConfig {
                vehicles,
                minutes,
                speed: SpeedScenario::Mix,
                alpha,
                environment: Environment::residential(),
                city: CityParams::small_area(),
                keep_vps: false,
                chunk_bytes: 16,
            };
            let out = run_protocol_sim(&cfg, 7_000 + (alpha * 100.0) as u64);
            let pc = privacy_curves(&out, vehicles.min(30), TrackerParams::default());
            AlphaAblation {
                alpha,
                final_success: *pc.success.last().unwrap_or(&1.0),
                final_entropy: *pc.entropy_bits.last().unwrap_or(&0.0),
                vps_per_vehicle_minute: out.vps_per_minute() / vehicles as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_ablation_tradeoff_direction() {
        let rows = alpha_ablation(&[0.0, 0.3], 20, 5);
        assert_eq!(rows.len(), 2);
        // More guards → more uploads, lower tracking success.
        assert!(rows[1].vps_per_vehicle_minute > rows[0].vps_per_vehicle_minute);
        assert!(rows[1].final_success <= rows[0].final_success + 1e-9);
    }
}
