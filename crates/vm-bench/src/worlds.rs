//! Deterministic linked-world generators shared by the equivalence and
//! fault-simulation suites.
//!
//! The crash-recovery and vopr harnesses all need the same shape of
//! input: a minute of VPs whose Bloom filters actually wire them into a
//! connected viewmap (so edge checksums and TrustRank outcomes are
//! meaningful oracles, not vacuously-empty graphs), generated
//! deterministically from a seed so any failure replays from one `u64`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use viewmap_core::bloom::BloomFilter;
use viewmap_core::types::{GeoPos, VpId, SECONDS_PER_VP};
use viewmap_core::vd::ViewDigest;
use viewmap_core::viewmap::Viewmap;
use viewmap_core::vp::StoredVp;

/// Meters between neighboring vehicles in a [`linked_minute`] world.
pub const LINKED_SPACING_M: f64 = 150.0;

/// A minute of `n` vehicles on a line, Bloom-wired pairwise within DSRC
/// range (400 m) so viewmaps built from them have real edges; vehicle 0
/// carries the trusted flag and anchors TrustRank. Deterministic in
/// `(n, minute, seed)` — the same triple always yields bit-identical
/// VPs, which is what lets a fault harness rebuild its oracle from
/// nothing but the seed.
pub fn linked_minute(n: usize, minute: u64, seed: u64) -> Vec<StoredVp> {
    let start = minute * SECONDS_PER_VP;
    let mut rng = StdRng::seed_from_u64(seed ^ (minute << 32) ^ n as u64);
    let ids: Vec<VpId> = (0..n)
        .map(|_| VpId(vm_crypto::Digest16(rng.gen())))
        .collect();
    let trajectories: Vec<Vec<ViewDigest>> = (0..n)
        .map(|i| {
            let y = minute as f64 * 10.0;
            (1..=SECONDS_PER_VP as u16)
                .map(|seq| ViewDigest {
                    seq,
                    flags: 0,
                    time: start + seq as u64,
                    loc: GeoPos::new(i as f64 * LINKED_SPACING_M + seq as f64 * 7.5, y),
                    file_size: seq as u64 * 1024,
                    initial_loc: GeoPos::new(i as f64 * LINKED_SPACING_M, y),
                    vp_id: ids[i],
                    hash: vm_crypto::Digest16(rng.gen()),
                })
                .collect()
        })
        .collect();
    (0..n)
        .map(|i| {
            let mut bloom = BloomFilter::default();
            for (j, traj) in trajectories.iter().enumerate() {
                if i != j && (i as f64 - j as f64).abs() * LINKED_SPACING_M <= 400.0 {
                    bloom.insert(&traj[0].bloom_key());
                    bloom.insert(&traj[SECONDS_PER_VP as usize - 1].bloom_key());
                }
            }
            StoredVp::new(ids[i], trajectories[i].clone(), bloom, i == 0)
        })
        .collect()
}

/// Order-independent fingerprint of a viewmap's full edge set plus its
/// member identities — the "same investigation outcome" oracle used by
/// the crash and vopr suites (the same edge fold the
/// `parallel_equivalence` topology pin uses, extended with member ids).
pub fn viewmap_checksum(vm: &Viewmap) -> u64 {
    let mut sum = vm.len() as u64;
    for (i, vp) in vm.vps.iter().enumerate() {
        sum = sum.wrapping_add(vp.id.0.low_u64().rotate_left((i % 61) as u32));
    }
    for (i, nbrs) in vm.adj.iter().enumerate() {
        for &j in nbrs {
            if j > i {
                sum = sum.wrapping_add((i as u64).wrapping_mul(1_000_003) ^ (j as u64));
            }
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewmap_core::viewmap::{Site, ViewmapConfig};

    #[test]
    fn linked_minute_is_deterministic_and_actually_linked() {
        let a = linked_minute(8, 2, 42);
        let b = linked_minute(8, 2, 42);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id, "same seed, same world");
        }
        assert!(a[0].trusted && a[1..].iter().all(|vp| !vp.trusted));
        let c = linked_minute(8, 2, 43);
        assert_ne!(a[0].id, c[0].id, "different seed, different world");

        let site = Site {
            center: GeoPos::new(400.0, 20.0),
            radius_m: 100_000.0,
        };
        let vm = Viewmap::build(
            &a.iter()
                .cloned()
                .map(std::sync::Arc::new)
                .collect::<Vec<_>>(),
            site,
            viewmap_core::types::MinuteId(2),
            &ViewmapConfig::default(),
        );
        assert_eq!(vm.len(), 8);
        assert!(vm.edge_count() > 0, "the world must produce real viewlinks");
        assert_eq!(viewmap_checksum(&vm), viewmap_checksum(&vm));
    }
}
