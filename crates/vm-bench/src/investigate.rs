//! City-scale investigation benchmark support: synthetic VP populations
//! with wired Bloom filters, and verbatim replicas of the pre-optimization
//! ("naive") build/verify algorithms used as the speedup baseline by the
//! `bench_investigate` binary.
//!
//! The synthetic generator produces [`StoredVp`]s that are *structurally*
//! real — 60 VDs along a straight constant-speed trajectory, Bloom filters
//! wired pairwise like a genuine DSRC exchange (first + last element VD of
//! each neighbor) — but with fabricated cascade hashes, since investigation
//! benchmarks never re-derive video chains. Density is held constant as
//! the population scales (the area grows), matching how a city adds
//! traffic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use viewmap_core::trustrank::{self, Verification};
use viewmap_core::types::{GeoPos, MinuteId, VpId, SECONDS_PER_VP};
use viewmap_core::vd::ViewDigest;
use viewmap_core::viewmap::{Site, Viewmap, ViewmapConfig};
use viewmap_core::vp::StoredVp;
use viewmap_core::BloomFilter;
use vm_crypto::Digest16;
use vm_geo::{GridIndex, Point};

/// VPs per km² (dense urban traffic; the paper's §6 area carries
/// 50–200 vehicles in 16 km²; a city-scale service sees far more).
pub const DENSITY_PER_KM2: f64 = 60.0;

/// Max Bloom-wired neighbors per VP (well under the protocol's 250 cap).
const WIRE_NEIGHBOR_CAP: usize = 24;

/// A synthetic minute of city traffic.
pub struct SynthWorld {
    /// All VPs of the minute (VP 0 is the trusted seed at the center).
    pub vps: Vec<StoredVp>,
    /// Side length of the square area, meters.
    pub side_m: f64,
    /// The investigation site (covers the full area, so verification
    /// exercises the entire graph).
    pub site: Site,
    /// The minute.
    pub minute: MinuteId,
}

fn synth_id(tag: u64) -> VpId {
    let mut b = [0u8; 16];
    b[..8].copy_from_slice(&tag.to_le_bytes());
    b[8..].copy_from_slice(&(!tag).to_le_bytes());
    VpId(Digest16(b))
}

fn synth_vp(tag: u64, start: GeoPos, vel: (f64, f64), trusted: bool) -> StoredVp {
    let id = synth_id(tag);
    let vds: Vec<ViewDigest> = (1..=SECONDS_PER_VP as u16)
        .map(|seq| {
            let t = seq as f64;
            let mut h = [0u8; 16];
            h[..8].copy_from_slice(&tag.to_le_bytes());
            h[8..10].copy_from_slice(&seq.to_le_bytes());
            ViewDigest {
                seq,
                flags: 0,
                time: seq as u64,
                loc: GeoPos::new(start.x + vel.0 * t, start.y + vel.1 * t),
                file_size: seq as u64 * 875 * 1024,
                initial_loc: start,
                vp_id: id,
                hash: Digest16(h),
            }
        })
        .collect();
    StoredVp::new(id, vds, BloomFilter::default(), trusted)
}

impl SynthWorld {
    /// Generate `n` VPs at constant density with pairwise-wired Blooms.
    pub fn generate(n: usize, seed: u64) -> SynthWorld {
        assert!(n >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let side_m = ((n as f64 / DENSITY_PER_KM2).sqrt() * 1000.0).max(500.0);
        let center = GeoPos::new(side_m / 2.0, side_m / 2.0);

        let mut vps: Vec<StoredVp> = (0..n as u64)
            .map(|tag| {
                let trusted = tag == 0;
                let start = if trusted {
                    center
                } else {
                    GeoPos::new(rng.gen_range(0.0..side_m), rng.gen_range(0.0..side_m))
                };
                let heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                let speed: f64 = rng.gen_range(8.0..16.0); // 29–58 km/h
                synth_vp(
                    tag,
                    start,
                    (speed * heading.cos(), speed * heading.sin()),
                    trusted,
                )
            })
            .collect();

        // Wire Bloom filters for pairs within DSRC range at the minute
        // start, capped per VP: each side inserts the other's first and
        // last element VD keys, exactly what a real exchange retains.
        let grid = GridIndex::build(
            400.0,
            vps.iter()
                .enumerate()
                .map(|(i, vp)| (i, Point::new(vp.start_loc().x, vp.start_loc().y))),
        );
        let keys: Vec<[Digest16; 2]> = vps
            .iter()
            .map(|vp| {
                [
                    vp.vds.first().expect("60 VDs").bloom_key(),
                    vp.vds.last().expect("60 VDs").bloom_key(),
                ]
            })
            .collect();
        let mut wired = vec![0usize; n];
        let mut hits = Vec::new();
        for i in 0..n {
            let sl = vps[i].start_loc();
            let p = Point::new(sl.x, sl.y);
            grid.query_radius_into(&p, 380.0, &mut hits);
            hits.sort_unstable();
            for &j in &hits {
                if j <= i || wired[i] >= WIRE_NEIGHBOR_CAP || wired[j] >= WIRE_NEIGHBOR_CAP {
                    continue;
                }
                let (ki, kj) = (keys[i], keys[j]);
                vps[i].bloom.insert(&kj[0]);
                vps[i].bloom.insert(&kj[1]);
                vps[j].bloom.insert(&ki[0]);
                vps[j].bloom.insert(&ki[1]);
                wired[i] += 1;
                wired[j] += 1;
            }
        }

        SynthWorld {
            vps,
            side_m,
            site: Site {
                center,
                radius_m: side_m, // whole-area investigation
            },
            minute: MinuteId(0),
        }
    }
}

// ── Naive baseline (the seed implementation, pre-CSR / pre-grid) ────────

/// The original viewmap construction: spatial grid over *trajectory
/// midpoints* with a worst-case-inflated query radius, per-pair
/// `min_aligned_distance`, and `mutually_linked` re-hashing up to 60 VDs
/// per side per pair. Retained verbatim for the speedup measurement.
pub fn naive_build(
    candidates: &[Arc<StoredVp>],
    site: Site,
    minute: MinuteId,
    cfg: &ViewmapConfig,
) -> Viewmap {
    let in_minute: Vec<&Arc<StoredVp>> = candidates
        .iter()
        .filter(|vp| vp.minute() == minute && !vp.vds.is_empty())
        .collect();

    let mut trusted_refs: Vec<&Arc<StoredVp>> =
        in_minute.iter().copied().filter(|vp| vp.trusted).collect();
    let nearest = |vp: &StoredVp, p: &GeoPos| -> f64 {
        vp.vds
            .iter()
            .map(|vd| vd.loc.distance(p))
            .fold(f64::INFINITY, f64::min)
    };
    trusted_refs.sort_by(|a, b| {
        let da = nearest(a, &site.center);
        let db = nearest(b, &site.center);
        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
    });
    let coverage_radius = trusted_refs
        .first()
        .map(|vp| nearest(vp, &site.center))
        .unwrap_or(0.0)
        .max(site.radius_m)
        + cfg.coverage_margin_m;

    let mut vps: Vec<Arc<StoredVp>> = Vec::new();
    for vp in &in_minute {
        let admit = vp.trusted
            || vp
                .vds
                .iter()
                .any(|vd| vd.loc.distance(&site.center) <= coverage_radius);
        if admit {
            vps.push(Arc::clone(vp));
        }
    }

    let mid = |vp: &StoredVp| {
        let a = vp.start_loc();
        let b = vp.end_loc();
        Point::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)
    };
    let grid = GridIndex::build(500.0, vps.iter().enumerate().map(|(i, vp)| (i, mid(vp))));
    let max_half_span = vps
        .iter()
        .map(|vp| vp.start_loc().distance(&vp.end_loc()) / 2.0)
        .fold(0.0f64, f64::max);
    let query_r = cfg.dsrc_radius_m + 2.0 * max_half_span + 1.0;

    let mut adj = vec![Vec::new(); vps.len()];
    for i in 0..vps.len() {
        for j in grid.query_radius(&mid(&vps[i]), query_r) {
            if j <= i {
                continue;
            }
            let close = vps[i]
                .min_aligned_distance(&vps[j])
                .is_some_and(|d| d <= cfg.dsrc_radius_m);
            if close && vps[i].mutually_linked(&vps[j]) {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }

    let trusted = vps
        .iter()
        .enumerate()
        .filter(|(_, vp)| vp.trusted)
        .map(|(i, _)| i)
        .collect();
    Viewmap {
        vps,
        adj,
        trusted,
        minute,
    }
}

/// The original Algorithm 1 driver: scatter-style TrustRank over
/// adjacency lists ([`trustrank::trust_scores_reference`]) plus the
/// site-restricted BFS.
pub fn naive_verify(vm: &Viewmap, site: &Site, cfg: &ViewmapConfig) -> Verification {
    let site_idx = vm.site_members(site);
    if vm.trusted.is_empty() {
        return Verification {
            scores: vec![0.0; vm.vps.len()],
            top: None,
            legitimate: Vec::new(),
        };
    }
    let (scores, _) =
        trustrank::trust_scores_reference(&vm.adj, &vm.trusted, cfg.damping, 1e-10, 1000);
    let top = site_idx.iter().copied().max_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut legitimate = Vec::new();
    if let Some(u) = top {
        let in_site: std::collections::HashSet<usize> = site_idx.iter().copied().collect();
        let mut seen = std::collections::HashSet::new();
        let mut queue = std::collections::VecDeque::new();
        seen.insert(u);
        queue.push_back(u);
        while let Some(v) = queue.pop_front() {
            legitimate.push(v);
            for &w in &vm.adj[v] {
                if in_site.contains(&w) && seen.insert(w) {
                    queue.push_back(w);
                }
            }
        }
        legitimate.sort_unstable();
    }
    Verification {
        scores,
        top,
        legitimate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_world_is_well_formed() {
        let w = SynthWorld::generate(300, 7);
        assert_eq!(w.vps.len(), 300);
        assert!(w.vps[0].trusted && !w.vps[1].trusted);
        for vp in &w.vps {
            assert_eq!(vp.vds.len(), 60);
            assert_eq!(vp.minute(), MinuteId(0));
        }
        // Wiring produced mutual links between near neighbors.
        let linked = w.vps.iter().filter(|vp| vp.bloom.count_ones() > 0).count();
        assert!(linked > 250, "only {linked} VPs wired");
    }

    #[test]
    fn optimized_build_matches_naive_build() {
        // The per-second grid + precomputed-key path must produce exactly
        // the edge set of the seed algorithm on the same population.
        let w = SynthWorld::generate(400, 11);
        let cfg = ViewmapConfig::default();
        let arcs: Vec<Arc<StoredVp>> = w.vps.iter().cloned().map(Arc::new).collect();
        let fast = Viewmap::build(&arcs, w.site, w.minute, &cfg);
        let naive = naive_build(&arcs, w.site, w.minute, &cfg);
        assert_eq!(fast.len(), naive.len());
        assert_eq!(fast.edge_count(), naive.edge_count());
        for i in 0..fast.len() {
            let mut a = fast.adj[i].clone();
            let mut b = naive.adj[i].clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "edge lists differ at node {i}");
        }
        // And verification agrees end to end.
        let (v_fast, _) = fast.verify(&w.site, &cfg);
        let v_naive = naive_verify(&naive, &w.site, &cfg);
        assert_eq!(v_fast.top, v_naive.top);
        assert_eq!(v_fast.legitimate, v_naive.legitimate);
    }
}
